//! The Retailer snowflake schema (paper §7, Appendix C.1).
//!
//! One fact relation and four dimensions:
//!
//! * `Inventory(locn, dateid, ksn, inventoryunits)` — the large,
//!   frequently-updated fact table (84 M rows in the paper);
//! * `Item(ksn, subcategory, category, categoryCluster, prize)`;
//! * `Weather(locn, dateid, rain, snow, maxtemp, mintemp, meanwind,
//!   thunder)`;
//! * `Location(locn, zip, + 13 distance/area attributes)`;
//! * `Census(zip, + 15 demographic attributes)`.
//!
//! 48 attribute occurrences − 5 shared join keys = **43 variables**,
//! matching the paper. The paper’s variable order (App. C.1) is
//! `locn − { dateid − { ksn }, zip }` with each relation’s private
//! attributes hanging below on their own branch, so every relation’s
//! variables form a root-to-leaf path and single-tuple updates to
//! `Inventory` take O(1) (§7).

use crate::stream::Batch;
use fivm_core::{Tuple, Value};
use fivm_query::{QueryDef, VariableOrder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Size/seed knobs for the generator (defaults are laptop-scale; the
/// paper’s dataset is ~84 M facts).
#[derive(Clone, Debug)]
pub struct RetailerConfig {
    /// Number of distinct store locations.
    pub locations: usize,
    /// Number of distinct dates.
    pub dates: usize,
    /// Number of distinct products (`ksn`).
    pub items: usize,
    /// Number of distinct zip codes.
    pub zips: usize,
    /// Fact-table rows to generate.
    pub inventory_rows: usize,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
}

impl Default for RetailerConfig {
    fn default() -> Self {
        RetailerConfig {
            locations: 30,
            dates: 100,
            items: 400,
            zips: 25,
            inventory_rows: 20_000,
            seed: 0xF1A7,
        }
    }
}

/// Private (non-join) attribute names per relation. The first three are
/// **categorical string columns** (see [`ITEM_SUBCATEGORIES`]): their
/// values are interned symbols, not integer codes.
pub const ITEM_ATTRS: [&str; 4] = ["subcategory", "category", "categoryCluster", "prize"];
/// Distinct `subcategory` strings (`"subcategory#00"` …). Each
/// subcategory maps onto one of [`ITEM_CATEGORIES`] categories, each
/// category onto one of [`ITEM_CLUSTERS`] clusters — the snowflake
/// hierarchy the paper's Item dimension carries.
pub const ITEM_SUBCATEGORIES: usize = 40;
/// Distinct `category` strings (`"category#00"` …).
pub const ITEM_CATEGORIES: usize = 12;
/// Distinct `categoryCluster` strings (`"categoryCluster#0"` …).
pub const ITEM_CLUSTERS: usize = 6;
/// Weather measurements.
pub const WEATHER_ATTRS: [&str; 6] = ["rain", "snow", "maxtemp", "mintemp", "meanwind", "thunder"];
/// Location attributes (area, distances to competitors, …).
pub const LOCATION_ATTRS: [&str; 13] = [
    "rgn_cd",
    "clim_zn_nbr",
    "tot_area_sq_ft",
    "sell_area_sq_ft",
    "avghhi",
    "supertargetdistance",
    "supertargetdrivetime",
    "targetdistance",
    "targetdrivetime",
    "walmartdistance",
    "walmartdrivetime",
    "walmartsupercenterdistance",
    "walmartsupercenterdrivetime",
];
/// Census demographics per zip.
pub const CENSUS_ATTRS: [&str; 15] = [
    "population",
    "white",
    "asian",
    "pacific",
    "blackafrican",
    "medianage",
    "occupiedhouseunits",
    "houseunits",
    "families",
    "households",
    "husbwife",
    "males",
    "females",
    "householdschildren",
    "hispanic",
];

/// The query: natural join of the five relations (no free variables —
/// aggregates are global, per §7’s cofactor experiments).
pub fn query() -> QueryDef {
    let inv: Vec<&str> = vec!["locn", "dateid", "ksn", "inventoryunits"];
    let mut item = vec!["ksn"];
    item.extend(ITEM_ATTRS);
    let mut weather = vec!["locn", "dateid"];
    weather.extend(WEATHER_ATTRS);
    let mut location = vec!["locn", "zip"];
    location.extend(LOCATION_ATTRS);
    let mut census = vec!["zip"];
    census.extend(CENSUS_ATTRS);
    QueryDef::new(
        &[
            ("Inventory", &inv),
            ("Item", &item),
            ("Weather", &weather),
            ("Location", &location),
            ("Census", &census),
        ],
        &[],
    )
}

/// The paper’s variable order for Retailer: join keys
/// `locn − { dateid − { ksn }, zip }` on top, each relation’s private
/// attributes chained below its lowest join key.
pub fn variable_order(q: &QueryDef) -> VariableOrder {
    let mut spec = String::from("locn - { dateid - { ksn - { inventoryunits, ");
    spec.push_str(&chain(&ITEM_ATTRS));
    spec.push_str(" }, ");
    spec.push_str(&chain(&WEATHER_ATTRS));
    spec.push_str(" }, zip - { ");
    spec.push_str(&chain(&LOCATION_ATTRS));
    spec.push_str(", ");
    spec.push_str(&chain(&CENSUS_ATTRS));
    spec.push_str(" } }");
    VariableOrder::parse(&spec, &q.catalog)
}

fn chain(attrs: &[&str]) -> String {
    attrs.join(" - ")
}

/// Generated dataset: per-relation tuple lists, aligned with the
/// query’s relation indices.
pub struct Retailer {
    /// The query (owns the catalog).
    pub query: QueryDef,
    /// The paper’s variable order.
    pub order: VariableOrder,
    /// Tuples per relation, in generation order.
    pub tuples: Vec<Vec<Tuple>>,
    /// Index of the fact relation (`Inventory`) — the §7 “largest
    /// relation” for the ONE scenarios.
    pub largest: usize,
}

/// Generate a Retailer instance.
pub fn generate(cfg: &RetailerConfig) -> Retailer {
    let q = query();
    let order = variable_order(&q);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut tuples: Vec<Vec<Tuple>> = vec![Vec::new(); 5];

    // Inventory facts: skewed towards low location/item ids (hot stores)
    for _ in 0..cfg.inventory_rows {
        let locn = skewed(&mut rng, cfg.locations);
        let dateid = rng.gen_range(0..cfg.dates);
        let ksn = skewed(&mut rng, cfg.items);
        let units = rng.gen_range(0..500i64);
        tuples[0].push(Tuple::new(vec![
            Value::Int(locn as i64),
            Value::Int(dateid as i64),
            Value::Int(ksn as i64),
            Value::Int(units),
        ]));
    }
    // Item dimension: the categorical columns carry real strings,
    // interned into the query catalog once per domain value here — the
    // engine only ever sees the 4-byte symbol ids.
    let subcategories: Vec<Value> = (0..ITEM_SUBCATEGORIES)
        .map(|i| q.catalog.sym(&format!("subcategory#{i:02}")))
        .collect();
    let categories: Vec<Value> = (0..ITEM_CATEGORIES)
        .map(|i| q.catalog.sym(&format!("category#{i:02}")))
        .collect();
    let clusters: Vec<Value> = (0..ITEM_CLUSTERS)
        .map(|i| q.catalog.sym(&format!("categoryCluster#{i}")))
        .collect();
    for ksn in 0..cfg.items {
        let sub = rng.gen_range(0..ITEM_SUBCATEGORIES);
        let cat = sub * ITEM_CATEGORIES / ITEM_SUBCATEGORIES;
        let cluster = cat * ITEM_CLUSTERS / ITEM_CATEGORIES;
        tuples[1].push(Tuple::new(vec![
            Value::Int(ksn as i64),
            subcategories[sub].clone(),
            categories[cat].clone(),
            clusters[cluster].clone(),
            Value::Int(rng.gen_range(0..500)),
        ]));
    }
    // Weather: one row per (locn, dateid)
    for locn in 0..cfg.locations {
        for dateid in 0..cfg.dates {
            let mut vals = vec![Value::Int(locn as i64), Value::Int(dateid as i64)];
            vals.extend((0..WEATHER_ATTRS.len()).map(|_| Value::Int(rng.gen_range(-20..40))));
            tuples[2].push(Tuple::new(vals));
        }
    }
    // Location: one row per locn
    for locn in 0..cfg.locations {
        let zip = locn % cfg.zips;
        let mut vals = vec![Value::Int(locn as i64), Value::Int(zip as i64)];
        vals.extend((0..LOCATION_ATTRS.len()).map(|_| Value::Int(rng.gen_range(0..10_000))));
        tuples[3].push(Tuple::new(vals));
    }
    // Census: one row per zip
    for zip in 0..cfg.zips {
        let mut vals = vec![Value::Int(zip as i64)];
        vals.extend((0..CENSUS_ATTRS.len()).map(|_| Value::Int(rng.gen_range(0..100_000))));
        tuples[4].push(Tuple::new(vals));
    }

    Retailer {
        query: q,
        order,
        tuples,
        largest: 0,
    }
}

impl Retailer {
    /// Round-robin insert stream over all relations with the given
    /// batch size (the §7 default workload).
    pub fn stream(&self, batch_size: usize) -> Vec<Batch> {
        crate::stream::interleave_round_robin(&self.tuples, batch_size)
    }

    /// Insert stream restricted to the fact relation (the ONE scenario),
    /// with all other relations preloaded statically.
    pub fn stream_largest_only(&self, batch_size: usize) -> Vec<Batch> {
        crate::stream::single_relation(self.largest, &self.tuples[self.largest], batch_size)
    }
}

/// Zipf-ish skew: squares a uniform draw to favour small ids.
fn skewed(rng: &mut SmallRng, n: usize) -> usize {
    let u: f64 = rng.gen();
    ((u * u) * n as f64) as usize % n.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_43_variables() {
        let q = query();
        assert_eq!(q.all_vars().len(), 43, "the paper’s 43 attributes");
        assert_eq!(q.relations.len(), 5);
    }

    #[test]
    fn variable_order_is_valid() {
        let q = query();
        let vo = variable_order(&q);
        assert!(vo.validate(&q).is_ok());
        // all 43 variables placed
        assert_eq!(vo.vars.len(), 43);
    }

    #[test]
    fn generation_is_deterministic_and_joins() {
        let cfg = RetailerConfig {
            inventory_rows: 500,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.tuples[0], b.tuples[0]);
        // every fact joins: its dims exist
        assert_eq!(a.tuples[1].len(), cfg.items);
        assert_eq!(a.tuples[2].len(), cfg.locations * cfg.dates);
        assert_eq!(a.tuples[3].len(), cfg.locations);
        assert_eq!(a.tuples[4].len(), cfg.zips);
        // key ranges are respected
        for t in &a.tuples[0] {
            let locn = t.get(0).as_int().unwrap();
            assert!((locn as usize) < cfg.locations);
        }
    }

    #[test]
    fn item_categorical_columns_are_interned_strings() {
        let r = generate(&RetailerConfig {
            inventory_rows: 10,
            items: 50,
            ..Default::default()
        });
        for t in &r.tuples[1] {
            // (ksn, subcategory, category, categoryCluster, prize)
            for (pos, prefix) in [
                (1, "subcategory#"),
                (2, "category#"),
                (3, "categoryCluster#"),
            ] {
                let id = t.get(pos).as_sym().expect("categorical column is a symbol");
                let s = r.query.catalog.resolve_sym(id).expect("interned at load");
                assert!(s.starts_with(prefix), "{s} at position {pos}");
            }
            assert!(t.get(4).as_int().is_some(), "prize stays numeric");
        }
        // The hierarchy is a function: one category per subcategory.
        let mut sub_to_cat: std::collections::HashMap<u32, u32> = Default::default();
        for t in &r.tuples[1] {
            let sub = t.get(1).as_sym().unwrap();
            let cat = t.get(2).as_sym().unwrap();
            assert_eq!(*sub_to_cat.entry(sub).or_insert(cat), cat);
        }
    }

    #[test]
    fn streams_cover_all_tuples() {
        let cfg = RetailerConfig {
            inventory_rows: 100,
            locations: 5,
            dates: 10,
            items: 20,
            zips: 3,
            seed: 7,
        };
        let r = generate(&cfg);
        let batches = r.stream(16);
        let total: usize = batches.iter().map(|b| b.tuples.len()).sum();
        let expected: usize = r.tuples.iter().map(Vec::len).sum();
        assert_eq!(total, expected);
        let one = r.stream_largest_only(16);
        assert!(one.iter().all(|b| b.relation == r.largest));
        assert_eq!(
            one.iter().map(|b| b.tuples.len()).sum::<usize>(),
            r.tuples[r.largest].len()
        );
    }
}
