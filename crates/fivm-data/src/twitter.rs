//! The Twitter triangle workload (paper §7, Appendix C.1).
//!
//! The paper splits the first 3 M edges of the Higgs Twitter graph into
//! three equal relations `R(A,B)`, `S(B,C)`, `T(C,A)` and maintains
//! queries over the triangle join — the canonical cyclic query whose
//! intermediate views grow quadratically without indicator projections
//! (Appendix B, Figure 13). We substitute a seeded random directed
//! graph of the same shape (DESIGN.md §3).

use crate::stream::Batch;
use fivm_core::{Tuple, Value};
use fivm_query::{QueryDef, VariableOrder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator knobs (paper: 3 M edges over ~456 k nodes; defaults are a
/// 1/100-scale instance with the same density).
#[derive(Clone, Debug)]
pub struct TwitterConfig {
    /// Total directed edges (split round-robin into R, S, T).
    pub edges: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        TwitterConfig {
            edges: 30_000,
            nodes: 4_500,
            seed: 0x7717,
        }
    }
}

/// The triangle query `Q△ = R(A,B) ⋈ S(B,C) ⋈ T(C,A)`.
pub fn query() -> QueryDef {
    QueryDef::triangle()
}

/// The paper’s variable order `A − B − C` (Appendix B / C.1).
pub fn variable_order(q: &QueryDef) -> VariableOrder {
    VariableOrder::parse("A - B - C", &q.catalog)
}

/// A generated triangle workload.
pub struct Twitter {
    /// The triangle query.
    pub query: QueryDef,
    /// The `A − B − C` order.
    pub order: VariableOrder,
    /// Tuples for R, S, T.
    pub tuples: Vec<Vec<Tuple>>,
}

/// Generate edges and split them round-robin into R, S, T (mirroring
/// the paper’s equal three-way split of the edge list). Node ids are
/// integers; see [`generate_handles`] for the string-keyed variant.
pub fn generate(cfg: &TwitterConfig) -> Twitter {
    generate_with(cfg, |_, i| Value::Int(i as i64))
}

/// The string-keyed variant: nodes are Twitter **handles**
/// (`"@user000042"`), interned into the query catalog once per node —
/// every edge endpoint, probe and route then ships a 4-byte symbol.
/// Same RNG stream as [`generate`], so the two variants produce the
/// same graph up to the node relabeling.
pub fn generate_handles(cfg: &TwitterConfig) -> Twitter {
    generate_with(cfg, |q, i| q.catalog.sym(&format!("@user{i:06}")))
}

fn generate_with(cfg: &TwitterConfig, node: impl Fn(&QueryDef, usize) -> Value) -> Twitter {
    let q = query();
    let order = variable_order(&q);
    // Materialize the node domain once — interning (for the handle
    // variant) happens here, at load, never per edge.
    let nodes: Vec<Value> = (0..cfg.nodes).map(|i| node(&q, i)).collect();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut tuples: Vec<Vec<Tuple>> = vec![Vec::new(); 3];
    for e in 0..cfg.edges {
        let u = rng.gen_range(0..cfg.nodes);
        let v = rng.gen_range(0..cfg.nodes);
        tuples[e % 3].push(Tuple::new(vec![nodes[u].clone(), nodes[v].clone()]));
    }
    Twitter {
        query: q,
        order,
        tuples,
    }
}

/// Knobs for the degree-skewed variant: a directed multigraph whose
/// endpoints are drawn i.i.d. from Zipf(s) over the node domain, so
/// vertex degrees follow a genuine power law with tail exponent `s`
/// (the heavy/light crossover workload; `s = 0` recovers the uniform
/// [`generate`] shape).
#[derive(Clone, Debug)]
pub struct ZipfTwitterConfig {
    /// Total directed edges (split round-robin into R, S, T).
    pub edges: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Zipf exponent of the endpoint distribution.
    pub exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZipfTwitterConfig {
    fn default() -> Self {
        ZipfTwitterConfig {
            edges: 30_000,
            nodes: 4_500,
            exponent: 1.2,
            seed: 0x7717,
        }
    }
}

/// Generate a Zipf(s)-skewed edge stream: node id = popularity rank
/// (node 0 is the hub), both endpoints sampled independently, edges
/// split round-robin into R, S, T like [`generate`].
pub fn generate_zipf(cfg: &ZipfTwitterConfig) -> Twitter {
    let q = query();
    let order = variable_order(&q);
    let zipf = crate::zipf::Zipf::new(cfg.nodes, cfg.exponent);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut tuples: Vec<Vec<Tuple>> = vec![Vec::new(); 3];
    for e in 0..cfg.edges {
        let u = zipf.sample(&mut rng) as i64;
        let v = zipf.sample(&mut rng) as i64;
        tuples[e % 3].push(Tuple::new(vec![Value::Int(u), Value::Int(v)]));
    }
    Twitter {
        query: q,
        order,
        tuples,
    }
}

impl Twitter {
    /// Round-robin insert stream over R, S, T.
    pub fn stream(&self, batch_size: usize) -> Vec<Batch> {
        crate::stream::interleave_round_robin(&self.tuples, batch_size)
    }

    /// Stream over R only (the Figure 13 ONE scenario).
    pub fn stream_r_only(&self, batch_size: usize) -> Vec<Batch> {
        crate::stream::single_relation(0, &self.tuples[0], batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_three_way_split() {
        let t = generate(&TwitterConfig {
            edges: 300,
            nodes: 50,
            seed: 1,
        });
        assert_eq!(t.tuples[0].len(), 100);
        assert_eq!(t.tuples[1].len(), 100);
        assert_eq!(t.tuples[2].len(), 100);
    }

    #[test]
    fn order_is_valid_for_triangle() {
        let q = query();
        assert!(variable_order(&q).validate(&q).is_ok());
    }

    #[test]
    fn deterministic_and_in_range() {
        let cfg = TwitterConfig {
            edges: 100,
            nodes: 10,
            seed: 5,
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.tuples, b.tuples);
        for rel in &a.tuples {
            for t in rel {
                assert!(t.get(0).as_int().unwrap() < 10);
                assert!(t.get(1).as_int().unwrap() < 10);
            }
        }
    }

    #[test]
    fn handle_variant_is_the_same_graph_relabeled() {
        let cfg = TwitterConfig {
            edges: 120,
            nodes: 20,
            seed: 11,
        };
        let ints = generate(&cfg);
        let handles = generate_handles(&cfg);
        assert_eq!(ints.tuples[0].len(), handles.tuples[0].len());
        for (rel_i, rel_h) in ints.tuples.iter().zip(&handles.tuples) {
            for (ti, th) in rel_i.iter().zip(rel_h) {
                for pos in 0..2 {
                    let node = ti.get(pos).as_int().unwrap() as usize;
                    let id = th.get(pos).as_sym().expect("handle endpoints are symbols");
                    assert_eq!(
                        handles.query.catalog.resolve_sym(id),
                        Some(format!("@user{node:06}").as_str())
                    );
                }
            }
        }
    }

    #[test]
    fn zipf_stream_is_deterministic_and_skewed() {
        let cfg = ZipfTwitterConfig {
            edges: 30_000,
            nodes: 2_000,
            exponent: 1.2,
            seed: 42,
        };
        let a = generate_zipf(&cfg);
        let b = generate_zipf(&cfg);
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.tuples[0].len(), 10_000);
        // Realized out-degree distribution of R carries the nominal
        // tail exponent (the property the crossover bench relies on).
        let mut counts = vec![0usize; cfg.nodes];
        for t in &a.tuples[0] {
            counts[t.get(0).as_int().unwrap() as usize] += 1;
        }
        let est = crate::zipf::fit_tail_exponent(&counts, 50);
        assert!(
            (est - cfg.exponent).abs() < 0.25,
            "tail exponent {est:.3} vs nominal {}",
            cfg.exponent
        );
        // ...and the hub is genuinely heavy, unlike the uniform shape.
        let uniform = generate(&TwitterConfig {
            edges: 30_000,
            nodes: 2_000,
            seed: 42,
        });
        let mut ucounts = vec![0usize; cfg.nodes];
        for t in &uniform.tuples[0] {
            ucounts[t.get(0).as_int().unwrap() as usize] += 1;
        }
        assert!(counts[0] > 10 * ucounts.iter().copied().max().unwrap());
    }

    #[test]
    fn dense_small_graph_has_triangles() {
        // with 10 nodes and 300 edges, triangles are near-certain
        let t = generate(&TwitterConfig {
            edges: 300,
            nodes: 10,
            seed: 3,
        });
        let mut r = fivm_core::Relation::<i64>::new(t.query.relations[0].schema.clone());
        let mut s = fivm_core::Relation::<i64>::new(t.query.relations[1].schema.clone());
        let mut tt = fivm_core::Relation::<i64>::new(t.query.relations[2].schema.clone());
        for x in &t.tuples[0] {
            r.insert(x.clone(), 1);
        }
        for x in &t.tuples[1] {
            s.insert(x.clone(), 1);
        }
        for x in &t.tuples[2] {
            tt.insert(x.clone(), 1);
        }
        let tri = r.join(&s).join(&tt);
        assert!(!tri.is_empty(), "expected at least one triangle");
    }
}
