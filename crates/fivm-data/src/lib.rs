//! # fivm-data — synthetic workloads for the F-IVM experiments
//!
//! Generators reproducing the *shape* of the paper’s datasets (§7,
//! Appendix C.1); DESIGN.md §3 documents each substitution:
//!
//! * [`retailer`] — the snowflake schema of the proprietary Retailer
//!   dataset: `Inventory ⋈ Item ⋈ Weather ⋈ Location ⋈ Census`,
//!   43 attributes, joins on `locn` / `dateid` / `ksn` / `zip`, plus the
//!   paper’s variable order.
//! * [`housing`] — the 6-relation Housing star schema (27 attributes,
//!   join on `postcode`) with the scale-factor law that makes the
//!   listing join grow cubically while the factorized form grows
//!   linearly (Figure 8 right).
//! * [`twitter`] — random directed edges split into `R(A,B)`, `S(B,C)`,
//!   `T(C,A)` for the triangle workload (Figure 13).
//! * [`matrices`] — dense random matrices and their relational
//!   encodings for the matrix-chain workload (Figure 6).
//! * [`stream`] — round-robin interleaving of inserts into fixed-size
//!   batches, including single-relation (ONE) streams.
//! * [`zipf`] — Zipf(s) rank sampling with a tail-exponent estimator,
//!   behind the degree-skewed Twitter streams of the heavy/light
//!   crossover experiments.

#![forbid(unsafe_code)]

pub mod housing;
pub mod matrices;
pub mod retailer;
pub mod stream;
pub mod twitter;
pub mod zipf;

pub use housing::HousingConfig;
pub use retailer::RetailerConfig;
pub use stream::{interleave_round_robin, Batch};
pub use twitter::{TwitterConfig, ZipfTwitterConfig};
pub use zipf::Zipf;
