//! Zipf(s) sampling for degree-skewed streams.
//!
//! The heavy/light crossover experiments need edge streams whose vertex
//! degrees follow a genuine power law — `retailer`'s "Zipf-ish"
//! squared-uniform skew has no controllable tail exponent. [`Zipf`]
//! samples ranks `1..=n` with `P(rank r) ∝ r^{-s}` by inverting a
//! precomputed CDF with binary search (the only RNG primitive needed is
//! a uniform `f64`, which keeps the generator on the vendored `rand`
//! shim). `s = 0` degenerates to the uniform distribution.
//!
//! [`fit_tail_exponent`] estimates the realized rank-frequency exponent
//! from sampled degree counts (least-squares slope of `ln degree` vs
//! `ln rank` over the top ranks) — the unit tests pin the generator's
//! tail to its nominal `s`, and workload tests can assert a stream is
//! as skewed as it claims.

use rand::rngs::SmallRng;
use rand::Rng;

/// A Zipf(s) sampler over ranks `0..n` (0-based; rank 0 is the most
/// frequent).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF of `P(rank r) ∝ (r+1)^{-s}` over `n` ranks.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff the domain is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        // First rank whose CDF weakly exceeds u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF entries are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Least-squares estimate of the rank-frequency tail exponent: fit
/// `ln(count) = a − s·ln(rank)` over the `top` largest counts and
/// return `s`. Zero counts and an empty prefix yield 0.
pub fn fit_tail_exponent(counts: &[usize], top: usize) -> f64 {
    let mut sorted: Vec<usize> = counts.iter().copied().filter(|&c| c > 0).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    sorted.truncate(top);
    if sorted.len() < 2 {
        return 0.0;
    }
    let pts: Vec<(f64, f64)> = sorted
        .iter()
        .enumerate()
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return 0.0;
    }
    -((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn degree_counts(n: usize, s: f64, draws: usize, seed: u64) -> Vec<usize> {
        let z = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn realized_tail_exponent_matches_nominal_s() {
        for &s in &[0.8, 1.2] {
            let counts = degree_counts(10_000, s, 300_000, 0x51ef);
            let est = fit_tail_exponent(&counts, 100);
            assert!(
                (est - s).abs() < 0.15,
                "nominal s={s}, realized tail exponent {est:.3}"
            );
        }
    }

    #[test]
    fn s_zero_is_uniform() {
        let counts = degree_counts(1_000, 0.0, 100_000, 0x51ef);
        let est = fit_tail_exponent(&counts, 100);
        assert!(est.abs() < 0.15, "uniform stream fit {est:.3}");
        // every rank drawn at least once at 100 draws/rank on average
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn deterministic_and_in_range() {
        let z = Zipf::new(50, 1.1);
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let ra = z.sample(&mut a);
            assert_eq!(ra, z.sample(&mut b));
            assert!(ra < 50);
        }
    }

    #[test]
    fn rank_zero_dominates_under_strong_skew() {
        let counts = degree_counts(1_000, 1.5, 100_000, 7);
        assert!(counts[0] > counts[10] * 5);
        assert!(counts[0] > 100_000 / 10, "head rank should be heavy");
    }
}
