//! Matrix workloads for the chain-multiplication experiments
//! (paper §6.1, Figure 6): dense random matrices, their relational
//! encodings, and rank-1 / rank-r update generators.

use fivm_core::{Relation, Schema, Tuple, Value};
use fivm_query::QueryDef;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A dense random `n × n` matrix with entries in `(−1, 1)` (the paper’s
/// matrix workload), as a row-major vector.
pub fn random_matrix(n: usize, rng: &mut SmallRng) -> Vec<f64> {
    (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// A chain of `k` random `n × n` matrices.
pub fn random_chain(k: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..k).map(|_| random_matrix(n, &mut rng)).collect()
}

/// A random vector in `(−1, 1)ⁿ`.
pub fn random_vector(n: usize, rng: &mut SmallRng) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// The chain query `A[X1, Xk+1] = ⊕X2 … ⊕Xk  A1[X1,X2] ⊗ … ⊗ Ak[Xk,Xk+1]`
/// (paper §6.1), with `X1` and `X_{k+1}` free.
pub fn chain_query(k: usize) -> QueryDef {
    let names: Vec<String> = (1..=k + 1).map(|i| format!("X{i}")).collect();
    let rels: Vec<(String, Vec<&str>)> = (0..k)
        .map(|i| {
            (
                format!("A{}", i + 1),
                vec![names[i].as_str(), names[i + 1].as_str()],
            )
        })
        .collect();
    let rel_refs: Vec<(&str, &[&str])> = rels
        .iter()
        .map(|(n, a)| (n.as_str(), a.as_slice()))
        .collect();
    QueryDef::new(&rel_refs, &[names[0].as_str(), names[k].as_str()])
}

/// Encode a dense matrix as a relation over `(row_var, col_var)` with
/// `f64` payloads — the hash-map runtime of Figure 6.
pub fn matrix_relation(data: &[f64], n: usize, schema: Schema) -> Relation<f64> {
    assert_eq!(schema.len(), 2);
    let mut out = Relation::new(schema);
    for i in 0..n {
        for j in 0..n {
            out.insert(
                Tuple::new(vec![Value::Int(i as i64), Value::Int(j as i64)]),
                data[i * n + j],
            );
        }
    }
    out
}

/// Encode a vector as a unary relation over `var`.
pub fn vector_relation(v: &[f64], schema: Schema) -> Relation<f64> {
    assert_eq!(schema.len(), 1);
    let mut out = Relation::new(schema);
    for (i, &x) in v.iter().enumerate() {
        out.insert(Tuple::single(Value::Int(i as i64)), x);
    }
    out
}

/// A one-row update to an `n × n` matrix as rank-1 factors
/// `(e_row, diff)` (the Figure 6 left workload).
pub fn one_row_update(n: usize, row: usize, rng: &mut SmallRng) -> (Vec<f64>, Vec<f64>) {
    let mut u = vec![0.0; n];
    u[row] = 1.0;
    (u, random_vector(n, rng))
}

/// A rank-r update as `r` rank-1 factor pairs (Figure 6 right).
pub fn rank_r_update(n: usize, r: usize, rng: &mut SmallRng) -> Vec<(Vec<f64>, Vec<f64>)> {
    (0..r)
        .map(|_| (random_vector(n, rng), random_vector(n, rng)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_query_shape() {
        let q = chain_query(3);
        assert_eq!(q.relations.len(), 3);
        assert_eq!(q.all_vars().len(), 4);
        assert_eq!(q.free.len(), 2);
        assert!(q.catalog.lookup("X1").is_some());
        assert!(q.catalog.lookup("X4").is_some());
    }

    #[test]
    fn matrix_relation_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 4;
        let data = random_matrix(n, &mut rng);
        let q = chain_query(1);
        let rel = matrix_relation(&data, n, q.relations[0].schema.clone());
        for i in 0..n {
            for j in 0..n {
                let t = Tuple::new(vec![Value::Int(i as i64), Value::Int(j as i64)]);
                let stored = rel.get(&t).copied().unwrap_or(0.0);
                assert_eq!(stored, data[i * n + j]);
            }
        }
    }

    #[test]
    fn one_row_update_is_rank1() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (u, v) = one_row_update(5, 2, &mut rng);
        assert_eq!(u.iter().filter(|&&x| x != 0.0).count(), 1);
        assert_eq!(u[2], 1.0);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn deterministic_chain() {
        assert_eq!(random_chain(2, 3, 7), random_chain(2, 3, 7));
        assert_ne!(random_chain(2, 3, 7), random_chain(2, 3, 8));
    }
}
