//! Stream synthesis (paper §7, Appendix C.1): “we run the systems over
//! data streams synthesized from these datasets by interleaving updates
//! to the input relations in a round-robin fashion and grouping them
//! into batches of fixed size”.

use fivm_core::Tuple;
use fivm_query::RelIndex;

/// One update batch: inserts into a single relation.
#[derive(Clone, Debug)]
pub struct Batch {
    /// The updated relation.
    pub relation: RelIndex,
    /// The inserted tuples.
    pub tuples: Vec<Tuple>,
}

/// Interleave per-relation tuple lists round-robin into batches of
/// `batch_size`; relations drop out as they are exhausted.
pub fn interleave_round_robin(per_rel: &[Vec<Tuple>], batch_size: usize) -> Vec<Batch> {
    assert!(batch_size > 0);
    let mut cursors = vec![0usize; per_rel.len()];
    let mut out = Vec::new();
    loop {
        let mut progressed = false;
        for (rel, tuples) in per_rel.iter().enumerate() {
            let cur = cursors[rel];
            if cur >= tuples.len() {
                continue;
            }
            let end = (cur + batch_size).min(tuples.len());
            out.push(Batch {
                relation: rel,
                tuples: tuples[cur..end].to_vec(),
            });
            cursors[rel] = end;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    out
}

/// A stream over a single relation (the ONE scenarios of §7).
pub fn single_relation(rel: RelIndex, tuples: &[Tuple], batch_size: usize) -> Vec<Batch> {
    assert!(batch_size > 0);
    tuples
        .chunks(batch_size)
        .map(|chunk| Batch {
            relation: rel,
            tuples: chunk.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_core::tuple;

    fn tuples(n: usize, tag: i64) -> Vec<Tuple> {
        (0..n).map(|i| tuple![tag, i as i64]).collect()
    }

    #[test]
    fn round_robin_alternates_relations() {
        let per_rel = vec![tuples(5, 0), tuples(3, 1)];
        let batches = interleave_round_robin(&per_rel, 2);
        let rels: Vec<usize> = batches.iter().map(|b| b.relation).collect();
        assert_eq!(rels, vec![0, 1, 0, 1, 0]);
        let total: usize = batches.iter().map(|b| b.tuples.len()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn batch_sizes_respected() {
        let per_rel = vec![tuples(7, 0)];
        let batches = interleave_round_robin(&per_rel, 3);
        let sizes: Vec<usize> = batches.iter().map(|b| b.tuples.len()).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn preserves_order_within_relation() {
        let per_rel = vec![tuples(4, 0), tuples(4, 1)];
        let batches = interleave_round_robin(&per_rel, 2);
        let rel0: Vec<Tuple> = batches
            .iter()
            .filter(|b| b.relation == 0)
            .flat_map(|b| b.tuples.clone())
            .collect();
        assert_eq!(rel0, tuples(4, 0));
    }

    #[test]
    fn single_relation_stream() {
        let batches = single_relation(2, &tuples(5, 9), 2);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.relation == 2));
    }

    #[test]
    fn empty_relations_skipped() {
        let per_rel = vec![Vec::new(), tuples(2, 1)];
        let batches = interleave_round_robin(&per_rel, 10);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].relation, 1);
    }
}
