//! The Housing star schema (paper §7, Appendix C.1; from [42]).
//!
//! Six relations joined on the common `postcode` — a *q-hierarchical*
//! star join, the class with constant-time single-tuple updates [8]:
//!
//! * `House(postcode, livingarea, price, nbbedrooms, nbbathrooms,
//!   kitchensize, house, flat, unknown, garden, parking)`
//! * `Shop(postcode, openinghoursshop, pricerangeshop, sainsburys,
//!   tesco, ms)`
//! * `Institution(postcode, typeeducation, sizeinstitution)`
//! * `Restaurant(postcode, openinghoursrest, pricerangerest)`
//! * `Demographics(postcode, averagesalary, crimesperyear, unemployment,
//!   nbhospitals)`
//! * `Transport(postcode, nbbuslines, nbtrainstations,
//!   distancecitycentre)`
//!
//! 32 attribute occurrences − 5 shared `postcode`s = **27 variables**.
//!
//! **Scaling law** (Figure 8 right): at scale `s`, House, Shop and
//! Restaurant hold `s` tuples per postcode while the other three hold
//! one, so the listing join per postcode grows as `s³` (cubically)
//! while the factorized representation grows linearly in `s` — the
//! blow-up Figure 8 measures.

use crate::stream::Batch;
use fivm_core::{Tuple, Value};
use fivm_query::{QueryDef, VariableOrder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator knobs. The paper uses 25 000 postcodes and scales 1–20;
/// the defaults are laptop-scale.
#[derive(Clone, Debug)]
pub struct HousingConfig {
    /// Number of distinct postcodes.
    pub postcodes: usize,
    /// Scale factor `s` (tuples per postcode in House/Shop/Restaurant).
    pub scale: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HousingConfig {
    fn default() -> Self {
        HousingConfig {
            postcodes: 1_000,
            scale: 1,
            seed: 0x40_05E5,
        }
    }
}

/// Per-relation private attributes.
pub const HOUSE_ATTRS: [&str; 10] = [
    "livingarea",
    "price",
    "nbbedrooms",
    "nbbathrooms",
    "kitchensize",
    "house",
    "flat",
    "unknown",
    "garden",
    "parking",
];
/// Shop attributes.
pub const SHOP_ATTRS: [&str; 5] = [
    "openinghoursshop",
    "pricerangeshop",
    "sainsburys",
    "tesco",
    "ms",
];
/// Institution attributes.
pub const INSTITUTION_ATTRS: [&str; 2] = ["typeeducation", "sizeinstitution"];
/// Restaurant attributes.
pub const RESTAURANT_ATTRS: [&str; 2] = ["openinghoursrest", "pricerangerest"];
/// Demographics attributes.
pub const DEMOGRAPHICS_ATTRS: [&str; 4] = [
    "averagesalary",
    "crimesperyear",
    "unemployment",
    "nbhospitals",
];
/// Transport attributes.
pub const TRANSPORT_ATTRS: [&str; 3] = ["nbbuslines", "nbtrainstations", "distancecitycentre"];

/// The star-join query over all six relations.
pub fn query() -> QueryDef {
    fn with_pc<'a>(attrs: &[&'a str]) -> Vec<&'a str> {
        let mut v = vec!["postcode"];
        v.extend_from_slice(attrs);
        v
    }
    QueryDef::new(
        &[
            ("House", &with_pc(&HOUSE_ATTRS)),
            ("Shop", &with_pc(&SHOP_ATTRS)),
            ("Institution", &with_pc(&INSTITUTION_ATTRS)),
            ("Restaurant", &with_pc(&RESTAURANT_ATTRS)),
            ("Demographics", &with_pc(&DEMOGRAPHICS_ATTRS)),
            ("Transport", &with_pc(&TRANSPORT_ATTRS)),
        ],
        &[],
    )
}

/// The optimal variable order of App. C.1: `postcode` at the root, each
/// relation’s private attributes on their own root-to-leaf path.
pub fn variable_order(q: &QueryDef) -> VariableOrder {
    let chains: Vec<String> = [
        &HOUSE_ATTRS[..],
        &SHOP_ATTRS[..],
        &INSTITUTION_ATTRS[..],
        &RESTAURANT_ATTRS[..],
        &DEMOGRAPHICS_ATTRS[..],
        &TRANSPORT_ATTRS[..],
    ]
    .iter()
    .map(|attrs| attrs.join(" - "))
    .collect();
    let spec = format!("postcode - {{ {} }}", chains.join(", "));
    VariableOrder::parse(&spec, &q.catalog)
}

/// A generated Housing instance.
pub struct Housing {
    /// The query (owns the catalog).
    pub query: QueryDef,
    /// The App. C.1 variable order.
    pub order: VariableOrder,
    /// Tuples per relation.
    pub tuples: Vec<Vec<Tuple>>,
}

/// Generate a Housing instance per the scaling law above. Postcodes are
/// integers; see [`generate_string_postcodes`] for the string-keyed
/// variant.
pub fn generate(cfg: &HousingConfig) -> Housing {
    generate_with(cfg, |_, pc| Value::Int(pc as i64))
}

/// The string-keyed variant: the shared join key `postcode` is a real
/// postcode string (`"PC004217"`), interned into the query catalog once
/// per postcode — every star-join probe then hashes and compares a
/// 4-byte symbol instead of string content. Same RNG stream as
/// [`generate`], so the instances are identical up to the key
/// relabeling; aggregate over a private numeric column (e.g. `price`)
/// since a string postcode can no longer be summed.
pub fn generate_string_postcodes(cfg: &HousingConfig) -> Housing {
    generate_with(cfg, |q, pc| q.catalog.sym(&format!("PC{pc:06}")))
}

fn generate_with(cfg: &HousingConfig, pc_value: impl Fn(&QueryDef, usize) -> Value) -> Housing {
    let q = query();
    let order = variable_order(&q);
    // One key value per postcode, built (and for the string variant
    // interned) at load; tuple construction below only clones it.
    let postcodes: Vec<Value> = (0..cfg.postcodes).map(|pc| pc_value(&q, pc)).collect();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let widths = [
        HOUSE_ATTRS.len(),
        SHOP_ATTRS.len(),
        INSTITUTION_ATTRS.len(),
        RESTAURANT_ATTRS.len(),
        DEMOGRAPHICS_ATTRS.len(),
        TRANSPORT_ATTRS.len(),
    ];
    // House, Shop, Restaurant scale with s; the rest have one tuple per
    // postcode.
    let copies = [cfg.scale, cfg.scale, 1, cfg.scale, 1, 1];
    let mut tuples: Vec<Vec<Tuple>> = vec![Vec::new(); 6];
    for (ri, (&w, &k)) in widths.iter().zip(&copies).enumerate() {
        for pc_val in &postcodes {
            for _ in 0..k {
                let mut vals = Vec::with_capacity(w + 1);
                vals.push(pc_val.clone());
                vals.extend((0..w).map(|_| Value::Int(rng.gen_range(0..1_000))));
                tuples[ri].push(Tuple::new(vals));
            }
        }
    }
    Housing {
        query: q,
        order,
        tuples,
    }
}

impl Housing {
    /// Round-robin insert stream over all relations.
    pub fn stream(&self, batch_size: usize) -> Vec<Batch> {
        crate::stream::interleave_round_robin(&self.tuples, batch_size)
    }

    /// Total tuple count (150 k at the paper’s scale 1 with 25 000
    /// postcodes).
    pub fn total_tuples(&self) -> usize {
        self.tuples.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_27_variables() {
        let q = query();
        assert_eq!(q.all_vars().len(), 27, "the paper’s 27 attributes");
        assert_eq!(q.relations.len(), 6);
    }

    #[test]
    fn variable_order_valid_and_star_shaped() {
        let q = query();
        let vo = variable_order(&q);
        assert!(vo.validate(&q).is_ok());
        let pc = vo.node_of(q.catalog.lookup("postcode").unwrap()).unwrap();
        assert!(vo.parent[pc].is_none());
        assert_eq!(vo.children[pc].len(), 6, "six relation branches");
    }

    #[test]
    fn scale_one_sizes() {
        let h = generate(&HousingConfig {
            postcodes: 100,
            scale: 1,
            seed: 1,
        });
        assert_eq!(h.total_tuples(), 600); // 6 relations × 100 postcodes
    }

    #[test]
    fn scaling_law_is_cubic_in_listing_join() {
        // per postcode: s House × s Shop × s Restaurant × 1³ = s³
        for s in [1usize, 2, 3] {
            let h = generate(&HousingConfig {
                postcodes: 4,
                scale: s,
                seed: 2,
            });
            let per_pc_listing = s * s * s;
            // verify relation cardinalities follow the law
            assert_eq!(h.tuples[0].len(), 4 * s);
            assert_eq!(h.tuples[2].len(), 4);
            let _ = per_pc_listing;
        }
    }

    #[test]
    fn deterministic() {
        let cfg = HousingConfig {
            postcodes: 10,
            scale: 2,
            seed: 42,
        };
        assert_eq!(generate(&cfg).tuples, generate(&cfg).tuples);
    }

    #[test]
    fn string_postcode_variant_relabels_the_same_instance() {
        let cfg = HousingConfig {
            postcodes: 8,
            scale: 2,
            seed: 9,
        };
        let ints = generate(&cfg);
        let strs = generate_string_postcodes(&cfg);
        for (rel_i, rel_s) in ints.tuples.iter().zip(&strs.tuples) {
            assert_eq!(rel_i.len(), rel_s.len());
            for (ti, ts) in rel_i.iter().zip(rel_s) {
                let pc = ti.get(0).as_int().unwrap();
                let id = ts.get(0).as_sym().expect("string postcode is a symbol");
                assert_eq!(
                    strs.query.catalog.resolve_sym(id),
                    Some(format!("PC{pc:06}").as_str())
                );
                // Private attributes are identical (same RNG stream).
                assert_eq!(&ti.values()[1..], &ts.values()[1..]);
            }
        }
    }
}
