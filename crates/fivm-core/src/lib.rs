//! # fivm-core — the F-IVM data model
//!
//! This crate implements the data model of *“Incremental View Maintenance
//! with Triple Lock Factorization Benefits”* (Nikolic & Olteanu, SIGMOD
//! 2018), hereafter “the paper”:
//!
//! * [`Value`]s, [`Tuple`]s and [`Schema`]s — the **key space** of
//!   relations. Variable names are interned into dense [`VarId`]s by a
//!   [`Catalog`].
//! * [`Semiring`] / [`Ring`] — the algebra of the **payload space**
//!   (paper §2 and Appendix A). Concrete rings live in [`ring`]:
//!   scalars ([`i64`]/[`f64`]), product rings, the degree-*m* matrix ring
//!   for regression gradients ([`ring::cofactor`]), the relational data
//!   ring for query results as payloads ([`ring::relational`]), and the
//!   degree-indexed aggregate encoding used by the SQL-OPT baseline
//!   ([`ring::degree`]).
//! * [`Relation`] — a finitely-supported function from tuples over a
//!   schema to ring values, with the paper’s three operators: union `⊎`,
//!   natural join `⊗` and aggregation-by-marginalization `⊕X`
//!   ([`Relation::union`], [`Relation::join`], [`Relation::marginalize`]).
//! * [`Lifting`] functions `g_X : Dom(X) → D` mapping key values into the
//!   payload ring (paper §2).
//! * [`Delta`] — updates as relations with positive/negative payloads,
//!   including *factorizable* updates represented as products of factors
//!   with disjoint schemas (paper §5).
//!
//! Everything here is deliberately independent of query planning
//! (`fivm-query`) and execution (`fivm-engine`).

pub mod accum;
pub mod codec;
pub mod hash;
pub mod key;
pub mod lifting;
pub mod relation;
pub mod ring;
pub mod schema;
pub mod sync;
pub mod table;
pub mod tuple;
pub mod update;
pub mod value;

pub use accum::DeltaAccumulator;
pub use codec::{Codec, CodecError};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use key::{hash_then_cmp, ConcatProjKey, ProjKey, TupleKey};
pub use lifting::{Lifting, LiftingMap};
pub use relation::Relation;
pub use ring::{Ring, Semiring};
pub use schema::{Catalog, Schema, SymbolTable, VarId};
pub use table::TupleMap;
pub use tuple::Tuple;
pub use update::Delta;
pub use value::Value;
