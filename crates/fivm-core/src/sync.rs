//! Switchable synchronization layer for the concurrency core.
//!
//! Normal builds: zero-cost type aliases onto `std::sync` — nothing is
//! wrapped, nothing is monomorphized differently, production codegen
//! is byte-for-byte what `use std::sync::*` would produce.
//!
//! Under `RUSTFLAGS="--cfg fivm_model_check"` the same names resolve
//! to the instrumented primitives of `fivm-check`: every operation
//! becomes a scheduling point of the exhaustive interleaving explorer,
//! and atomics get C11-style store-list semantics so downgraded
//! memory orderings are *observable*, not just racy.
//!
//! Code using this module must spell `Ordering` as
//! `crate::sync::atomic::Ordering` (it is std's type in both builds)
//! and take `Mutex`/`Condvar`/`RwLock`/`OnceLock`/atomics from here
//! instead of `std::sync`.

#[cfg(not(fivm_model_check))]
pub use std::sync::{
    Condvar, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(not(fivm_model_check))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(not(fivm_model_check))]
pub mod thread {
    pub use std::thread::{spawn, Builder, JoinHandle};
}

#[cfg(fivm_model_check)]
pub use fivm_check::sync::{
    Condvar, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(fivm_model_check)]
pub mod atomic {
    pub use fivm_check::sync::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

#[cfg(fivm_model_check)]
pub mod thread {
    pub use fivm_check::sync::thread::{spawn, Builder, JoinHandle};
}
