//! Tuples — the keys of F-IVM relations.
//!
//! # Representation
//!
//! Single-tuple delta propagation (paper §4) costs a handful of hash
//! probes and ring operations per view-tree node, so the constant
//! factor of key construction *is* the engine's runtime. `Tuple`
//! therefore uses a small-size-optimized layout:
//!
//! * **Inline**: tuples of arity ≤ [`INLINE_CAP`] (= 3, covering every
//!   view key of the paper's benchmark queries) store their values
//!   directly in the struct — 48 bytes of 16-byte [`Value`]s (string
//!   values are interned symbols, so the whole inline tuple is ≤ 64
//!   bytes; statically asserted). Constructing, cloning and dropping
//!   them never touches the heap.
//! * **Spilled**: wider tuples store their values in a shared
//!   `Arc<[Value]>`; cloning is a reference-count bump.
//!
//! Every tuple also caches the 64-bit Fx hash of its value sequence at
//! construction time. Hashing a tuple into any hash map is a single
//! `write_u64`, re-probing never re-hashes the values, and
//! [`Tuple::concat`] extends the cached hash incrementally (Fx hashing
//! is a left fold over the values, so `hash(a ⧺ b)` resumes from
//! `hash(a)`).
//!
//! The two representations are indistinguishable through `Eq`, `Ord`,
//! `Hash` and every accessor: equality and ordering compare value
//! sequences, never representation. Property tests assert this.
//!
//! For allocation-free *probing* of maps keyed by `Tuple` with keys
//! that are projections or concatenations of existing tuples, see
//! [`crate::key`].

use crate::hash::FxHasher;
use crate::value::Value;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Maximum arity stored inline (no heap allocation).
pub const INLINE_CAP: usize = 3;

/// The inline representation rides on `Value` being 16 bytes (see
/// `value.rs`): 48 bytes of inline values + length + discriminant + the
/// cached hash must fit one cache-line-friendly 64-byte struct. A
/// future `Value` variant that re-inflates the union (e.g. a fat
/// pointer) would push this past 64 and fail here at compile time.
const _: () = assert!(std::mem::size_of::<Tuple>() <= 64);

/// Fx-hash a sequence of values, resuming from a previous hash state.
///
/// The empty sequence hashes to the initial state, so
/// `hash_values(hash_values(0, a), b) == hash_values(0, a ⧺ b)`.
#[inline]
pub(crate) fn hash_values<'a>(state: u64, vals: impl IntoIterator<Item = &'a Value>) -> u64 {
    let mut h = FxHasher::from_state(state);
    for v in vals {
        v.hash(&mut h);
    }
    h.finish()
}

#[derive(Clone)]
enum Repr {
    /// `len` live values in `vals[..len]`; the tail is padding
    /// (`Value::Int(0)`) so no `unsafe` is needed.
    Inline { len: u8, vals: [Value; INLINE_CAP] },
    /// Shared storage for arities above [`INLINE_CAP`].
    Spilled(Arc<[Value]>),
}

const PAD: Value = Value::Int(0);

/// An immutable tuple of [`Value`]s over some schema.
///
/// The schema itself (which variable each position belongs to) is carried
/// by the enclosing [`crate::Relation`] or view; a `Tuple` is just the
/// ordered values. The empty tuple `()` is the key of scalar (no group-by)
/// query results (paper §2). See the [module docs](self) for the
/// representation.
#[derive(Clone)]
pub struct Tuple {
    hash: u64,
    repr: Repr,
}

impl Tuple {
    fn from_inline(len: usize, vals: [Value; INLINE_CAP]) -> Self {
        debug_assert!(len <= INLINE_CAP);
        Tuple {
            hash: hash_values(0, &vals[..len]),
            repr: Repr::Inline {
                len: len as u8,
                vals,
            },
        }
    }

    /// The empty tuple `()`.
    pub fn unit() -> Self {
        Tuple::from_inline(0, [PAD, PAD, PAD])
    }

    /// Build a tuple from values.
    pub fn new(vals: Vec<Value>) -> Self {
        if vals.len() <= INLINE_CAP {
            let mut it = vals.into_iter();
            let mut inline = [PAD, PAD, PAD];
            let mut len = 0;
            for slot in &mut inline {
                match it.next() {
                    Some(v) => {
                        *slot = v;
                        len += 1;
                    }
                    None => break,
                }
            }
            Tuple::from_inline(len, inline)
        } else {
            let spilled: Arc<[Value]> = vals.into();
            Tuple {
                hash: hash_values(0, spilled.iter()),
                repr: Repr::Spilled(spilled),
            }
        }
    }

    /// Build a tuple forcing the heap (spilled) representation
    /// regardless of arity. Exists so tests can assert that the two
    /// representations are observably identical; production paths
    /// should use [`Tuple::new`].
    pub fn spilled(vals: Vec<Value>) -> Self {
        let spilled: Arc<[Value]> = vals.into();
        Tuple {
            hash: hash_values(0, spilled.iter()),
            repr: Repr::Spilled(spilled),
        }
    }

    /// True iff this tuple stores its values inline (no heap).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Single-value tuple.
    pub fn single(v: impl Into<Value>) -> Self {
        Tuple::from_inline(1, [v.into(), PAD, PAD])
    }

    /// Two-value tuple.
    pub fn pair(a: impl Into<Value>, b: impl Into<Value>) -> Self {
        Tuple::from_inline(2, [a.into(), b.into(), PAD])
    }

    /// The cached Fx hash of the value sequence.
    #[inline]
    pub fn cached_hash(&self) -> u64 {
        self.hash
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => usize::from(*len),
            Repr::Spilled(v) => v.len(),
        }
    }

    /// True iff this is the empty tuple.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.values()[i]
    }

    /// All values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        match &self.repr {
            Repr::Inline { len, vals } => &vals[..usize::from(*len)],
            Repr::Spilled(v) => v,
        }
    }

    /// Iterate over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values().iter()
    }

    /// Catalog-aware lexicographic order: like [`Ord`], but each value
    /// compares via [`Value::cmp_resolved`], so symbol columns sort by
    /// their resolved strings (dictionary order) instead of intern-id
    /// order. User-facing sorted readback routes through this; the hot
    /// path keeps the id-based [`Ord`].
    pub fn cmp_resolved(&self, other: &Tuple, catalog: &crate::Catalog) -> std::cmp::Ordering {
        for (a, b) in self.values().iter().zip(other.values()) {
            let ord = a.cmp_resolved(b, catalog);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        self.len().cmp(&other.len())
    }

    /// Lay out `len` values inline or spilled, hash not yet computed.
    #[inline]
    fn assemble(len: usize, mut vals: impl Iterator<Item = Value>) -> Repr {
        if len <= INLINE_CAP {
            let mut inline = [PAD, PAD, PAD];
            for slot in inline.iter_mut().take(len) {
                *slot = vals.next().expect("length lied");
            }
            Repr::Inline {
                len: len as u8,
                vals: inline,
            }
        } else {
            Repr::Spilled(vals.collect())
        }
    }

    /// Build a tuple from an iterator with a known exact length,
    /// staying inline when possible.
    #[inline]
    fn build(len: usize, vals: impl Iterator<Item = Value>) -> Tuple {
        let repr = Tuple::assemble(len, vals);
        let hash = match &repr {
            Repr::Inline { len, vals } => hash_values(0, &vals[..usize::from(*len)]),
            Repr::Spilled(v) => hash_values(0, v.iter()),
        };
        Tuple { hash, repr }
    }

    /// Project onto the given positions (π in the paper §2); positions may
    /// repeat or reorder. Allocation-free for output arity ≤
    /// [`INLINE_CAP`].
    pub fn project(&self, positions: &[usize]) -> Tuple {
        let vals = self.values();
        Tuple::build(positions.len(), positions.iter().map(|&p| vals[p].clone()))
    }

    /// Project the virtual concatenation `self ⧺ other` onto
    /// `positions` (indices `< self.len()` select from `self`, the rest
    /// from `other`) without materializing the concatenation. This is
    /// the factored-delta flatten step: a product of two factors lands
    /// directly in a store's key order. Allocation-free for output
    /// arity ≤ [`INLINE_CAP`], like [`Tuple::project`].
    pub fn concat_project(&self, other: &Tuple, positions: &[usize]) -> Tuple {
        let (lv, rv) = (self.values(), other.values());
        Tuple::build(
            positions.len(),
            positions.iter().map(|&p| {
                if p < lv.len() {
                    lv[p].clone()
                } else {
                    rv[p - lv.len()].clone()
                }
            }),
        )
    }

    /// Concatenate two tuples. The cached hash of `self` is extended
    /// with `other`'s values rather than recomputed from scratch.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        self.concat_projected_values(other.values().iter().cloned(), other.len())
    }

    /// Concatenate, taking only `positions` from `other`.
    pub fn concat_projected(&self, other: &Tuple, positions: &[usize]) -> Tuple {
        let ov = other.values();
        self.concat_projected_values(positions.iter().map(|&p| ov[p].clone()), positions.len())
    }

    #[inline]
    fn concat_projected_values(
        &self,
        extra: impl Iterator<Item = Value>,
        extra_len: usize,
    ) -> Tuple {
        let len = self.len() + extra_len;
        let repr = Tuple::assemble(len, self.values().iter().cloned().chain(extra));
        // Fx hashing folds left-to-right, so the prefix's cached hash
        // is the resume state for hashing just the appended suffix.
        let suffix = match &repr {
            Repr::Inline { len, vals } => &vals[self.len()..usize::from(*len)],
            Repr::Spilled(v) => &v[self.len()..],
        };
        Tuple {
            hash: hash_values(self.hash, suffix),
            repr,
        }
    }

    /// Approximate in-memory footprint in bytes (for memory accounting).
    /// Every [`Value`] is inline (symbols' string storage lives in the
    /// catalog, shared), so only spilled value storage adds heap bytes.
    pub fn approx_bytes(&self) -> usize {
        let heap: usize = match &self.repr {
            Repr::Inline { .. } => 0,
            Repr::Spilled(v) => v.len() * std::mem::size_of::<Value>(),
        };
        std::mem::size_of::<Tuple>() + heap
    }
}

impl PartialEq for Tuple {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // The cached hash rejects almost all non-equal keys in one
        // comparison; representation never matters.
        self.hash == other.hash && self.values() == other.values()
    }
}

impl Eq for Tuple {}

impl Hash for Tuple {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.values().cmp(other.values())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, 2.5]`. String values have no `From<&str>` conversion —
/// intern them through the catalog (`catalog.sym("x")`) and pass the
/// resulting [`Value`] explicitly.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_tuple() {
        let t = Tuple::unit();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_string(), "()");
        assert!(t.is_inline());
    }

    #[test]
    fn macro_and_access() {
        let t = Tuple::new(vec![Value::Int(1), Value::Double(2.5), Value::Sym(7)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0), &Value::Int(1));
        assert_eq!(t.get(1), &Value::Double(2.5));
        assert_eq!(t.get(2), &Value::Sym(7));
        assert_eq!(tuple![1, 2.5].get(0), &Value::Int(1));
    }

    #[test]
    fn inline_boundary() {
        assert!(tuple![1, 2, 3].is_inline());
        assert!(!tuple![1, 2, 3, 4].is_inline());
        assert_eq!(tuple![1, 2, 3, 4].len(), 4);
        assert_eq!(*tuple![1, 2, 3, 4].get(3), Value::Int(4));
    }

    #[test]
    fn project_reorders_and_repeats() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0]), tuple![30, 10]);
        assert_eq!(t.project(&[1, 1]), tuple![20, 20]);
        assert_eq!(t.project(&[]), Tuple::unit());
    }

    #[test]
    fn project_from_spilled() {
        let t = tuple![10, 20, 30, 40, 50];
        assert!(!t.is_inline());
        let p = t.project(&[4, 0]);
        assert!(p.is_inline());
        assert_eq!(p, tuple![50, 10]);
        let wide = t.project(&[0, 1, 2, 3]);
        assert!(!wide.is_inline());
        assert_eq!(wide, tuple![10, 20, 30, 40]);
    }

    #[test]
    fn concat() {
        let a = tuple![1, 2];
        let b = tuple![3];
        assert_eq!(a.concat(&b), tuple![1, 2, 3]);
        assert_eq!(b.concat(&a), tuple![3, 1, 2]);
        assert_eq!(a.concat(&Tuple::unit()), a);
    }

    #[test]
    fn concat_crossing_inline_boundary() {
        let a = tuple![1, 2];
        let b = tuple![3, 4, 5];
        let ab = a.concat(&b);
        assert!(!ab.is_inline());
        assert_eq!(ab, tuple![1, 2, 3, 4, 5]);
        assert_eq!(ab.cached_hash(), tuple![1, 2, 3, 4, 5].cached_hash());
    }

    #[test]
    fn concat_projected() {
        let a = tuple![1];
        let b = tuple![7, 8, 9];
        assert_eq!(a.concat_projected(&b, &[2, 0]), tuple![1, 9, 7]);
    }

    #[test]
    fn concat_project_agrees_with_eager_concat_then_project() {
        let a = tuple![1, 2];
        let b = tuple![7, 8, 9];
        for positions in [&[0usize, 2][..], &[4, 0], &[3, 1, 2], &[], &[1, 1, 4, 4, 0]] {
            let eager = a.concat(&b).project(positions);
            let fused = a.concat_project(&b, positions);
            assert_eq!(fused, eager, "{positions:?}");
            assert_eq!(fused.cached_hash(), eager.cached_hash(), "{positions:?}");
        }
        // unit left operand: everything selects from the right
        assert_eq!(Tuple::unit().concat_project(&b, &[2, 0]), tuple![9, 7]);
    }

    #[test]
    fn equality_and_hash_in_map() {
        use crate::hash::FxHashMap;
        let mut m: FxHashMap<Tuple, i64> = FxHashMap::default();
        m.insert(tuple![1, 2], 5);
        assert_eq!(m.get(&tuple![1, 2]), Some(&5));
        assert_eq!(m.get(&tuple![2, 1]), None);
    }

    #[test]
    fn spilled_indistinguishable_from_inline() {
        let inline = tuple![1, 2];
        let spilled = Tuple::spilled(vec![Value::Int(1), Value::Int(2)]);
        assert!(inline.is_inline());
        assert!(!spilled.is_inline());
        assert_eq!(inline, spilled);
        assert_eq!(inline.cached_hash(), spilled.cached_hash());
        assert_eq!(inline.cmp(&spilled), std::cmp::Ordering::Equal);
        use crate::hash::FxHashMap;
        let mut m: FxHashMap<Tuple, i64> = FxHashMap::default();
        m.insert(spilled, 9);
        assert_eq!(m.get(&inline), Some(&9));
    }

    #[test]
    fn cached_hash_matches_fresh_construction() {
        let t = tuple![5, 6, 7];
        let projected = t.project(&[1, 2]);
        assert_eq!(projected.cached_hash(), tuple![6, 7].cached_hash());
        let cat = t.concat(&tuple![8]);
        assert_eq!(cat.cached_hash(), tuple![5, 6, 7, 8].cached_hash());
    }
}
