//! Tuples — the keys of F-IVM relations.

use crate::value::Value;
use std::fmt;

/// An immutable tuple of [`Value`]s over some schema.
///
/// The schema itself (which variable each position belongs to) is carried
/// by the enclosing [`crate::Relation`] or view; a `Tuple` is just the
/// ordered values. The empty tuple `()` is the key of scalar (no group-by)
/// query results (paper §2).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// The empty tuple `()`.
    pub fn unit() -> Self {
        Tuple(Box::from([]))
    }

    /// Build a tuple from values.
    pub fn new(vals: Vec<Value>) -> Self {
        Tuple(vals.into_boxed_slice())
    }

    /// Single-value tuple.
    pub fn single(v: impl Into<Value>) -> Self {
        Tuple(Box::from([v.into()]))
    }

    /// Two-value tuple.
    pub fn pair(a: impl Into<Value>, b: impl Into<Value>) -> Self {
        Tuple(Box::from([a.into(), b.into()]))
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff this is the empty tuple.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Iterate over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }

    /// Project onto the given positions (π in the paper §2); positions may
    /// repeat or reorder.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p].clone()).collect())
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v.into_boxed_slice())
    }

    /// Concatenate, taking only `positions` from `other`.
    pub fn concat_projected(&self, other: &Tuple, positions: &[usize]) -> Tuple {
        let mut v = Vec::with_capacity(self.len() + positions.len());
        v.extend_from_slice(&self.0);
        for &p in positions {
            v.push(other.0[p].clone());
        }
        Tuple(v.into_boxed_slice())
    }

    /// Approximate in-memory footprint in bytes (for memory accounting).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Tuple>() + self.0.iter().map(Value::approx_bytes).sum::<usize>()
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, 2.5, "x"]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_tuple() {
        let t = Tuple::unit();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_string(), "()");
    }

    #[test]
    fn macro_and_access() {
        let t = tuple![1, 2.5, "x"];
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0), &Value::Int(1));
        assert_eq!(t.get(1), &Value::Double(2.5));
        assert_eq!(t.get(2), &Value::str("x"));
    }

    #[test]
    fn project_reorders_and_repeats() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0]), tuple![30, 10]);
        assert_eq!(t.project(&[1, 1]), tuple![20, 20]);
        assert_eq!(t.project(&[]), Tuple::unit());
    }

    #[test]
    fn concat() {
        let a = tuple![1, 2];
        let b = tuple![3];
        assert_eq!(a.concat(&b), tuple![1, 2, 3]);
        assert_eq!(b.concat(&a), tuple![3, 1, 2]);
        assert_eq!(a.concat(&Tuple::unit()), a);
    }

    #[test]
    fn concat_projected() {
        let a = tuple![1];
        let b = tuple![7, 8, 9];
        assert_eq!(a.concat_projected(&b, &[2, 0]), tuple![1, 9, 7]);
    }

    #[test]
    fn equality_and_hash_in_map() {
        use crate::hash::FxHashMap;
        let mut m: FxHashMap<Tuple, i64> = FxHashMap::default();
        m.insert(tuple![1, 2], 5);
        assert_eq!(m.get(&tuple![1, 2]), Some(&5));
        assert_eq!(m.get(&tuple![2, 1]), None);
    }
}
