//! Compact self-describing binary codec for the durability layer.
//!
//! Every type that crosses the process boundary — logged deltas,
//! checkpointed view relations, ring payloads — implements [`Codec`]:
//! `encode` appends a self-describing byte representation to a buffer,
//! `decode` consumes it back off a byte cursor. The format is designed
//! for the write-ahead log in `fivm-durability` (see `docs/wal-format.md`
//! at the repo root), so two properties are non-negotiable:
//!
//! 1. **Round-trip fidelity**: `decode(encode(x)) == x` under the type's
//!    own equality. For [`Value::Double`] the raw IEEE-754 bits are
//!    stored (`f64::to_bits`), so NaN payloads survive bit-exactly and
//!    `-0.0` keeps its sign bit on disk even though [`Value`]'s equality
//!    normalizes `-0.0 == 0.0`; decoding never invents a different bit
//!    pattern than was written.
//! 2. **Corruption safety**: `decode` on arbitrary bytes must return
//!    [`CodecError`] — never panic, never abort. In particular, decoded
//!    lengths are validated against the number of bytes actually
//!    remaining *before* any allocation, so a corrupted length field
//!    cannot trigger a huge `Vec::with_capacity`, and invariants that
//!    constructors assert (duplicate schema variables, factored-delta
//!    schema overlap, tuple/schema arity mismatch) are re-checked and
//!    reported as errors instead of reaching a panicking constructor.
//!
//! All integers are little-endian. Lengths and counts are `u32`. There
//! is no versioning here — the log segment header owns the format
//! version for a whole file.

use crate::hash::FxHashMap;
use crate::relation::Relation;
use crate::ring::cofactor::{Cofactor, DenseCofactor};
use crate::ring::degree::DegreeRing;
use crate::ring::relational::RelPayload;
use crate::ring::Semiring;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::update::Delta;
use crate::value::Value;
use std::fmt;

/// Decoding failure. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete (short read).
    Eof,
    /// An enum tag byte had no defined meaning.
    BadTag { what: &'static str, tag: u8 },
    /// A length/count field exceeds what the remaining input could hold.
    BadLength { what: &'static str, len: u64 },
    /// Decoded bytes violate a structural invariant of the target type.
    Invalid { what: &'static str },
    /// A string field was not valid UTF-8.
    Utf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::BadTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            CodecError::BadLength { what, len } => {
                write!(f, "length {len} for {what} exceeds remaining input")
            }
            CodecError::Invalid { what } => write!(f, "decoded {what} violates invariants"),
            CodecError::Utf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Types with a self-describing binary encoding.
pub trait Codec: Sized {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Consume the encoding of one value from the front of `input`.
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError>;
}

// ---------------------------------------------------------------------
// Cursor primitives
// ---------------------------------------------------------------------

/// Read `n` raw bytes off the cursor.
pub fn take_bytes<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if input.len() < n {
        return Err(CodecError::Eof);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

/// Read one byte.
pub fn take_u8(input: &mut &[u8]) -> Result<u8, CodecError> {
    Ok(take_bytes(input, 1)?[0])
}

/// Read a little-endian `u32`.
pub fn take_u32(input: &mut &[u8]) -> Result<u32, CodecError> {
    let b = take_bytes(input, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Read a little-endian `u64`.
pub fn take_u64(input: &mut &[u8]) -> Result<u64, CodecError> {
    let b = take_bytes(input, 8)?;
    Ok(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Read a `u32` count and sanity-check it: the remaining input must hold
/// at least `count * min_elem_bytes` bytes, so corrupt counts fail here
/// instead of driving a giant allocation downstream.
pub fn take_count(
    input: &mut &[u8],
    what: &'static str,
    min_elem_bytes: usize,
) -> Result<usize, CodecError> {
    let n = take_u32(input)? as usize;
    if n.checked_mul(min_elem_bytes)
        .is_none_or(|need| need > input.len())
    {
        return Err(CodecError::BadLength {
            what,
            len: n as u64,
        });
    }
    Ok(n)
}

/// Append a `u32` length prefix, erroring at encode time would be too
/// late — in-memory collections are bounded well below `u32::MAX` in
/// this engine, so a plain cast with a debug assert suffices.
#[inline]
pub fn put_count(out: &mut Vec<u8>, n: usize) {
    debug_assert!(n <= u32::MAX as usize, "collection too large for codec");
    out.extend_from_slice(&(n as u32).to_le_bytes());
}

// ---------------------------------------------------------------------
// Scalars
// ---------------------------------------------------------------------

impl Codec for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(take_u64(input)? as i64)
    }
}

impl Codec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        take_u64(input)
    }
}

impl Codec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        take_u32(input)
    }
}

/// Raw IEEE-754 bits: NaN payloads and signed zeros round-trip exactly.
impl Codec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(f64::from_bits(take_u64(input)?))
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_count(out, self.len());
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let n = take_count(input, "string", 1)?;
        let bytes = take_bytes(input, n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Utf8)
    }
}

// ---------------------------------------------------------------------
// Key space: Value, Tuple, Schema
// ---------------------------------------------------------------------

const VAL_INT: u8 = 0;
const VAL_DOUBLE: u8 = 1;
const VAL_SYM: u8 = 2;

impl Codec for Value {
    // One `extend_from_slice` per value, not one per field: this runs
    // once per tuple value per logged update, and the WAL's logging
    // overhead budget is counted in nanoseconds.
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                let mut b = [VAL_INT; 9];
                b[1..].copy_from_slice(&i.to_le_bytes());
                out.extend_from_slice(&b);
            }
            Value::Double(d) => {
                let mut b = [VAL_DOUBLE; 9];
                b[1..].copy_from_slice(&d.to_bits().to_le_bytes());
                out.extend_from_slice(&b);
            }
            Value::Sym(s) => {
                let mut b = [VAL_SYM; 5];
                b[1..].copy_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&b);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take_u8(input)? {
            VAL_INT => Ok(Value::Int(i64::decode(input)?)),
            VAL_DOUBLE => Ok(Value::Double(f64::decode(input)?)),
            VAL_SYM => Ok(Value::Sym(u32::decode(input)?)),
            tag => Err(CodecError::BadTag { what: "Value", tag }),
        }
    }
}

/// `[arity: u32][values…]`. The inline/spilled split is an in-memory
/// representation detail — arity alone determines it on decode, so a
/// spilled 2-tuple written by tests decodes to the (canonical) inline
/// form, which is equal under `Tuple`'s value-based equality.
impl Codec for Tuple {
    fn encode(&self, out: &mut Vec<u8>) {
        put_count(out, self.len());
        for v in self.values() {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        // Smallest Value encoding is 5 bytes (tag + u32 sym id).
        let n = take_count(input, "tuple arity", 5)?;
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(Value::decode(input)?);
        }
        Ok(Tuple::new(vals))
    }
}

impl Codec for Schema {
    fn encode(&self, out: &mut Vec<u8>) {
        put_count(out, self.len());
        for v in self.vars() {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let n = take_count(input, "schema arity", 4)?;
        let mut vars = Vec::with_capacity(n);
        for _ in 0..n {
            vars.push(u32::decode(input)?);
        }
        // Schema::new panics on duplicate variables; re-check first.
        let mut seen = vars.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != vars.len() {
            return Err(CodecError::Invalid {
                what: "schema (duplicate variables)",
            });
        }
        Ok(Schema::new(vars))
    }
}

// ---------------------------------------------------------------------
// Relations and deltas
// ---------------------------------------------------------------------

/// `[schema][n: u32][(tuple, payload)…]`. Decode re-validates that every
/// tuple matches the schema arity.
impl<R: Semiring + Codec> Codec for Relation<R> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.schema().encode(out);
        put_count(out, self.len());
        for (t, p) in self.iter() {
            t.encode(out);
            p.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let schema = Schema::decode(input)?;
        // Minimum entry: empty tuple (4 bytes) + 1-byte payload floor.
        let n = take_count(input, "relation size", 5)?;
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            let t = Tuple::decode(input)?;
            if t.len() != schema.len() {
                return Err(CodecError::Invalid {
                    what: "relation (tuple/schema arity mismatch)",
                });
            }
            let p = R::decode(input)?;
            pairs.push((t, p));
        }
        Ok(Relation::from_pairs(schema, pairs))
    }
}

const DELTA_FLAT: u8 = 0;
const DELTA_FACTORED: u8 = 1;

impl<R: Semiring + Codec> Codec for Delta<R> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Delta::Flat(r) => {
                out.push(DELTA_FLAT);
                r.encode(out);
            }
            Delta::Factored(fs) => {
                out.push(DELTA_FACTORED);
                put_count(out, fs.len());
                for f in fs {
                    f.encode(out);
                }
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take_u8(input)? {
            DELTA_FLAT => Ok(Delta::Flat(Relation::decode(input)?)),
            DELTA_FACTORED => {
                // Minimum factor: empty schema (4) + zero count (4).
                let n = take_count(input, "factor count", 8)?;
                if n == 0 {
                    return Err(CodecError::Invalid {
                        what: "factored delta (no factors)",
                    });
                }
                let mut fs: Vec<Relation<R>> = Vec::with_capacity(n);
                for _ in 0..n {
                    fs.push(Relation::decode(input)?);
                }
                // Delta::factored asserts disjointness; re-check here so
                // corrupt bytes surface as an error, not a panic.
                for i in 0..fs.len() {
                    for j in (i + 1)..fs.len() {
                        if !fs[i].schema().disjoint(fs[j].schema()) {
                            return Err(CodecError::Invalid {
                                what: "factored delta (overlapping factor schemas)",
                            });
                        }
                    }
                }
                Ok(Delta::Factored(fs))
            }
            tag => Err(CodecError::BadTag { what: "Delta", tag }),
        }
    }
}

// ---------------------------------------------------------------------
// Ring payloads used by the bench suites
// ---------------------------------------------------------------------

impl Codec for Cofactor {
    fn encode(&self, out: &mut Vec<u8>) {
        self.count.encode(out);
        put_count(out, self.sums.len());
        for (i, v) in &self.sums {
            i.encode(out);
            v.encode(out);
        }
        put_count(out, self.prods.len());
        for (k, v) in &self.prods {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let count = i64::decode(input)?;
        let ns = take_count(input, "cofactor sums", 12)?;
        let mut sums = Vec::with_capacity(ns);
        for _ in 0..ns {
            sums.push((u32::decode(input)?, f64::decode(input)?));
        }
        let np = take_count(input, "cofactor prods", 16)?;
        let mut prods = Vec::with_capacity(np);
        for _ in 0..np {
            prods.push((u64::decode(input)?, f64::decode(input)?));
        }
        Ok(Cofactor { count, sums, prods })
    }
}

impl Codec for DenseCofactor {
    fn encode(&self, out: &mut Vec<u8>) {
        self.m.encode(out);
        self.count.encode(out);
        put_count(out, self.sums.len());
        for v in self.sums.iter() {
            v.encode(out);
        }
        put_count(out, self.prods.len());
        for v in self.prods.iter() {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let m = u32::decode(input)?;
        let count = i64::decode(input)?;
        let ns = take_count(input, "dense-cofactor sums", 8)?;
        let mut sums = Vec::with_capacity(ns);
        for _ in 0..ns {
            sums.push(f64::decode(input)?);
        }
        let np = take_count(input, "dense-cofactor prods", 8)?;
        let mut prods = Vec::with_capacity(np);
        for _ in 0..np {
            prods.push(f64::decode(input)?);
        }
        Ok(DenseCofactor {
            m,
            count,
            sums: sums.into_boxed_slice(),
            prods: prods.into_boxed_slice(),
        })
    }
}

impl Codec for RelPayload {
    fn encode(&self, out: &mut Vec<u8>) {
        self.schema.encode(out);
        put_count(out, self.data.len());
        for (t, c) in &self.data {
            t.encode(out);
            c.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let schema = Schema::decode(input)?;
        let n = take_count(input, "relational payload size", 12)?;
        let mut data = FxHashMap::default();
        data.reserve(n);
        for _ in 0..n {
            let t = Tuple::decode(input)?;
            if t.len() != schema.len() {
                return Err(CodecError::Invalid {
                    what: "relational payload (tuple/schema arity mismatch)",
                });
            }
            let c = i64::decode(input)?;
            data.insert(t, c);
        }
        Ok(RelPayload { schema, data })
    }
}

impl Codec for DegreeRing {
    fn encode(&self, out: &mut Vec<u8>) {
        put_count(out, self.aggs.len());
        for ((a, b), v) in &self.aggs {
            a.encode(out);
            b.encode(out);
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let n = take_count(input, "degree-ring size", 16)?;
        let mut aggs = FxHashMap::default();
        aggs.reserve(n);
        for _ in 0..n {
            let a = u32::decode(input)?;
            let b = u32::decode(input)?;
            let v = f64::decode(input)?;
            aggs.insert((a, b), v);
        }
        Ok(DegreeRing { aggs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(x: &T) {
        let mut buf = Vec::new();
        x.encode(&mut buf);
        let mut cursor = buf.as_slice();
        let back = T::decode(&mut cursor).expect("decode");
        assert_eq!(&back, x);
        assert!(cursor.is_empty(), "decode consumed exactly the encoding");
    }

    #[test]
    fn value_round_trips() {
        round_trip(&Value::Int(-42));
        round_trip(&Value::Int(i64::MIN));
        round_trip(&Value::Double(3.25));
        round_trip(&Value::Sym(7));
    }

    #[test]
    fn double_bits_survive() {
        // NaN payload preserved bit-exactly.
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut buf = Vec::new();
        Value::Double(weird).encode(&mut buf);
        let back = Value::decode(&mut buf.as_slice()).unwrap();
        match back {
            Value::Double(d) => assert_eq!(d.to_bits(), weird.to_bits()),
            other => panic!("wrong variant {other:?}"),
        }
        // -0.0 keeps its sign bit on disk even though Value eq folds it.
        let mut buf = Vec::new();
        Value::Double(-0.0).encode(&mut buf);
        let back = Value::decode(&mut buf.as_slice()).unwrap();
        match back {
            Value::Double(d) => assert!(d.is_sign_negative()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn tuples_inline_and_spilled() {
        round_trip(&Tuple::unit());
        round_trip(&tuple![1, 2, 3]);
        round_trip(&Tuple::new(vec![
            Value::Int(1),
            Value::Sym(2),
            Value::Double(0.5),
            Value::Int(4),
            Value::Int(5),
        ]));
        // Spilled low-arity tuple decodes to the equal inline form.
        let spilled = Tuple::spilled(vec![Value::Int(9), Value::Int(8)]);
        let mut buf = Vec::new();
        spilled.encode(&mut buf);
        let back = Tuple::decode(&mut buf.as_slice()).unwrap();
        assert_eq!(back, spilled);
        assert!(back.is_inline());
    }

    #[test]
    fn relation_and_delta_round_trip() {
        let r = Relation::from_pairs(
            Schema::new(vec![0, 1]),
            [(tuple![1, 2], 3i64), (tuple![4, 5], -1i64)],
        );
        round_trip(&r);
        let mut buf = Vec::new();
        let d = Delta::Flat(r.clone());
        d.encode(&mut buf);
        match Delta::<i64>::decode(&mut buf.as_slice()).unwrap() {
            Delta::Flat(back) => assert_eq!(back, r),
            other => panic!("wrong variant {other:?}"),
        }

        let f = Delta::factored(vec![
            Relation::from_pairs(Schema::new(vec![0]), [(tuple![1], 2i64)]),
            Relation::from_pairs(Schema::new(vec![1]), [(tuple![5], 3i64)]),
        ]);
        let mut buf = Vec::new();
        f.encode(&mut buf);
        match Delta::<i64>::decode(&mut buf.as_slice()).unwrap() {
            Delta::Factored(fs) => assert_eq!(fs.len(), 2),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        // Truncated value.
        assert!(Value::decode(&mut &[VAL_INT, 1, 2][..]).is_err());
        // Bad tag.
        assert!(Value::decode(&mut &[9u8, 0, 0, 0, 0][..]).is_err());
        // Insane tuple arity (length guard, no allocation blow-up).
        let mut buf = Vec::new();
        put_count(&mut buf, 0x00ff_ffff);
        assert!(matches!(
            Tuple::decode(&mut buf.as_slice()),
            Err(CodecError::BadLength { .. })
        ));
        // Duplicate schema vars.
        let mut buf = Vec::new();
        Schema::new(vec![0, 1]).encode(&mut buf);
        // Patch second var to duplicate the first.
        let n = buf.len();
        buf.copy_within(4..8, n - 4);
        assert!(matches!(
            Schema::decode(&mut buf.as_slice()),
            Err(CodecError::Invalid { .. })
        ));
        // Overlapping factored schemas.
        let a = Relation::from_pairs(Schema::new(vec![0]), [(tuple![1], 1i64)]);
        let mut buf = vec![DELTA_FACTORED];
        put_count(&mut buf, 2);
        a.encode(&mut buf);
        a.encode(&mut buf);
        assert!(matches!(
            Delta::<i64>::decode(&mut buf.as_slice()),
            Err(CodecError::Invalid { .. })
        ));
    }
}
