//! Relations over rings: keys → payloads with `⊎`, `⊗`, `⊕X` (paper §2).
//!
//! A [`Relation`] is a finitely-supported function from tuples over a
//! [`Schema`] to values in a [`Semiring`]. Keys whose payload becomes the
//! ring zero are erased, which is what makes inserts and deletes uniform:
//! a delete is an insert with a negated payload.
//!
//! The operators here are the *reference semantics* used by tests,
//! baselines and payload computation; the incremental engine
//! (`fivm-engine`) evaluates the same algebra with materialized views and
//! secondary indexes.

use crate::hash::FxHashMap;
use crate::key::TupleKey;
use crate::lifting::Lifting;
use crate::ring::{Ring, Semiring};
use crate::schema::{Schema, VarId};
use crate::table::TupleMap;
use crate::tuple::Tuple;

/// A relation over a ring: a map from keys (tuples over `schema`) to
/// non-zero payloads.
#[derive(Clone, Debug)]
pub struct Relation<R> {
    schema: Schema,
    data: TupleMap<R>,
}

impl<R: Semiring> Relation<R> {
    /// Empty relation over `schema`.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            data: TupleMap::new(),
        }
    }

    /// Relation holding `{() → 1}` — the join identity.
    pub fn unit() -> Self {
        let mut r = Relation::new(Schema::empty());
        r.insert(Tuple::unit(), R::one());
        r
    }

    /// Build from `(key, payload)` pairs (payloads for equal keys sum).
    pub fn from_pairs(schema: Schema, pairs: impl IntoIterator<Item = (Tuple, R)>) -> Self {
        let mut r = Relation::new(schema);
        for (t, p) in pairs {
            r.insert(t, p);
        }
        r
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of keys with non-zero payload (the paper’s `|R|`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the relation is the zero map.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The payload of `t`, if non-zero.
    pub fn get(&self, t: &Tuple) -> Option<&R> {
        self.data.get(t)
    }

    /// The payload under a (possibly borrowed) probe key — e.g. a
    /// [`crate::ProjKey`] projecting a tuple the caller already holds —
    /// without materializing the key.
    pub fn get_by<K: TupleKey + ?Sized>(&self, key: &K) -> Option<&R> {
        self.data.get(key)
    }

    /// The payload of `t`, or the ring zero.
    pub fn payload(&self, t: &Tuple) -> R {
        self.data.get(t).cloned().unwrap_or_else(R::zero)
    }

    /// Membership test `t ∈ R` (non-zero payload).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.data.contains_key(t)
    }

    /// Add `payload` to the key `t`, erasing it if the sum is zero.
    pub fn insert(&mut self, t: Tuple, payload: R) {
        debug_assert_eq!(t.len(), self.schema.len(), "tuple arity != schema arity");
        self.insert_by(&t, payload);
    }

    /// [`Relation::insert`] under a borrowed probe key; the key is
    /// materialized only if it is new to the relation.
    pub fn insert_by<K: TupleKey + ?Sized>(&mut self, key: &K, payload: R) {
        if payload.is_zero() {
            return;
        }
        let (inserted, slot) = self.data.upsert(key, R::zero);
        slot.add_assign(&payload);
        if !inserted && slot.is_zero() {
            self.data.remove(key);
        }
    }

    /// Iterate over `(key, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &R)> {
        self.data.iter()
    }

    /// Deterministically ordered contents (tests, display). Symbol keys
    /// order by intern id — for user-facing dictionary order use
    /// [`Relation::sorted_resolved`].
    pub fn sorted(&self) -> Vec<(Tuple, R)> {
        let mut v: Vec<_> = self
            .data
            .iter()
            .map(|(t, p)| (t.clone(), p.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Contents in catalog-resolved order: symbol keys sort by their
    /// interned strings (lexicographically, via
    /// [`Tuple::cmp_resolved`]), not by intern id — the order a user
    /// reading the view expects. Intern ids are assigned in
    /// first-appearance order, so [`Relation::sorted`] over string keys
    /// reflects insertion history, which is meaningless to a reader.
    pub fn sorted_resolved(&self, catalog: &crate::Catalog) -> Vec<(Tuple, R)> {
        let mut v: Vec<_> = self
            .data
            .iter()
            .map(|(t, p)| (t.clone(), p.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp_resolved(&b.0, catalog));
        v
    }

    /// Union `self ⊎ other`: payloads of equal keys sum (paper §2).
    pub fn union(&self, other: &Relation<R>) -> Relation<R> {
        assert_eq!(self.schema, other.schema, "union requires equal schemas");
        let mut out = self.clone();
        out.union_in_place(other);
        out
    }

    /// In-place union (the view-update step `V := V ⊎ δV`).
    pub fn union_in_place(&mut self, other: &Relation<R>) {
        assert_eq!(self.schema, other.schema, "union requires equal schemas");
        for (t, p) in other.data.iter() {
            self.insert(t.clone(), p.clone());
        }
    }

    /// Natural join `self ⊗ other`: keys join on common variables,
    /// payloads multiply (paper §2). Output schema is `self.schema`
    /// followed by the remaining variables of `other`.
    pub fn join(&self, other: &Relation<R>) -> Relation<R> {
        let common = self.schema.intersect(&other.schema);
        let left_common = self.schema.positions_of(common.vars()).unwrap();
        let right_common = other.schema.positions_of(common.vars()).unwrap();
        let right_rest_vars = other.schema.minus(&common);
        let right_rest = other.schema.positions_of(right_rest_vars.vars()).unwrap();
        let out_schema = self.schema.union(&other.schema);

        // Probe the smaller side … but payload multiplication is ordered
        // (non-commutative rings), so always produce left*right.
        let mut index: FxHashMap<Tuple, Vec<(&Tuple, &R)>> = FxHashMap::default();
        for (t, p) in other.data.iter() {
            index
                .entry(t.project(&right_common))
                .or_default()
                .push((t, p));
        }
        let mut out = Relation::new(out_schema);
        for (lt, lp) in self.data.iter() {
            if let Some(matches) = index.get(&lt.project(&left_common)) {
                for (rt, rp) in matches {
                    out.insert(lt.concat_projected(rt, &right_rest), lp.mul(rp));
                }
            }
        }
        out
    }

    /// Aggregation `⊕X`: marginalizes variable `x` out of the schema,
    /// summing `payload * g_X(x-value)` per remaining key (paper §2).
    pub fn marginalize(&self, x: VarId, lifting: &Lifting<R>) -> Relation<R> {
        let pos = self
            .schema
            .position(x)
            .expect("marginalized variable not in schema");
        let rest_vars = self.schema.without(x);
        let rest_pos = self.schema.positions_of(rest_vars.vars()).unwrap();
        let mut out = Relation::new(rest_vars);
        for (t, p) in self.data.iter() {
            let lifted = if lifting.is_one() {
                p.clone()
            } else {
                p.mul(&lifting.lift(t.get(pos)))
            };
            out.insert(t.project(&rest_pos), lifted);
        }
        out
    }

    /// Marginalize several variables at once (the composed-chain views of
    /// §3); liftings are applied in the order given.
    pub fn marginalize_many(&self, vars: &[(VarId, Lifting<R>)]) -> Relation<R> {
        let positions: Vec<usize> = vars
            .iter()
            .map(|(v, _)| self.schema.position(*v).expect("variable not in schema"))
            .collect();
        let mut rest_vars = self.schema.clone();
        for (v, _) in vars {
            rest_vars = rest_vars.without(*v);
        }
        let rest_pos = self.schema.positions_of(rest_vars.vars()).unwrap();
        let mut out = Relation::new(rest_vars);
        for (t, p) in self.data.iter() {
            let mut lifted = p.clone();
            for ((_, l), &pos) in vars.iter().zip(&positions) {
                if !l.is_one() {
                    lifted = lifted.mul(&l.lift(t.get(pos)));
                }
            }
            out.insert(t.project(&rest_pos), lifted);
        }
        out
    }

    /// Reorder columns to `target` (a permutation of this schema).
    pub fn reorder(&self, target: &Schema) -> Relation<R> {
        if *target == self.schema {
            return self.clone();
        }
        let positions = self
            .schema
            .positions_of(target.vars())
            .expect("target schema must be a permutation of the relation schema");
        assert_eq!(target.len(), self.schema.len(), "reorder must not project");
        let mut out = Relation::new(target.clone());
        for (t, p) in self.data.iter() {
            out.insert(t.project(&positions), p.clone());
        }
        out
    }

    /// Map payloads through `f`, dropping zeros.
    pub fn map_payloads<S: Semiring>(&self, f: impl Fn(&Tuple, &R) -> S) -> Relation<S> {
        let mut out = Relation::new(self.schema.clone());
        for (t, p) in self.data.iter() {
            out.insert(t.clone(), f(t, p));
        }
        out
    }

    /// Approximate resident bytes (keys + payloads + per-entry overhead).
    pub fn approx_bytes(&self) -> usize {
        self.data
            .iter()
            .map(|(t, p)| t.approx_bytes() + std::mem::size_of::<R>() + p.heap_bytes() + 16)
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

impl<R: Ring> Relation<R> {
    /// The relation with all payloads negated (encodes deletion of the
    /// whole relation).
    pub fn neg(&self) -> Relation<R> {
        Relation {
            schema: self.schema.clone(),
            data: self
                .data
                .iter()
                .map(|(t, p)| (t.clone(), p.neg()))
                .collect(),
        }
    }
}

impl<R: Semiring> PartialEq for Relation<R> {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.data.len() == other.data.len()
            && self.data.iter().all(|(t, p)| other.data.get(t) == Some(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifting::int_identity;
    use crate::tuple;
    use crate::value::Value;

    fn sch(vars: &[u32]) -> Schema {
        Schema::new(vars.to_vec())
    }

    // Variables from the paper’s Example 2.1: A=0, B=1, C=2.
    fn example_2_1() -> (Relation<i64>, Relation<i64>, Relation<i64>) {
        let r = Relation::from_pairs(
            sch(&[0, 1]),
            [(tuple![1, 1], 10i64), (tuple![2, 1], 20)], // r1=10, r2=20
        );
        let s = Relation::from_pairs(
            sch(&[0, 1]),
            [(tuple![2, 1], 3i64), (tuple![3, 2], 4)], // s1=3, s2=4
        );
        let t = Relation::from_pairs(
            sch(&[1, 2]),
            [(tuple![1, 1], 5i64), (tuple![2, 2], 7)], // t1=5, t2=7
        );
        (r, s, t)
    }

    #[test]
    fn insert_sums_and_erases() {
        let mut r: Relation<i64> = Relation::new(sch(&[0]));
        r.insert(tuple![1], 2);
        r.insert(tuple![1], 3);
        assert_eq!(r.payload(&tuple![1]), 5);
        r.insert(tuple![1], -5);
        assert!(!r.contains(&tuple![1]));
        assert!(r.is_empty());
    }

    /// Paper Example 2.1: `R ⊎ S`.
    #[test]
    fn union_example() {
        let (r, s, _) = example_2_1();
        let u = r.union(&s);
        assert_eq!(u.payload(&tuple![1, 1]), 10);
        assert_eq!(u.payload(&tuple![2, 1]), 23); // r2 + s1
        assert_eq!(u.payload(&tuple![3, 2]), 4);
        assert_eq!(u.len(), 3);
    }

    /// Paper Example 2.1: `(R ⊎ S) ⊗ T`.
    #[test]
    fn join_example() {
        let (r, s, t) = example_2_1();
        let j = r.union(&s).join(&t);
        assert_eq!(*j.schema(), sch(&[0, 1, 2]));
        assert_eq!(j.payload(&tuple![1, 1, 1]), 50); // r1*t1
        assert_eq!(j.payload(&tuple![2, 1, 1]), 115); // (r2+s1)*t1
        assert_eq!(j.payload(&tuple![3, 2, 2]), 28); // s2*t2
        assert_eq!(j.len(), 3);
    }

    /// Paper Example 2.1: `⊕A (R ⊎ S) ⊗ T` with `g_A(a) = a`.
    #[test]
    fn marginalize_example() {
        let (r, s, t) = example_2_1();
        let j = r.union(&s).join(&t);
        let m = j.marginalize(0, &int_identity());
        assert_eq!(*m.schema(), sch(&[1, 2]));
        // b1,c1 → r1*t1*g(1) + (r2+s1)*t1*g(2) = 50*1 + 115*2 = 280
        assert_eq!(m.payload(&tuple![1, 1]), 280);
        // b2,c2 → s2*t2*g(3) = 28*3 = 84
        assert_eq!(m.payload(&tuple![2, 2]), 84);
    }

    #[test]
    fn join_on_disjoint_schemas_is_cartesian() {
        let a = Relation::from_pairs(sch(&[0]), [(tuple![1], 2i64), (tuple![2], 3)]);
        let b = Relation::from_pairs(sch(&[1]), [(tuple![7], 5i64)]);
        let ab = a.join(&b);
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.payload(&tuple![1, 7]), 10);
        assert_eq!(ab.payload(&tuple![2, 7]), 15);
    }

    #[test]
    fn join_with_unit_is_identity() {
        let (r, _, _) = example_2_1();
        assert_eq!(r.join(&Relation::unit()), r);
        // unit ⊗ r has r’s columns appended after unit’s none — same schema
        assert_eq!(Relation::unit().join(&r), r);
    }

    #[test]
    fn marginalize_many_equals_sequential() {
        let (r, s, t) = example_2_1();
        let j = r.union(&s).join(&t);
        let seq = j
            .marginalize(0, &int_identity())
            .marginalize(2, &Lifting::One);
        let many = j.marginalize_many(&[(0, int_identity()), (2, Lifting::One)]);
        assert_eq!(seq, many);
    }

    #[test]
    fn count_query_from_figure_2d() {
        // COUNT over the natural join of Figure 2c with all payloads 1.
        let mut c = crate::schema::Catalog::new();
        let (a, b, cc, d, e) = (c.var("A"), c.var("B"), c.var("C"), c.var("D"), c.var("E"));
        let r = Relation::from_pairs(
            Schema::new(vec![a, b]),
            (1..=4).map(|i| (tuple![if i <= 2 { 1 } else { i - 1 }, i], 1i64)),
        );
        // R = {(a1,b1),(a1,b2),(a2,b3),(a3,b4)}
        assert_eq!(r.len(), 4);
        let s = Relation::from_pairs(
            Schema::new(vec![a, cc, e]),
            [
                (tuple![1, 1, 1], 1i64),
                (tuple![1, 1, 2], 1),
                (tuple![1, 2, 3], 1),
                (tuple![2, 2, 4], 1),
            ],
        );
        let t = Relation::from_pairs(
            Schema::new(vec![cc, d]),
            [
                (tuple![1, 1], 1i64),
                (tuple![2, 2], 1),
                (tuple![2, 3], 1),
                (tuple![3, 4], 1),
            ],
        );
        // V@D_T[C] = ⊕D T
        let vt = t.marginalize(d, &Lifting::One);
        assert_eq!(vt.payload(&tuple![1]), 1);
        assert_eq!(vt.payload(&tuple![2]), 2);
        assert_eq!(vt.payload(&tuple![3]), 1);
        // V@E_S[A,C] = ⊕E S
        let vs = s.marginalize(e, &Lifting::One);
        assert_eq!(vs.payload(&tuple![1, 1]), 2);
        // V@C_ST[A] = ⊕C (V@D_T ⊗ V@E_S)
        let vst = vt.join(&vs).marginalize(cc, &Lifting::One);
        assert_eq!(vst.payload(&tuple![1]), 4);
        assert_eq!(vst.payload(&tuple![2]), 2);
        // V@B_R[A] = ⊕B R
        let vr = r.marginalize(b, &Lifting::One);
        assert_eq!(vr.payload(&tuple![1]), 2);
        // root = ⊕A (V@B_R ⊗ V@C_ST) = 10 (paper Figure 2d)
        let root = vr.join(&vst).marginalize(a, &Lifting::One);
        assert_eq!(root.payload(&Tuple::unit()), 10);
    }

    #[test]
    fn neg_then_union_cancels() {
        let (r, _, _) = example_2_1();
        let mut u = r.clone();
        u.union_in_place(&r.neg());
        assert!(u.is_empty());
    }

    #[test]
    fn map_payloads_drops_zeros() {
        let r = Relation::from_pairs(sch(&[0]), [(tuple![1], 2i64), (tuple![2], 3)]);
        let m = r.map_payloads(|_, p| if *p == 2 { 0i64 } else { *p });
        assert_eq!(m.len(), 1);
        assert_eq!(m.payload(&tuple![2]), 3);
    }

    #[test]
    fn numeric_double_keys() {
        let mut r: Relation<f64> = Relation::new(sch(&[0]));
        r.insert(Tuple::single(Value::Double(1.5)), 2.0);
        r.insert(Tuple::single(Value::Double(1.5)), 0.5);
        assert_eq!(r.payload(&Tuple::single(Value::Double(1.5))), 2.5);
    }
}
