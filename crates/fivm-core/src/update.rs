//! Update representations: flat and factorizable deltas (paper §4–§5).
//!
//! An update to relation `R` is a delta relation `δR`; inserts map to
//! positive payloads, deletes to negative ones, and the updated relation
//! is `R ⊎ δR`. A *factorizable* update (§5) is a product of factor
//! relations with pairwise-disjoint schemas — e.g. a rank-1 matrix change
//! `δA = u ⊗ vᵀ` — whose flat form may be quadratically larger. The
//! engine propagates factored deltas without ever multiplying them out
//! (`Optimize` in Figure 4), which is the second of the paper’s three
//! factorization locks.

use crate::relation::Relation;
use crate::ring::{Ring, Semiring};
use crate::schema::Schema;

/// An update to one relation.
#[derive(Clone, Debug)]
pub enum Delta<R> {
    /// A plain delta relation (collection of keyed payload changes).
    Flat(Relation<R>),
    /// A product `f₁ ⊗ f₂ ⊗ … ⊗ f_k` of factors with pairwise-disjoint
    /// schemas. Semantically equal to [`Delta::flatten`] of itself but
    /// exponentially more compact.
    Factored(Vec<Relation<R>>),
}

impl<R: Semiring> Delta<R> {
    /// A factored delta; validates pairwise schema disjointness.
    pub fn factored(factors: Vec<Relation<R>>) -> Self {
        assert!(
            !factors.is_empty(),
            "factored delta needs at least one factor"
        );
        for i in 0..factors.len() {
            for j in (i + 1)..factors.len() {
                assert!(
                    factors[i].schema().disjoint(factors[j].schema()),
                    "factored-delta factors must have disjoint schemas"
                );
            }
        }
        Delta::Factored(factors)
    }

    /// The combined schema of the update.
    pub fn schema(&self) -> Schema {
        match self {
            Delta::Flat(r) => r.schema().clone(),
            Delta::Factored(fs) => fs
                .iter()
                .fold(Schema::empty(), |acc, f| acc.union(f.schema())),
        }
    }

    /// Multiply a factored delta out into its flat (listing) form.
    pub fn flatten(&self) -> Relation<R> {
        match self {
            Delta::Flat(r) => r.clone(),
            Delta::Factored(fs) => {
                let mut acc = fs[0].clone();
                for f in &fs[1..] {
                    acc = acc.join(f);
                }
                acc
            }
        }
    }

    /// Number of stored entries — the cumulative factor size for factored
    /// deltas, which is what makes them cheap (paper Example 5.1).
    pub fn stored_len(&self) -> usize {
        match self {
            Delta::Flat(r) => r.len(),
            Delta::Factored(fs) => fs.iter().map(Relation::len).sum(),
        }
    }

    /// True iff the delta is a no-op.
    pub fn is_empty(&self) -> bool {
        match self {
            Delta::Flat(r) => r.is_empty(),
            Delta::Factored(fs) => fs.iter().any(Relation::is_empty),
        }
    }
}

impl<R: Ring> Delta<R> {
    /// The inverse update (negate one factor / the flat relation).
    pub fn neg(&self) -> Delta<R> {
        match self {
            Delta::Flat(r) => Delta::Flat(r.neg()),
            Delta::Factored(fs) => {
                let mut fs = fs.clone();
                fs[0] = fs[0].neg();
                Delta::Factored(fs)
            }
        }
    }
}

impl<R: Semiring> From<Relation<R>> for Delta<R> {
    fn from(r: Relation<R>) -> Self {
        Delta::Flat(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sch(vars: &[u32]) -> Schema {
        Schema::new(vars.to_vec())
    }

    /// Paper Example 5.1: R[A,B] = {(aᵢ,bⱼ) → 1} decomposes into
    /// R1[A] ⊗ R2[B], reducing n·m stored values to n + m.
    #[test]
    fn rank1_decomposition_sizes() {
        let n = 4;
        let m = 3;
        let r1 = Relation::from_pairs(sch(&[0]), (0..n).map(|i| (tuple![i], 1i64)));
        let r2 = Relation::from_pairs(sch(&[1]), (0..m).map(|j| (tuple![j], 1i64)));
        let d = Delta::factored(vec![r1, r2]);
        assert_eq!(d.stored_len(), (n + m) as usize);
        let flat = d.flatten();
        assert_eq!(flat.len(), (n * m) as usize);
        for i in 0..n {
            for j in 0..m {
                assert_eq!(flat.payload(&tuple![i, j]), 1);
            }
        }
    }

    /// Paper Example 5.1 continued: over-approximation compensated by a
    /// negative-payload product — `{aᵢ}ᵢ≤n+1 ⊗ {bⱼ}ⱼ≤m  ⊎  {a_{n+1}} ⊗ {b_m → −1}`
    /// equals `R ⊎ {(a_{n+1}, bⱼ) | j < m}`.
    #[test]
    fn compensated_decomposition() {
        let (n, m) = (3i64, 3i64);
        let full_a = Relation::from_pairs(sch(&[0]), (0..=n).map(|i| (tuple![i], 1i64)));
        let full_b = Relation::from_pairs(sch(&[1]), (0..m).map(|j| (tuple![j], 1i64)));
        let over = Delta::factored(vec![full_a, full_b]).flatten();
        let comp = Delta::factored(vec![
            Relation::from_pairs(sch(&[0]), [(tuple![n], 1i64)]),
            Relation::from_pairs(sch(&[1]), [(tuple![m - 1], -1i64)]),
        ])
        .flatten();
        let result = over.union(&comp);
        // expected: all (i,j) for i<n, plus (n, j) for j < m-1
        assert_eq!(result.len(), (n * m + m - 1) as usize);
        assert!(!result.contains(&tuple![n, m - 1]));
        assert_eq!(result.payload(&tuple![n, 0]), 1);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_factors_rejected() {
        let a = Relation::from_pairs(sch(&[0, 1]), [(tuple![1, 2], 1i64)]);
        let b = Relation::from_pairs(sch(&[1]), [(tuple![2], 1i64)]);
        let _ = Delta::factored(vec![a, b]);
    }

    #[test]
    fn neg_flattens_to_negated() {
        let u = Relation::from_pairs(sch(&[0]), [(tuple![1], 2i64)]);
        let v = Relation::from_pairs(sch(&[1]), [(tuple![5], 3i64)]);
        let d = Delta::factored(vec![u, v]);
        assert_eq!(d.neg().flatten(), d.flatten().neg());
    }

    #[test]
    fn empty_detection() {
        let u: Relation<i64> = Relation::new(sch(&[0]));
        let v = Relation::from_pairs(sch(&[1]), [(tuple![5], 3i64)]);
        assert!(Delta::factored(vec![u, v]).is_empty());
    }
}
