//! An open-addressing hash table keyed by [`Tuple`]s that supports
//! borrowed-key probing.
//!
//! `std::collections::HashMap` cannot look a key up by anything but
//! `Borrow<Q>` of the owned key type, which forces callers to
//! materialize a fresh [`Tuple`] for every probe that is a projection
//! or concatenation of tuples they already hold. [`TupleMap`] accepts
//! any [`TupleKey`] for lookups and removals, and materializes an owned
//! key only when an insert introduces a genuinely new key — which, for
//! inline tuples (arity ≤ 3), still allocates nothing.
//!
//! Layout: power-of-two slot array, linear probing, tombstone deletion
//! (rehahsed away on growth). Tuples cache their Fx hash, so growth and
//! re-probing never re-hash key values. `clear` keeps the slot array,
//! and removals leave capacity in place, so a steady-state workload
//! (payload updates, or deletes matched by re-inserts) performs no heap
//! allocation.

use crate::key::TupleKey;
use crate::tuple::Tuple;

#[derive(Clone, Debug)]
enum Slot<R> {
    Empty,
    Tombstone,
    Full(Tuple, R),
}

/// Hash map from [`Tuple`] keys to `R` payloads with borrowed-key
/// probing; see the [module docs](self).
#[derive(Clone, Debug)]
pub struct TupleMap<R> {
    slots: Vec<Slot<R>>,
    /// Live entries.
    items: usize,
    /// Live entries plus tombstones (bounds probe-sequence length).
    used: usize,
}

/// Spread the (Fx) hash across the table's index bits; Fx leaves the
/// low bits weak for short keys, so fold the high bits down.
#[inline]
fn spread(hash: u64) -> usize {
    (hash.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
}

impl<R> Default for TupleMap<R> {
    fn default() -> Self {
        TupleMap::new()
    }
}

impl<R> TupleMap<R> {
    /// An empty map (no allocation until first insert).
    pub fn new() -> Self {
        TupleMap {
            slots: Vec::new(),
            items: 0,
            used: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.items
    }

    /// True iff no live entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Drop all entries, keeping the slot array for reuse.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = Slot::Empty;
        }
        self.items = 0;
        self.used = 0;
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Index of the slot holding `key`, if present.
    #[inline]
    fn find<K: TupleKey + ?Sized>(&self, key: &K) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let hash = key.key_hash();
        let mask = self.mask();
        let mut i = spread(hash) & mask;
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Tombstone => {}
                Slot::Full(t, _) => {
                    if t.cached_hash() == hash && key.matches(t) {
                        return Some(i);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Payload of `key`, if present. Accepts borrowed probe keys.
    #[inline]
    pub fn get<K: TupleKey + ?Sized>(&self, key: &K) -> Option<&R> {
        self.find(key).map(|i| match &self.slots[i] {
            Slot::Full(_, r) => r,
            _ => unreachable!("find returns full slots"),
        })
    }

    /// Mutable payload of `key`, if present.
    #[inline]
    pub fn get_mut<K: TupleKey + ?Sized>(&mut self, key: &K) -> Option<&mut R> {
        self.find(key).map(|i| match &mut self.slots[i] {
            Slot::Full(_, r) => r,
            _ => unreachable!("find returns full slots"),
        })
    }

    /// True iff `key` has an entry.
    #[inline]
    pub fn contains_key<K: TupleKey + ?Sized>(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    /// Look up `key`, inserting `default()` under the materialized key
    /// if absent. Returns whether the entry was just inserted, and the
    /// payload.
    pub fn upsert<K: TupleKey + ?Sized>(
        &mut self,
        key: &K,
        default: impl FnOnce() -> R,
    ) -> (bool, &mut R) {
        self.reserve_one();
        let hash = key.key_hash();
        let mask = self.mask();
        let mut i = spread(hash) & mask;
        // First tombstone on the probe path is reusable if the key is
        // absent; remember it so re-inserts don't extend probe chains.
        let mut reuse: Option<usize> = None;
        let slot = loop {
            match &self.slots[i] {
                Slot::Empty => break reuse.unwrap_or(i),
                Slot::Tombstone => {
                    if reuse.is_none() {
                        reuse = Some(i);
                    }
                }
                Slot::Full(t, _) => {
                    if t.cached_hash() == hash && key.matches(t) {
                        match &mut self.slots[i] {
                            Slot::Full(_, r) => return (false, r),
                            _ => unreachable!(),
                        }
                    }
                }
            }
            i = (i + 1) & mask;
        };
        if matches!(self.slots[slot], Slot::Empty) {
            self.used += 1;
        }
        self.items += 1;
        self.slots[slot] = Slot::Full(key.materialize(), default());
        match &mut self.slots[slot] {
            Slot::Full(_, r) => (true, r),
            _ => unreachable!(),
        }
    }

    /// Remove `key`'s entry, returning its payload. Leaves a tombstone;
    /// capacity is retained.
    pub fn remove<K: TupleKey + ?Sized>(&mut self, key: &K) -> Option<(Tuple, R)> {
        let i = self.find(key)?;
        let old = std::mem::replace(&mut self.slots[i], Slot::Tombstone);
        self.items -= 1;
        match old {
            Slot::Full(t, r) => Some((t, r)),
            _ => unreachable!("find returns full slots"),
        }
    }

    /// Move every entry into `out` (table order), leaving the map
    /// empty but with its capacity retained — the scratch-buffer
    /// pattern hot paths use to merge duplicates without allocating.
    pub fn drain_into(&mut self, out: &mut Vec<(Tuple, R)>) {
        for s in &mut self.slots {
            if matches!(s, Slot::Full(..)) {
                match std::mem::replace(s, Slot::Empty) {
                    Slot::Full(t, r) => out.push((t, r)),
                    _ => unreachable!("just matched"),
                }
            } else {
                *s = Slot::Empty;
            }
        }
        self.items = 0;
        self.used = 0;
    }

    /// Iterate over `(key, payload)` pairs in table order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &R)> {
        self.slots.iter().filter_map(|s| match s {
            Slot::Full(t, r) => Some((t, r)),
            _ => None,
        })
    }

    /// Iterate with mutable payloads.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&Tuple, &mut R)> {
        self.slots.iter_mut().filter_map(|s| match s {
            Slot::Full(t, r) => Some((&*t, r)),
            _ => None,
        })
    }

    /// Iterate over keys.
    pub fn keys(&self) -> impl Iterator<Item = &Tuple> {
        self.iter().map(|(t, _)| t)
    }

    /// Grow/rehash so at least one more insert fits the ≤ 7/8 load
    /// bound (counting tombstones).
    fn reserve_one(&mut self) {
        if self.slots.is_empty() {
            self.slots = (0..8).map(|_| Slot::Empty).collect();
            return;
        }
        if (self.used + 1) * 8 <= self.slots.len() * 7 {
            return;
        }
        // Double when genuinely full; rehash in place (same capacity)
        // when tombstones are the bulk of the load.
        let new_cap = if (self.items + 1) * 4 > self.slots.len() * 3 {
            self.slots.len() * 2
        } else {
            self.slots.len()
        };
        let old = std::mem::replace(
            &mut self.slots,
            (0..new_cap).map(|_| Slot::Empty).collect(),
        );
        self.used = self.items;
        let mask = self.mask();
        for s in old {
            if let Slot::Full(t, r) = s {
                // Cached hash: growth never re-hashes key values.
                let mut i = spread(t.cached_hash()) & mask;
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Full(t, r);
            }
        }
    }

    /// Approximate heap bytes owned by the slot array (excluding key
    /// and payload heap data).
    pub fn approx_slot_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot<R>>()
    }
}

impl<R> FromIterator<(Tuple, R)> for TupleMap<R> {
    fn from_iter<I: IntoIterator<Item = (Tuple, R)>>(iter: I) -> Self {
        let mut m = TupleMap::new();
        for (t, r) in iter {
            // Last write wins, like std::collections::HashMap::from_iter.
            let mut pending = Some(r);
            let (_, slot) = m.upsert(&t, || pending.take().expect("unconsumed"));
            if let Some(r) = pending {
                *slot = r;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ProjKey;
    use crate::tuple;

    #[test]
    fn upsert_get_remove_roundtrip() {
        let mut m: TupleMap<i64> = TupleMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(&tuple![1, 2]), None);
        let (inserted, v) = m.upsert(&tuple![1, 2], || 5);
        assert!(inserted);
        *v += 1;
        assert_eq!(m.get(&tuple![1, 2]), Some(&6));
        let (inserted, v) = m.upsert(&tuple![1, 2], || 0);
        assert!(!inserted);
        assert_eq!(*v, 6);
        assert_eq!(m.len(), 1);
        let (k, r) = m.remove(&tuple![1, 2]).unwrap();
        assert_eq!((k, r), (tuple![1, 2], 6));
        assert!(m.remove(&tuple![1, 2]).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn many_entries_grow_and_survive() {
        let mut m: TupleMap<i64> = TupleMap::new();
        for i in 0..1000i64 {
            m.upsert(&tuple![i, i * 2], || i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000i64 {
            assert_eq!(m.get(&tuple![i, i * 2]), Some(&i), "key {i}");
        }
        assert_eq!(m.get(&tuple![1000, 2000]), None);
    }

    #[test]
    fn borrowed_probe_finds_entries() {
        let mut m: TupleMap<&'static str> = TupleMap::new();
        m.upsert(&tuple![20, 10], || "hit");
        let base = tuple![10, 20, 30];
        let key = ProjKey::new(&base, &[1, 0]);
        assert_eq!(m.get(&key), Some(&"hit"));
        let miss = ProjKey::new(&base, &[0, 1]);
        assert_eq!(m.get(&miss), None);
    }

    #[test]
    fn borrowed_upsert_materializes_once() {
        let mut m: TupleMap<i64> = TupleMap::new();
        let base = tuple![7, 8];
        let key = ProjKey::new(&base, &[1]);
        let (inserted, v) = m.upsert(&key, || 1);
        assert!(inserted);
        *v += 1;
        let (inserted, _) = m.upsert(&key, || 100);
        assert!(!inserted);
        assert_eq!(m.get(&tuple![8]), Some(&2));
    }

    #[test]
    fn tombstones_are_reused() {
        let mut m: TupleMap<i64> = TupleMap::new();
        // Fill/erase churn on a fixed key set: capacity must stabilize.
        for round in 0..50 {
            for i in 0..16i64 {
                m.upsert(&tuple![i], || round);
            }
            for i in 0..16i64 {
                m.remove(&tuple![i]).unwrap();
            }
        }
        assert!(m.is_empty());
        assert!(
            m.slots.len() <= 64,
            "churn grew the table to {} slots",
            m.slots.len()
        );
    }

    #[test]
    fn iteration_sees_all_live_entries() {
        let mut m: TupleMap<i64> = TupleMap::new();
        for i in 0..20i64 {
            m.upsert(&tuple![i], || i);
        }
        for i in 0..10i64 {
            m.remove(&tuple![i]);
        }
        let mut got: Vec<i64> = m.iter().map(|(_, &v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, (10..20).collect::<Vec<_>>());
        for (_, v) in m.iter_mut() {
            *v += 1;
        }
        assert_eq!(m.get(&tuple![15]), Some(&16));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m: TupleMap<i64> = TupleMap::new();
        for i in 0..100i64 {
            m.upsert(&tuple![i], || i);
        }
        let cap = m.slots.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.slots.len(), cap);
        assert_eq!(m.get(&tuple![5]), None);
    }
}
