//! An open-addressing hash table keyed by [`Tuple`]s that supports
//! borrowed-key probing.
//!
//! `std::collections::HashMap` cannot look a key up by anything but
//! `Borrow<Q>` of the owned key type, which forces callers to
//! materialize a fresh [`Tuple`] for every probe that is a projection
//! or concatenation of tuples they already hold. [`TupleMap`] accepts
//! any [`TupleKey`] for lookups and removals, and materializes an owned
//! key only when an insert introduces a genuinely new key — which, for
//! inline tuples (arity ≤ 3), still allocates nothing.
//!
//! Layout: power-of-two slot array, linear probing, tombstone deletion
//! (rehahsed away on growth). Tuples cache their Fx hash, so growth and
//! re-probing never re-hash key values. `clear` keeps the slot array,
//! and removals leave capacity in place, so a steady-state workload
//! (payload updates, or deletes matched by re-inserts) performs no heap
//! allocation.
//!
//! Probing walks a parallel **metadata array** — one word per slot
//! holding empty/tombstone sentinels or the slot key's hash marker —
//! and touches the fat slot array (a key tuple plus payload per slot)
//! only on a marker match. At batch scale the slot array of a 100k-key
//! view runs to many megabytes while its metadata stays L2-resident,
//! so probe chains cost compact-word reads instead of DRAM misses.

use crate::key::TupleKey;
use crate::tuple::Tuple;

#[derive(Clone, Debug)]
enum Slot<R> {
    Empty,
    Tombstone,
    Full(Tuple, R),
}

/// Metadata word: the slot is empty (probe chains stop here).
const META_EMPTY: u64 = 0;
/// Metadata word: deleted entry (probe chains continue through it).
const META_TOMBSTONE: u64 = 1;

/// Metadata word for an occupied slot: the key's hash with the top bit
/// forced, so it can never collide with the two sentinels. Equality of
/// markers is a filter only — the slot's exact cached hash and key
/// comparison still decide.
#[inline]
fn marker(hash: u64) -> u64 {
    hash | (1 << 63)
}

/// Hash map from [`Tuple`] keys to `R` payloads with borrowed-key
/// probing; see the [module docs](self).
#[derive(Clone, Debug)]
pub struct TupleMap<R> {
    /// Probe metadata, parallel to `slots` (see the module docs).
    meta: Vec<u64>,
    slots: Vec<Slot<R>>,
    /// Live entries.
    items: usize,
    /// Live entries plus tombstones (bounds probe-sequence length).
    used: usize,
}

/// Per-capacity-class odd multiplier for the multiply-shift home-slot
/// function (see [`TupleMap::home`]).
///
/// Delta propagation constantly streams one `TupleMap` into another
/// (`Relation::iter` → store merge, hash-scratch drain → view
/// inserts). Iterating a table yields keys sorted by their home slots,
/// and feeding a *key order correlated with home order* into a
/// linear-probed destination of a different capacity degrades into
/// long probe runs (measured ~7× slower at 100k keys with a shared
/// spread function — and fully quadratic in the worst case, when a
/// sorted key range concentrates into a narrow home region of a
/// growing destination). Deriving the mixing multiplier from the
/// capacity class makes the slot orders of different-sized tables
/// statistically independent, so streamed inserts see ordinary
/// random-order probe costs; same-sized tables share an order, which
/// is the benign left-to-right fill.
#[inline]
fn class_mult(log2cap: u32) -> u64 {
    // splitmix64-style finalizer over the class index, forced odd so
    // the multiply permutes the hash space.
    let x = 0x9E37_79B9_7F4A_7C15u64 ^ u64::from(log2cap).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let x = (x ^ (x >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x | 1
}

impl<R> Default for TupleMap<R> {
    fn default() -> Self {
        TupleMap::new()
    }
}

impl<R> TupleMap<R> {
    /// An empty map (no allocation until first insert).
    pub fn new() -> Self {
        TupleMap {
            meta: Vec::new(),
            slots: Vec::new(),
            items: 0,
            used: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.items
    }

    /// True iff no live entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Drop all entries, keeping the slot array for reuse.
    pub fn clear(&mut self) {
        self.meta.fill(META_EMPTY);
        for s in &mut self.slots {
            *s = Slot::Empty;
        }
        self.items = 0;
        self.used = 0;
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Home slot of `hash`: multiply-shift with the capacity class's
    /// own multiplier (see [`class_mult`]), taking the top
    /// `log2(capacity)` bits — the best-mixed ones.
    #[inline]
    fn home(&self, hash: u64) -> usize {
        let log2cap = self.slots.len().trailing_zeros();
        (hash.wrapping_mul(class_mult(log2cap)) >> (64 - log2cap)) as usize
    }

    /// Index of the slot holding `key`, if present.
    #[inline]
    fn find<K: TupleKey + ?Sized>(&self, key: &K) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let hash = key.key_hash();
        let mark = marker(hash);
        let mask = self.mask();
        let mut i = self.home(hash);
        loop {
            let m = self.meta[i];
            if m == META_EMPTY {
                return None;
            }
            if m == mark {
                if let Slot::Full(t, _) = &self.slots[i] {
                    if t.cached_hash() == hash && key.matches(t) {
                        return Some(i);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Payload of `key`, if present. Accepts borrowed probe keys.
    #[inline]
    pub fn get<K: TupleKey + ?Sized>(&self, key: &K) -> Option<&R> {
        self.find(key).map(|i| match &self.slots[i] {
            Slot::Full(_, r) => r,
            _ => unreachable!("find returns full slots"),
        })
    }

    /// Mutable payload of `key`, if present.
    #[inline]
    pub fn get_mut<K: TupleKey + ?Sized>(&mut self, key: &K) -> Option<&mut R> {
        self.find(key).map(|i| match &mut self.slots[i] {
            Slot::Full(_, r) => r,
            _ => unreachable!("find returns full slots"),
        })
    }

    /// True iff `key` has an entry.
    #[inline]
    pub fn contains_key<K: TupleKey + ?Sized>(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    /// Look up `key`, inserting `default()` under the materialized key
    /// if absent. Returns whether the entry was just inserted, and the
    /// payload.
    pub fn upsert<K: TupleKey + ?Sized>(
        &mut self,
        key: &K,
        default: impl FnOnce() -> R,
    ) -> (bool, &mut R) {
        self.reserve_one();
        let hash = key.key_hash();
        let mark = marker(hash);
        let mask = self.mask();
        let mut i = self.home(hash);
        // First tombstone on the probe path is reusable if the key is
        // absent; remember it so re-inserts don't extend probe chains.
        let mut reuse: Option<usize> = None;
        let slot = loop {
            let m = self.meta[i];
            if m == META_EMPTY {
                break reuse.unwrap_or(i);
            }
            if m == META_TOMBSTONE {
                if reuse.is_none() {
                    reuse = Some(i);
                }
            } else if m == mark {
                if let Slot::Full(t, _) = &self.slots[i] {
                    if t.cached_hash() == hash && key.matches(t) {
                        match &mut self.slots[i] {
                            Slot::Full(_, r) => return (false, r),
                            _ => unreachable!("meta marker implies a full slot"),
                        }
                    }
                }
            }
            i = (i + 1) & mask;
        };
        if self.meta[slot] == META_EMPTY {
            self.used += 1;
        }
        self.items += 1;
        self.meta[slot] = mark;
        self.slots[slot] = Slot::Full(key.materialize(), default());
        match &mut self.slots[slot] {
            Slot::Full(_, r) => (true, r),
            _ => unreachable!(),
        }
    }

    /// Remove `key`'s entry, returning its payload. Leaves a tombstone;
    /// capacity is retained.
    pub fn remove<K: TupleKey + ?Sized>(&mut self, key: &K) -> Option<(Tuple, R)> {
        let i = self.find(key)?;
        let old = std::mem::replace(&mut self.slots[i], Slot::Tombstone);
        self.meta[i] = META_TOMBSTONE;
        self.items -= 1;
        match old {
            Slot::Full(t, r) => Some((t, r)),
            _ => unreachable!("find returns full slots"),
        }
    }

    /// Move every entry into `out` (table order), leaving the map
    /// empty but with its capacity retained — the scratch-buffer
    /// pattern hot paths use to merge duplicates without allocating.
    pub fn drain_into(&mut self, out: &mut Vec<(Tuple, R)>) {
        for s in &mut self.slots {
            if matches!(s, Slot::Full(..)) {
                match std::mem::replace(s, Slot::Empty) {
                    Slot::Full(t, r) => out.push((t, r)),
                    _ => unreachable!("just matched"),
                }
            } else {
                *s = Slot::Empty;
            }
        }
        self.meta.fill(META_EMPTY);
        self.items = 0;
        self.used = 0;
    }

    /// Iterate over `(key, payload)` pairs in table order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &R)> {
        self.slots.iter().filter_map(|s| match s {
            Slot::Full(t, r) => Some((t, r)),
            _ => None,
        })
    }

    /// Iterate with mutable payloads.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&Tuple, &mut R)> {
        self.slots.iter_mut().filter_map(|s| match s {
            Slot::Full(t, r) => Some((&*t, r)),
            _ => None,
        })
    }

    /// Iterate over keys.
    pub fn keys(&self) -> impl Iterator<Item = &Tuple> {
        self.iter().map(|(t, _)| t)
    }

    /// Keep entries for which `f` returns `true`; the rest become
    /// tombstones (capacity retained). This is the high-water-mark
    /// sweep primitive: callers retaining emptied buckets for
    /// allocation-freedom use it to shed them once they outnumber the
    /// live ones.
    ///
    /// A sweep that drops many entries would otherwise leave probe
    /// chains walking through its tombstones until the next
    /// insert-triggered rehash — under repeated sweeps with few
    /// intervening inserts, probes degenerate toward O(capacity). So
    /// when the post-retain tombstones exceed half the live count, the
    /// table rehashes in place (same capacity, tombstones dropped),
    /// restoring load-factor-bounded probe chains immediately.
    pub fn retain(&mut self, mut f: impl FnMut(&Tuple, &mut R) -> bool) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if let Slot::Full(t, r) = s {
                if !f(t, r) {
                    *s = Slot::Tombstone;
                    self.meta[i] = META_TOMBSTONE;
                    self.items -= 1;
                }
            }
        }
        if self.tombstones() > self.items / 2 && self.tombstones() > 0 {
            self.rehash(self.slots.len());
        }
    }

    /// Tombstoned slots currently degrading probe chains (live entries
    /// probe *through* tombstones; only empty slots stop a chain).
    #[inline]
    pub fn tombstones(&self) -> usize {
        self.used - self.items
    }

    /// Longest contiguous run of non-empty slot metadata (counting
    /// tombstones, wrapping around the table end). Every probe walks at
    /// most one such run plus its terminating empty slot, so this bounds
    /// the worst-case probe length — a diagnostic for the sweep/compact
    /// policies, asserted on by churn stress tests.
    pub fn max_probe_run(&self) -> usize {
        if self.meta.is_empty() {
            return 0;
        }
        let mut best = 0usize;
        let mut cur = 0usize;
        let mut leading: Option<usize> = None;
        for &m in &self.meta {
            if m == META_EMPTY {
                if leading.is_none() {
                    leading = Some(cur);
                }
                best = best.max(cur);
                cur = 0;
            } else {
                cur += 1;
            }
        }
        match leading {
            // No empty slot at all: a miss probe scans the whole table.
            None => self.meta.len(),
            // Probe runs wrap: join the trailing run to the leading one.
            Some(lead) => best.max(cur + lead),
        }
    }

    /// Pre-size so `additional` inserts fit the load bound without
    /// intermediate growth steps — batch merges size the scratch once
    /// per batch instead of doubling through it.
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.used + additional;
        if self.slots.is_empty() {
            let mut cap = 8usize;
            while needed * 8 > cap * 7 {
                cap *= 2;
            }
            self.init(cap);
            return;
        }
        if needed * 8 <= self.slots.len() * 7 {
            return;
        }
        // Rehashing drops tombstones, so size for live items only.
        let mut cap = self.slots.len();
        while (self.items + additional) * 8 > cap * 7 {
            cap *= 2;
        }
        self.rehash(cap);
    }

    /// Grow/rehash so at least one more insert fits the ≤ 7/8 load
    /// bound (counting tombstones).
    fn reserve_one(&mut self) {
        if self.slots.is_empty() {
            self.init(8);
            return;
        }
        if (self.used + 1) * 8 <= self.slots.len() * 7 {
            return;
        }
        // Double when genuinely full; rehash in place (same capacity)
        // when tombstones are the bulk of the load.
        let new_cap = if (self.items + 1) * 4 > self.slots.len() * 3 {
            self.slots.len() * 2
        } else {
            self.slots.len()
        };
        self.rehash(new_cap);
    }

    /// Allocate empty slot and metadata arrays of `cap` slots.
    fn init(&mut self, cap: usize) {
        self.meta = vec![META_EMPTY; cap];
        self.slots = (0..cap).map(|_| Slot::Empty).collect();
    }

    /// Re-insert every live entry into a fresh slot array of `new_cap`
    /// slots, dropping tombstones.
    fn rehash(&mut self, new_cap: usize) {
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| Slot::Empty).collect());
        self.meta.clear();
        self.meta.resize(new_cap, META_EMPTY);
        self.used = self.items;
        let mask = self.mask();
        for s in old {
            if let Slot::Full(t, r) = s {
                // Cached hash: growth never re-hashes key values.
                let hash = t.cached_hash();
                let mut i = self.home(hash);
                while self.meta[i] != META_EMPTY {
                    i = (i + 1) & mask;
                }
                self.meta[i] = marker(hash);
                self.slots[i] = Slot::Full(t, r);
            }
        }
    }

    /// Approximate heap bytes owned by the slot and metadata arrays
    /// (excluding key and payload heap data).
    pub fn approx_slot_bytes(&self) -> usize {
        self.slots.len() * (std::mem::size_of::<Slot<R>>() + std::mem::size_of::<u64>())
    }
}

impl<R> FromIterator<(Tuple, R)> for TupleMap<R> {
    fn from_iter<I: IntoIterator<Item = (Tuple, R)>>(iter: I) -> Self {
        let mut m = TupleMap::new();
        for (t, r) in iter {
            // Last write wins, like std::collections::HashMap::from_iter.
            let mut pending = Some(r);
            let (_, slot) = m.upsert(&t, || pending.take().expect("unconsumed"));
            if let Some(r) = pending {
                *slot = r;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ProjKey;
    use crate::tuple;

    #[test]
    fn upsert_get_remove_roundtrip() {
        let mut m: TupleMap<i64> = TupleMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(&tuple![1, 2]), None);
        let (inserted, v) = m.upsert(&tuple![1, 2], || 5);
        assert!(inserted);
        *v += 1;
        assert_eq!(m.get(&tuple![1, 2]), Some(&6));
        let (inserted, v) = m.upsert(&tuple![1, 2], || 0);
        assert!(!inserted);
        assert_eq!(*v, 6);
        assert_eq!(m.len(), 1);
        let (k, r) = m.remove(&tuple![1, 2]).unwrap();
        assert_eq!((k, r), (tuple![1, 2], 6));
        assert!(m.remove(&tuple![1, 2]).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn many_entries_grow_and_survive() {
        let mut m: TupleMap<i64> = TupleMap::new();
        for i in 0..1000i64 {
            m.upsert(&tuple![i, i * 2], || i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000i64 {
            assert_eq!(m.get(&tuple![i, i * 2]), Some(&i), "key {i}");
        }
        assert_eq!(m.get(&tuple![1000, 2000]), None);
    }

    #[test]
    fn borrowed_probe_finds_entries() {
        let mut m: TupleMap<&'static str> = TupleMap::new();
        m.upsert(&tuple![20, 10], || "hit");
        let base = tuple![10, 20, 30];
        let key = ProjKey::new(&base, &[1, 0]);
        assert_eq!(m.get(&key), Some(&"hit"));
        let miss = ProjKey::new(&base, &[0, 1]);
        assert_eq!(m.get(&miss), None);
    }

    #[test]
    fn borrowed_upsert_materializes_once() {
        let mut m: TupleMap<i64> = TupleMap::new();
        let base = tuple![7, 8];
        let key = ProjKey::new(&base, &[1]);
        let (inserted, v) = m.upsert(&key, || 1);
        assert!(inserted);
        *v += 1;
        let (inserted, _) = m.upsert(&key, || 100);
        assert!(!inserted);
        assert_eq!(m.get(&tuple![8]), Some(&2));
    }

    #[test]
    fn tombstones_are_reused() {
        let mut m: TupleMap<i64> = TupleMap::new();
        // Fill/erase churn on a fixed key set: capacity must stabilize.
        for round in 0..50 {
            for i in 0..16i64 {
                m.upsert(&tuple![i], || round);
            }
            for i in 0..16i64 {
                m.remove(&tuple![i]).unwrap();
            }
        }
        assert!(m.is_empty());
        assert!(
            m.slots.len() <= 64,
            "churn grew the table to {} slots",
            m.slots.len()
        );
    }

    #[test]
    fn iteration_sees_all_live_entries() {
        let mut m: TupleMap<i64> = TupleMap::new();
        for i in 0..20i64 {
            m.upsert(&tuple![i], || i);
        }
        for i in 0..10i64 {
            m.remove(&tuple![i]);
        }
        let mut got: Vec<i64> = m.iter().map(|(_, &v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, (10..20).collect::<Vec<_>>());
        for (_, v) in m.iter_mut() {
            *v += 1;
        }
        assert_eq!(m.get(&tuple![15]), Some(&16));
    }

    #[test]
    fn retain_drops_entries_and_survives_reuse() {
        let mut m: TupleMap<i64> = TupleMap::new();
        for i in 0..100i64 {
            m.upsert(&tuple![i], || i);
        }
        m.retain(|_, v| *v % 2 == 0);
        assert_eq!(m.len(), 50);
        assert_eq!(m.get(&tuple![7]), None);
        assert_eq!(m.get(&tuple![8]), Some(&8));
        // Tombstoned slots are reusable and rehashed away on demand.
        for i in 100..200i64 {
            m.upsert(&tuple![i], || i);
        }
        assert_eq!(m.len(), 150);
        assert_eq!(m.get(&tuple![150]), Some(&150));
    }

    /// A retain that drops the bulk of the table compacts immediately:
    /// probe chains must not walk the dropped entries' tombstones until
    /// some later insert happens to trigger a rehash.
    #[test]
    fn retain_compacts_heavy_sweeps() {
        let mut m: TupleMap<i64> = TupleMap::new();
        for i in 0..4096i64 {
            m.upsert(&tuple![i], || i);
        }
        let cap = m.slots.len();
        m.retain(|t, _| t.get(0).as_int().unwrap() < 64);
        assert_eq!(m.len(), 64);
        assert_eq!(m.tombstones(), 0, "heavy sweep must compact in place");
        assert_eq!(m.slots.len(), cap, "compaction keeps capacity");
        // At 64 live keys in a large table, probe runs are short; with
        // 4032 retained tombstones they would approach O(capacity).
        assert!(
            m.max_probe_run() <= 16,
            "probe run {} after sweep",
            m.max_probe_run()
        );
        for i in 0..64i64 {
            assert_eq!(m.get(&tuple![i]), Some(&i));
        }
    }

    /// Repeated sweep rounds (insert fresh, retain a stable live set)
    /// keep probe chains bounded — the regression the compacting rehash
    /// fixes: tombstones from round N used to linger into round N+1.
    #[test]
    fn repeated_retain_rounds_keep_probe_runs_bounded() {
        let mut m: TupleMap<i64> = TupleMap::new();
        for i in 0..64i64 {
            m.upsert(&tuple![i], || i);
        }
        for round in 1..=50i64 {
            for i in 0..512i64 {
                m.upsert(&tuple![round * 10_000 + i], || i);
            }
            m.retain(|t, _| t.get(0).as_int().unwrap() < 64);
            assert_eq!(m.len(), 64, "round {round}");
            assert!(
                m.tombstones() <= m.len() / 2,
                "round {round}: {} tombstones past the compaction bound",
                m.tombstones()
            );
            assert!(
                m.max_probe_run() <= 32,
                "round {round}: probe run {} degenerated",
                m.max_probe_run()
            );
        }
    }

    /// A light retain (dropping few entries) does not pay for a rehash.
    #[test]
    fn light_retain_leaves_tombstones() {
        let mut m: TupleMap<i64> = TupleMap::new();
        for i in 0..1024i64 {
            m.upsert(&tuple![i], || i);
        }
        m.retain(|t, _| t.get(0).as_int().unwrap() >= 4);
        assert_eq!(m.len(), 1020);
        assert_eq!(m.tombstones(), 4, "light sweeps keep their tombstones");
    }

    #[test]
    fn reserve_presizes_without_growth_during_inserts() {
        let mut m: TupleMap<i64> = TupleMap::new();
        m.reserve(1000);
        let cap = m.slots.len();
        for i in 0..1000i64 {
            m.upsert(&tuple![i], || i);
        }
        assert_eq!(m.slots.len(), cap, "reserve sized for the batch");
        assert_eq!(m.len(), 1000);
        // A no-op when capacity already suffices.
        m.reserve(10);
        assert_eq!(m.slots.len(), cap);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m: TupleMap<i64> = TupleMap::new();
        for i in 0..100i64 {
            m.upsert(&tuple![i], || i);
        }
        let cap = m.slots.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.slots.len(), cap);
        assert_eq!(m.get(&tuple![5]), None);
    }
}
