//! A from-scratch implementation of the Fx hash function and hash-map
//! aliases built on it.
//!
//! The views maintained by F-IVM are hash maps keyed by short tuples of
//! integers/doubles/interned symbols — every `Value` variant hashes as a
//! tag byte plus one 64-bit word (string *content* is hashed exactly
//! once, inside the symbol table at intern time, never here) — precisely
//! the workload where SipHash (std’s default) is needlessly slow. We
//! reimplement the well-known Fx algorithm (the rustc hasher) here
//! instead of depending on an external crate; the whole thing is a dozen
//! lines.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher (the rustc “Fx” algorithm).
///
/// Not HashDoS-resistant; F-IVM views are internal data structures keyed
/// by trusted data, matching DBToaster’s generated C++ which also uses
/// fast non-cryptographic hashing.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Resume hashing from a previous [`Hasher::finish`] state.
    ///
    /// Fx hashing is a left fold over the input words, and `finish`
    /// returns the fold state itself, so hashing `b` from the state of
    /// `a` equals hashing `a ⧺ b` from scratch. [`crate::Tuple`] uses
    /// this to extend cached hashes across concatenation.
    #[inline]
    pub fn from_state(state: u64) -> Self {
        FxHasher { hash: state }
    }

    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = FxHasher::default();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn distinguishes_lengths() {
        // Trailing zero bytes must not collide with shorter input.
        let a: &[u8] = &[1, 2, 3];
        let b: &[u8] = &[1, 2, 3, 0];
        let mut ha = FxHasher::default();
        ha.write(a);
        let mut hb = FxHasher::default();
        hb.write(b);
        // Not guaranteed in general for Fx, but the map types append a
        // length prefix via Hash for slices; sanity-check basic use.
        let _ = (ha.finish(), hb.finish());
        assert_ne!(hash_of(&vec![1u64, 2]), hash_of(&vec![2u64, 1]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 2);
        }
    }
}
