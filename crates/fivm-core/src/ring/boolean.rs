//! Boolean and max-product **semirings** (Appendix A, Example A.2).
//!
//! These have no additive inverse, so they support static factorized
//! evaluation (`fivm-engine`’s evaluator is generic over [`Semiring`])
//! but not incremental maintenance with deletions. The Boolean semiring
//! answers existential (“is the join non-empty per group?”) queries; the
//! max-product semiring computes maximum-probability derivations, the
//! classic Viterbi-style aggregate.

use super::Semiring;

/// The Boolean semiring `({true, false}, ∨, ∧, false, true)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Bool(pub bool);

impl Semiring for Bool {
    fn zero() -> Self {
        Bool(false)
    }

    fn one() -> Self {
        Bool(true)
    }

    fn add_assign(&mut self, other: &Self) {
        self.0 |= other.0;
    }

    fn mul(&self, other: &Self) -> Self {
        Bool(self.0 && other.0)
    }

    fn is_zero(&self) -> bool {
        !self.0
    }
}

/// The max-product semiring `(R⁺, max, ×, 0, 1)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaxProduct(pub f64);

impl Semiring for MaxProduct {
    fn zero() -> Self {
        MaxProduct(0.0)
    }

    fn one() -> Self {
        MaxProduct(1.0)
    }

    fn add_assign(&mut self, other: &Self) {
        if other.0 > self.0 {
            self.0 = other.0;
        }
    }

    fn mul(&self, other: &Self) -> Self {
        MaxProduct(self.0 * other.0)
    }

    fn is_zero(&self) -> bool {
        self.0 == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_semiring_laws() {
        let t = Bool(true);
        let f = Bool(false);
        assert_eq!(t.add(&f), t);
        assert_eq!(f.add(&f), f);
        assert_eq!(t.mul(&f), f);
        assert_eq!(t.mul(&t), t);
        assert!(Bool::zero().is_zero());
        assert!(!Bool::one().is_zero());
    }

    #[test]
    fn max_product_laws() {
        let a = MaxProduct(0.5);
        let b = MaxProduct(0.8);
        assert_eq!(a.add(&b), b);
        assert_eq!(a.mul(&b), MaxProduct(0.4));
        assert_eq!(a.mul(&MaxProduct::one()), a);
        assert!(a.mul(&MaxProduct::zero()).is_zero());
    }

    #[test]
    fn max_product_is_idempotent_addition() {
        let a = MaxProduct(0.7);
        assert_eq!(a.add(&a), a);
    }
}
