//! Payload algebras: semirings and rings (paper §2, Appendix A).
//!
//! A relation in F-IVM maps keys to payloads drawn from a ring
//! `(D, +, *, 0, 1)`. The maintenance machinery is identical for every
//! ring; applications differ only in their choice of `D`:
//!
//! * [`i64`] / [`f64`] — SQL `COUNT`/`SUM` aggregates,
//! * [`cofactor`] — the degree-*m* matrix ring `(c, s, Q)` for linear
//!   regression gradients (Definition 6.2),
//! * [`relational`] — the relational data ring `F[Z]` storing query
//!   results in payloads (Definition 6.4),
//! * [`degree`] — the degree-indexed aggregate map used by the SQL-OPT
//!   baseline in §7,
//! * [`vector`] — element-wise product rings (`R²`, `R³`, …) and generic
//!   pair/triple rings,
//! * [`boolean`] — Boolean and max-product **semirings** (no additive
//!   inverse; usable for evaluation but not for deletions).

pub mod boolean;
pub mod cofactor;
pub mod degree;
pub mod numeric;
pub mod relational;
pub mod vector;

use std::fmt::Debug;

/// A commutative monoid under `+` and a monoid under `*`, with `*`
/// distributing over `+` and `0 * a = a * 0 = 0` (Appendix A).
///
/// `*` need **not** be commutative (e.g. the matrix ring); implementors
/// must preserve operand order.
pub trait Semiring: Clone + Debug + PartialEq + Send + Sync + 'static {
    /// Additive identity.
    fn zero() -> Self;

    /// Multiplicative identity.
    fn one() -> Self;

    /// `self += other`.
    fn add_assign(&mut self, other: &Self);

    /// `self * other` (order preserved for non-commutative payloads).
    fn mul(&self, other: &Self) -> Self;

    /// `self + other`.
    fn add(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.add_assign(other);
        s
    }

    /// True iff this is the additive identity. Relations erase keys whose
    /// payload becomes zero, which is what makes inserts and deletes
    /// uniform (paper §2).
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Heap bytes owned by this value beyond `size_of::<Self>()`
    /// (for memory accounting).
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// A [`Semiring`] with additive inverses — required for incremental
/// maintenance, where deletions are keys with negated payloads.
pub trait Ring: Semiring {
    /// The additive inverse `-self`.
    fn neg(&self) -> Self;

    /// `self - other`.
    fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }
}

/// Asserts the ring axioms (Appendix A, Definition A.1) on three sample
/// elements. Used by unit and property tests of every ring; exposed so
/// downstream crates can check custom rings too.
pub fn check_ring_axioms<R: Ring>(a: &R, b: &R, c: &R) {
    // (1) commutativity of +
    assert_eq!(a.add(b), b.add(a), "a+b != b+a");
    // (2) associativity of +
    assert_eq!(a.add(b).add(c), a.add(&b.add(c)), "(a+b)+c != a+(b+c)");
    // (3) additive identity
    assert_eq!(a.add(&R::zero()), *a, "a+0 != a");
    assert_eq!(R::zero().add(a), *a, "0+a != a");
    // (4) additive inverse
    assert!(a.add(&a.neg()).is_zero(), "a + (-a) != 0");
    assert!(a.neg().add(a).is_zero(), "(-a) + a != 0");
    // (5) associativity of *
    assert_eq!(a.mul(b).mul(c), a.mul(&b.mul(c)), "(a*b)*c != a*(b*c)");
    // (6) multiplicative identity
    assert_eq!(a.mul(&R::one()), *a, "a*1 != a");
    assert_eq!(R::one().mul(a), *a, "1*a != a");
    // (7) distributivity (both sides; * may be non-commutative)
    assert_eq!(
        a.mul(&b.add(c)),
        a.mul(b).add(&a.mul(c)),
        "a*(b+c) != a*b + a*c"
    );
    assert_eq!(
        a.add(b).mul(c),
        a.mul(c).add(&b.mul(c)),
        "(a+b)*c != a*c + b*c"
    );
    // semiring annihilation
    assert!(a.mul(&R::zero()).is_zero(), "a*0 != 0");
    assert!(R::zero().mul(a).is_zero(), "0*a != 0");
}

/// Approximate-equality variant of [`check_ring_axioms`] for rings over
/// floating point, where associativity/distributivity hold only up to
/// rounding.
pub fn check_ring_axioms_approx<R: Ring>(a: &R, b: &R, c: &R, close: impl Fn(&R, &R) -> bool) {
    assert!(close(&a.add(b), &b.add(a)), "a+b !~ b+a");
    assert!(close(&a.add(b).add(c), &a.add(&b.add(c))), "+ not assoc");
    assert!(close(&a.add(&R::zero()), a), "a+0 !~ a");
    assert!(a.add(&a.neg()).is_zero(), "a + (-a) != 0");
    assert!(close(&a.mul(b).mul(c), &a.mul(&b.mul(c))), "* not assoc");
    assert!(close(&a.mul(&R::one()), a), "a*1 !~ a");
    assert!(close(&R::one().mul(a), a), "1*a !~ a");
    assert!(
        close(&a.mul(&b.add(c)), &a.mul(b).add(&a.mul(c))),
        "left distributivity"
    );
    assert!(
        close(&a.add(b).mul(c), &a.mul(c).add(&b.mul(c))),
        "right distributivity"
    );
}
