//! Scalar rings: `Z` (as `i64`) and `R` (as `f64`).
//!
//! `i64` is the ring used for `COUNT` queries and tuple multiplicities
//! (paper Example 2.2); `f64` serves `SUM` aggregates over numeric
//! columns. Strictly speaking IEEE-754 doubles only approximate a ring
//! (addition is not associative under rounding); all float-ring tests use
//! approximate comparisons.

use super::{Ring, Semiring};

impl Semiring for i64 {
    #[inline]
    fn zero() -> Self {
        0
    }

    #[inline]
    fn one() -> Self {
        1
    }

    #[inline]
    fn add_assign(&mut self, other: &Self) {
        *self = self.wrapping_add(*other);
    }

    #[inline]
    fn mul(&self, other: &Self) -> Self {
        self.wrapping_mul(*other)
    }

    #[inline]
    fn is_zero(&self) -> bool {
        *self == 0
    }
}

impl Ring for i64 {
    #[inline]
    fn neg(&self) -> Self {
        self.wrapping_neg()
    }
}

impl Semiring for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }

    #[inline]
    fn one() -> Self {
        1.0
    }

    #[inline]
    fn add_assign(&mut self, other: &Self) {
        *self += *other;
    }

    #[inline]
    fn mul(&self, other: &Self) -> Self {
        self * other
    }

    #[inline]
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
}

impl Ring for f64 {
    #[inline]
    fn neg(&self) -> Self {
        -self
    }
}

#[cfg(test)]
mod tests {
    use super::super::{check_ring_axioms, Ring, Semiring};

    #[test]
    fn i64_axioms() {
        check_ring_axioms(&3i64, &-7i64, &11i64);
        check_ring_axioms(&0i64, &1i64, &-1i64);
    }

    #[test]
    fn f64_basic() {
        assert_eq!(<f64 as Semiring>::zero(), 0.0);
        assert_eq!(2.0f64.mul(&3.0), 6.0);
        assert_eq!(Ring::neg(&2.0f64), -2.0);
        assert!(Semiring::is_zero(&0.0f64));
        assert!(!Semiring::is_zero(&1e-300f64));
    }

    #[test]
    fn i64_deletion_cancels() {
        // insert then delete returns to zero — the uniform-update property.
        let mut p = 5i64;
        p.add_assign(&Ring::neg(&5i64));
        assert!(Semiring::is_zero(&p));
    }

    proptest::proptest! {
        #[test]
        fn i64_axioms_prop(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
            check_ring_axioms(&a, &b, &c);
        }
    }
}
