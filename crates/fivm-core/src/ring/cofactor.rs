//! The degree-*m* matrix ring for regression gradients (Definition 6.2).
//!
//! Elements are triples `(c, s, Q)` where `c ∈ Z` counts tuples, `s` is
//! the vector of per-variable sums and `Q` the (symmetric) matrix of sums
//! of products of variable pairs. The ring product shares computation
//! across the quadratically many aggregates:
//!
//! ```text
//! a + b = (ca + cb,  sa + sb,  Qa + Qb)
//! a * b = (ca·cb,  cb·sa + ca·sb,  cb·Qa + ca·Qb + sa·sbᵀ + sb·saᵀ)
//! ```
//!
//! Two representations are provided:
//!
//! * [`Cofactor`] — **sparse blocks**: only non-zero entries are stored,
//!   exactly the “store blocks of matrices with non-zero values and
//!   assemble larger matrices towards the root” optimization from §6.2.
//!   Symmetry is exploited by keeping only the upper triangle.
//! * [`DenseCofactor`] — fixed-dimension dense triangular storage; used
//!   for final assembly and as an ablation point for the benefit of the
//!   sparse encoding.
//!
//! Lifting (paper §6.2): for variable index `j` and value `x`,
//! `g_j(x) = (1, s = x·e_j, Q = x²·e_j e_jᵀ)` — see [`Cofactor::lift`].

use super::{Ring, Semiring};
use crate::value::Value;

/// Packs an upper-triangle coordinate `(i ≤ j)` into a single sort key.
#[inline]
fn pack(i: u32, j: u32) -> u64 {
    debug_assert!(i <= j);
    (u64::from(i) << 32) | u64::from(j)
}

/// Unpacks a coordinate packed by [`pack`].
#[inline]
pub fn unpack(k: u64) -> (u32, u32) {
    ((k >> 32) as u32, k as u32)
}

/// Merges `b` into `a` (both sorted by key), scaling: `a := a*ca + b*cb`.
fn merge_scaled<K: Ord + Copy>(a: &[(K, f64)], ca: f64, b: &[(K, f64)], cb: f64) -> Vec<(K, f64)> {
    if ca == 1.0 && b.is_empty() {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                push_nz(&mut out, a[i].0, a[i].1 * ca);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                push_nz(&mut out, b[j].0, b[j].1 * cb);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                push_nz(&mut out, a[i].0, a[i].1 * ca + b[j].1 * cb);
                i += 1;
                j += 1;
            }
        }
    }
    for &(k, v) in &a[i..] {
        push_nz(&mut out, k, v * ca);
    }
    for &(k, v) in &b[j..] {
        push_nz(&mut out, k, v * cb);
    }
    out
}

#[inline]
fn push_nz<K>(out: &mut Vec<(K, f64)>, k: K, v: f64) {
    if v != 0.0 {
        out.push((k, v));
    }
}

/// Sparse-block element of the degree-*m* matrix ring.
///
/// `sums` and `prods` are sorted by index; `prods` holds the upper
/// triangle only (`i ≤ j`). Entries that become exactly `0.0` are pruned,
/// so equal aggregates have equal representations and exact deletions
/// cancel back to [`Semiring::zero`].
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Cofactor {
    /// Tuple count `c` (the `SUM(1)` aggregate).
    pub count: i64,
    /// Sparse linear aggregates: `(variable index, SUM(x_i))`, sorted.
    pub sums: Vec<(u32, f64)>,
    /// Sparse quadratic aggregates: `(packed (i,j) with i ≤ j,
    /// SUM(x_i · x_j))`, sorted by packed key.
    pub prods: Vec<(u64, f64)>,
}

impl Cofactor {
    /// The lifting function `g_j(x)` of §6.2: count 1, `s_j = x`,
    /// `Q_(j,j) = x²`.
    pub fn lift(j: u32, x: f64) -> Self {
        Cofactor {
            count: 1,
            sums: vec![(j, x)],
            prods: vec![(pack(j, j), x * x)],
        }
    }

    /// Lifting from a key [`Value`]: ints widen to doubles, interned
    /// symbols enter by their categorical code ([`Value::feature_code`]
    /// — the same integer-code encoding the regression workloads used
    /// before categorical columns became strings).
    pub fn lift_value(j: u32, v: &Value) -> Self {
        Self::lift(j, v.feature_code())
    }

    /// Linear aggregate for variable `i`, or 0.
    pub fn sum(&self, i: u32) -> f64 {
        self.sums
            .binary_search_by_key(&i, |e| e.0)
            .map(|p| self.sums[p].1)
            .unwrap_or(0.0)
    }

    /// Quadratic aggregate for the unordered pair `{i, j}`, or 0.
    pub fn prod(&self, i: u32, j: u32) -> f64 {
        let key = pack(i.min(j), i.max(j));
        self.prods
            .binary_search_by_key(&key, |e| e.0)
            .map(|p| self.prods[p].1)
            .unwrap_or(0.0)
    }

    /// Assemble the dense `(c, s, Q)` triple of dimension `m`, with `Q`
    /// returned as a full (mirrored) row-major `m × m` matrix — the shape
    /// the regression trainer consumes.
    pub fn to_dense(&self, m: usize) -> (i64, Vec<f64>, Vec<f64>) {
        let mut s = vec![0.0; m];
        for &(i, v) in &self.sums {
            s[i as usize] = v;
        }
        let mut q = vec![0.0; m * m];
        for &(k, v) in &self.prods {
            let (i, j) = unpack(k);
            q[i as usize * m + j as usize] = v;
            q[j as usize * m + i as usize] = v;
        }
        (self.count, s, q)
    }
}

impl Semiring for Cofactor {
    fn zero() -> Self {
        Cofactor::default()
    }

    fn one() -> Self {
        Cofactor {
            count: 1,
            sums: Vec::new(),
            prods: Vec::new(),
        }
    }

    fn add_assign(&mut self, other: &Self) {
        self.count += other.count;
        self.sums = merge_scaled(&self.sums, 1.0, &other.sums, 1.0);
        self.prods = merge_scaled(&self.prods, 1.0, &other.prods, 1.0);
    }

    fn mul(&self, other: &Self) -> Self {
        let ca = self.count as f64;
        let cb = other.count as f64;
        // Outer-product contribution sa·sbᵀ + sb·saᵀ, upper triangle:
        // entry (i,j), i<j gets sa_i·sb_j + sb_i·sa_j; (i,i) gets 2·sa_i·sb_i.
        let mut outer: Vec<(u64, f64)> = Vec::with_capacity(self.sums.len() * other.sums.len());
        for &(i, x) in &self.sums {
            for &(j, y) in &other.sums {
                let (lo, hi) = (i.min(j), i.max(j));
                // Diagonal entries receive both sa_i·sb_i and sb_i·sa_i;
                // off-diagonal (i,j)/(j,i) contributions arrive as two
                // distinct ordered pairs and coalesce below.
                let v = if i == j { 2.0 * x * y } else { x * y };
                outer.push((pack(lo, hi), v));
            }
        }
        outer.sort_unstable_by_key(|e| e.0);
        // Coalesce duplicates (the (i,j) and (j,i) cross terms, and (i,i)
        // doubling, land on the same packed key).
        let mut coalesced: Vec<(u64, f64)> = Vec::with_capacity(outer.len());
        for (k, v) in outer {
            match coalesced.last_mut() {
                Some(last) if last.0 == k => last.1 += v,
                _ => coalesced.push((k, v)),
            }
        }
        let scaled = merge_scaled(&self.prods, cb, &other.prods, ca);
        Cofactor {
            count: self.count * other.count,
            sums: merge_scaled(&self.sums, cb, &other.sums, ca),
            prods: merge_scaled(&scaled, 1.0, &coalesced, 1.0),
        }
    }

    fn is_zero(&self) -> bool {
        self.count == 0 && self.sums.is_empty() && self.prods.is_empty()
    }

    fn heap_bytes(&self) -> usize {
        self.sums.capacity() * std::mem::size_of::<(u32, f64)>()
            + self.prods.capacity() * std::mem::size_of::<(u64, f64)>()
    }
}

impl Ring for Cofactor {
    fn neg(&self) -> Self {
        Cofactor {
            count: -self.count,
            sums: self.sums.iter().map(|&(k, v)| (k, -v)).collect(),
            prods: self.prods.iter().map(|&(k, v)| (k, -v)).collect(),
        }
    }
}

/// Dense fixed-dimension element of the degree-*m* matrix ring.
///
/// `m == 0` encodes a “scalar-like” element (the images of
/// [`Semiring::zero`]/[`Semiring::one`] must be dimensionless); elements
/// promote to the partner’s dimension on first combination.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct DenseCofactor {
    /// Dimension (number of query variables), 0 for scalar-like.
    pub m: u32,
    /// Tuple count.
    pub count: i64,
    /// Dense linear aggregates, length `m`.
    pub sums: Box<[f64]>,
    /// Upper-triangular quadratic aggregates, row-major, length
    /// `m(m+1)/2`.
    pub prods: Box<[f64]>,
}

impl DenseCofactor {
    /// Index of `(i, j)` with `i ≤ j` in the triangular layout.
    #[inline]
    pub fn tri_index(m: u32, i: u32, j: u32) -> usize {
        debug_assert!(i <= j && j < m);
        let (m, i, j) = (m as usize, i as usize, j as usize);
        i * m - i * (i + 1) / 2 + j
    }

    /// Lifting `g_j(x)` at dimension `m`.
    pub fn lift(m: u32, j: u32, x: f64) -> Self {
        let mut sums = vec![0.0; m as usize].into_boxed_slice();
        let mut prods = vec![0.0; (m as usize * (m as usize + 1)) / 2].into_boxed_slice();
        sums[j as usize] = x;
        prods[Self::tri_index(m, j, j)] = x * x;
        DenseCofactor {
            m,
            count: 1,
            sums,
            prods,
        }
    }

    fn promote(&mut self, m: u32) {
        if self.m == 0 && m > 0 {
            self.m = m;
            self.sums = vec![0.0; m as usize].into_boxed_slice();
            self.prods = vec![0.0; (m as usize * (m as usize + 1)) / 2].into_boxed_slice();
        }
    }

    /// Quadratic aggregate for the unordered pair `{i, j}`.
    pub fn prod(&self, i: u32, j: u32) -> f64 {
        if self.m == 0 {
            return 0.0;
        }
        self.prods[Self::tri_index(self.m, i.min(j), i.max(j))]
    }

    /// Assemble the dense `(c, s, Q)` triple (full mirrored `Q`).
    pub fn to_dense(&self, m: usize) -> (i64, Vec<f64>, Vec<f64>) {
        let mut s = vec![0.0; m];
        let mut q = vec![0.0; m * m];
        if self.m != 0 {
            assert_eq!(self.m as usize, m, "dimension mismatch");
            s.copy_from_slice(&self.sums);
            for i in 0..m {
                for j in i..m {
                    let v = self.prods[Self::tri_index(self.m, i as u32, j as u32)];
                    q[i * m + j] = v;
                    q[j * m + i] = v;
                }
            }
        }
        (self.count, s, q)
    }
}

impl Semiring for DenseCofactor {
    fn zero() -> Self {
        DenseCofactor::default()
    }

    fn one() -> Self {
        DenseCofactor {
            count: 1,
            ..DenseCofactor::default()
        }
    }

    fn add_assign(&mut self, other: &Self) {
        self.count += other.count;
        if other.m == 0 {
            return;
        }
        self.promote(other.m);
        assert_eq!(self.m, other.m, "cofactor dimension mismatch");
        for (a, b) in self.sums.iter_mut().zip(other.sums.iter()) {
            *a += *b;
        }
        for (a, b) in self.prods.iter_mut().zip(other.prods.iter()) {
            *a += *b;
        }
    }

    fn mul(&self, other: &Self) -> Self {
        let ca = self.count as f64;
        let cb = other.count as f64;
        // Scalar-like operands just scale the partner.
        if self.m == 0 || other.m == 0 {
            let (scale, full) = if self.m == 0 { (ca, other) } else { (cb, self) };
            return DenseCofactor {
                m: full.m,
                count: self.count * other.count,
                sums: full.sums.iter().map(|v| v * scale).collect(),
                prods: full.prods.iter().map(|v| v * scale).collect(),
            };
        }
        assert_eq!(self.m, other.m, "cofactor dimension mismatch");
        let m = self.m;
        let mut sums = vec![0.0; m as usize].into_boxed_slice();
        for i in 0..m as usize {
            sums[i] = cb * self.sums[i] + ca * other.sums[i];
        }
        let mut prods = vec![0.0; (m as usize * (m as usize + 1)) / 2].into_boxed_slice();
        let mut idx = 0;
        for i in 0..m as usize {
            for j in i..m as usize {
                prods[idx] = cb * self.prods[idx]
                    + ca * other.prods[idx]
                    + self.sums[i] * other.sums[j]
                    + other.sums[i] * self.sums[j];
                idx += 1;
            }
        }
        DenseCofactor {
            m,
            count: self.count * other.count,
            sums,
            prods,
        }
    }

    fn is_zero(&self) -> bool {
        self.count == 0
            && self.sums.iter().all(|&v| v == 0.0)
            && self.prods.iter().all(|&v| v == 0.0)
    }

    fn heap_bytes(&self) -> usize {
        (self.sums.len() + self.prods.len()) * std::mem::size_of::<f64>()
    }
}

impl Ring for DenseCofactor {
    fn neg(&self) -> Self {
        DenseCofactor {
            m: self.m,
            count: -self.count,
            sums: self.sums.iter().map(|v| -v).collect(),
            prods: self.prods.iter().map(|v| -v).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{check_ring_axioms_approx, Ring, Semiring};
    use super::*;

    fn approx(a: &Cofactor, b: &Cofactor) -> bool {
        if a.count != b.count {
            return false;
        }
        let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs()));
        let keys: std::collections::BTreeSet<u32> =
            a.sums.iter().chain(&b.sums).map(|e| e.0).collect();
        if !keys.iter().all(|&k| close(a.sum(k), b.sum(k))) {
            return false;
        }
        let pkeys: std::collections::BTreeSet<u64> =
            a.prods.iter().chain(&b.prods).map(|e| e.0).collect();
        pkeys.iter().all(|&k| {
            let (i, j) = unpack(k);
            close(a.prod(i, j), b.prod(i, j))
        })
    }

    #[test]
    fn identities() {
        let x = Cofactor::lift(2, 3.5);
        assert_eq!(x.mul(&Cofactor::one()), x);
        assert_eq!(Cofactor::one().mul(&x), x);
        assert!(x.mul(&Cofactor::zero()).is_zero());
        assert_eq!(x.add(&Cofactor::zero()), x);
    }

    #[test]
    fn deletion_cancels_exactly() {
        let x = Cofactor::lift(1, 2.25);
        let mut acc = x.clone();
        acc.add_assign(&x.neg());
        assert!(acc.is_zero());
    }

    #[test]
    fn ring_axioms_on_samples() {
        let a = Cofactor::lift(0, 2.0);
        let b = Cofactor::lift(1, -3.0).add(&Cofactor::lift(2, 1.0));
        let c = Cofactor::lift(2, 0.5);
        check_ring_axioms_approx(&a, &b, &c, approx);
    }

    /// Reproduces the paper’s worked product from Example 6.3:
    /// `V@C_ST[a2] = V@D_T[c2] * V@E_S[a2,c2] * g_C(c2)`.
    ///
    /// With 0-based variable order (A,B,C,D,E) = (0..4), c2=10, d2=1,
    /// d3=2, e4=5, the expected payload is
    /// `(2, [.,.,2c2, d2+d3, 2e4], Q33=2c2², Q34=c2(d2+d3), Q35=2c2e4,
    ///  Q44=d2²+d3², Q45=(d2+d3)e4, Q55=2e4²)` (paper’s 1-based indices).
    #[test]
    fn example_6_3_product() {
        let (c2, d2, d3, e4) = (10.0, 1.0, 2.0, 5.0);
        let vt = Cofactor::lift(3, d2).add(&Cofactor::lift(3, d3));
        let vs = Cofactor::lift(4, e4);
        let gc = Cofactor::lift(2, c2);
        let out = vt.mul(&vs).mul(&gc);

        assert_eq!(out.count, 2);
        assert_eq!(out.sum(2), 2.0 * c2);
        assert_eq!(out.sum(3), d2 + d3);
        assert_eq!(out.sum(4), 2.0 * e4);
        assert_eq!(out.prod(2, 2), 2.0 * c2 * c2);
        assert_eq!(out.prod(2, 3), c2 * (d2 + d3));
        assert_eq!(out.prod(2, 4), 2.0 * c2 * e4);
        assert_eq!(out.prod(3, 3), d2 * d2 + d3 * d3);
        assert_eq!(out.prod(3, 4), (d2 + d3) * e4);
        assert_eq!(out.prod(4, 4), 2.0 * e4 * e4);
        // untouched coordinates stay zero
        assert_eq!(out.sum(0), 0.0);
        assert_eq!(out.prod(0, 1), 0.0);
    }

    #[test]
    fn sparse_and_dense_agree() {
        let m = 5;
        let sparse = Cofactor::lift(1, 2.0)
            .add(&Cofactor::lift(3, -1.0))
            .mul(&Cofactor::lift(2, 4.0));
        let dense = DenseCofactor::lift(m, 1, 2.0)
            .add(&DenseCofactor::lift(m, 3, -1.0))
            .mul(&DenseCofactor::lift(m, 2, 4.0));
        assert_eq!(sparse.to_dense(m as usize), dense.to_dense(m as usize));
    }

    #[test]
    fn dense_scalar_promotion() {
        let m = 3;
        let x = DenseCofactor::lift(m, 0, 2.0);
        // one * x == x, zero + x == x even though identities are m=0.
        assert_eq!(DenseCofactor::one().mul(&x), x);
        assert_eq!(x.mul(&DenseCofactor::one()), x);
        let mut z = DenseCofactor::zero();
        z.add_assign(&x);
        assert_eq!(z, x);
        assert!(x.mul(&DenseCofactor::zero()).is_zero());
    }

    #[test]
    fn tri_index_layout() {
        let m = 4;
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..m {
            for j in i..m {
                seen.insert(DenseCofactor::tri_index(m, i, j));
            }
        }
        assert_eq!(seen.len(), (m as usize * (m as usize + 1)) / 2);
        assert_eq!(*seen.iter().next().unwrap(), 0);
        assert_eq!(
            *seen.iter().last().unwrap(),
            (m as usize * (m as usize + 1)) / 2 - 1
        );
    }

    proptest::proptest! {
        #[test]
        fn axioms_prop(
            xs in proptest::collection::vec((0u32..4, -4i64..5), 1..4),
            ys in proptest::collection::vec((0u32..4, -4i64..5), 1..4),
            zs in proptest::collection::vec((0u32..4, -4i64..5), 1..4),
        ) {
            let build = |v: &Vec<(u32, i64)>| {
                let mut acc = Cofactor::zero();
                for &(j, x) in v {
                    acc.add_assign(&Cofactor::lift(j, x as f64));
                }
                acc
            };
            // integer-valued data keeps float arithmetic exact
            check_ring_axioms_approx(&build(&xs), &build(&ys), &build(&zs), approx);
        }

        #[test]
        fn sparse_dense_agree_prop(
            xs in proptest::collection::vec((0u32..4, -4i64..5), 1..5),
            ys in proptest::collection::vec((0u32..4, -4i64..5), 1..5),
        ) {
            let m = 4u32;
            let (mut s1, mut d1) = (Cofactor::zero(), DenseCofactor::zero());
            for &(j, x) in &xs {
                s1.add_assign(&Cofactor::lift(j, x as f64));
                d1.add_assign(&DenseCofactor::lift(m, j, x as f64));
            }
            let (mut s2, mut d2) = (Cofactor::zero(), DenseCofactor::zero());
            for &(j, x) in &ys {
                s2.add_assign(&Cofactor::lift(j, x as f64));
                d2.add_assign(&DenseCofactor::lift(m, j, x as f64));
            }
            proptest::prop_assert_eq!(s1.mul(&s2).to_dense(4), d1.mul(&d2).to_dense(4));
            proptest::prop_assert_eq!(s1.add(&s2).to_dense(4), d1.add(&d2).to_dense(4));
        }
    }
}
