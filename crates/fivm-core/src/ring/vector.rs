//! Product rings: element-wise pairs, triples and fixed-size arrays.
//!
//! The paper (§2) lists `R²` and `R³` among example rings: products of
//! rings are rings with element-wise operations. These are handy for
//! maintaining several independent aggregates in one pass — e.g.
//! `(f64, f64)` maintains `SUM(x)` and `SUM(x²)` together — without the
//! sharing across aggregates that the cofactor ring adds.

use super::{Ring, Semiring};

impl<A: Semiring, B: Semiring> Semiring for (A, B) {
    fn zero() -> Self {
        (A::zero(), B::zero())
    }

    fn one() -> Self {
        (A::one(), B::one())
    }

    fn add_assign(&mut self, other: &Self) {
        self.0.add_assign(&other.0);
        self.1.add_assign(&other.1);
    }

    fn mul(&self, other: &Self) -> Self {
        (self.0.mul(&other.0), self.1.mul(&other.1))
    }

    fn is_zero(&self) -> bool {
        self.0.is_zero() && self.1.is_zero()
    }

    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<A: Ring, B: Ring> Ring for (A, B) {
    fn neg(&self) -> Self {
        (self.0.neg(), self.1.neg())
    }
}

impl<A: Semiring, B: Semiring, C: Semiring> Semiring for (A, B, C) {
    fn zero() -> Self {
        (A::zero(), B::zero(), C::zero())
    }

    fn one() -> Self {
        (A::one(), B::one(), C::one())
    }

    fn add_assign(&mut self, other: &Self) {
        self.0.add_assign(&other.0);
        self.1.add_assign(&other.1);
        self.2.add_assign(&other.2);
    }

    fn mul(&self, other: &Self) -> Self {
        (
            self.0.mul(&other.0),
            self.1.mul(&other.1),
            self.2.mul(&other.2),
        )
    }

    fn is_zero(&self) -> bool {
        self.0.is_zero() && self.1.is_zero() && self.2.is_zero()
    }

    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes() + self.2.heap_bytes()
    }
}

impl<A: Ring, B: Ring, C: Ring> Ring for (A, B, C) {
    fn neg(&self) -> Self {
        (self.0.neg(), self.1.neg(), self.2.neg())
    }
}

/// Fixed-size element-wise product ring `Rⁿ` over `Copy` scalars.
impl<R: Semiring + Copy, const N: usize> Semiring for [R; N] {
    fn zero() -> Self {
        [R::zero(); N]
    }

    fn one() -> Self {
        [R::one(); N]
    }

    fn add_assign(&mut self, other: &Self) {
        for (a, b) in self.iter_mut().zip(other.iter()) {
            a.add_assign(b);
        }
    }

    fn mul(&self, other: &Self) -> Self {
        let mut out = *self;
        for (a, b) in out.iter_mut().zip(other.iter()) {
            *a = a.mul(b);
        }
        out
    }

    fn is_zero(&self) -> bool {
        self.iter().all(Semiring::is_zero)
    }
}

impl<R: Ring + Copy, const N: usize> Ring for [R; N] {
    fn neg(&self) -> Self {
        let mut out = *self;
        for a in out.iter_mut() {
            *a = a.neg();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::{check_ring_axioms, Ring, Semiring};

    #[test]
    fn pair_ring_axioms() {
        check_ring_axioms(&(2i64, -3i64), &(5i64, 7i64), &(-1i64, 4i64));
    }

    #[test]
    fn triple_ring_axioms() {
        check_ring_axioms(
            &(1i64, 2i64, 3i64),
            &(-4i64, 5i64, 0i64),
            &(7i64, -8i64, 9i64),
        );
    }

    #[test]
    fn array_ring_axioms() {
        check_ring_axioms(&[1i64, -2, 3], &[0i64, 5, -6], &[7i64, 8, 9]);
    }

    #[test]
    fn pair_tracks_two_aggregates() {
        // (SUM(x), SUM(x^2)) via pair payloads: lift x -> (x, x*x), combine by +.
        let xs = [2.0f64, 3.0, 4.0];
        let mut acc = <(f64, f64)>::zero();
        for x in xs {
            acc.add_assign(&(x, x * x));
        }
        assert_eq!(acc, (9.0, 29.0));
        // delete 3.0
        acc.add_assign(&Ring::neg(&(3.0, 9.0)));
        assert_eq!(acc, (6.0, 20.0));
    }

    #[test]
    fn array_zero_one() {
        assert_eq!(<[i64; 4]>::zero(), [0, 0, 0, 0]);
        assert_eq!(<[i64; 4]>::one(), [1, 1, 1, 1]);
        assert!(<[i64; 2]>::zero().is_zero());
    }
}
