//! The SQL-OPT aggregate encoding: one aggregate column indexed by
//! variable degrees (paper §7, “SQL-OPT”).
//!
//! Where the cofactor ring packs the regression aggregates into dense
//! vector/matrix blocks, SQL-OPT represents each aggregate *explicitly*,
//! keyed by the degrees of the query variables: the count has all degrees
//! zero, `SUM(x_i)` has degree 1 on `i`, and `SUM(x_i·x_j)` degree 1 on
//! each of `i, j` (2 on `i = j`). Multiplication convolves degree
//! vectors, truncated at total degree 2 (higher degrees can never
//! contribute to the degree-≤2 aggregates the cofactor matrix needs,
//! because every query variable is lifted exactly once).
//!
//! The hash-map-per-payload representation is exactly what makes SQL-OPT
//! slower than F-IVM’s ring in Figure 7 — the paper’s point that implicit
//! vector/matrix encodings beat explicit degree indexing.

//! The second half of this module is the **degree bookkeeping** for the
//! IVM^ε heavy/light partitioning of cyclic queries (Kara et al.,
//! “Counting Triangles under Updates in Worst-Case Optimal Time”):
//! [`DegreeTracker`] counts, per partition-key value, the number of
//! distinct tuples currently in the relation with that key, and records
//! the key's current part assignment; [`PartitionThreshold`] is the
//! doubling/halving hysteresis band around Θ(N^ε) that decides when a
//! key migrates between parts.

use super::{Ring, Semiring};
use crate::hash::{FxHashMap, FxHashSet};
use crate::Value;

/// Sentinel for “no variable” in a degree pair.
pub const NONE: u32 = u32::MAX;

/// Degree descriptor for an aggregate of total degree ≤ 2 over variables:
/// `(NONE, NONE)` = count, `(i, NONE)` = `SUM(x_i)`, `(i, j)` with
/// `i ≤ j` = `SUM(x_i · x_j)`.
pub type DegreePair = (u32, u32);

/// An element of the degree-indexed aggregate “ring” (truncated at total
/// degree 2).
#[derive(Clone, Debug, Default)]
pub struct DegreeRing {
    /// Aggregate column: degree descriptor → value.
    pub aggs: FxHashMap<DegreePair, f64>,
}

impl DegreeRing {
    /// Lifting `g_i(x)`: count 1, `SUM(x_i) = x`, `SUM(x_i²) = x²`.
    pub fn lift(i: u32, x: f64) -> Self {
        let mut aggs = FxHashMap::default();
        aggs.insert((NONE, NONE), 1.0);
        aggs.insert((i, NONE), x);
        aggs.insert((i, i), x * x);
        DegreeRing { aggs }
    }

    /// The value of an aggregate (0 if absent).
    pub fn get(&self, key: DegreePair) -> f64 {
        self.aggs.get(&key).copied().unwrap_or(0.0)
    }

    /// Count aggregate.
    pub fn count(&self) -> f64 {
        self.get((NONE, NONE))
    }

    /// `SUM(x_i)`.
    pub fn sum(&self, i: u32) -> f64 {
        self.get((i, NONE))
    }

    /// `SUM(x_i · x_j)` (unordered pair).
    pub fn prod(&self, i: u32, j: u32) -> f64 {
        self.get((i.min(j), i.max(j)))
    }

    /// Total degree of a descriptor.
    fn degree(k: DegreePair) -> u32 {
        u32::from(k.0 != NONE) + u32::from(k.1 != NONE)
    }

    /// Combine two degree descriptors, or `None` if the product exceeds
    /// total degree 2. Returns the descriptor and a multiplier: products
    /// of two linear aggregates on the *same* variable count twice,
    /// matching Definition 6.2’s symmetric outer product
    /// `sa·sbᵀ + sb·saᵀ` (whose diagonal doubles) so that this encoding
    /// and the cofactor ring are the same ring under two representations.
    fn combine(a: DegreePair, b: DegreePair) -> Option<(DegreePair, f64)> {
        if Self::degree(a) + Self::degree(b) > 2 {
            return None;
        }
        let mut vars = [a.0, a.1, b.0, b.1];
        vars.sort_unstable(); // NONE == u32::MAX sorts last
        let mult = if Self::degree(a) == 1 && Self::degree(b) == 1 && a.0 == b.0 {
            2.0
        } else {
            1.0
        };
        Some(((vars[0], vars[1]), mult))
    }
}

impl PartialEq for DegreeRing {
    fn eq(&self, other: &Self) -> bool {
        // Compare supports modulo explicit zeros.
        self.aggs
            .iter()
            .all(|(k, v)| (*v == 0.0) == (other.get(*k) == 0.0) && *v == other.get(*k))
            && other.aggs.iter().all(|(k, v)| *v == self.get(*k))
    }
}

impl Semiring for DegreeRing {
    fn zero() -> Self {
        DegreeRing::default()
    }

    fn one() -> Self {
        let mut aggs = FxHashMap::default();
        aggs.insert((NONE, NONE), 1.0);
        DegreeRing { aggs }
    }

    fn add_assign(&mut self, other: &Self) {
        for (&k, &v) in &other.aggs {
            let e = self.aggs.entry(k).or_insert(0.0);
            *e += v;
            if *e == 0.0 {
                self.aggs.remove(&k);
            }
        }
    }

    fn mul(&self, other: &Self) -> Self {
        let mut out = FxHashMap::default();
        for (&ka, &va) in &self.aggs {
            for (&kb, &vb) in &other.aggs {
                if let Some((k, mult)) = Self::combine(ka, kb) {
                    let e = out.entry(k).or_insert(0.0);
                    *e += mult * va * vb;
                }
            }
        }
        out.retain(|_, v| *v != 0.0);
        DegreeRing { aggs: out }
    }

    fn is_zero(&self) -> bool {
        self.aggs.is_empty()
    }

    fn heap_bytes(&self) -> usize {
        self.aggs.len() * (std::mem::size_of::<(DegreePair, f64)>() + 8)
    }
}

impl Ring for DegreeRing {
    fn neg(&self) -> Self {
        DegreeRing {
            aggs: self.aggs.iter().map(|(&k, &v)| (k, -v)).collect(),
        }
    }
}

/// Per-key degree bookkeeping for one heavy/light-partitioned relation.
///
/// The *degree* of a partition-key value is the number of **distinct**
/// tuples currently in the relation whose partition column holds that
/// value (multiplicities don't count — a tuple inserted twice still
/// contributes one to the degree, matching the support semantics of the
/// stores). The tracker also records each key's current **part
/// assignment**: the partition is an explicit assignment map, *not*
/// derived from the degree — any assignment yields a correct partitioned
/// view as long as the stores and auxiliary views are consistent with
/// it; degrees only drive *migration decisions* (see
/// [`PartitionThreshold`]). New keys default to light.
#[derive(Clone, Debug, Default)]
pub struct DegreeTracker {
    degrees: FxHashMap<Value, u32>,
    heavy: FxHashSet<Value>,
}

impl DegreeTracker {
    /// Empty tracker (no keys, everything light).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current degree of `key` (0 if unseen).
    pub fn degree(&self, key: &Value) -> u32 {
        self.degrees.get(key).copied().unwrap_or(0)
    }

    /// Current part assignment of `key`.
    pub fn is_heavy(&self, key: &Value) -> bool {
        self.heavy.contains(key)
    }

    /// Number of keys currently assigned heavy.
    pub fn heavy_count(&self) -> usize {
        self.heavy.len()
    }

    /// Iterate the heavy key set (the delta computation for updates
    /// whose join key is heavy enumerates this — its size is what the
    /// threshold bounds by O(N^{1−ε})).
    pub fn heavy_keys(&self) -> impl Iterator<Item = &Value> {
        self.heavy.iter()
    }

    /// Apply a support transition for `key` (`+1` a distinct tuple
    /// appeared, `-1` one disappeared) and return the new degree.
    pub fn record(&mut self, key: &Value, delta: i32) -> u32 {
        let e = self.degrees.entry(key.clone()).or_insert(0);
        if delta >= 0 {
            *e += delta as u32;
        } else {
            *e = e.saturating_sub((-delta) as u32);
        }
        let d = *e;
        // Keys at degree 0 are dropped once they are light; a heavy key
        // keeps its (zero) entry until the engine demotes it, so the
        // assignment stays observable for the migration check.
        if d == 0 && !self.heavy.contains(key) {
            self.degrees.remove(key);
        }
        d
    }

    /// Set the part assignment of `key`. Called by the engine *after*
    /// it has migrated the key's tuples and fixed up the auxiliary
    /// views — the assignment and the stores must flip together.
    pub fn set_heavy(&mut self, key: &Value, heavy: bool) {
        if heavy {
            self.heavy.insert(key.clone());
        } else {
            self.heavy.remove(key);
            if self.degree(key) == 0 {
                self.degrees.remove(key);
            }
        }
    }

    /// Number of keys with nonzero degree or heavy assignment.
    pub fn tracked_keys(&self) -> usize {
        self.degrees.len()
    }
}

/// The hysteresis band around the heavy/light threshold θ = Θ(N^ε).
///
/// A light key is **promoted** when its degree exceeds `2θ` and a heavy
/// key **demoted** when its degree falls below `θ/2` (strictly:
/// `2·deg < θ`). The sticky zone `[θ/2, 2θ]` guarantees that between two
/// consecutive migrations of the same key at least `(3/2)·θ = Ω(N^ε)`
/// support-changing updates touched it, so a migration's O(deg) cost
/// amortizes to O(N^ε) per update (docs/heavy-light.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionThreshold {
    /// θ itself (≥ 1).
    pub theta: u32,
}

impl PartitionThreshold {
    /// Threshold for a relation population of `n` tuples:
    /// `θ = max(min_theta, ⌈n^ε⌉)`.
    pub fn for_size(n: usize, epsilon: f64, min_theta: u32) -> Self {
        let t = (n as f64).powf(epsilon).ceil();
        PartitionThreshold {
            theta: (t as u32).max(min_theta).max(1),
        }
    }

    /// Should a light key with this degree be promoted to heavy?
    pub fn promotes(&self, degree: u32) -> bool {
        degree > 2 * self.theta
    }

    /// Should a heavy key with this degree be demoted to light?
    pub fn demotes(&self, degree: u32) -> bool {
        2 * degree < self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Ring, Semiring};
    use super::*;
    use crate::ring::cofactor::Cofactor;

    #[test]
    fn identities() {
        let x = DegreeRing::lift(0, 3.0);
        assert_eq!(x.mul(&DegreeRing::one()), x);
        assert_eq!(DegreeRing::one().mul(&x), x);
        assert!(x.mul(&DegreeRing::zero()).is_zero());
        assert_eq!(x.add(&DegreeRing::zero()), x);
    }

    #[test]
    fn deletion_cancels() {
        let x = DegreeRing::lift(2, 1.5);
        let mut acc = x.clone();
        acc.add_assign(&x.neg());
        assert!(acc.is_zero());
    }

    #[test]
    fn product_builds_pair_aggregate() {
        // g_0(2) * g_1(3): count 1, sums 2 and 3, prods 4, 6, 9.
        let p = DegreeRing::lift(0, 2.0).mul(&DegreeRing::lift(1, 3.0));
        assert_eq!(p.count(), 1.0);
        assert_eq!(p.sum(0), 2.0);
        assert_eq!(p.sum(1), 3.0);
        assert_eq!(p.prod(0, 0), 4.0);
        assert_eq!(p.prod(0, 1), 6.0);
        assert_eq!(p.prod(1, 1), 9.0);
    }

    #[test]
    fn truncation_drops_degree_three() {
        let p = DegreeRing::lift(0, 2.0)
            .mul(&DegreeRing::lift(1, 3.0))
            .mul(&DegreeRing::lift(2, 5.0));
        // degree-3 term SUM(x0 x1 x2) must not appear anywhere;
        // all retained aggregates have degree ≤ 2.
        for k in p.aggs.keys() {
            assert!(u32::from(k.0 != NONE) + u32::from(k.1 != NONE) <= 2);
        }
        // and the degree-2 aggregates are still exact
        assert_eq!(p.prod(0, 1), 6.0);
        assert_eq!(p.prod(0, 2), 10.0);
        assert_eq!(p.prod(1, 2), 15.0);
    }

    /// SQL-OPT and the cofactor ring must compute identical aggregates —
    /// they are two encodings of the same mathematical object.
    #[test]
    fn agrees_with_cofactor_ring() {
        let combos: Vec<Vec<(u32, f64)>> = vec![
            vec![(0, 2.0), (1, -1.0)],
            vec![(2, 3.0)],
            vec![(1, 0.5), (3, 4.0)],
        ];
        let build_deg = |v: &[(u32, f64)]| {
            let mut acc = DegreeRing::zero();
            for &(j, x) in v {
                acc.add_assign(&DegreeRing::lift(j, x));
            }
            acc
        };
        let build_cof = |v: &[(u32, f64)]| {
            let mut acc = Cofactor::zero();
            for &(j, x) in v {
                acc.add_assign(&Cofactor::lift(j, x));
            }
            acc
        };
        let d = build_deg(&combos[0])
            .mul(&build_deg(&combos[1]))
            .mul(&build_deg(&combos[2]));
        let c = build_cof(&combos[0])
            .mul(&build_cof(&combos[1]))
            .mul(&build_cof(&combos[2]));
        assert_eq!(d.count() as i64, c.count);
        for i in 0..4u32 {
            assert!((d.sum(i) - c.sum(i)).abs() < 1e-9);
            for j in i..4u32 {
                assert!((d.prod(i, j) - c.prod(i, j)).abs() < 1e-9, "prod({i},{j})");
            }
        }
    }

    #[test]
    fn degree_tracker_counts_and_assigns() {
        let mut t = DegreeTracker::new();
        let k = Value::Int(7);
        assert_eq!(t.degree(&k), 0);
        assert!(!t.is_heavy(&k));
        assert_eq!(t.record(&k, 1), 1);
        assert_eq!(t.record(&k, 1), 2);
        assert_eq!(t.record(&k, -1), 1);
        assert_eq!(t.record(&k, -1), 0);
        // light key at degree 0 is dropped entirely
        assert_eq!(t.tracked_keys(), 0);
        // heavy assignment outlives a zero degree until demotion
        t.record(&k, 1);
        t.set_heavy(&k, true);
        assert!(t.is_heavy(&k));
        assert_eq!(t.heavy_count(), 1);
        t.record(&k, -1);
        assert_eq!(t.degree(&k), 0);
        assert!(t.is_heavy(&k), "assignment is explicit, not degree-derived");
        t.set_heavy(&k, false);
        assert_eq!(t.tracked_keys(), 0);
        assert_eq!(t.heavy_count(), 0);
    }

    #[test]
    fn hysteresis_band_is_sticky() {
        let th = PartitionThreshold { theta: 10 };
        // promote strictly above 2θ
        assert!(!th.promotes(20));
        assert!(th.promotes(21));
        // demote strictly below θ/2
        assert!(!th.demotes(5));
        assert!(th.demotes(4));
        // the sticky zone is non-empty for every θ ≥ 1
        for theta in 1..100 {
            let th = PartitionThreshold { theta };
            assert!(!th.promotes(2 * theta));
            assert!(!th.demotes(theta.div_ceil(2)));
        }
    }

    #[test]
    fn threshold_scales_as_n_to_epsilon() {
        assert_eq!(PartitionThreshold::for_size(0, 0.5, 4).theta, 4);
        assert_eq!(PartitionThreshold::for_size(100, 0.5, 1).theta, 10);
        assert_eq!(PartitionThreshold::for_size(10_000, 0.5, 1).theta, 100);
        assert_eq!(PartitionThreshold::for_size(10_000, 0.25, 1).theta, 10);
    }
}
