//! The relational data ring `F[Z]` (Definition 6.4).
//!
//! Payloads are themselves relations over the `Z` ring: addition is
//! relational union (summing multiplicities) and multiplication is
//! natural join (multiplying multiplicities). With this ring, the same
//! view tree that computes `COUNT` computes conjunctive-query results in
//! its payloads — the paper’s §6.3 and Figure 2e.
//!
//! As the paper’s footnote 2 notes, a fully general ring would need
//! tuples with their own schemas; for the practical uses here each
//! payload carries one schema, unions require equal schemas (the zero —
//! an empty relation — unifies with anything), and products join
//! naturally. Lifting for a free variable `X` maps `x` to the singleton
//! `{(x) → 1}` over schema `{X}`; bound variables lift to the
//! multiplicative identity `{() → 1}`.

use super::{Ring, Semiring};
use crate::hash::FxHashMap;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A relation-over-`Z` payload.
#[derive(Clone, Debug, Default)]
pub struct RelPayload {
    /// Variables of the payload relation, in tuple order.
    pub schema: Schema,
    /// Tuples with non-zero multiplicity.
    pub data: FxHashMap<Tuple, i64>,
}

impl RelPayload {
    /// The singleton `{t → 1}` over `schema`.
    pub fn singleton(schema: Schema, t: Tuple) -> Self {
        assert_eq!(schema.len(), t.len(), "tuple arity must match schema");
        let mut data = FxHashMap::default();
        data.insert(t, 1);
        RelPayload { schema, data }
    }

    /// Lifting for a free variable: `g_X(x) = {(x) → 1}`.
    pub fn lift_free(var_schema: Schema, v: &Value) -> Self {
        Self::singleton(var_schema, Tuple::single(v.clone()))
    }

    /// Number of tuples with non-zero multiplicity.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff no tuple has non-zero multiplicity (the ring zero).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Multiplicity of `t` (0 if absent).
    pub fn multiplicity(&self, t: &Tuple) -> i64 {
        self.data.get(t).copied().unwrap_or(0)
    }

    /// Project onto `vars`, summing multiplicities — used to turn listing
    /// payloads into factorized ones (paper §6.3: “we compute
    /// `⊕_{Y∈T−{X}} P[T]`”).
    pub fn project_onto(&self, vars: &Schema) -> RelPayload {
        if self.data.is_empty() {
            // the zero payload has a canonical empty schema; projecting
            // it anywhere is still zero
            return RelPayload::zero();
        }
        let positions = self
            .schema
            .positions_of(vars.vars())
            .expect("projection variables must be in payload schema");
        let mut data: FxHashMap<Tuple, i64> = FxHashMap::default();
        for (t, &mult) in &self.data {
            let key = t.project(&positions);
            let e = data.entry(key).or_insert(0);
            *e += mult;
        }
        data.retain(|_, m| *m != 0);
        let mut out = RelPayload {
            schema: vars.clone(),
            data,
        };
        out.canonicalize();
        out
    }

    /// Restore the canonical zero form (empty data ⇒ empty schema) so
    /// that all zero payloads compare equal.
    fn canonicalize(&mut self) {
        if self.data.is_empty() {
            self.schema = Schema::empty();
        }
    }

    /// Sorted tuples (for deterministic test output).
    pub fn sorted(&self) -> Vec<(Tuple, i64)> {
        let mut v: Vec<_> = self.data.iter().map(|(t, &m)| (t.clone(), m)).collect();
        v.sort();
        v
    }
}

impl PartialEq for RelPayload {
    fn eq(&self, other: &Self) -> bool {
        if self.data.is_empty() && other.data.is_empty() {
            return true;
        }
        self.schema == other.schema && self.data == other.data
    }
}

impl Semiring for RelPayload {
    fn zero() -> Self {
        RelPayload::default()
    }

    fn one() -> Self {
        let mut data = FxHashMap::default();
        data.insert(Tuple::unit(), 1);
        RelPayload {
            schema: Schema::empty(),
            data,
        }
    }

    fn add_assign(&mut self, other: &Self) {
        if other.data.is_empty() {
            return;
        }
        if self.data.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.schema, other.schema,
            "relational-ring union requires equal schemas"
        );
        for (t, &m) in &other.data {
            let e = self.data.entry(t.clone()).or_insert(0);
            *e += m;
            if *e == 0 {
                self.data.remove(t);
            }
        }
        self.canonicalize();
    }

    fn mul(&self, other: &Self) -> Self {
        if self.data.is_empty() || other.data.is_empty() {
            return RelPayload::zero();
        }
        let common = self.schema.intersect(&other.schema);
        // Canonical output order (sorted by VarId) makes ⊗ commutative up
        // to representation, so incremental and recomputed payloads
        // compare equal regardless of the join order that produced them.
        let out_schema = {
            let mut vars = self.schema.union(&other.schema).vars().to_vec();
            vars.sort_unstable();
            Schema::new(vars)
        };
        let join_schema = self.schema.union(&other.schema);
        let canon_pos = join_schema.positions_of(out_schema.vars()).unwrap();
        let left_common = self.schema.positions_of(common.vars()).unwrap();
        let right_common = other.schema.positions_of(common.vars()).unwrap();
        let right_rest_vars = other.schema.minus(&common);
        let right_rest = other.schema.positions_of(right_rest_vars.vars()).unwrap();

        // Index the right side on the common variables.
        let mut index: FxHashMap<Tuple, Vec<(&Tuple, i64)>> = FxHashMap::default();
        for (t, &m) in &other.data {
            index
                .entry(t.project(&right_common))
                .or_default()
                .push((t, m));
        }

        let mut data: FxHashMap<Tuple, i64> = FxHashMap::default();
        for (lt, &lm) in &self.data {
            if let Some(matches) = index.get(&lt.project(&left_common)) {
                for &(rt, rm) in matches {
                    let key = lt.concat_projected(rt, &right_rest).project(&canon_pos);
                    let e = data.entry(key).or_insert(0);
                    *e += lm * rm;
                    // (deferred zero-pruning below)
                }
            }
        }
        data.retain(|_, m| *m != 0);
        let mut out = RelPayload {
            schema: out_schema,
            data,
        };
        out.canonicalize();
        out
    }

    fn is_zero(&self) -> bool {
        self.data.is_empty()
    }

    fn heap_bytes(&self) -> usize {
        self.data
            .keys()
            .map(|t| t.approx_bytes() + std::mem::size_of::<i64>() + 8)
            .sum()
    }
}

impl Ring for RelPayload {
    fn neg(&self) -> Self {
        RelPayload {
            schema: self.schema.clone(),
            data: self.data.iter().map(|(t, &m)| (t.clone(), -m)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sch(vars: &[u32]) -> Schema {
        Schema::new(vars.to_vec())
    }

    #[test]
    fn zero_one_identities() {
        let p = RelPayload::singleton(sch(&[0]), tuple![7]);
        assert_eq!(p.mul(&RelPayload::one()), p);
        assert_eq!(RelPayload::one().mul(&p), p);
        assert!(p.mul(&RelPayload::zero()).is_zero());
        assert_eq!(p.add(&RelPayload::zero()), p);
        assert_eq!(RelPayload::zero().add(&p), p);
    }

    #[test]
    fn union_sums_multiplicities() {
        let mut a = RelPayload::singleton(sch(&[0]), tuple![1]);
        a.add_assign(&RelPayload::singleton(sch(&[0]), tuple![1]));
        a.add_assign(&RelPayload::singleton(sch(&[0]), tuple![2]));
        assert_eq!(a.multiplicity(&tuple![1]), 2);
        assert_eq!(a.multiplicity(&tuple![2]), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn deletion_erases_tuples() {
        let mut a = RelPayload::singleton(sch(&[0]), tuple![1]);
        a.add_assign(&RelPayload::singleton(sch(&[0]), tuple![1]).neg());
        assert!(a.is_zero());
        // zero after cancellation compares equal to the canonical zero
        assert_eq!(a, RelPayload::zero());
    }

    #[test]
    fn product_is_cartesian_on_disjoint_schemas() {
        let a = RelPayload::singleton(sch(&[0]), tuple![1])
            .add(&RelPayload::singleton(sch(&[0]), tuple![2]));
        let b = RelPayload::singleton(sch(&[1]), tuple![10]);
        let ab = a.mul(&b);
        assert_eq!(ab.schema, sch(&[0, 1]));
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.multiplicity(&tuple![1, 10]), 1);
        assert_eq!(ab.multiplicity(&tuple![2, 10]), 1);
    }

    #[test]
    fn product_joins_on_common_vars() {
        // R(A,B) = {(1,5), (2,5)}, S(B,C) = {(5,9)} → R⋈S has 2 tuples.
        let r = RelPayload::singleton(sch(&[0, 1]), tuple![1, 5])
            .add(&RelPayload::singleton(sch(&[0, 1]), tuple![2, 5]));
        let s = RelPayload::singleton(sch(&[1, 2]), tuple![5, 9]);
        let rs = r.mul(&s);
        assert_eq!(rs.schema, sch(&[0, 1, 2]));
        assert_eq!(rs.multiplicity(&tuple![1, 5, 9]), 1);
        assert_eq!(rs.multiplicity(&tuple![2, 5, 9]), 1);
        // non-matching B values drop out
        let t = RelPayload::singleton(sch(&[1, 2]), tuple![6, 9]);
        assert!(r.mul(&t).is_zero());
    }

    #[test]
    fn multiplicities_multiply() {
        let mut r = RelPayload::singleton(sch(&[0]), tuple![1]);
        r.add_assign(&RelPayload::singleton(sch(&[0]), tuple![1])); // mult 2
        let s = {
            let mut s = RelPayload::singleton(sch(&[0]), tuple![1]);
            s.add_assign(&RelPayload::singleton(sch(&[0]), tuple![1]));
            s.add_assign(&RelPayload::singleton(sch(&[0]), tuple![1])); // mult 3
            s
        };
        assert_eq!(r.mul(&s).multiplicity(&tuple![1]), 6);
    }

    #[test]
    fn project_onto_sums() {
        let p = RelPayload::singleton(sch(&[0, 1]), tuple![1, 10])
            .add(&RelPayload::singleton(sch(&[0, 1]), tuple![1, 20]))
            .add(&RelPayload::singleton(sch(&[0, 1]), tuple![2, 10]));
        let q = p.project_onto(&sch(&[0]));
        assert_eq!(q.multiplicity(&tuple![1]), 2);
        assert_eq!(q.multiplicity(&tuple![2]), 1);
    }

    /// Example 6.5 micro-check: distributivity of join over union with
    /// multiplicities, `(R ⊎ S) ⊗ T` vs `R⊗T ⊎ S⊗T`.
    #[test]
    fn distributivity() {
        let r = RelPayload::singleton(sch(&[0, 1]), tuple![1, 5]);
        let s = RelPayload::singleton(sch(&[0, 1]), tuple![2, 5]);
        let t = RelPayload::singleton(sch(&[1, 2]), tuple![5, 7]);
        assert_eq!(r.add(&s).mul(&t), r.mul(&t).add(&s.mul(&t)));
    }
}
