//! Variables, schemas, the name-interning catalog — and the **symbol
//! table** that backs [`crate::Value::Sym`].
//!
//! A schema is an ordered list of distinct variables (paper §2 defines
//! schemas as sets; we keep an order so tuples have a deterministic
//! layout). Variables are interned to dense [`VarId`]s by a [`Catalog`]
//! owned by the query.
//!
//! # The symbol lifecycle
//!
//! String *data values* never live inside [`crate::Value`]: they are
//! interned once, at load time, into the catalog-owned [`SymbolTable`]
//! and carried through the engine as a dense `u32` id
//! ([`crate::Value::Sym`]). The lifecycle is:
//!
//! 1. **Intern at load** — generators and loaders call
//!    [`Catalog::intern`] / [`Catalog::sym`] while building tuples.
//!    Interning takes `&self` (the table is internally synchronized) so
//!    loaders do not need a mutable query. Equal strings get equal ids.
//! 2. **Propagate as integers** — every probe, route, merge, equality,
//!    ordering and hash in the maintenance hot path sees only the
//!    8-byte id: no content hashing, no `Arc<str>` refcount traffic,
//!    and nothing allocates. Worker threads in the parallel route phase
//!    ship 8-byte symbols instead of contending on shared refcounts.
//! 3. **Resolve at the edges** — display and tests call
//!    [`Catalog::resolve_sym`] (or [`crate::Value::render`]) to get the
//!    string back. Resolution is **lock-free**: an atomic length check
//!    plus two atomic loads into append-only chunked storage; interned
//!    strings are never moved or dropped while the table lives.
//!
//! Symbol ids are only meaningful relative to the table that issued
//! them. Cloning a [`Catalog`] *shares* its symbol table (a refcount
//! bump), so the engines, view trees and threads spawned from one query
//! all resolve the same id space — which is also why `Sym` can order by
//! id: within one table the order is total and deterministic, just not
//! lexicographic (see [`crate::Value::cmp_resolved`] for the
//! catalog-aware lexicographic comparison used by display and tests).

use crate::hash::FxHashMap;
use crate::sync::atomic::{AtomicU32, Ordering};
use crate::sync::{Mutex, OnceLock};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Model-check fault injection: when set, `intern` publishes `len`
/// with `Relaxed` instead of `Release` — the seeded mutation the
/// SymbolTable model must catch (a reader can then pass the length
/// gate without the slot write being visible).
#[cfg(fivm_model_check)]
pub static SYM_FAULT_RELAXED_PUBLISH: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// log2 of the first symbol chunk's capacity (256 entries).
const SYM_CHUNK0_LOG2: u32 = 8;
/// Number of doubling chunks: chunk `c` holds `256 << c` symbols, so 23
/// chunks cover ≈ 2.1 B ids — the practical `u32` range.
const SYM_CHUNKS: usize = 23;

/// Locate symbol `id`: which chunk, and which slot within it.
#[inline]
fn sym_locate(id: u32) -> (usize, usize) {
    let x = (id >> SYM_CHUNK0_LOG2) + 1;
    let chunk = x.ilog2();
    let base = ((1u32 << chunk) - 1) << SYM_CHUNK0_LOG2;
    (chunk as usize, (id - base) as usize)
}

/// One lazily-allocated chunk of write-once symbol slots.
type SymChunk = OnceLock<Box<[OnceLock<Arc<str>>]>>;

/// Append-only storage shared by all clones of a [`SymbolTable`].
struct SymInner {
    /// Doubling chunks of write-once slots. A chunk is allocated on
    /// first use; a slot is written exactly once, under the intern
    /// mutex, *before* `len` is raised past it — so readers that pass
    /// the `len` gate always find the slot initialized.
    chunks: [SymChunk; SYM_CHUNKS],
    /// Number of published symbols (release-stored after the slot
    /// write; acquire-loaded by readers).
    len: AtomicU32,
    /// Intern map: string → id. Only the intern path locks it.
    map: Mutex<FxHashMap<Arc<str>, u32>>,
}

/// Interns string data values to dense `u32` symbol ids.
///
/// One table per [`Catalog`] (clones share it — see the
/// [module docs](self) for the symbol lifecycle). [`SymbolTable::intern`]
/// serializes writers behind a mutex; [`SymbolTable::resolve`] is
/// lock-free and never blocks on writers.
#[derive(Clone)]
pub struct SymbolTable {
    inner: Arc<SymInner>,
}

impl Default for SymbolTable {
    fn default() -> Self {
        SymbolTable {
            inner: Arc::new(SymInner {
                chunks: std::array::from_fn(|_| OnceLock::new()),
                len: AtomicU32::new(0),
                map: Mutex::new(FxHashMap::default()),
            }),
        }
    }
}

impl SymbolTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its id (existing or fresh). Equal strings
    /// always return equal ids; distinct strings, distinct ids. Takes
    /// `&self`: writers serialize on an internal mutex.
    pub fn intern(&self, s: &str) -> u32 {
        let mut map = self.inner.map.lock().expect("symbol intern mutex");
        if let Some(&id) = map.get(s) {
            return id;
        }
        // relaxed-ok: read under the intern mutex; every writer of
        // `len` holds the same mutex, so no concurrent store exists.
        let id = self.inner.len.load(Ordering::Relaxed);
        let (chunk_idx, slot) = sym_locate(id);
        assert!(
            chunk_idx < SYM_CHUNKS,
            "symbol table exhausted the u32 id space"
        );
        let arc: Arc<str> = Arc::from(s);
        let chunk = self.inner.chunks[chunk_idx].get_or_init(|| {
            (0..(1usize << (SYM_CHUNK0_LOG2 + chunk_idx as u32)))
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        chunk[slot]
            .set(arc.clone())
            .unwrap_or_else(|_| unreachable!("slot below len is written exactly once"));
        // Publish: slot contents happen-before any reader that observes
        // the new length.
        #[cfg(not(fivm_model_check))]
        self.inner.len.store(id + 1, Ordering::Release);
        #[cfg(fivm_model_check)]
        {
            // relaxed-ok: fault knob, set before the checker runs; and
            // the injected weak order IS the seeded bug under test.
            let order = if SYM_FAULT_RELAXED_PUBLISH.load(std::sync::atomic::Ordering::Relaxed) {
                Ordering::Relaxed
            } else {
                Ordering::Release
            };
            self.inner.len.store(id + 1, order);
        }
        map.insert(arc, id);
        id
    }

    /// The string for `id`, or `None` for an id this table never
    /// issued. Lock-free: a length gate plus two atomic loads.
    #[inline]
    pub fn resolve(&self, id: u32) -> Option<&str> {
        if id >= self.inner.len.load(Ordering::Acquire) {
            return None;
        }
        let (chunk_idx, slot) = sym_locate(id);
        let chunk = self.inner.chunks[chunk_idx].get()?;
        chunk[slot].get().map(|a| &**a)
    }

    /// The id of an already-interned string, without interning.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.inner
            .map
            .lock()
            .expect("symbol intern mutex")
            .get(s)
            .copied()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.inner.len.load(Ordering::Acquire) as usize
    }

    /// True iff no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolTable")
            .field("len", &self.len())
            .finish()
    }
}

/// A dense identifier for an interned variable (attribute) name.
pub type VarId = u32;

/// Interns variable names to [`VarId`]s and string data values to
/// symbol ids.
///
/// One catalog per query/database; all schemas, variable orders and view
/// trees for that query share it. Cloning a catalog deep-copies the
/// variable-name side (small, build-time only) but **shares** the
/// [`SymbolTable`] — engines, threads and view trees cloned from one
/// query resolve one id space, and symbols interned through any clone
/// are visible to all of them.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    names: Vec<String>,
    index: FxHashMap<String, VarId>,
    symbols: SymbolTable,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (existing or fresh).
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as VarId;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Intern several names at once.
    pub fn vars<'a>(&mut self, names: impl IntoIterator<Item = &'a str>) -> Vec<VarId> {
        names.into_iter().map(|n| self.var(n)).collect()
    }

    /// Look up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    /// The name of a variable id.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff no variable has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Intern a string data value, returning its symbol id (see the
    /// [module docs](self) for the symbol lifecycle). Takes `&self`:
    /// the symbol table is internally synchronized, so loaders intern
    /// without needing a mutable query.
    pub fn intern(&self, s: &str) -> u32 {
        self.symbols.intern(s)
    }

    /// Intern a string data value directly into a [`Value::Sym`].
    pub fn sym(&self, s: &str) -> Value {
        Value::Sym(self.intern(s))
    }

    /// Resolve a symbol id back to its string (lock-free), or `None`
    /// for an id this catalog's table never issued.
    #[inline]
    pub fn resolve_sym(&self, id: u32) -> Option<&str> {
        self.symbols.resolve(id)
    }

    /// The catalog's symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Render a schema with variable names, e.g. `[A, C]`.
    pub fn render(&self, schema: &Schema) -> String {
        let names: Vec<&str> = schema.iter().map(|&v| self.name(v)).collect();
        format!("[{}]", names.join(", "))
    }
}

/// An ordered list of distinct variables.
///
/// Internally reference-counted: schemas are immutable after
/// construction and cloned on every relation/delta construction in the
/// propagation path, so `clone` must be a refcount bump, not a heap
/// copy.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Schema(std::sync::Arc<[VarId]>);

impl Schema {
    /// The empty schema (keys are the empty tuple).
    pub fn empty() -> Self {
        Schema::default()
    }

    /// Build from a list of variables; panics on duplicates.
    pub fn new(vars: Vec<VarId>) -> Self {
        let mut seen = vars.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), vars.len(), "schema has duplicate variables");
        Schema(vars.into())
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The variables in order.
    pub fn vars(&self) -> &[VarId] {
        &self.0
    }

    /// Iterate over the variables.
    pub fn iter(&self) -> std::slice::Iter<'_, VarId> {
        self.0.iter()
    }

    /// Position of `v` in this schema.
    pub fn position(&self, v: VarId) -> Option<usize> {
        self.0.iter().position(|&x| x == v)
    }

    /// True iff `v` occurs in this schema.
    pub fn contains(&self, v: VarId) -> bool {
        self.0.contains(&v)
    }

    /// Positions of each variable of `other` within `self`.
    ///
    /// Returns `None` if some variable of `other` is missing.
    pub fn positions_of(&self, other: &[VarId]) -> Option<Vec<usize>> {
        other.iter().map(|&v| self.position(v)).collect()
    }

    /// Variables common to `self` and `other`, in `self` order.
    pub fn intersect(&self, other: &Schema) -> Schema {
        Schema(
            self.0
                .iter()
                .copied()
                .filter(|v| other.contains(*v))
                .collect(),
        )
    }

    /// Order-preserving union: `self` followed by the variables of
    /// `other` not already present.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut out: Vec<VarId> = self.0.to_vec();
        for &v in other.0.iter() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        Schema(out.into())
    }

    /// Variables of `self` not in `other`, in `self` order.
    pub fn minus(&self, other: &Schema) -> Schema {
        Schema(
            self.0
                .iter()
                .copied()
                .filter(|v| !other.contains(*v))
                .collect(),
        )
    }

    /// Remove a single variable.
    pub fn without(&self, v: VarId) -> Schema {
        Schema(self.0.iter().copied().filter(|&x| x != v).collect())
    }

    /// True iff every variable of `self` occurs in `other`.
    pub fn subset_of(&self, other: &Schema) -> bool {
        self.0.iter().all(|&v| other.contains(v))
    }

    /// True iff the two schemas share no variable.
    pub fn disjoint(&self, other: &Schema) -> bool {
        self.0.iter().all(|&v| !other.contains(v))
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<VarId>> for Schema {
    fn from(v: Vec<VarId>) -> Self {
        Schema::new(v)
    }
}

impl FromIterator<VarId> for Schema {
    fn from_iter<I: IntoIterator<Item = VarId>>(iter: I) -> Self {
        Schema::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_interning() {
        let mut c = Catalog::new();
        let a = c.var("A");
        let b = c.var("B");
        assert_ne!(a, b);
        assert_eq!(c.var("A"), a);
        assert_eq!(c.name(a), "A");
        assert_eq!(c.lookup("B"), Some(b));
        assert_eq!(c.lookup("Z"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn schema_rejects_duplicates() {
        let _ = Schema::new(vec![1, 2, 1]);
    }

    #[test]
    fn set_operations() {
        let s1 = Schema::new(vec![0, 1, 2]);
        let s2 = Schema::new(vec![2, 3]);
        assert_eq!(s1.intersect(&s2), Schema::new(vec![2]));
        assert_eq!(s1.union(&s2), Schema::new(vec![0, 1, 2, 3]));
        assert_eq!(s1.minus(&s2), Schema::new(vec![0, 1]));
        assert_eq!(s1.without(1), Schema::new(vec![0, 2]));
        assert!(Schema::new(vec![1, 2]).subset_of(&s1));
        assert!(!s1.subset_of(&s2));
        assert!(Schema::new(vec![0, 1]).disjoint(&s2));
        assert!(!s1.disjoint(&s2));
    }

    #[test]
    fn positions() {
        let s = Schema::new(vec![10, 20, 30]);
        assert_eq!(s.position(20), Some(1));
        assert_eq!(s.position(40), None);
        assert_eq!(s.positions_of(&[30, 10]), Some(vec![2, 0]));
        assert_eq!(s.positions_of(&[30, 99]), None);
    }

    #[test]
    fn render() {
        let mut c = Catalog::new();
        let a = c.var("A");
        let b = c.var("B");
        assert_eq!(c.render(&Schema::new(vec![a, b])), "[A, B]");
    }

    #[test]
    fn symbol_interning_roundtrip() {
        let c = Catalog::new();
        let a = c.intern("apple");
        let b = c.intern("banana");
        assert_ne!(a, b);
        assert_eq!(c.intern("apple"), a, "re-interning is idempotent");
        assert_eq!(c.resolve_sym(a), Some("apple"));
        assert_eq!(c.resolve_sym(b), Some("banana"));
        assert_eq!(c.resolve_sym(b + 1), None);
        assert_eq!(c.symbols().lookup("banana"), Some(b));
        assert_eq!(c.symbols().lookup("cherry"), None);
        assert_eq!(c.symbols().len(), 2);
    }

    #[test]
    fn catalog_clones_share_symbols() {
        let c = Catalog::new();
        let a = c.intern("shared");
        let clone = c.clone();
        assert_eq!(clone.resolve_sym(a), Some("shared"));
        // Interning through the clone is visible to the original.
        let b = clone.intern("later");
        assert_eq!(c.resolve_sym(b), Some("later"));
        assert_eq!(c.intern("later"), b);
    }

    #[test]
    fn symbol_chunk_boundaries() {
        // Cross the first chunk boundary (256) and read everything back.
        let t = SymbolTable::new();
        let ids: Vec<u32> = (0..600).map(|i| t.intern(&format!("s{i}"))).collect();
        assert_eq!(ids, (0..600).collect::<Vec<u32>>(), "ids are dense");
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(t.resolve(*id), Some(format!("s{i}").as_str()));
        }
    }

    #[test]
    fn concurrent_intern_and_resolve_agree() {
        // Writers intern overlapping string sets while readers resolve
        // published ids; every id must round-trip to exactly one string.
        let t = SymbolTable::new();
        std::thread::scope(|s| {
            for w in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..500 {
                        // Half the space overlaps across workers.
                        let id = t.intern(&format!("k{}", (i + w * 250) % 750));
                        let back = t.resolve(id).expect("freshly interned id resolves");
                        assert_eq!(t.intern(back), id);
                    }
                });
            }
        });
        assert_eq!(t.len(), 750);
        for id in 0..750u32 {
            let s = t.resolve(id).expect("dense ids");
            assert_eq!(t.lookup(s), Some(id), "bijective");
        }
    }
}
