//! Variables, schemas and the name-interning catalog.
//!
//! A schema is an ordered list of distinct variables (paper §2 defines
//! schemas as sets; we keep an order so tuples have a deterministic
//! layout). Variables are interned to dense [`VarId`]s by a [`Catalog`]
//! owned by the query.

use crate::hash::FxHashMap;
use std::fmt;

/// A dense identifier for an interned variable (attribute) name.
pub type VarId = u32;

/// Interns variable names to [`VarId`]s.
///
/// One catalog per query/database; all schemas, variable orders and view
/// trees for that query share it.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    names: Vec<String>,
    index: FxHashMap<String, VarId>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (existing or fresh).
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as VarId;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Intern several names at once.
    pub fn vars<'a>(&mut self, names: impl IntoIterator<Item = &'a str>) -> Vec<VarId> {
        names.into_iter().map(|n| self.var(n)).collect()
    }

    /// Look up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    /// The name of a variable id.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff no variable has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Render a schema with variable names, e.g. `[A, C]`.
    pub fn render(&self, schema: &Schema) -> String {
        let names: Vec<&str> = schema.iter().map(|&v| self.name(v)).collect();
        format!("[{}]", names.join(", "))
    }
}

/// An ordered list of distinct variables.
///
/// Internally reference-counted: schemas are immutable after
/// construction and cloned on every relation/delta construction in the
/// propagation path, so `clone` must be a refcount bump, not a heap
/// copy.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Schema(std::sync::Arc<[VarId]>);

impl Schema {
    /// The empty schema (keys are the empty tuple).
    pub fn empty() -> Self {
        Schema::default()
    }

    /// Build from a list of variables; panics on duplicates.
    pub fn new(vars: Vec<VarId>) -> Self {
        let mut seen = vars.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), vars.len(), "schema has duplicate variables");
        Schema(vars.into())
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The variables in order.
    pub fn vars(&self) -> &[VarId] {
        &self.0
    }

    /// Iterate over the variables.
    pub fn iter(&self) -> std::slice::Iter<'_, VarId> {
        self.0.iter()
    }

    /// Position of `v` in this schema.
    pub fn position(&self, v: VarId) -> Option<usize> {
        self.0.iter().position(|&x| x == v)
    }

    /// True iff `v` occurs in this schema.
    pub fn contains(&self, v: VarId) -> bool {
        self.0.contains(&v)
    }

    /// Positions of each variable of `other` within `self`.
    ///
    /// Returns `None` if some variable of `other` is missing.
    pub fn positions_of(&self, other: &[VarId]) -> Option<Vec<usize>> {
        other.iter().map(|&v| self.position(v)).collect()
    }

    /// Variables common to `self` and `other`, in `self` order.
    pub fn intersect(&self, other: &Schema) -> Schema {
        Schema(
            self.0
                .iter()
                .copied()
                .filter(|v| other.contains(*v))
                .collect(),
        )
    }

    /// Order-preserving union: `self` followed by the variables of
    /// `other` not already present.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut out: Vec<VarId> = self.0.to_vec();
        for &v in other.0.iter() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        Schema(out.into())
    }

    /// Variables of `self` not in `other`, in `self` order.
    pub fn minus(&self, other: &Schema) -> Schema {
        Schema(
            self.0
                .iter()
                .copied()
                .filter(|v| !other.contains(*v))
                .collect(),
        )
    }

    /// Remove a single variable.
    pub fn without(&self, v: VarId) -> Schema {
        Schema(self.0.iter().copied().filter(|&x| x != v).collect())
    }

    /// True iff every variable of `self` occurs in `other`.
    pub fn subset_of(&self, other: &Schema) -> bool {
        self.0.iter().all(|&v| other.contains(v))
    }

    /// True iff the two schemas share no variable.
    pub fn disjoint(&self, other: &Schema) -> bool {
        self.0.iter().all(|&v| !other.contains(v))
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<VarId>> for Schema {
    fn from(v: Vec<VarId>) -> Self {
        Schema::new(v)
    }
}

impl FromIterator<VarId> for Schema {
    fn from_iter<I: IntoIterator<Item = VarId>>(iter: I) -> Self {
        Schema::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_interning() {
        let mut c = Catalog::new();
        let a = c.var("A");
        let b = c.var("B");
        assert_ne!(a, b);
        assert_eq!(c.var("A"), a);
        assert_eq!(c.name(a), "A");
        assert_eq!(c.lookup("B"), Some(b));
        assert_eq!(c.lookup("Z"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn schema_rejects_duplicates() {
        let _ = Schema::new(vec![1, 2, 1]);
    }

    #[test]
    fn set_operations() {
        let s1 = Schema::new(vec![0, 1, 2]);
        let s2 = Schema::new(vec![2, 3]);
        assert_eq!(s1.intersect(&s2), Schema::new(vec![2]));
        assert_eq!(s1.union(&s2), Schema::new(vec![0, 1, 2, 3]));
        assert_eq!(s1.minus(&s2), Schema::new(vec![0, 1]));
        assert_eq!(s1.without(1), Schema::new(vec![0, 2]));
        assert!(Schema::new(vec![1, 2]).subset_of(&s1));
        assert!(!s1.subset_of(&s2));
        assert!(Schema::new(vec![0, 1]).disjoint(&s2));
        assert!(!s1.disjoint(&s2));
    }

    #[test]
    fn positions() {
        let s = Schema::new(vec![10, 20, 30]);
        assert_eq!(s.position(20), Some(1));
        assert_eq!(s.position(40), None);
        assert_eq!(s.positions_of(&[30, 10]), Some(vec![2, 0]));
        assert_eq!(s.positions_of(&[30, 99]), None);
    }

    #[test]
    fn render() {
        let mut c = Catalog::new();
        let a = c.var("A");
        let b = c.var("B");
        assert_eq!(c.render(&Schema::new(vec![a, b])), "[A, B]");
    }
}
