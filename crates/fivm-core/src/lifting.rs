//! Lifting functions `g_X : Dom(X) → D` (paper §2).
//!
//! Marginalizing a bound variable `X` applies its lifting function to
//! each value before summing: `(⊕X R)[t] = Σ R[t1] * g_X(π_X(t1))`.
//! Different applications use different liftings over the *same* view
//! tree: `COUNT` lifts everything to `1`, `SUM(B·D·E)` lifts those
//! variables to themselves, the regression ring lifts variable `j` to
//! `(1, x·e_j, x²·e_j e_jᵀ)`, and the relational ring lifts free
//! variables to singleton relations.

use crate::hash::FxHashMap;
use crate::ring::Semiring;
use crate::schema::VarId;
use crate::value::Value;
use std::sync::Arc;

/// A lifting function for one variable.
#[derive(Clone)]
pub enum Lifting<R> {
    /// `g(x) = 1` for every `x` — the default (pure join counting).
    One,
    /// An arbitrary mapping from key values into the ring.
    Apply(Arc<dyn Fn(&Value) -> R + Send + Sync>),
}

impl<R: Semiring> Lifting<R> {
    /// Build from a closure.
    pub fn from_fn(f: impl Fn(&Value) -> R + Send + Sync + 'static) -> Self {
        Lifting::Apply(Arc::new(f))
    }

    /// Apply to a value.
    #[inline]
    pub fn lift(&self, v: &Value) -> R {
        match self {
            Lifting::One => R::one(),
            Lifting::Apply(f) => f(v),
        }
    }

    /// True for the trivial lifting (lets the engine skip multiplication
    /// by `1`).
    pub fn is_one(&self) -> bool {
        matches!(self, Lifting::One)
    }
}

impl<R> std::fmt::Debug for Lifting<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lifting::One => write!(f, "Lifting::One"),
            Lifting::Apply(_) => write!(f, "Lifting::Apply(..)"),
        }
    }
}

/// Numeric identity lifting `g(x) = x` into any ring built from `f64`
/// (used by `SUM` of a column).
pub fn numeric_identity() -> Lifting<f64> {
    Lifting::from_fn(|v| v.as_f64().expect("numeric lifting on non-numeric value"))
}

/// Integer identity lifting `g(x) = x` into the `Z` ring.
pub fn int_identity() -> Lifting<i64> {
    Lifting::from_fn(|v| v.as_int().expect("integer lifting on non-integer value"))
}

/// Per-variable lifting assignment for a query; variables without an
/// entry lift to `1`.
#[derive(Clone, Debug)]
pub struct LiftingMap<R> {
    map: FxHashMap<VarId, Lifting<R>>,
}

impl<R: Semiring> Default for LiftingMap<R> {
    fn default() -> Self {
        LiftingMap {
            map: FxHashMap::default(),
        }
    }
}

impl<R: Semiring> LiftingMap<R> {
    /// Empty map: every variable lifts to `1`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the lifting for `var`.
    pub fn set(&mut self, var: VarId, lifting: Lifting<R>) -> &mut Self {
        self.map.insert(var, lifting);
        self
    }

    /// Builder-style [`LiftingMap::set`].
    pub fn with(mut self, var: VarId, lifting: Lifting<R>) -> Self {
        self.map.insert(var, lifting);
        self
    }

    /// The lifting for `var` (default [`Lifting::One`]).
    pub fn get(&self, var: VarId) -> Lifting<R> {
        self.map.get(&var).cloned().unwrap_or(Lifting::One)
    }

    /// True iff `var` has a non-trivial lifting.
    pub fn is_nontrivial(&self, var: VarId) -> bool {
        self.map.get(&var).is_some_and(|l| !l.is_one())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lifts_to_one() {
        let m: LiftingMap<i64> = LiftingMap::new();
        assert_eq!(m.get(3).lift(&Value::Int(42)), 1);
        assert!(!m.is_nontrivial(3));
    }

    #[test]
    fn numeric_identity_widens() {
        let l = numeric_identity();
        assert_eq!(l.lift(&Value::Int(3)), 3.0);
        assert_eq!(l.lift(&Value::Double(2.5)), 2.5);
    }

    #[test]
    fn custom_lifting() {
        let l: Lifting<i64> = Lifting::from_fn(|v| v.as_int().unwrap() * 10);
        assert_eq!(l.lift(&Value::Int(4)), 40);
        assert!(!l.is_one());
    }

    #[test]
    fn map_set_and_get() {
        let mut m: LiftingMap<i64> = LiftingMap::new();
        m.set(1, int_identity());
        assert_eq!(m.get(1).lift(&Value::Int(7)), 7);
        assert!(m.is_nontrivial(1));
        assert_eq!(m.get(0).lift(&Value::Int(7)), 1);
    }
}
