//! Borrowed probe keys: hash and compare against stored [`Tuple`] keys
//! without materializing the probe tuple.
//!
//! Delta propagation probes view maps with keys that are *derived* from
//! tuples it already holds — a projection of the delta tuple for a
//! sibling-view lookup, or a concatenation for a join output. Building
//! a fresh [`Tuple`] per probe would put key construction on the
//! per-update critical path. A [`TupleKey`] instead describes the
//! derived key by reference: it can produce the key's Fx hash (the same
//! hash [`Tuple`] caches), compare itself against a stored tuple, and
//! materialize a real [`Tuple`] only when an insert actually needs to
//! own the key.
//!
//! [`crate::table::TupleMap`] accepts any `TupleKey` for lookups, which
//! is what makes secondary-index lookups and sibling-join probes in the
//! engine allocation-free.
//!
//! Probe-key construction re-hashes the projected values (see
//! [`ProjKey::new`]), so per-probe cost tracks `Value`'s hash cost
//! directly: with string values interned to `Value::Sym(u32)`, hashing
//! a string-keyed probe is the same two hash ops as an integer column —
//! no content hashing ever runs in the probe path.

use crate::tuple::{hash_values, Tuple};
use crate::value::Value;
use std::cmp::Ordering;

/// Total order over tuples that compares cached hashes before values.
///
/// Batch deduplication sorts working buffers only to bring *equal* keys
/// adjacent — any total order will do — so comparing the cached 64-bit
/// hash first settles almost every comparison with one integer compare,
/// falling back to the value-by-value order only on hash collisions
/// (where it keeps the order total and deterministic).
#[inline]
pub fn hash_then_cmp(a: &Tuple, b: &Tuple) -> Ordering {
    a.cached_hash().cmp(&b.cached_hash()).then_with(|| a.cmp(b))
}

/// A (possibly borrowed) key into a map keyed by [`Tuple`]s.
///
/// Implementations must agree with [`Tuple`] on hashing: `key_hash`
/// must equal `Tuple::cached_hash` of the materialized key, and
/// `matches(t)` must hold exactly when the materialized key equals
/// `t`.
pub trait TupleKey {
    /// The Fx hash of the key's value sequence.
    fn key_hash(&self) -> u64;

    /// Does this key equal the stored tuple `t`?
    fn matches(&self, t: &Tuple) -> bool;

    /// Build the owned key (called on insert of a new key only).
    fn materialize(&self) -> Tuple;
}

impl TupleKey for Tuple {
    #[inline]
    fn key_hash(&self) -> u64 {
        self.cached_hash()
    }

    #[inline]
    fn matches(&self, t: &Tuple) -> bool {
        self == t
    }

    #[inline]
    fn materialize(&self) -> Tuple {
        self.clone()
    }
}

/// A projection `π_positions(base)` as a probe key; the paper's
/// sibling-view probe pattern. Never allocates.
pub struct ProjKey<'a> {
    base: &'a Tuple,
    positions: &'a [usize],
    hash: u64,
}

impl<'a> ProjKey<'a> {
    /// Key for `base.project(positions)` without building it.
    #[inline]
    pub fn new(base: &'a Tuple, positions: &'a [usize]) -> Self {
        let vals = base.values();
        let hash = hash_values(0, positions.iter().map(|&p| &vals[p]));
        ProjKey {
            base,
            positions,
            hash,
        }
    }

    #[inline]
    fn value_at(&self, i: usize) -> &Value {
        self.base.get(self.positions[i])
    }
}

impl TupleKey for ProjKey<'_> {
    #[inline]
    fn key_hash(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn matches(&self, t: &Tuple) -> bool {
        self.hash == t.cached_hash()
            && t.len() == self.positions.len()
            && t.values()
                .iter()
                .enumerate()
                .all(|(i, v)| v == self.value_at(i))
    }

    #[inline]
    fn materialize(&self) -> Tuple {
        self.base.project(self.positions)
    }
}

/// The concatenation `left ⧺ π_positions(right)` as a probe key; the
/// join-output pattern. Never allocates: the hash resumes from `left`'s
/// cached hash.
pub struct ConcatProjKey<'a> {
    left: &'a Tuple,
    right: &'a Tuple,
    positions: &'a [usize],
    hash: u64,
}

impl<'a> ConcatProjKey<'a> {
    /// Key for `left.concat_projected(right, positions)` without
    /// building it.
    #[inline]
    pub fn new(left: &'a Tuple, right: &'a Tuple, positions: &'a [usize]) -> Self {
        let rv = right.values();
        let hash = hash_values(left.cached_hash(), positions.iter().map(|&p| &rv[p]));
        ConcatProjKey {
            left,
            right,
            positions,
            hash,
        }
    }

    #[inline]
    fn value_at(&self, i: usize) -> &Value {
        if i < self.left.len() {
            self.left.get(i)
        } else {
            self.right.get(self.positions[i - self.left.len()])
        }
    }
}

impl TupleKey for ConcatProjKey<'_> {
    #[inline]
    fn key_hash(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn matches(&self, t: &Tuple) -> bool {
        self.hash == t.cached_hash()
            && t.len() == self.left.len() + self.positions.len()
            && t.values()
                .iter()
                .enumerate()
                .all(|(i, v)| v == self.value_at(i))
    }

    #[inline]
    fn materialize(&self) -> Tuple {
        self.left.concat_projected(self.right, self.positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn proj_key_agrees_with_eager_projection() {
        let base = tuple![10, 20, 30];
        for positions in [&[0usize, 2][..], &[2, 0], &[1], &[], &[1, 1, 0]] {
            let eager = base.project(positions);
            let key = ProjKey::new(&base, positions);
            assert_eq!(key.key_hash(), eager.cached_hash(), "{positions:?}");
            assert!(key.matches(&eager));
            assert_eq!(key.materialize(), eager);
        }
    }

    #[test]
    fn proj_key_rejects_others() {
        let base = tuple![10, 20, 30];
        let key = ProjKey::new(&base, &[0, 2]);
        assert!(!key.matches(&tuple![10, 20]));
        assert!(!key.matches(&tuple![10]));
        assert!(!key.matches(&tuple![10, 30, 10]));
    }

    #[test]
    fn concat_proj_key_agrees_with_eager_concat() {
        let left = tuple![1, 2];
        let right = tuple![7, 8, 9];
        for positions in [&[0usize][..], &[2, 1], &[]] {
            let eager = left.concat_projected(&right, positions);
            let key = ConcatProjKey::new(&left, &right, positions);
            assert_eq!(key.key_hash(), eager.cached_hash(), "{positions:?}");
            assert!(key.matches(&eager));
            assert_eq!(key.materialize(), eager);
        }
    }

    #[test]
    fn tuple_is_its_own_key() {
        let t = tuple![4, 5];
        assert_eq!(TupleKey::key_hash(&t), t.cached_hash());
        assert!(t.matches(&tuple![4, 5]));
        assert!(!t.matches(&tuple![5, 4]));
    }
}
