//! Dynamically-typed key values.
//!
//! Keys in F-IVM relations are tuples of data values (paper §2). The
//! engine is schema-generic, so values are a small tagged union. Doubles
//! are compared and hashed by their bit pattern (with `-0.0` normalised to
//! `0.0`), which gives `Value` full `Eq + Hash + Ord` as required for hash
//! keys and deterministic test output.

use std::fmt;
use std::sync::Arc;

/// A single data value in the key space.
#[derive(Clone, Debug)]
pub enum Value {
    /// 64-bit integer (ids, dates, categorical codes, …).
    Int(i64),
    /// 64-bit float (measurements, prices, …).
    Double(f64),
    /// Interned string (shared, cheap to clone).
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric interpretation: integers widen to doubles.
    ///
    /// This is what numeric lifting functions use — e.g. `g_B(x) = x`
    /// in the paper’s Example 2.3 lifts both int and double columns into
    /// an arithmetic ring.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Normalised bit pattern for hashing/equality of doubles.
    #[inline]
    fn double_bits(d: f64) -> u64 {
        // Normalise -0.0 to 0.0 so the two compare/hash equal.
        if d == 0.0 {
            0f64.to_bits()
        } else {
            d.to_bits()
        }
    }

    /// Discriminant rank used for cross-variant ordering.
    #[inline]
    fn rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Double(_) => 1,
            Value::Str(_) => 2,
        }
    }

    /// Approximate in-memory footprint in bytes (for memory accounting).
    pub fn approx_bytes(&self) -> usize {
        match self {
            Value::Str(s) => std::mem::size_of::<Value>() + s.len(),
            _ => std::mem::size_of::<Value>(),
        }
    }
}

impl PartialEq for Value {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => {
                Self::double_bits(*a) == Self::double_bits(*b)
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                state.write_u8(0);
                state.write_u64(*i as u64);
            }
            Value::Double(d) => {
                state.write_u8(1);
                state.write_u64(Self::double_bits(*d));
            }
            Value::Str(s) => {
                state.write_u8(2);
                state.write(s.as_bytes());
                state.write_u8(0xff);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
        .then(Ordering::Equal)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(d: f64) -> Self {
        Value::Double(d)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxHashMap;

    #[test]
    fn int_equality_and_hash() {
        let mut m: FxHashMap<Value, i32> = FxHashMap::default();
        m.insert(Value::Int(7), 1);
        assert_eq!(m.get(&Value::Int(7)), Some(&1));
        assert_eq!(m.get(&Value::Int(8)), None);
    }

    #[test]
    fn double_negative_zero_normalised() {
        assert_eq!(Value::Double(0.0), Value::Double(-0.0));
        let mut m: FxHashMap<Value, i32> = FxHashMap::default();
        m.insert(Value::Double(-0.0), 1);
        assert_eq!(m.get(&Value::Double(0.0)), Some(&1));
    }

    #[test]
    fn cross_type_inequality() {
        assert_ne!(Value::Int(1), Value::Double(1.0));
        assert_ne!(Value::Int(1), Value::str("1"));
    }

    #[test]
    fn as_f64_widens_ints() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = vec![
            Value::str("b"),
            Value::Int(2),
            Value::Double(1.5),
            Value::Int(1),
            Value::str("a"),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::Double(1.5),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }
}
