//! Dynamically-typed key values.
//!
//! Keys in F-IVM relations are tuples of data values (paper §2). The
//! engine is schema-generic, so values are a small tagged union. Doubles
//! are compared and hashed by their bit pattern (with `-0.0` normalised to
//! `0.0`), which gives `Value` full `Eq + Hash + Ord` as required for hash
//! keys and deterministic test output.
//!
//! # Why `Sym(u32)` and not `Str(Arc<str>)`
//!
//! `Value` is load-bearing for every probe, route and merge in the
//! delta-propagation hot path; its widest variant sets the size of the
//! whole union and of every inline tuple built from it. A string variant
//! carrying `Arc<str>` is a 16-byte fat pointer that inflates `Value` to
//! 24 bytes (and the inline `[Value; 3]` tuple to 72), drags content
//! hashing into every probe-key construction, and puts refcount traffic
//! — atomic, and contended once worker threads route deltas — on every
//! clone. Strings are therefore **interned at load time** into the
//! catalog-owned [`crate::schema::SymbolTable`] and carried as
//! [`Value::Sym`], a dense `u32` id:
//!
//! * `size_of::<Value>() == 16` (statically asserted below), so the
//!   inline 3-tuple is 48 bytes of values instead of 72;
//! * equality, ordering and hashing of string-valued keys are pure
//!   integer ops — interning maps equal strings to equal ids;
//! * cloning a symbol copies 4 bytes; nothing allocates and no refcount
//!   moves in the steady state.
//!
//! **`Sym` orders by intern id**, not lexicographically: the hot path
//! only needs a total, deterministic order (hash-map iteration
//! canonicalization, sort/merge deduplication), and the id order is
//! exactly as total and deterministic as the lexicographic one while
//! costing one integer compare. Display and tests that want dictionary
//! order resolve through the catalog first — see [`Value::cmp_resolved`]
//! and [`Value::render`]. Symbol ids are only comparable within the
//! [`crate::Catalog`] (symbol table) that issued them.

use crate::schema::Catalog;
use std::fmt;

/// A single data value in the key space.
#[derive(Clone, Debug)]
pub enum Value {
    /// 64-bit integer (ids, dates, numeric codes, …).
    Int(i64),
    /// 64-bit float (measurements, prices, …).
    Double(f64),
    /// An interned string: a dense id issued by the catalog-owned
    /// [`crate::schema::SymbolTable`]. Compares, orders and hashes by
    /// id (see the [module docs](self)).
    Sym(u32),
}

/// The whole point of symbol interning: the widest variant is 8 bytes,
/// so the union is tag + payload = 16. A future variant that silently
/// re-inflates the hot path fails this assertion at compile time.
const _: () = assert!(std::mem::size_of::<Value>() == 16);

impl Value {
    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric interpretation: integers widen to doubles.
    ///
    /// This is what numeric lifting functions use — e.g. `g_B(x) = x`
    /// in the paper’s Example 2.3 lifts both int and double columns into
    /// an arithmetic ring. Symbols are *not* numbers: summing a
    /// categorical column is a semantic error, so this returns `None`
    /// for [`Value::Sym`] (see [`Value::feature_code`] for the ML
    /// featurization that does accept symbols).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Sym(_) => None,
        }
    }

    /// The symbol id, if this is a [`Value::Sym`].
    pub fn as_sym(&self) -> Option<u32> {
        match self {
            Value::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// Numeric featurization for ML lifting (cofactor / degree rings):
    /// numbers map to themselves, symbols to their intern id — the
    /// categorical-code encoding the regression workloads already used
    /// when categories were generated as integer codes. Total: never
    /// fails, unlike [`Value::as_f64`].
    #[inline]
    pub fn feature_code(&self) -> f64 {
        match self {
            Value::Int(i) => *i as f64,
            Value::Double(d) => *d,
            Value::Sym(s) => f64::from(*s),
        }
    }

    /// Resolve this value for display through `catalog`: symbols render
    /// as their interned string, with a stable `sym#<id>` fallback for
    /// ids the catalog does not know (e.g. values displayed against the
    /// wrong catalog in a test failure message).
    pub fn render(&self, catalog: &Catalog) -> String {
        match self {
            Value::Sym(s) => match catalog.resolve_sym(*s) {
                Some(name) => name.to_string(),
                None => format!("sym#{s}"),
            },
            other => other.to_string(),
        }
    }

    /// Catalog-aware total order: like [`Ord`], but symbols compare by
    /// their resolved strings (lexicographically), falling back to id
    /// order for unresolvable ids. For display and tests that want
    /// dictionary order; the hot path uses the id-based [`Ord`].
    pub fn cmp_resolved(&self, other: &Value, catalog: &Catalog) -> std::cmp::Ordering {
        match (self, other) {
            (Value::Sym(a), Value::Sym(b)) => {
                match (catalog.resolve_sym(*a), catalog.resolve_sym(*b)) {
                    (Some(x), Some(y)) => x.cmp(y).then(a.cmp(b)),
                    _ => a.cmp(b),
                }
            }
            _ => self.cmp(other),
        }
    }

    /// Normalised bit pattern for hashing/equality of doubles.
    #[inline]
    fn double_bits(d: f64) -> u64 {
        // Normalise -0.0 to 0.0 so the two compare/hash equal.
        if d == 0.0 {
            0f64.to_bits()
        } else {
            d.to_bits()
        }
    }

    /// Discriminant rank used for cross-variant ordering.
    #[inline]
    fn rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Double(_) => 1,
            Value::Sym(_) => 2,
        }
    }

    /// Approximate in-memory footprint in bytes (for memory accounting).
    /// Every variant is inline now — symbols' string storage is owned by
    /// the catalog, shared across all occurrences, and not charged here.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Value>()
    }
}

impl PartialEq for Value {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => Self::double_bits(*a) == Self::double_bits(*b),
            (Value::Sym(a), Value::Sym(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                state.write_u8(0);
                state.write_u64(*i as u64);
            }
            Value::Double(d) => {
                state.write_u8(1);
                state.write_u64(Self::double_bits(*d));
            }
            Value::Sym(s) => {
                // One word, like the numeric variants — no content
                // hashing anywhere in the probe path.
                state.write_u8(2);
                state.write_u64(u64::from(*s));
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            // By intern id — total and deterministic within one
            // catalog, which is all the engine needs (module docs).
            (Value::Sym(a), Value::Sym(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
        .then(Ordering::Equal)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(d: f64) -> Self {
        Value::Double(d)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            // The stable catalog-free fallback; use `Value::render` to
            // resolve the interned string.
            Value::Sym(s) => write!(f, "sym#{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxHashMap;

    #[test]
    fn int_equality_and_hash() {
        let mut m: FxHashMap<Value, i32> = FxHashMap::default();
        m.insert(Value::Int(7), 1);
        assert_eq!(m.get(&Value::Int(7)), Some(&1));
        assert_eq!(m.get(&Value::Int(8)), None);
    }

    #[test]
    fn double_negative_zero_normalised() {
        assert_eq!(Value::Double(0.0), Value::Double(-0.0));
        let mut m: FxHashMap<Value, i32> = FxHashMap::default();
        m.insert(Value::Double(-0.0), 1);
        assert_eq!(m.get(&Value::Double(0.0)), Some(&1));
    }

    #[test]
    fn cross_type_inequality() {
        assert_ne!(Value::Int(1), Value::Double(1.0));
        assert_ne!(Value::Int(1), Value::Sym(1));
        assert_ne!(Value::Double(1.0), Value::Sym(1));
    }

    #[test]
    fn as_f64_widens_ints_but_rejects_symbols() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Sym(9).as_f64(), None);
    }

    #[test]
    fn feature_code_is_total() {
        assert_eq!(Value::Int(3).feature_code(), 3.0);
        assert_eq!(Value::Double(2.5).feature_code(), 2.5);
        assert_eq!(Value::Sym(9).feature_code(), 9.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = vec![
            Value::Sym(1),
            Value::Int(2),
            Value::Double(1.5),
            Value::Int(1),
            Value::Sym(0),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::Double(1.5),
                Value::Sym(0),
                Value::Sym(1),
            ]
        );
    }

    #[test]
    fn display_and_render() {
        let c = Catalog::new();
        let hi = c.sym("hi");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(hi.to_string(), "sym#0", "catalog-free fallback is stable");
        assert_eq!(hi.render(&c), "hi");
        assert_eq!(Value::Sym(99).render(&c), "sym#99", "unknown ids fall back");
        assert_eq!(Value::Int(5).render(&c), "5");
    }

    #[test]
    fn sym_orders_by_id_but_cmp_resolved_is_lexicographic() {
        let c = Catalog::new();
        // Intern out of dictionary order so id order ≠ lexicographic.
        let zebra = c.sym("zebra");
        let apple = c.sym("apple");
        assert!(zebra < apple, "id order: zebra interned first");
        assert_eq!(
            zebra.cmp_resolved(&apple, &c),
            std::cmp::Ordering::Greater,
            "resolved order: apple < zebra"
        );
        // Non-symbols delegate to Ord.
        assert_eq!(
            Value::Int(1).cmp_resolved(&Value::Int(2), &c),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn sym_equality_agrees_with_string_equality() {
        let c = Catalog::new();
        assert_eq!(c.sym("a"), c.sym("a"));
        assert_ne!(c.sym("a"), c.sym("b"));
    }
}
