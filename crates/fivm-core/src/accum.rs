//! A reusable delta-merging scratch: accumulate `(key, payload)` pairs,
//! summing payloads of equal keys, then drain the merged result.
//!
//! Delta propagation repeatedly needs "group by key, sum payloads":
//! projecting a joined delta onto a view's key schema merges every
//! tuple that agrees on the kept columns, and batch updates make the
//! number of pairs anything from one to hundreds of thousands. No
//! single merge strategy is right across that range, so a
//! [`DeltaAccumulator`] switches regime by size:
//!
//! * **linear** (≤ `linear_max` distinct keys buffered): each push
//!   scans the buffer with the key's cached hash and merges in place —
//!   cheapest for the single-tuple hot path, and allocation-free when
//!   the key is already buffered;
//! * **sort/merge** (mid-size): pushes append without deduplication;
//!   [`DeltaAccumulator::drain_into`] sorts the buffer (hash first,
//!   values only on collision — see [`crate::key::hash_then_cmp`]) and
//!   folds adjacent equal keys. In-place `sort_unstable_by` keeps this
//!   band allocation-free after warm-up;
//! * **hash** (> `hash_min` buffered pairs): pairs migrate into a
//!   [`TupleMap`] scratch and further pushes upsert — O(1) per pair no
//!   matter how skewed the key distribution is.
//!
//! All three regimes share grow-only storage: the buffer, and the hash
//! table's slot array, warm up to the workload's high-water mark and
//! are retained across [`DeltaAccumulator::drain_into`] calls, which is
//! what keeps steady-state propagation free of heap traffic.

use crate::key::{hash_then_cmp, TupleKey};
use crate::ring::Semiring;
use crate::table::TupleMap;
use crate::tuple::Tuple;

/// Merge regime; see the [module docs](self).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Scan-and-merge on push; the buffer holds distinct keys.
    Linear,
    /// Append on push; duplicates resolved by sort/merge on drain.
    Deferred,
    /// Upsert into the hash scratch on push.
    Hash,
}

/// Reusable scratch that sums payloads per key; see the
/// [module docs](self).
#[derive(Debug)]
pub struct DeltaAccumulator<R> {
    buf: Vec<(Tuple, R)>,
    map: TupleMap<R>,
    mode: Mode,
    linear_max: usize,
    hash_min: usize,
}

impl<R: Semiring> DeltaAccumulator<R> {
    /// An empty accumulator with the given regime thresholds: linear
    /// scan up to `linear_max` buffered keys, sort/merge up to
    /// `hash_min` buffered pairs, hash scratch above.
    pub fn with_thresholds(linear_max: usize, hash_min: usize) -> Self {
        DeltaAccumulator {
            buf: Vec::new(),
            map: TupleMap::new(),
            mode: Mode::Linear,
            linear_max: linear_max.min(hash_min),
            hash_min,
        }
    }

    /// True iff no key holds a pending contribution. In the linear
    /// regime keys whose payloads cancel to exact zero are evicted at
    /// push time, so they do not count; in the deferred/hash regimes
    /// cancelled pairs remain buffered (and counted) until the drain
    /// drops them.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty() && self.map.is_empty()
    }

    /// Add `payload` to `key`'s sum. Accepts borrowed probe keys; the
    /// key is materialized only when it enters the buffer or table.
    pub fn push<K: TupleKey + ?Sized>(&mut self, key: &K, payload: R) {
        match self.mode {
            Mode::Linear => {
                let hash = key.key_hash();
                if let Some(i) = self
                    .buf
                    .iter()
                    .position(|(t, _)| t.cached_hash() == hash && key.matches(t))
                {
                    self.buf[i].1.add_assign(&payload);
                    // Evict keys whose payloads cancel to exact zero:
                    // they would otherwise occupy linear-band slots and
                    // push cancel-heavy churn (insert+delete of the same
                    // key in one batch) into the deferred regime — and
                    // every drained zero needlessly touches downstream
                    // store merges and index bucket counters. The
                    // deferred/hash regimes drop zeros at drain time.
                    if self.buf[i].1.is_zero() {
                        self.buf.swap_remove(i);
                    }
                    return;
                }
                self.buf.push((key.materialize(), payload));
                if self.buf.len() > self.linear_max {
                    self.mode = Mode::Deferred;
                }
            }
            Mode::Deferred => {
                self.buf.push((key.materialize(), payload));
                if self.buf.len() > self.hash_min {
                    self.map.reserve(self.buf.len());
                    for (t, p) in self.buf.drain(..) {
                        self.map.upsert(&t, R::zero).1.add_assign(&p);
                    }
                    self.mode = Mode::Hash;
                }
            }
            Mode::Hash => {
                self.map.upsert(key, R::zero).1.add_assign(&payload);
            }
        }
    }

    /// Append every key's non-zero payload sum to `out`, leaving the
    /// accumulator empty with its storage retained for reuse.
    pub fn drain_into(&mut self, out: &mut Vec<(Tuple, R)>) {
        match self.mode {
            Mode::Linear => {
                for (t, p) in self.buf.drain(..) {
                    if !p.is_zero() {
                        out.push((t, p));
                    }
                }
            }
            Mode::Deferred => {
                // Adjacent-equal merge over a hash-first sort: equal
                // tuples share a cached hash, so the comparator almost
                // never touches tuple values.
                self.buf.sort_unstable_by(|a, b| hash_then_cmp(&a.0, &b.0));
                let mut cur: Option<(Tuple, R)> = None;
                for (t, p) in self.buf.drain(..) {
                    if let Some((ct, cp)) = cur.as_mut() {
                        if *ct == t {
                            cp.add_assign(&p);
                            continue;
                        }
                    }
                    if let Some((ct, cp)) = cur.take() {
                        if !cp.is_zero() {
                            out.push((ct, cp));
                        }
                    }
                    cur = Some((t, p));
                }
                if let Some((ct, cp)) = cur {
                    if !cp.is_zero() {
                        out.push((ct, cp));
                    }
                }
            }
            Mode::Hash => {
                let start = out.len();
                self.map.drain_into(out);
                // Compact away keys whose payloads cancelled to zero.
                let mut w = start;
                for i in start..out.len() {
                    if !out[i].1.is_zero() {
                        out.swap(i, w);
                        w += 1;
                    }
                }
                out.truncate(w);
            }
        }
        self.mode = Mode::Linear;
    }

    /// Drop all pending pairs, retaining storage.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.map.clear();
        self.mode = Mode::Linear;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ProjKey;
    use crate::tuple;

    /// Thresholds shaped like the engine's (small linear band, larger
    /// sort/merge band) so all three regimes are crossed by the tests;
    /// the engine passes its own constants via `with_thresholds`.
    fn acc() -> DeltaAccumulator<i64> {
        DeltaAccumulator::with_thresholds(32, 1024)
    }

    fn drain<R: Semiring>(acc: &mut DeltaAccumulator<R>) -> Vec<(Tuple, R)> {
        let mut v = Vec::new();
        acc.drain_into(&mut v);
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Reference merge for arbitrary push sequences.
    fn reference(pairs: &[(Tuple, i64)]) -> Vec<(Tuple, i64)> {
        let mut m: std::collections::BTreeMap<Tuple, i64> = Default::default();
        for (t, p) in pairs {
            *m.entry(t.clone()).or_insert(0) += p;
        }
        m.into_iter().filter(|(_, p)| *p != 0).collect()
    }

    #[test]
    fn all_regimes_agree_with_reference() {
        for n in [1usize, 3, 33, 200, 1025, 5000] {
            let pairs: Vec<(Tuple, i64)> = (0..n)
                .map(|i| (tuple![(i % 97) as i64, (i % 7) as i64], 1 + (i % 5) as i64))
                .collect();
            let mut acc = acc();
            for (t, p) in &pairs {
                acc.push(t, *p);
            }
            assert_eq!(drain(&mut acc), reference(&pairs), "n = {n}");
            assert!(acc.is_empty());
        }
    }

    #[test]
    fn cancelled_keys_are_dropped_in_every_regime() {
        for n in [4usize, 40, 2000] {
            let mut acc = acc();
            for i in 0..n {
                let t = tuple![(i % 13) as i64];
                acc.push(&t, 5);
                acc.push(&t, -5);
            }
            assert!(drain(&mut acc).is_empty(), "n = {n}");
        }
    }

    /// Cancelled keys release their linear-band slots immediately: a
    /// stream of insert+delete pairs over many distinct keys stays in
    /// the linear regime (and `is_empty` reflects the cancellation)
    /// instead of accumulating zero-weight entries until drain.
    #[test]
    fn linear_band_evicts_cancelled_keys_eagerly() {
        let mut acc: DeltaAccumulator<i64> = DeltaAccumulator::with_thresholds(4, 16);
        for i in 0..1000i64 {
            acc.push(&tuple![i], 3);
            acc.push(&tuple![i], -3);
            assert!(acc.is_empty(), "key {i} left a zero-weight residue");
        }
        // A live key after heavy cancellation still merges linearly.
        acc.push(&tuple![7], 1);
        acc.push(&tuple![7], 2);
        assert_eq!(drain(&mut acc), vec![(tuple![7], 3)]);
    }

    #[test]
    fn borrowed_keys_merge_with_owned() {
        let mut acc = acc();
        let base = tuple![7, 8, 9];
        acc.push(&tuple![9, 7], 1);
        acc.push(&ProjKey::new(&base, &[2, 0]), 10);
        let v = drain(&mut acc);
        assert_eq!(v, vec![(tuple![9, 7], 11)]);
    }

    #[test]
    fn storage_is_reused_across_drains() {
        let mut acc: DeltaAccumulator<i64> = DeltaAccumulator::with_thresholds(4, 16);
        for round in 0..5 {
            for i in 0..40i64 {
                acc.push(&tuple![i % 10], 1);
            }
            let v = drain(&mut acc);
            assert_eq!(v.len(), 10, "round {round}");
            assert!(v.iter().all(|(_, p)| *p == 4));
        }
    }

    #[test]
    fn clear_resets_without_emitting() {
        let mut acc = acc();
        acc.push(&tuple![1], 1);
        acc.clear();
        assert!(acc.is_empty());
        assert!(drain(&mut acc).is_empty());
    }
}
