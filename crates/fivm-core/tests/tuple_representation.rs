//! Property tests for the small-size-optimized tuple representation:
//! inline and spilled tuples must be observably identical, borrowed
//! probe keys must agree exactly with eager projection, and cached
//! hashes must survive `concat`/`project`.

use fivm_core::{ConcatProjKey, FxHashMap, ProjKey, Tuple, TupleKey, TupleMap, Value};
use proptest::prelude::*;
use std::cmp::Ordering as CmpOrdering;
use std::hash::{Hash, Hasher};

/// Random values spanning all three key types (ints collide across a
/// small domain; doubles include the −0.0/0.0 normalization case;
/// symbols are small interned ids, colliding across a 3-id domain).
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => (-3i64..4).prop_map(Value::Int),
        2 => prop_oneof![
            Just(Value::Double(0.0)),
            Just(Value::Double(-0.0)),
            Just(Value::Double(1.5)),
            Just(Value::Double(-2.25)),
        ],
        1 => (0u32..3).prop_map(Value::Sym),
    ]
}

/// Value vectors spanning the inline/spilled boundary (0..=6, inline
/// capacity is 3).
fn values() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(value(), 0..=6)
}

fn std_hash<T: Hash>(t: &T) -> u64 {
    let mut h = fivm_core::FxHasher::default();
    t.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A spilled tuple is indistinguishable from the inline tuple over
    /// the same values: `Eq`, `Ord`, `Hash`, cached hash, accessors.
    #[test]
    fn inline_and_spilled_are_indistinguishable(vals in values()) {
        let auto = Tuple::new(vals.clone());
        let forced = Tuple::spilled(vals.clone());
        prop_assert_eq!(auto.is_inline(), vals.len() <= fivm_core::tuple::INLINE_CAP);
        prop_assert!(!forced.is_inline());
        prop_assert_eq!(&auto, &forced);
        prop_assert_eq!(auto.cached_hash(), forced.cached_hash());
        prop_assert_eq!(std_hash(&auto), std_hash(&forced));
        prop_assert_eq!(auto.cmp(&forced), CmpOrdering::Equal);
        prop_assert_eq!(auto.values(), forced.values());
        prop_assert_eq!(auto.len(), forced.len());
        prop_assert_eq!(auto.to_string(), forced.to_string());
    }

    /// Representation never leaks into map behavior: a std hash map and
    /// a `TupleMap` keyed by one representation are hit by the other.
    #[test]
    fn representations_interchange_as_map_keys(vals in values()) {
        let auto = Tuple::new(vals.clone());
        let forced = Tuple::spilled(vals);
        let mut std_map: FxHashMap<Tuple, u32> = FxHashMap::default();
        std_map.insert(forced.clone(), 7);
        prop_assert_eq!(std_map.get(&auto), Some(&7));
        let mut table: TupleMap<u32> = TupleMap::new();
        table.upsert(&auto, || 9);
        prop_assert_eq!(table.get(&forced), Some(&9));
    }

    /// Ordering matches the lexicographic order of the value slices for
    /// every representation pairing.
    #[test]
    fn ordering_is_value_lexicographic(a in values(), b in values()) {
        let expected = a.as_slice().cmp(b.as_slice());
        prop_assert_eq!(Tuple::new(a.clone()).cmp(&Tuple::new(b.clone())), expected);
        prop_assert_eq!(Tuple::spilled(a.clone()).cmp(&Tuple::new(b.clone())), expected);
        prop_assert_eq!(Tuple::new(a).cmp(&Tuple::spilled(b)), expected);
    }

    /// Cached hashes survive `project` and `concat`: derived tuples
    /// carry exactly the hash a from-scratch construction would.
    #[test]
    fn cached_hash_survives_project_and_concat(
        a in values(),
        b in values(),
        picks in proptest::collection::vec(0usize..6, 0..=5),
    ) {
        let ta = Tuple::new(a.clone());
        let tb = Tuple::new(b.clone());

        let cat = ta.concat(&tb);
        let mut flat = a.clone();
        flat.extend(b.iter().cloned());
        prop_assert_eq!(&cat, &Tuple::new(flat.clone()));
        prop_assert_eq!(cat.cached_hash(), Tuple::new(flat).cached_hash());

        if !a.is_empty() {
            let positions: Vec<usize> = picks.iter().map(|&p| p % a.len()).collect();
            let proj = ta.project(&positions);
            let expect: Vec<Value> = positions.iter().map(|&p| a[p].clone()).collect();
            prop_assert_eq!(&proj, &Tuple::new(expect.clone()));
            prop_assert_eq!(proj.cached_hash(), Tuple::new(expect).cached_hash());
            // spilled source, same projection
            let sproj = Tuple::spilled(a.clone()).project(&positions);
            prop_assert_eq!(&sproj, &proj);
            prop_assert_eq!(sproj.cached_hash(), proj.cached_hash());
        }
    }

    /// Borrowed probe keys agree with eager materialization: same hash,
    /// `matches` holds exactly for the materialized key, and probing a
    /// populated `TupleMap` finds exactly what eager projection finds.
    #[test]
    fn borrowed_probes_match_eager_projection(
        base_vals in proptest::collection::vec(value(), 1..=6),
        stored in proptest::collection::vec(values(), 0..8),
        picks in proptest::collection::vec(0usize..6, 0..=3),
    ) {
        let base = Tuple::new(base_vals.clone());
        let positions: Vec<usize> =
            picks.iter().map(|&p| p % base_vals.len()).collect();
        let eager = base.project(&positions);
        let probe = ProjKey::new(&base, &positions);
        prop_assert_eq!(probe.key_hash(), eager.cached_hash());
        prop_assert!(probe.matches(&eager));
        prop_assert_eq!(probe.materialize(), eager.clone());

        let mut table: TupleMap<usize> = TupleMap::new();
        for (i, vals) in stored.iter().enumerate() {
            let mut pending = Some(i);
            table.upsert(&Tuple::new(vals.clone()), || pending.take().unwrap());
        }
        prop_assert_eq!(table.get(&probe), table.get(&eager));
        for vals in &stored {
            let t = Tuple::new(vals.clone());
            prop_assert_eq!(probe.matches(&t), eager == t);
        }
    }

    /// Concat-projection probe keys agree with eager concatenation.
    #[test]
    fn concat_probes_match_eager_concat(
        a in values(),
        b in proptest::collection::vec(value(), 1..=6),
        picks in proptest::collection::vec(0usize..6, 0..=3),
    ) {
        let left = Tuple::new(a);
        let right = Tuple::new(b.clone());
        let positions: Vec<usize> = picks.iter().map(|&p| p % b.len()).collect();
        let eager = left.concat_projected(&right, &positions);
        let probe = ConcatProjKey::new(&left, &right, &positions);
        prop_assert_eq!(probe.key_hash(), eager.cached_hash());
        prop_assert!(probe.matches(&eager));
        prop_assert_eq!(probe.materialize(), eager);
    }
}
