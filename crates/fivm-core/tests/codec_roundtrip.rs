//! Property tests for the durability codec: `decode(encode(x)) == x`
//! for every type that crosses the process boundary, and decoding
//! arbitrary/corrupted bytes **returns an error instead of panicking**.
//!
//! Float handling (documented in `fivm-core/src/codec.rs`): doubles are
//! stored as raw IEEE-754 bits, so NaN payloads and `-0.0`'s sign bit
//! survive the disk round trip bit-exactly. Since `Value`'s own
//! equality treats every NaN as equal-to-itself-by-bits and folds
//! `-0.0 == 0.0`, the properties below compare *bit patterns* for
//! doubles and type-level equality for everything else.

use fivm_core::ring::cofactor::{Cofactor, DenseCofactor};
use fivm_core::ring::degree::DegreeRing;
use fivm_core::ring::relational::RelPayload;
use fivm_core::{Codec, Delta, FxHashMap, Relation, Schema, Tuple, Value};
use proptest::prelude::*;

fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(x: &T) -> Result<(), TestCaseError> {
    let mut buf = Vec::new();
    x.encode(&mut buf);
    let mut cursor = buf.as_slice();
    let back = T::decode(&mut cursor);
    prop_assert!(back.is_ok(), "decode failed: {:?}", back.err());
    prop_assert_eq!(&back.unwrap(), x);
    prop_assert!(cursor.is_empty(), "decode must consume the exact encoding");
    Ok(())
}

/// All three `Value` variants. Doubles come from raw bit patterns so
/// the strategy covers NaNs (quiet/signaling payloads), infinities,
/// subnormals and signed zeros, not just "nice" floats.
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => (i64::MIN..=i64::MAX).prop_map(Value::Int),
        3 => (0u64..=u64::MAX).prop_map(|bits| Value::Double(f64::from_bits(bits))),
        2 => (0u32..=u32::MAX).prop_map(Value::Sym),
    ]
}

/// Arities spanning the inline (≤ 3) / spilled (> 3) boundary.
fn values(max: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(value(), 0..=max)
}

/// A relation over distinct schema variables with up to `rows` pairs.
fn relation_i64(rows: usize) -> impl Strategy<Value = Relation<i64>> {
    (0usize..=4).prop_flat_map(move |arity| {
        let schema: Vec<u32> = (0..arity as u32).map(|v| v * 3 + 1).collect();
        proptest::collection::vec(
            (
                proptest::collection::vec(value(), arity),
                i64::MIN..=i64::MAX,
            ),
            0..=rows,
        )
        .prop_map(move |pairs| {
            Relation::from_pairs(
                Schema::new(schema.clone()),
                pairs.into_iter().map(|(vals, m)| (Tuple::new(vals), m)),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Values round-trip; doubles additionally round-trip *bit-exactly*
    /// even where `Value` equality is coarser (NaN payloads, -0.0).
    #[test]
    fn value_round_trips(v in value()) {
        round_trip(&v)?;
        if let Value::Double(d) = v {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            match Value::decode(&mut buf.as_slice()).unwrap() {
                Value::Double(back) => prop_assert_eq!(back.to_bits(), d.to_bits()),
                other => prop_assert!(false, "wrong variant {:?}", other),
            }
        }
    }

    /// Tuples round-trip across the inline/spilled boundary, and a
    /// forced-spilled tuple decodes to the same (canonical) value.
    #[test]
    fn tuple_round_trips(vals in values(6)) {
        round_trip(&Tuple::new(vals.clone()))?;
        let spilled = Tuple::spilled(vals.clone());
        let mut buf = Vec::new();
        spilled.encode(&mut buf);
        prop_assert_eq!(Tuple::decode(&mut buf.as_slice()).unwrap(), spilled);
    }

    /// Relations and both delta layouts round-trip. Factored deltas get
    /// disjoint schemas by construction: `relation_i64` uses variables
    /// 1/4/7/10, the second factor 100/101.
    #[test]
    fn relation_and_delta_round_trip(
        r in relation_i64(6),
        flat in prop_oneof![Just(true), Just(false)],
    ) {
        round_trip(&r)?;
        let (d, factors) = if flat {
            (Delta::Flat(r.clone()), vec![r])
        } else {
            let other = Relation::from_pairs(
                Schema::new(vec![100, 101]),
                [(Tuple::new(vec![Value::Int(1), Value::Sym(2)]), 5i64)],
            );
            let fs = vec![r, other];
            (Delta::Factored(fs.clone()), fs)
        };
        let mut buf = Vec::new();
        d.encode(&mut buf);
        match (Delta::<i64>::decode(&mut buf.as_slice()).unwrap(), flat) {
            (Delta::Flat(back), true) => prop_assert_eq!(&back, &factors[0]),
            (Delta::Factored(back), false) => prop_assert_eq!(&back, &factors),
            (other, _) => prop_assert!(false, "wrong delta variant {:?}", other),
        }
    }

    /// Every ring payload the bench suites maintain round-trips:
    /// numeric (i64 / f64), sparse and dense cofactors, relational
    /// payloads, degree-ring tables.
    #[test]
    fn ring_payloads_round_trip(
        count in i64::MIN..=i64::MAX,
        sparse in proptest::collection::vec(
            (
                0u32..=u32::MAX,
                (0u64..=u64::MAX)
                    .prop_map(f64::from_bits)
                    .prop_filter("finite", |f| f.is_finite()),
            ),
            0..6,
        ),
        dense in proptest::collection::vec(
            (0u64..=u64::MAX)
                .prop_map(f64::from_bits)
                .prop_filter("not nan", |f| !f.is_nan()),
            0..6,
        ),
        degs in proptest::collection::vec(
            ((0u32..=u32::MAX, 0u32..=u32::MAX), -1e9f64..1e9),
            0..6,
        ),
        rel_rows in proptest::collection::vec((values(2), i64::MIN..=i64::MAX), 0..5),
    ) {
        round_trip(&count)?;
        round_trip(&(count as f64 * 0.5))?;

        let cof = Cofactor {
            count,
            sums: sparse.clone(),
            prods: sparse.iter().map(|&(i, v)| (u64::from(i) << 8, v)).collect(),
        };
        round_trip(&cof)?;

        let dc = DenseCofactor {
            m: dense.len() as u32,
            count,
            sums: dense.clone().into_boxed_slice(),
            prods: dense.clone().into_boxed_slice(),
        };
        round_trip(&dc)?;

        let mut aggs = FxHashMap::default();
        for (k, v) in degs {
            aggs.insert(k, v);
        }
        round_trip(&DegreeRing { aggs })?;

        let mut data = FxHashMap::default();
        for (vals, c) in rel_rows {
            if vals.len() == 2 {
                data.insert(Tuple::new(vals), c);
            }
        }
        round_trip(&RelPayload { schema: Schema::new(vec![7, 9]), data })?;
    }

    /// Corruption safety: decoding arbitrary bytes — and every
    /// truncation and single-byte mutation of a *valid* encoding —
    /// returns an error or a value, never panics, and never
    /// over-consumes the cursor.
    #[test]
    fn corrupt_bytes_never_panic(
        garbage in proptest::collection::vec(0u8..=255, 0..120),
        r in relation_i64(3),
        cut in 0usize..=usize::MAX,
        flip in 0usize..=usize::MAX,
    ) {
        fn try_all(bytes: &[u8]) {
            let _ = Value::decode(&mut &bytes[..]);
            let _ = Tuple::decode(&mut &bytes[..]);
            let _ = Schema::decode(&mut &bytes[..]);
            let _ = Relation::<i64>::decode(&mut &bytes[..]);
            let _ = Delta::<i64>::decode(&mut &bytes[..]);
            let _ = Delta::<f64>::decode(&mut &bytes[..]);
            let _ = Cofactor::decode(&mut &bytes[..]);
            let _ = DenseCofactor::decode(&mut &bytes[..]);
            let _ = RelPayload::decode(&mut &bytes[..]);
            let _ = DegreeRing::decode(&mut &bytes[..]);
        }
        try_all(&garbage);

        let mut valid = Vec::new();
        Delta::Flat(r).encode(&mut valid);
        // Truncation at an arbitrary boundary.
        try_all(&valid[..cut % (valid.len() + 1)]);
        // Single corrupted byte.
        if !valid.is_empty() {
            let i = flip % valid.len();
            valid[i] = valid[i].wrapping_add(1 + (i as u8 % 254));
            try_all(&valid);
        }
    }
}
