//! Property tests for the catalog-owned symbol table: intern→resolve
//! round-trips, `Sym` equality agrees with string equality, and the
//! id-based order is total and deterministic.

use fivm_core::{Catalog, SymbolTable, Value};
use proptest::prelude::*;

/// Short strings with plenty of duplicates (small alphabet, length ≤ 4)
/// so interning's dedup path is exercised as hard as the fresh path.
fn word() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('c'), Just('ø')],
        0..=4,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every interned string resolves back to itself, and re-interning
    /// the resolved string returns the same id.
    #[test]
    fn intern_resolve_roundtrip(words in proptest::collection::vec(word(), 1..40)) {
        let table = SymbolTable::new();
        for w in &words {
            let id = table.intern(w);
            prop_assert_eq!(table.resolve(id), Some(w.as_str()));
            prop_assert_eq!(table.intern(w), id);
            prop_assert_eq!(table.lookup(w), Some(id));
        }
        // Ids are dense: exactly one per distinct string.
        let distinct: std::collections::HashSet<&String> = words.iter().collect();
        prop_assert_eq!(table.len(), distinct.len());
        prop_assert_eq!(table.resolve(table.len() as u32), None);
    }

    /// `Sym` equality through one catalog agrees exactly with string
    /// equality — the property that makes integer-speed string keys
    /// sound.
    #[test]
    fn sym_equality_agrees_with_string_equality(a in word(), b in word()) {
        let c = Catalog::new();
        let sa = c.sym(&a);
        let sb = c.sym(&b);
        prop_assert_eq!(sa == sb, a == b);
        // And hashing agrees (equal values hash equal): via a map probe.
        let mut m: fivm_core::FxHashMap<Value, u8> = fivm_core::FxHashMap::default();
        m.insert(sa.clone(), 1);
        prop_assert_eq!(m.contains_key(&sb), a == b);
        // The catalog-aware comparator is the lexicographic order.
        prop_assert_eq!(sa.cmp_resolved(&sb, &c), a.cmp(&b));
    }

    /// The id order is a total order consistent with equality: ids are
    /// issued in first-intern order, so sorting symbols is sorting
    /// integers and never disagrees with `Eq`.
    #[test]
    fn sym_order_is_total_and_consistent(words in proptest::collection::vec(word(), 1..20)) {
        let c = Catalog::new();
        let mut syms: Vec<Value> = words.iter().map(|w| c.sym(w)).collect();
        syms.sort();
        for pair in syms.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
            prop_assert_eq!(
                pair[0] == pair[1],
                pair[0].as_sym() == pair[1].as_sym()
            );
        }
    }
}

/// Resolution is stable across catalog clones shipped to other threads
/// (the parallel route phase ships 8-byte symbols; workers resolve only
/// at the display edge, against a shared table).
#[test]
fn clone_to_thread_resolves_same_ids() {
    let c = Catalog::new();
    let ids: Vec<u32> = (0..100).map(|i| c.intern(&format!("v{i}"))).collect();
    let clone = c.clone();
    let handle = std::thread::spawn(move || {
        ids.iter()
            .map(|&id| clone.resolve_sym(id).unwrap().to_string())
            .collect::<Vec<_>>()
    });
    let resolved = handle.join().unwrap();
    for (i, s) in resolved.iter().enumerate() {
        assert_eq!(s, &format!("v{i}"));
    }
}
