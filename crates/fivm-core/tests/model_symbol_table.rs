//! Exhaustive interleaving checks for the lock-free `SymbolTable`
//! read path (intern under a mutex, wait-free `resolve` gated by a
//! Release/Acquire length publish).
//!
//! Build with `RUSTFLAGS="--cfg fivm_model_check"`; in normal builds
//! this file is empty.
#![cfg(fivm_model_check)]

use fivm_check::Checker;
use fivm_core::sync::thread;
use fivm_core::SymbolTable;
use std::sync::Arc;

/// The table's core invariant: any id below an observed `len()` must
/// resolve — the Acquire on the length gate pairs with the Release of
/// the publish, making the slot write visible.
fn reader_checks_gate(table: &SymbolTable) {
    let n = table.len();
    for id in 0..n as u32 {
        assert!(
            table.resolve(id).is_some(),
            "id {id} < observed len {n} must resolve"
        );
    }
}

#[test]
fn concurrent_intern_and_resolve_gate_holds() {
    let report = Checker::new().check("symbol-table intern/resolve", || {
        let table = Arc::new(SymbolTable::new());
        let t = table.clone();
        let writer = thread::spawn(move || {
            t.intern("alpha");
            t.intern("beta");
        });
        reader_checks_gate(&table);
        reader_checks_gate(&table);
        let _ = writer.join();
        // Quiescent: both symbols are in and stable.
        assert_eq!(table.len(), 2);
        assert_eq!(table.resolve(0), Some("alpha"));
        assert_eq!(table.resolve(1), Some("beta"));
    });
    println!("{report}");
    report.assert_ok();
}

#[test]
fn two_interners_never_duplicate_ids() {
    let report = Checker::new().check("symbol-table dueling interns", || {
        let table = Arc::new(SymbolTable::new());
        let (ta, tb) = (table.clone(), table.clone());
        let a = thread::spawn(move || ta.intern("shared"));
        let b = thread::spawn(move || tb.intern("shared"));
        let ia = a.join().expect("interner a");
        let ib = b.join().expect("interner b");
        assert_eq!(ia, ib, "equal strings must intern to equal ids");
        assert_eq!(table.len(), 1);
    });
    println!("{report}");
    report.assert_ok();
}

/// Mutation verification: downgrade the length publish from Release to
/// Relaxed (the seeded fault in `fivm-core`'s intern path) and the
/// checker must find an interleaving where a reader observes the new
/// length without the slot write — exactly the bug the Release exists
/// to prevent.
#[test]
fn relaxed_length_publish_is_caught() {
    fivm_core::schema::SYM_FAULT_RELAXED_PUBLISH.store(true, std::sync::atomic::Ordering::SeqCst);
    let report = Checker::new().check("symbol-table relaxed publish", || {
        let table = Arc::new(SymbolTable::new());
        let t = table.clone();
        let writer = thread::spawn(move || {
            t.intern("alpha");
        });
        reader_checks_gate(&table);
        let _ = writer.join();
    });
    fivm_core::schema::SYM_FAULT_RELAXED_PUBLISH.store(false, std::sync::atomic::Ordering::SeqCst);
    println!("{report}");
    report.assert_fails("must resolve");
}
