//! Materialized view storage.
//!
//! A [`ViewStore`] is the runtime form of a view tree node: a hash map
//! from key tuples to ring payloads (the paper materializes views as
//! "multi-indexed maps"), plus secondary indexes keyed by the probe
//! patterns that delta propagation needs. Indexes are created on demand
//! and maintained incrementally with the primary data.
//!
//! Both the primary map and the secondary indexes are
//! [`TupleMap`]s, so every lookup accepts a borrowed [`TupleKey`] — the
//! engine probes with projections of tuples it already holds and never
//! materializes probe keys. Deletions leave capacity in place (the
//! primary via tombstones, the indexes by keeping emptied buckets), so
//! steady-state single-tuple maintenance does not allocate.

use fivm_core::{Relation, Ring, Schema, Tuple, TupleKey, TupleMap};

/// How an insert changed a key's membership (support transitions drive
/// indicator maintenance, Example B.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SupportChange {
    /// The key was absent and now has a non-zero payload.
    Appeared,
    /// The key's payload summed to zero and was erased.
    Disappeared,
    /// Payload changed (or no-op) without a membership change.
    Unchanged,
}

/// A secondary index: probe-key positions within the view schema, and a
/// map from probe keys to the full keys sharing them.
///
/// Buckets whose last key is removed are kept (empty) so that churn on
/// a stable key universe never reallocates — but only up to a
/// high-water mark: once the retained buckets outnumber twice the most
/// probe keys ever simultaneously live (plus a floor), a sweep drops
/// the empty ones, so adversarial churn on ever-fresh keys cannot grow
/// the index unboundedly.
#[derive(Clone, Debug)]
struct SecondaryIndex {
    positions: Vec<usize>,
    map: TupleMap<Vec<Tuple>>,
    /// Buckets currently holding at least one key.
    live: usize,
    /// High-water mark of `live` — the sweep's retention budget.
    high_water: usize,
}

/// Empty-bucket allowance below which no sweep ever triggers (keeps
/// tiny indexes out of the sweep logic entirely).
const INDEX_SWEEP_FLOOR: usize = 64;

/// Deltas larger than this pre-size the primary map before a merge
/// (mirrors the executor's hash-merge regime boundary: below it a
/// batch is small enough that growth-on-demand is cheaper than a
/// possible rehash).
const BATCH_RESERVE_MIN: usize = 1024;

impl SecondaryIndex {
    /// Record a bucket going from empty (or absent) to occupied.
    #[inline]
    fn bucket_filled(&mut self) {
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
    }

    /// Record a bucket emptying; sweep retained empties once they
    /// exceed the high-water budget.
    #[inline]
    fn bucket_emptied(&mut self) {
        self.live -= 1;
        if self.map.len() > self.high_water * 2 + INDEX_SWEEP_FLOOR {
            self.map.retain(|_, bucket| !bucket.is_empty());
            debug_assert_eq!(self.map.len(), self.live);
        }
    }
}

/// A materialized view: primary map plus secondary indexes.
#[derive(Clone, Debug)]
pub struct ViewStore<R> {
    schema: Schema,
    data: TupleMap<R>,
    indexes: Vec<SecondaryIndex>,
    /// Monotonic content-mutation counter. Every data change — an
    /// applied payload in [`ViewStore::insert_ref`] or a wholesale
    /// [`ViewStore::reload`] — bumps it; index (re)builds do not, since
    /// indexes are derived state. Incremental checkpoints compare it
    /// against the last-checkpointed version to skip clean views, and
    /// snapshot publication reuses it to carry clean views forward by
    /// reference instead of cloning.
    version: u64,
    /// Change-capture buffer for the subscription layer: when present,
    /// every applied `(key, payload-delta)` pair of
    /// [`ViewStore::insert_ref`] is recorded (uncoalesced — the
    /// subscription hub coalesces per epoch). `None` costs one
    /// predictable branch per insert, keeping the unsubscribed hot path
    /// allocation-free. [`ViewStore::reload`] does not record: wholesale
    /// replacement is not an output delta (callers publish a fresh
    /// snapshot instead).
    capture: Option<Vec<(Tuple, R)>>,
}

impl<R: Ring> ViewStore<R> {
    /// Empty view over `schema`.
    pub fn new(schema: Schema) -> Self {
        ViewStore {
            schema,
            data: TupleMap::new(),
            indexes: Vec::new(),
            version: 0,
            capture: None,
        }
    }

    /// Enable or disable change capture (see the `capture` field docs).
    /// Disabling drops any pending captured pairs.
    pub fn set_capture(&mut self, on: bool) {
        match (on, &self.capture) {
            (true, None) => self.capture = Some(Vec::new()),
            (false, Some(_)) => self.capture = None,
            _ => {}
        }
    }

    /// Whether change capture is enabled.
    pub fn capture_enabled(&self) -> bool {
        self.capture.is_some()
    }

    /// Move the captured `(key, payload-delta)` pairs into `out`
    /// (appending), leaving the buffer empty but with its capacity.
    pub fn drain_captured(&mut self, out: &mut Vec<(Tuple, R)>) {
        if let Some(buf) = &mut self.capture {
            out.append(buf);
        }
    }

    /// Content-mutation counter (see the field docs).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The view's key schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of keys with non-zero payload.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Payload of `key`, if non-zero. Accepts borrowed probe keys
    /// ([`fivm_core::ProjKey`] etc.) as well as `&Tuple`.
    #[inline]
    pub fn get<K: TupleKey + ?Sized>(&self, key: &K) -> Option<&R> {
        self.data.get(key)
    }

    /// Iterate over contents.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &R)> {
        self.data.iter()
    }

    /// Snapshot as a [`Relation`] (tests, re-evaluation).
    pub fn to_relation(&self) -> Relation<R> {
        Relation::from_pairs(
            self.schema.clone(),
            self.data.iter().map(|(t, p)| (t.clone(), p.clone())),
        )
    }

    /// Ensure a secondary index on the given variables exists; returns
    /// its id. `vars` must be a subset of the schema; an index on the
    /// full schema is never needed (probe the primary instead).
    pub fn ensure_index(&mut self, vars: &Schema) -> usize {
        let positions = self
            .schema
            .positions_of(vars.vars())
            .expect("index variables must be part of the view schema");
        self.ensure_index_on_positions(positions)
    }

    /// [`ViewStore::ensure_index`] with precomputed in-schema positions
    /// (the executor compiles these at plan-build time).
    pub fn ensure_index_on_positions(&mut self, positions: Vec<usize>) -> usize {
        if let Some(id) = self.indexes.iter().position(|ix| ix.positions == positions) {
            return id;
        }
        let mut map: TupleMap<Vec<Tuple>> = TupleMap::new();
        for t in self.data.keys() {
            map.upsert(&fivm_core::ProjKey::new(t, &positions), Vec::new)
                .1
                .push(t.clone());
        }
        let live = map.len();
        self.indexes.push(SecondaryIndex {
            positions,
            map,
            live,
            high_water: live,
        });
        self.indexes.len() - 1
    }

    /// Probe-key positions of every secondary index, in index-id order
    /// (consumed by the static plan verifier to resolve compiled index
    /// ids back to key layouts).
    pub fn index_positions(&self) -> Vec<Vec<usize>> {
        self.indexes.iter().map(|ix| ix.positions.clone()).collect()
    }

    /// Keys matching `key` under index `ix`; borrowed probe keys
    /// accepted.
    #[inline]
    pub fn probe<K: TupleKey + ?Sized>(&self, ix: usize, key: &K) -> &[Tuple] {
        self.indexes[ix]
            .map
            .get(key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Add `payload` to key `t`, maintaining indexes; keys that sum to
    /// zero are erased. Returns the membership transition.
    pub fn insert(&mut self, t: Tuple, payload: R) -> SupportChange {
        self.insert_ref(&t, payload)
    }

    /// [`ViewStore::insert`], borrowing the key; it is cloned only if
    /// actually new (and tuple clones are allocation-free at arity ≤ 3).
    pub fn insert_ref(&mut self, t: &Tuple, payload: R) -> SupportChange {
        if payload.is_zero() {
            return SupportChange::Unchanged;
        }
        if let Some(buf) = &mut self.capture {
            buf.push((t.clone(), payload.clone()));
        }
        self.version += 1;
        let (appeared, slot) = self.data.upsert(t, R::zero);
        slot.add_assign(&payload);
        let disappeared = !appeared && slot.is_zero();
        if disappeared {
            self.data.remove(t);
        }
        if appeared {
            for ix in &mut self.indexes {
                let (new_bucket, bucket) = ix
                    .map
                    .upsert(&fivm_core::ProjKey::new(t, &ix.positions), Vec::new);
                let was_empty = new_bucket || bucket.is_empty();
                bucket.push(t.clone());
                if was_empty {
                    ix.bucket_filled();
                }
            }
            SupportChange::Appeared
        } else if disappeared {
            for ix in &mut self.indexes {
                let probe = fivm_core::ProjKey::new(t, &ix.positions);
                if let Some(v) = ix.map.get_mut(&probe) {
                    if let Some(pos) = v.iter().position(|x| x == t) {
                        v.swap_remove(pos);
                    }
                    // The bucket is kept even when emptied — churn on a
                    // stable key universe must not reallocate — up to
                    // the high-water budget, past which the index is
                    // swept (see `SecondaryIndex`).
                    if v.is_empty() {
                        ix.bucket_emptied();
                    }
                }
            }
            SupportChange::Disappeared
        } else {
            SupportChange::Unchanged
        }
    }

    /// Merge a delta relation; returns per-key support transitions
    /// (`+1` appeared, `-1` disappeared) for indicator maintenance
    /// (Example B.2).
    pub fn merge(&mut self, delta: &Relation<R>) -> Vec<(Tuple, i8)> {
        let mut transitions = Vec::new();
        self.merge_into(delta, &mut transitions);
        transitions
    }

    /// Pre-size the primary map for `additional` inserts; large batch
    /// merges call this once instead of growing through the batch.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// [`ViewStore::merge`] writing transitions into a caller-owned
    /// buffer (the engine reuses one across updates).
    pub fn merge_into(&mut self, delta: &Relation<R>, transitions: &mut Vec<(Tuple, i8)>) {
        debug_assert_eq!(delta.schema(), &self.schema, "delta schema mismatch");
        // Pre-size for batch-scale deltas unless the store already
        // dwarfs the delta (then most keys are payload updates and a
        // blanket reserve would force a pointless rehash).
        if delta.len() > BATCH_RESERVE_MIN && self.data.len() < delta.len() * 8 {
            self.data.reserve(delta.len());
        }
        for (t, p) in delta.iter() {
            match self.insert_ref(t, p.clone()) {
                SupportChange::Appeared => transitions.push((t.clone(), 1)),
                SupportChange::Disappeared => transitions.push((t.clone(), -1)),
                SupportChange::Unchanged => {}
            }
        }
    }

    /// Replace this view's contents with `rel`, retaining the slot
    /// capacity of the primary map and the *structure* of every
    /// secondary index (its probe positions and so its compiled index
    /// id), while rebuilding index contents over the new data.
    ///
    /// Crucially, the per-index high-water live-bucket counters are
    /// **reset from the reloaded contents**: they drive the
    /// empty-bucket sweep budget, and inheriting the previous
    /// lifetime's peak would let a reloaded engine retain stale sweep
    /// budgets (too many empty buckets before a sweep fires) — or,
    /// after loading a larger database, sweep too eagerly.
    pub fn reload(&mut self, rel: &Relation<R>) {
        self.version += 1;
        self.data.clear();
        self.data.reserve(rel.len());
        if rel.schema() == &self.schema {
            for (t, p) in rel.iter() {
                if !p.is_zero() {
                    *self.data.upsert(t, R::zero).1 = p.clone();
                }
            }
        } else {
            // Column permutation (loads hand views relations in their
            // own schema order).
            let pos = rel
                .schema()
                .positions_of(self.schema.vars())
                .expect("reload relation must be a permutation of the view schema");
            for (t, p) in rel.iter() {
                if !p.is_zero() {
                    *self
                        .data
                        .upsert(&fivm_core::ProjKey::new(t, &pos), R::zero)
                        .1 = p.clone();
                }
            }
        }
        for ix in &mut self.indexes {
            ix.map.clear();
            for t in self.data.keys() {
                ix.map
                    .upsert(&fivm_core::ProjKey::new(t, &ix.positions), Vec::new)
                    .1
                    .push(t.clone());
            }
            ix.live = ix.map.len();
            ix.high_water = ix.live;
        }
    }

    /// Worst-case probe-chain length across the primary map and all
    /// secondary indexes (see [`TupleMap::max_probe_run`]).
    pub fn max_probe_run(&self) -> usize {
        self.indexes
            .iter()
            .map(|ix| ix.map.max_probe_run())
            .chain([self.data.max_probe_run()])
            .max()
            .unwrap_or(0)
    }

    /// Total retained secondary-index buckets (live + emptied). The
    /// high-water sweep keeps this O(peak live buckets); regression
    /// tests assert on it under adversarial churn.
    pub fn index_footprint(&self) -> usize {
        self.indexes.iter().map(|ix| ix.map.len()).sum()
    }

    /// Approximate resident bytes (primary + indexes).
    pub fn approx_bytes(&self) -> usize {
        let primary: usize = self
            .data
            .iter()
            .map(|(t, p)| t.approx_bytes() + std::mem::size_of::<R>() + p.heap_bytes() + 16)
            .sum();
        let secondary: usize = self
            .indexes
            .iter()
            .map(|ix| {
                ix.map
                    .iter()
                    // Emptied buckets are retained capacity, not content
                    // (mirrors hash-map capacity, which is not counted).
                    .filter(|(_, v)| !v.is_empty())
                    .map(|(k, v)| {
                        k.approx_bytes() + v.iter().map(Tuple::approx_bytes).sum::<usize>() + 16
                    })
                    .sum::<usize>()
            })
            .sum();
        primary + secondary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_core::{tuple, ProjKey};

    fn sch(vars: &[u32]) -> Schema {
        Schema::new(vars.to_vec())
    }

    #[test]
    fn insert_erase_roundtrip() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        assert_eq!(v.insert(tuple![1, 2], 5), SupportChange::Appeared);
        assert_eq!(v.insert(tuple![1, 2], -5), SupportChange::Disappeared);
        assert!(v.is_empty());
    }

    #[test]
    fn index_probe() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        let ix = v.ensure_index(&sch(&[1]));
        v.insert(tuple![1, 9], 1);
        v.insert(tuple![2, 9], 1);
        v.insert(tuple![3, 8], 1);
        let hits = v.probe(ix, &tuple![9]);
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&tuple![1, 9]));
        // dedup: asking again returns the same index
        assert_eq!(v.ensure_index(&sch(&[1])), ix);
    }

    #[test]
    fn index_built_over_existing_data() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        v.insert(tuple![1, 9], 1);
        v.insert(tuple![2, 9], 1);
        let ix = v.ensure_index(&sch(&[1]));
        assert_eq!(v.probe(ix, &tuple![9]).len(), 2);
    }

    #[test]
    fn index_maintains_deletions() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        let ix = v.ensure_index(&sch(&[0]));
        v.insert(tuple![1, 9], 2);
        v.insert(tuple![1, 8], 3);
        v.insert(tuple![1, 9], -2); // erases (1,9)
        let hits = v.probe(ix, &tuple![1]);
        assert_eq!(hits, &[tuple![1, 8]]);
        v.insert(tuple![1, 8], -3);
        assert!(v.probe(ix, &tuple![1]).is_empty());
    }

    /// Churn on a stable probe-key universe retains its buckets (the
    /// allocation-freedom contract), while churn on ever-fresh probe
    /// keys is swept back to the high-water budget.
    #[test]
    fn index_sweep_bounds_fresh_key_churn() {
        // Stable universe: footprint settles at the key count.
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        let ix = v.ensure_index(&sch(&[1]));
        for round in 0..20 {
            for i in 0..10i64 {
                v.insert(tuple![i, i], 1);
            }
            for i in 0..10i64 {
                v.insert(tuple![i, i], -1);
            }
            assert_eq!(v.index_footprint(), 10, "round {round}");
        }
        // Fresh keys every round: unbounded without the sweep.
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        let ix2 = v.ensure_index(&sch(&[1]));
        let per_round = 50i64;
        for round in 0..40i64 {
            let base = round * per_round;
            for i in 0..per_round {
                v.insert(tuple![base + i, base + i], 1);
            }
            for i in 0..per_round {
                v.insert(tuple![base + i, base + i], -1);
            }
        }
        let budget = 2 * 50 + super::INDEX_SWEEP_FLOOR;
        assert!(
            v.index_footprint() <= budget,
            "footprint {} exceeds the high-water budget {budget}",
            v.index_footprint()
        );
        // Probing still works after sweeps.
        v.insert(tuple![1, 9], 7);
        assert_eq!(v.probe(ix2, &tuple![9]), &[tuple![1, 9]]);
        let _ = ix;
    }

    /// Delta propagation probes view stores from worker threads behind
    /// shared references; the whole storage stack must stay `Send +
    /// Sync` (compile-time check).
    #[test]
    fn view_storage_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tuple>();
        assert_send_sync::<fivm_core::Value>();
        assert_send_sync::<TupleMap<i64>>();
        assert_send_sync::<ViewStore<i64>>();
        assert_send_sync::<fivm_core::Lifting<i64>>();
    }

    /// `reload` keeps index ids/positions but resets the high-water
    /// sweep counters from the reloaded contents: after reloading a
    /// small database over a store whose previous life had a large
    /// bucket peak, fresh-key churn must be swept against the *new*
    /// (small) budget.
    #[test]
    fn reload_resets_index_high_water_counters() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        let ix = v.ensure_index(&sch(&[1]));
        // Inflate the high-water mark: 5000 simultaneously-live buckets.
        for i in 0..5000i64 {
            v.insert(tuple![i, i], 1);
        }
        // Reload a 4-row database.
        let small = Relation::from_pairs(sch(&[0, 1]), (0..4i64).map(|i| (tuple![i, i], 1)));
        v.reload(&small);
        assert_eq!(v.len(), 4);
        assert_eq!(v.probe(ix, &tuple![2]), &[tuple![2, 2]]);
        // Fresh-key churn: without the counter reset the stale budget
        // (2 × 5000) would retain every emptied bucket below it.
        for round in 0..40i64 {
            for i in 0..50 {
                v.insert(tuple![10_000 + round * 50 + i, 10_000 + round * 50 + i], 1);
            }
            for i in 0..50 {
                v.insert(tuple![10_000 + round * 50 + i, 10_000 + round * 50 + i], -1);
            }
        }
        let budget = 2 * (4 + 50) + super::INDEX_SWEEP_FLOOR;
        assert!(
            v.index_footprint() <= budget,
            "stale high-water budget survived reload: footprint {} > {budget}",
            v.index_footprint()
        );
    }

    /// `reload` accepts contents in a permuted column order and stores
    /// them under the view's own schema.
    #[test]
    fn reload_reorders_permuted_schemas() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        let rel = Relation::from_pairs(sch(&[1, 0]), [(tuple![9, 1], 7i64)]);
        v.reload(&rel);
        assert_eq!(v.get(&tuple![1, 9]), Some(&7));
    }

    #[test]
    fn borrowed_probes_match_eager_keys() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        let ix = v.ensure_index(&sch(&[1]));
        v.insert(tuple![1, 9], 7);
        let held = tuple![9, 1, 5];
        // primary probe: π[1,0](held) = (1, 9)
        let pk = ProjKey::new(&held, &[1, 0]);
        assert_eq!(v.get(&pk), Some(&7));
        // secondary probe: π[0](held) = (9)
        let sk = ProjKey::new(&held, &[0]);
        assert_eq!(v.probe(ix, &sk), &[tuple![1, 9]]);
    }

    #[test]
    fn merge_reports_transitions() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0]));
        v.insert(tuple![1], 1);
        let delta = Relation::from_pairs(
            sch(&[0]),
            [(tuple![1], -1i64), (tuple![2], 4), (tuple![3], 0)],
        );
        let mut tr = v.merge(&delta);
        tr.sort();
        assert_eq!(tr, vec![(tuple![1], -1), (tuple![2], 1)]);
    }

    #[test]
    fn partial_payload_change_is_not_a_transition() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0]));
        v.insert(tuple![1], 5);
        let delta = Relation::from_pairs(sch(&[0]), [(tuple![1], -2i64)]);
        assert!(v.merge(&delta).is_empty());
        assert_eq!(v.get(&tuple![1]), Some(&3));
    }

    #[test]
    fn to_relation_roundtrip() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0]));
        v.insert(tuple![1], 5);
        v.insert(tuple![2], 7);
        let r = v.to_relation();
        assert_eq!(r.len(), 2);
        assert_eq!(r.payload(&tuple![2]), 7);
    }
}
