//! Materialized view storage.
//!
//! A [`ViewStore`] is the runtime form of a view tree node: a hash map
//! from key tuples to ring payloads (the paper materializes views as
//! “multi-indexed maps”), plus secondary indexes keyed by the probe
//! patterns that delta propagation needs. Indexes are created on demand
//! and maintained incrementally with the primary data.

use fivm_core::{FxHashMap, Ring, Relation, Schema, Tuple};

/// A secondary index: probe-key positions within the view schema, and a
/// map from probe keys to the full keys sharing them.
#[derive(Clone, Debug)]
struct SecondaryIndex {
    positions: Vec<usize>,
    map: FxHashMap<Tuple, Vec<Tuple>>,
}

/// A materialized view: primary map plus secondary indexes.
#[derive(Clone, Debug)]
pub struct ViewStore<R> {
    schema: Schema,
    data: FxHashMap<Tuple, R>,
    indexes: Vec<SecondaryIndex>,
}

impl<R: Ring> ViewStore<R> {
    /// Empty view over `schema`.
    pub fn new(schema: Schema) -> Self {
        ViewStore {
            schema,
            data: FxHashMap::default(),
            indexes: Vec::new(),
        }
    }

    /// The view’s key schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of keys with non-zero payload.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Payload of `t`, if non-zero.
    pub fn get(&self, t: &Tuple) -> Option<&R> {
        self.data.get(t)
    }

    /// Iterate over contents.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &R)> {
        self.data.iter()
    }

    /// Snapshot as a [`Relation`] (tests, re-evaluation).
    pub fn to_relation(&self) -> Relation<R> {
        Relation::from_pairs(
            self.schema.clone(),
            self.data.iter().map(|(t, p)| (t.clone(), p.clone())),
        )
    }

    /// Ensure a secondary index on the given variables exists; returns
    /// its id. `vars` must be a subset of the schema; an index on the
    /// full schema is never needed (probe the primary instead).
    pub fn ensure_index(&mut self, vars: &Schema) -> usize {
        let positions = self
            .schema
            .positions_of(vars.vars())
            .expect("index variables must be part of the view schema");
        if let Some(id) = self.indexes.iter().position(|ix| ix.positions == positions) {
            return id;
        }
        let mut map: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
        for t in self.data.keys() {
            map.entry(t.project(&positions)).or_default().push(t.clone());
        }
        self.indexes.push(SecondaryIndex { positions, map });
        self.indexes.len() - 1
    }

    /// Keys matching `probe` under index `ix`.
    pub fn probe(&self, ix: usize, probe: &Tuple) -> &[Tuple] {
        self.indexes[ix]
            .map
            .get(probe)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Add `payload` to key `t`, maintaining indexes; keys that sum to
    /// zero are erased.
    pub fn insert(&mut self, t: Tuple, payload: R) {
        if payload.is_zero() {
            return;
        }
        let (appeared, disappeared) = match self.data.entry(t.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().add_assign(&payload);
                if e.get().is_zero() {
                    e.remove();
                    (false, true)
                } else {
                    (false, false)
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(payload);
                (true, false)
            }
        };
        if appeared {
            for ix in &mut self.indexes {
                ix.map
                    .entry(t.project(&ix.positions))
                    .or_default()
                    .push(t.clone());
            }
        } else if disappeared {
            for ix in &mut self.indexes {
                let probe = t.project(&ix.positions);
                if let Some(v) = ix.map.get_mut(&probe) {
                    if let Some(pos) = v.iter().position(|x| x == &t) {
                        v.swap_remove(pos);
                    }
                    if v.is_empty() {
                        ix.map.remove(&probe);
                    }
                }
            }
        }
    }

    /// Merge a delta relation; returns per-key support transitions
    /// (`+1` appeared, `-1` disappeared) for indicator maintenance
    /// (Example B.2).
    pub fn merge(&mut self, delta: &Relation<R>) -> Vec<(Tuple, i8)> {
        debug_assert_eq!(delta.schema(), &self.schema, "delta schema mismatch");
        let mut transitions = Vec::new();
        for (t, p) in delta.iter() {
            let before = self.data.contains_key(t);
            self.insert(t.clone(), p.clone());
            let after = self.data.contains_key(t);
            match (before, after) {
                (false, true) => transitions.push((t.clone(), 1)),
                (true, false) => transitions.push((t.clone(), -1)),
                _ => {}
            }
        }
        transitions
    }

    /// Approximate resident bytes (primary + indexes).
    pub fn approx_bytes(&self) -> usize {
        let primary: usize = self
            .data
            .iter()
            .map(|(t, p)| t.approx_bytes() + std::mem::size_of::<R>() + p.heap_bytes() + 16)
            .sum();
        let secondary: usize = self
            .indexes
            .iter()
            .map(|ix| {
                ix.map
                    .iter()
                    .map(|(k, v)| k.approx_bytes() + v.iter().map(Tuple::approx_bytes).sum::<usize>() + 16)
                    .sum::<usize>()
            })
            .sum();
        primary + secondary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_core::tuple;

    fn sch(vars: &[u32]) -> Schema {
        Schema::new(vars.to_vec())
    }

    #[test]
    fn insert_erase_roundtrip() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        v.insert(tuple![1, 2], 5);
        v.insert(tuple![1, 2], -5);
        assert!(v.is_empty());
    }

    #[test]
    fn index_probe() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        let ix = v.ensure_index(&sch(&[1]));
        v.insert(tuple![1, 9], 1);
        v.insert(tuple![2, 9], 1);
        v.insert(tuple![3, 8], 1);
        let hits = v.probe(ix, &tuple![9]);
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&tuple![1, 9]));
        // dedup: asking again returns the same index
        assert_eq!(v.ensure_index(&sch(&[1])), ix);
    }

    #[test]
    fn index_built_over_existing_data() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        v.insert(tuple![1, 9], 1);
        v.insert(tuple![2, 9], 1);
        let ix = v.ensure_index(&sch(&[1]));
        assert_eq!(v.probe(ix, &tuple![9]).len(), 2);
    }

    #[test]
    fn index_maintains_deletions() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0, 1]));
        let ix = v.ensure_index(&sch(&[0]));
        v.insert(tuple![1, 9], 2);
        v.insert(tuple![1, 8], 3);
        v.insert(tuple![1, 9], -2); // erases (1,9)
        let hits = v.probe(ix, &tuple![1]);
        assert_eq!(hits, &[tuple![1, 8]]);
        v.insert(tuple![1, 8], -3);
        assert!(v.probe(ix, &tuple![1]).is_empty());
    }

    #[test]
    fn merge_reports_transitions() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0]));
        v.insert(tuple![1], 1);
        let delta = Relation::from_pairs(
            sch(&[0]),
            [(tuple![1], -1i64), (tuple![2], 4), (tuple![3], 0)],
        );
        let mut tr = v.merge(&delta);
        tr.sort();
        assert_eq!(tr, vec![(tuple![1], -1), (tuple![2], 1)]);
    }

    #[test]
    fn partial_payload_change_is_not_a_transition() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0]));
        v.insert(tuple![1], 5);
        let delta = Relation::from_pairs(sch(&[0]), [(tuple![1], -2i64)]);
        assert!(v.merge(&delta).is_empty());
        assert_eq!(v.get(&tuple![1]), Some(&3));
    }

    #[test]
    fn to_relation_roundtrip() {
        let mut v: ViewStore<i64> = ViewStore::new(sch(&[0]));
        v.insert(tuple![1], 5);
        v.insert(tuple![2], 7);
        let r = v.to_relation();
        assert_eq!(r.len(), 2);
        assert_eq!(r.payload(&tuple![2]), 7);
    }
}
