//! Factorized payloads and enumeration (paper §6.3, Example 6.6).
//!
//! In factorized-payload mode, each view stores — per key — only the
//! values of its **own** (marginalized) variables: instead of the full
//! payload relation `P[T]`, the view keeps `⊕_{Y ∈ T−{X}} P[T]`. The
//! hierarchy of these projected payloads, linked through view keys, *is*
//! the factorized representation of the query result, distributed over
//! the tree; it can be arbitrarily smaller than the listing form while
//! remaining lossless. Multiplicities count derivations and are exactly
//! what incremental maintenance needs.
//!
//! [`FactorizedResult`] enumerates the listing form back out. The stored
//! multiplicity of a value at a node is the product of its inner
//! children’s totals with the node’s local (leaf-derived) factor —
//! children are conditionally independent given the keys — so the local
//! factor is recovered by exact division while recursing.

use crate::executor::{IvmEngine, PayloadTransform};
use fivm_core::ring::relational::RelPayload;
use fivm_core::{FxHashMap, Schema, Tuple, Value, VarId};
use fivm_query::{NodeId, NodeKind, ViewTree};
use std::sync::Arc;

/// Child-payload pre-projection for factorized mode: a child’s payload
/// variables never survive the parent’s projection, so the child
/// collapses to its total multiplicity before entering the parent’s
/// payload product. Install with
/// [`IvmEngine::with_payload_preprojection`]; this is what keeps parent
/// payload products linear instead of materializing the cross product
/// the projection would discard.
pub fn factorized_preprojection() -> Arc<dyn Fn(&RelPayload) -> RelPayload + Send + Sync> {
    Arc::new(|p: &RelPayload| p.project_onto(&Schema::empty()))
}

/// Payload transform implementing the factorized representation: each
/// node’s relational payloads are projected onto the node’s own
/// marginalized variables.
pub fn factorized_transform(tree: &ViewTree) -> PayloadTransform<RelPayload> {
    let margins: Vec<Vec<VarId>> = tree
        .nodes
        .iter()
        .map(|n| match &n.kind {
            NodeKind::Inner { margin, .. } => margin.clone(),
            _ => Vec::new(),
        })
        .collect();
    Arc::new(move |node: NodeId, _key: &Tuple, p: &RelPayload| {
        let keep: Vec<VarId> = p
            .schema
            .iter()
            .copied()
            .filter(|v| margins[node].contains(v))
            .collect();
        p.project_onto(&Schema::new(keep))
    })
}

/// Enumerator over an engine running in factorized-payload mode.
pub struct FactorizedResult<'a> {
    engine: &'a IvmEngine<RelPayload>,
}

impl<'a> FactorizedResult<'a> {
    /// Wrap an engine. Every inner view must be materialized (build the
    /// engine with all relations updatable).
    pub fn new(engine: &'a IvmEngine<RelPayload>) -> Self {
        FactorizedResult { engine }
    }

    /// Enumerate the listing representation over `out_vars`: tuples with
    /// their multiplicities (unordered).
    pub fn enumerate(&self, out_vars: &Schema) -> Vec<(Tuple, i64)> {
        let mut out = Vec::new();
        let mut ctx: FxHashMap<VarId, Value> = FxHashMap::default();
        let root = self.engine.tree().root;
        self.enum_rec(&[root], &mut ctx, 1, out_vars, &mut out);
        out
    }

    /// Total number of derivations (the COUNT of the join), from the
    /// root alone — a cross-check that needs no enumeration.
    pub fn total_multiplicity(&self) -> i64 {
        self.node_total(self.engine.tree().root, &FxHashMap::default())
    }

    fn payload_at(&self, node: NodeId, ctx: &FxHashMap<VarId, Value>) -> Option<RelPayload> {
        let keys = &self.engine.tree().nodes[node].keys;
        let key: Tuple = keys
            .iter()
            .map(|v| ctx.get(v).expect("key var bound by ancestors").clone())
            .collect();
        let rel = self
            .engine
            .view_relation(node)
            .expect("factorized enumeration requires all views materialized");
        rel.get(&key).cloned()
    }

    /// Total derivations of a subtree given the context.
    fn node_total(&self, node: NodeId, ctx: &FxHashMap<VarId, Value>) -> i64 {
        self.payload_at(node, ctx)
            .map(|p| p.data.values().sum())
            .unwrap_or(0)
    }

    fn inner_children(&self, node: NodeId) -> Vec<NodeId> {
        self.engine.tree().nodes[node]
            .children
            .iter()
            .copied()
            .filter(|&c| matches!(self.engine.tree().nodes[c].kind, NodeKind::Inner { .. }))
            .collect()
    }

    /// DFS over a worklist of views: bind this node’s own values, push
    /// its inner children, recurse; emit when the worklist drains.
    fn enum_rec(
        &self,
        worklist: &[NodeId],
        ctx: &mut FxHashMap<VarId, Value>,
        mult: i64,
        out_vars: &Schema,
        out: &mut Vec<(Tuple, i64)>,
    ) {
        let Some((&node, rest)) = worklist.split_first() else {
            let tuple: Option<Vec<Value>> = out_vars.iter().map(|v| ctx.get(v).cloned()).collect();
            if let Some(vals) = tuple {
                out.push((Tuple::new(vals), mult));
            }
            return;
        };
        let Some(payload) = self.payload_at(node, ctx) else {
            return;
        };
        let children = self.inner_children(node);
        let mut next: Vec<NodeId> = Vec::with_capacity(children.len() + rest.len());
        next.extend(&children);
        next.extend(rest);
        let pschema = payload.schema.clone();
        for (vals, m) in payload.sorted() {
            for (i, v) in pschema.iter().enumerate() {
                ctx.insert(*v, vals.get(i).clone());
            }
            // stored multiplicity = local factor × ∏ children totals;
            // divide the totals out and let recursion redistribute them
            // per assignment.
            let mut denom = 1i64;
            for &c in &children {
                denom *= self.node_total(c, ctx);
            }
            if denom != 0 {
                debug_assert_eq!(m % denom, 0, "multiplicities must factor");
                self.enum_rec(&next, ctx, mult * (m / denom), out_vars, out);
            }
            for v in pschema.iter() {
                ctx.remove(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_tree, Database};
    use fivm_core::ring::relational::RelPayload;
    use fivm_core::{tuple, Delta, Lifting, LiftingMap, Relation, Ring, Semiring};
    use fivm_query::{QueryDef, VariableOrder};

    /// Lifting map for a conjunctive query: free variables lift to
    /// singleton relations, bound ones to {() → 1} (paper §6.3).
    fn cq_liftings(q: &QueryDef, cq_free: &[&str]) -> LiftingMap<RelPayload> {
        let mut lifts = LiftingMap::new();
        for name in cq_free {
            let v = q.catalog.lookup(name).unwrap();
            lifts.set(
                v,
                Lifting::from_fn(move |val| RelPayload::lift_free(Schema::new(vec![v]), val)),
            );
        }
        lifts
    }

    fn fig2_updates() -> Vec<(usize, Tuple)> {
        let mut u = Vec::new();
        for (a, b) in [(1, 1), (1, 2), (2, 3), (3, 4)] {
            u.push((0, tuple![a, b]));
        }
        for (a, c, e) in [(1, 1, 1), (1, 1, 2), (1, 2, 3), (2, 2, 4)] {
            u.push((1, tuple![a, c, e]));
        }
        for (c, d) in [(1, 1), (2, 2), (2, 3), (3, 4)] {
            u.push((2, tuple![c, d]));
        }
        u
    }

    /// Example 6.5: Q(A,B,C,D) over Figure 2c — the listing result at the
    /// root has the 8 tuples of Figure 2e with their multiplicities.
    #[test]
    fn listing_payload_mode_matches_figure_2e() {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = fivm_query::ViewTree::build(&q, &vo);
        let lifts = cq_liftings(&q, &["A", "B", "C", "D"]);
        let mut engine: IvmEngine<RelPayload> = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        for (ri, t) in fig2_updates() {
            let d = Relation::from_pairs(q.relations[ri].schema.clone(), [(t, RelPayload::one())]);
            engine.apply(ri, &Delta::Flat(d));
        }
        let root = engine.result();
        let payload = root.payload(&Tuple::unit());
        // Figure 2e (right): 8 result tuples; (a1,b1,c1,d1) has mult 2.
        assert_eq!(payload.len(), 8);
        assert_eq!(payload.multiplicity(&tuple![1, 1, 1, 1]), 2);
        assert_eq!(payload.multiplicity(&tuple![1, 1, 2, 2]), 1);
        assert_eq!(payload.multiplicity(&tuple![2, 3, 2, 3]), 1);
    }

    /// Example 6.6: the factorized payloads enumerate to exactly the
    /// listing representation, and stay in sync under deletes.
    #[test]
    fn factorized_enumeration_matches_listing() {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = fivm_query::ViewTree::build(&q, &vo);
        let lifts = cq_liftings(&q, &["A", "B", "C", "D"]);
        let transform = factorized_transform(&tree);
        let mut fact: IvmEngine<RelPayload> =
            IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone())
                .with_payload_transform(transform)
                .with_payload_preprojection(factorized_preprojection());
        let mut list: IvmEngine<RelPayload> = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        for (ri, t) in fig2_updates() {
            let d = Relation::from_pairs(q.relations[ri].schema.clone(), [(t, RelPayload::one())]);
            fact.apply(ri, &Delta::Flat(d.clone()));
            list.apply(ri, &Delta::Flat(d));
        }
        let a = q.catalog.lookup("A").unwrap();
        let b = q.catalog.lookup("B").unwrap();
        let c = q.catalog.lookup("C").unwrap();
        let d = q.catalog.lookup("D").unwrap();
        let out_schema = {
            let mut v = vec![a, b, c, d];
            v.sort_unstable();
            Schema::new(v)
        };
        let mut enumerated = FactorizedResult::new(&fact).enumerate(&out_schema);
        enumerated.sort();
        let listing_payload = list.result().payload(&Tuple::unit());
        let mut expected = listing_payload.project_onto(&out_schema).sorted();
        expected.sort();
        assert_eq!(enumerated, expected);
        assert_eq!(
            FactorizedResult::new(&fact).total_multiplicity(),
            listing_payload.data.values().sum::<i64>()
        );

        // delete a tuple from S and re-check
        let del = Relation::from_pairs(
            q.relations[1].schema.clone(),
            [(tuple![1, 1, 1], RelPayload::one().neg())],
        );
        fact.apply(1, &Delta::Flat(del.clone()));
        list.apply(1, &Delta::Flat(del));
        let mut enumerated = FactorizedResult::new(&fact).enumerate(&out_schema);
        enumerated.sort();
        let mut expected = list
            .result()
            .payload(&Tuple::unit())
            .project_onto(&out_schema)
            .sorted();
        expected.sort();
        assert_eq!(enumerated, expected);
    }

    /// Factorized payloads store strictly fewer values than the listing
    /// form on data with shared subtrees (the succinctness Fig. 8
    /// measures): n R-tuples × m T-tuples per key give n+m factored vs
    /// n·m listed.
    #[test]
    fn factorized_is_smaller_on_blowup_data() {
        let q = QueryDef::new(&[("R", &["A", "B"]), ("T", &["A", "C"])], &[]);
        let vo = VariableOrder::parse("A - { B, C }", &q.catalog);
        let tree = fivm_query::ViewTree::build(&q, &vo);
        let lifts = cq_liftings(&q, &["A", "B", "C"]);
        let transform = factorized_transform(&tree);
        let mut fact: IvmEngine<RelPayload> =
            IvmEngine::new(q.clone(), tree.clone(), &[0, 1], lifts.clone())
                .with_payload_transform(transform)
                .with_payload_preprojection(factorized_preprojection());
        let mut list: IvmEngine<RelPayload> = IvmEngine::new(q.clone(), tree, &[0, 1], lifts);
        let n = 20;
        for i in 0..n {
            let dr = Relation::from_pairs(
                q.relations[0].schema.clone(),
                [(tuple![1, i], RelPayload::one())],
            );
            let dt = Relation::from_pairs(
                q.relations[1].schema.clone(),
                [(tuple![1, 100 + i], RelPayload::one())],
            );
            fact.apply(0, &Delta::Flat(dr.clone()));
            fact.apply(1, &Delta::Flat(dt.clone()));
            list.apply(0, &Delta::Flat(dr));
            list.apply(1, &Delta::Flat(dt));
        }
        assert!(
            fact.approx_bytes() * 2 < list.approx_bytes(),
            "factorized {} vs listing {}",
            fact.approx_bytes(),
            list.approx_bytes()
        );
        // correctness preserved
        let a = q.catalog.lookup("A").unwrap();
        let b = q.catalog.lookup("B").unwrap();
        let c = q.catalog.lookup("C").unwrap();
        let out_schema = {
            let mut v = vec![a, b, c];
            v.sort_unstable();
            Schema::new(v)
        };
        let mut enumerated = FactorizedResult::new(&fact).enumerate(&out_schema);
        enumerated.sort();
        assert_eq!(enumerated.len(), (n * n) as usize);
        let mut expected = list
            .result()
            .payload(&Tuple::unit())
            .project_onto(&out_schema)
            .sorted();
        expected.sort();
        assert_eq!(enumerated, expected);
    }

    /// The evaluation oracle agrees with incremental maintenance for
    /// relational payloads too.
    #[test]
    fn relational_ring_ivm_equals_recompute() {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = fivm_query::ViewTree::build(&q, &vo);
        let lifts = cq_liftings(&q, &["A", "C"]);
        let mut engine: IvmEngine<RelPayload> =
            IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        let mut db = Database::empty(&q);
        for (ri, t) in fig2_updates() {
            let d = Relation::from_pairs(q.relations[ri].schema.clone(), [(t, RelPayload::one())]);
            engine.apply(ri, &Delta::Flat(d.clone()));
            db.relations[ri].union_in_place(&d);
        }
        assert_eq!(engine.result(), eval_tree(&tree, &db, &lifts));
    }
}
