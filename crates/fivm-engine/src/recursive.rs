//! Fully-recursive higher-order IVM — the DBToaster-style baseline
//! (paper §7: DBT with scalar payloads, DBT-RING with ring payloads).
//!
//! Where F-IVM maintains **one view tree for all relations**, the fully
//! recursive scheme materializes **one hierarchy per updatable
//! relation**: for each view `V` over relations `M` and each `r ∈ M`,
//! the delta `δ_r V = δ̂R ⊗ C₁ ⊗ … ⊗ C_k` joins the (pre-aggregated)
//! update with materialized *complement* views, one per connected
//! component of `M \ {r}` — DBToaster places an aggregate around each
//! component that becomes disconnected once the update tuple binds the
//! join variables (§7’s description of the Housing delta queries).
//! Complements are materialized recursively and deduplicated
//! syntactically by `(relation set, keys)`.
//!
//! The result is typically **more** views than F-IVM (13 vs 9 on the
//! Retailer schema with ring payloads), each cheap to maintain — which
//! is exactly the space/time profile Figures 7/13 measure.

use crate::view::ViewStore;
use fivm_core::{Delta, FxHashMap, Lifting, LiftingMap, Relation, Ring, Schema};
use fivm_query::{QueryDef, RelIndex};

/// One materialized view of the recursive hierarchy.
struct RecView<R> {
    /// Bitmask of the relations joined in this view.
    mask: u64,
    /// Group-by variables of the view.
    keys: Schema,
    store: ViewStore<R>,
    /// For each updatable relation `r` in `mask` (when `|mask| > 1`):
    /// the component complement views used by `δ_r`.
    complements: FxHashMap<RelIndex, Vec<usize>>,
}

/// DBToaster-style fully recursive higher-order IVM.
pub struct RecursiveIvm<R: Ring> {
    query: QueryDef,
    liftings: LiftingMap<R>,
    updatable: u64,
    views: Vec<RecView<R>>,
    memo: FxHashMap<(u64, Schema), usize>,
    top: usize,
    updates_applied: u64,
}

impl<R: Ring> RecursiveIvm<R> {
    /// Compile the recursive materialization hierarchy for `query` under
    /// updates to `updatable`.
    pub fn new(query: QueryDef, updatable: &[RelIndex], liftings: LiftingMap<R>) -> Self {
        let mask = updatable.iter().fold(0u64, |m, &r| m | (1u64 << r));
        let all = (1u64 << query.relations.len()) - 1;
        let mut s = RecursiveIvm {
            query,
            liftings,
            updatable: mask,
            views: Vec::new(),
            memo: FxHashMap::default(),
            top: 0,
            updates_applied: 0,
        };
        let free = s.query.free.clone();
        s.top = s.compile(all, free);
        s
    }

    fn compile(&mut self, mask: u64, keys: Schema) -> usize {
        if let Some(&id) = self.memo.get(&(mask, keys.clone())) {
            return id;
        }
        let id = self.views.len();
        self.views.push(RecView {
            mask,
            keys: keys.clone(),
            store: ViewStore::new(keys.clone()),
            complements: FxHashMap::default(),
        });
        self.memo.insert((mask, keys.clone()), id);
        if mask.count_ones() > 1 {
            for r in 0..self.query.relations.len() {
                if mask & (1 << r) == 0 || self.updatable & (1 << r) == 0 {
                    continue;
                }
                let bound = self.query.relations[r].schema.union(&keys);
                let rest = mask & !(1 << r);
                let comps = connected_components(&self.query, rest, &bound);
                let mut comp_views = Vec::new();
                for cmask in comps {
                    let cvars = vars_of(&self.query, cmask);
                    let ckeys = cvars.intersect(&bound);
                    comp_views.push(self.compile(cmask, ckeys));
                }
                self.views[id].complements.insert(r, comp_views);
            }
        }
        id
    }

    /// Bulk-load: evaluate every materialized view from scratch.
    pub fn load(&mut self, db: &crate::eval::Database<R>) {
        for i in 0..self.views.len() {
            let mask = self.views[i].mask;
            let keys = self.views[i].keys.clone();
            let mut acc: Option<Relation<R>> = None;
            for r in 0..self.query.relations.len() {
                if mask & (1 << r) != 0 {
                    acc = Some(match acc {
                        None => db.relations[r].clone(),
                        Some(a) => a.join(&db.relations[r]),
                    });
                }
            }
            let acc = acc.expect("view over no relations");
            let margins: Vec<(u32, Lifting<R>)> = acc
                .schema()
                .iter()
                .filter(|v| !keys.contains(**v))
                .map(|&v| (v, self.liftings.get(v)))
                .collect();
            let rel = acc.marginalize_many(&margins).reorder(&keys);
            self.views[i].store = ViewStore::new(keys);
            self.views[i].store.merge(&rel);
        }
    }

    /// Apply an update to `rel`: every view whose mask contains `rel`
    /// receives `δV = δ̂R ⊗ C₁ ⊗ … ⊗ C_k` (complements are unaffected
    /// by this update, so maintenance order does not matter).
    pub fn apply(&mut self, rel: RelIndex, delta: &Delta<R>) {
        assert!(
            self.updatable & (1 << rel) != 0,
            "relation {rel} not updatable"
        );
        self.updates_applied += 1;
        let flat = delta.flatten().reorder(&self.query.relations[rel].schema);
        for i in 0..self.views.len() {
            if self.views[i].mask & (1 << rel) == 0 {
                continue;
            }
            let keys = self.views[i].keys.clone();
            let delta_v = if self.views[i].mask.count_ones() == 1 {
                // single-relation view: maintained directly from δR
                let margins: Vec<(u32, Lifting<R>)> = flat
                    .schema()
                    .iter()
                    .filter(|v| !keys.contains(**v))
                    .map(|&v| (v, self.liftings.get(v)))
                    .collect();
                flat.marginalize_many(&margins).reorder(&keys)
            } else {
                let comp_ids = self.views[i].complements[&rel].clone();
                // keep vars needed by the output keys or any complement
                let mut keep = keys.clone();
                for &c in &comp_ids {
                    keep = keep.union(&self.views[c].keys);
                }
                let margins: Vec<(u32, Lifting<R>)> = flat
                    .schema()
                    .iter()
                    .filter(|v| !keep.contains(**v))
                    .map(|&v| (v, self.liftings.get(v)))
                    .collect();
                let mut acc = flat.marginalize_many(&margins);
                for &c in &comp_ids {
                    acc = self.join_with_view(&acc, c);
                }
                let margins: Vec<(u32, Lifting<R>)> = acc
                    .schema()
                    .iter()
                    .filter(|v| !keys.contains(**v))
                    .map(|&v| (v, self.liftings.get(v)))
                    .collect();
                acc.marginalize_many(&margins).reorder(&keys)
            };
            self.views[i].store.merge(&delta_v);
        }
    }

    fn join_with_view(&mut self, acc: &Relation<R>, c: usize) -> Relation<R> {
        let sib_schema = self.views[c].keys.clone();
        let common = acc.schema().intersect(&sib_schema);
        let acc_probe = acc.schema().positions_of(common.vars()).expect("subset");
        let rest_vars = sib_schema.minus(&common);
        let out_schema = acc.schema().union(&sib_schema);
        if common.len() == sib_schema.len() {
            let store = &self.views[c].store;
            let reorder = common.positions_of(store.schema().vars()).expect("perm");
            let mut out = Relation::new(out_schema);
            for (t, p) in acc.iter() {
                let probe = t.project(&acc_probe).project(&reorder);
                if let Some(sp) = store.get(&probe) {
                    out.insert(t.clone(), p.mul(sp));
                }
            }
            return out;
        }
        let ix = self.views[c].store.ensure_index(&common);
        let store = &self.views[c].store;
        let rest_pos = store
            .schema()
            .positions_of(rest_vars.vars())
            .expect("subset");
        let mut out = Relation::new(out_schema);
        for (t, p) in acc.iter() {
            for full in store.probe(ix, &t.project(&acc_probe)) {
                let sp = store.get(full).expect("indexed keys are live");
                out.insert(t.concat_projected(full, &rest_pos), p.mul(sp));
            }
        }
        out
    }

    /// The maintained query result.
    pub fn result(&self) -> Relation<R> {
        self.views[self.top].store.to_relation()
    }

    /// Number of materialized views — the §7 view-count metric for
    /// DBT / DBT-RING.
    pub fn stored_view_count(&self) -> usize {
        self.views.len()
    }

    /// Total keys across all views.
    pub fn total_entries(&self) -> usize {
        self.views.iter().map(|v| v.store.len()).sum()
    }

    /// Approximate resident bytes across all views.
    pub fn approx_bytes(&self) -> usize {
        self.views.iter().map(|v| v.store.approx_bytes()).sum()
    }

    /// Updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }
}

/// Variables covered by the relations in `mask`.
fn vars_of(query: &QueryDef, mask: u64) -> Schema {
    let mut out = Schema::empty();
    for r in 0..query.relations.len() {
        if mask & (1 << r) != 0 {
            out = out.union(&query.relations[r].schema);
        }
    }
    out
}

/// Connected components of the relations in `mask`, where two relations
/// are adjacent iff they share a variable **outside** `bound` (variables
/// in `bound` are fixed by the update tuple / output keys and no longer
/// connect the residual join).
fn connected_components(query: &QueryDef, mask: u64, bound: &Schema) -> Vec<u64> {
    let rels: Vec<usize> = (0..query.relations.len())
        .filter(|r| mask & (1 << r) != 0)
        .collect();
    let mut comp: Vec<u64> = Vec::new();
    let mut assigned = vec![false; rels.len()];
    for i in 0..rels.len() {
        if assigned[i] {
            continue;
        }
        let mut cmask = 0u64;
        let mut stack = vec![i];
        assigned[i] = true;
        while let Some(x) = stack.pop() {
            cmask |= 1 << rels[x];
            for y in 0..rels.len() {
                if assigned[y] {
                    continue;
                }
                let shared = query.relations[rels[x]]
                    .schema
                    .intersect(&query.relations[rels[y]].schema);
                if shared.iter().any(|v| !bound.contains(*v)) {
                    assigned[y] = true;
                    stack.push(y);
                }
            }
        }
        comp.push(cmask);
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_tree, Database};
    use fivm_core::lifting::int_identity;
    use fivm_core::{tuple, Tuple};
    use fivm_query::{VariableOrder, ViewTree};

    fn oracle(q: &QueryDef, db: &Database<i64>, lifts: &LiftingMap<i64>) -> Relation<i64> {
        let vo = VariableOrder::auto(q);
        let tree = ViewTree::build(q, &vo);
        eval_tree(&tree, db, lifts)
    }

    #[test]
    fn chain_query_correctness() {
        let q = QueryDef::example_rst(&[]);
        let lifts = LiftingMap::<i64>::new();
        let mut ivm = RecursiveIvm::new(q.clone(), &[0, 1, 2], lifts.clone());
        let mut db = Database::empty(&q);
        let updates: Vec<(usize, Tuple, i64)> = vec![
            (0, tuple![1, 1], 1),
            (1, tuple![1, 1, 1], 1),
            (2, tuple![1, 1], 1),
            (0, tuple![1, 2], 1),
            (2, tuple![1, 9], 2),
            (0, tuple![1, 1], -1),
            (1, tuple![2, 1, 5], 1),
        ];
        for (ri, t, m) in updates {
            let d = Relation::from_pairs(q.relations[ri].schema.clone(), [(t.clone(), m)]);
            ivm.apply(ri, &Delta::Flat(d.clone()));
            db.relations[ri].union_in_place(&d);
            assert_eq!(ivm.result(), oracle(&q, &db, &lifts), "diverged at {t}");
        }
    }

    #[test]
    fn group_by_with_liftings() {
        let q = QueryDef::example_rst(&["A"]);
        let mut lifts = LiftingMap::<i64>::new();
        lifts.set(q.catalog.lookup("D").unwrap(), int_identity());
        let mut ivm = RecursiveIvm::new(q.clone(), &[0, 1, 2], lifts.clone());
        let mut db = Database::empty(&q);
        for (ri, t) in [
            (0usize, tuple![1, 1]),
            (1, tuple![1, 2, 3]),
            (2, tuple![2, 7]),
            (2, tuple![2, 5]),
            (0, tuple![1, 4]),
        ] {
            let d = Relation::from_pairs(q.relations[ri].schema.clone(), [(t, 1i64)]);
            ivm.apply(ri, &Delta::Flat(d.clone()));
            db.relations[ri].union_in_place(&d);
        }
        assert_eq!(ivm.result(), oracle(&q, &db, &lifts));
        // SUM(D) for A=1: two B’s × (7 + 5) = 24
        assert_eq!(ivm.result().payload(&tuple![1]), 24);
    }

    /// Star join: the complements decompose into one single-relation
    /// view per satellite — DBToaster’s Housing shape (§7).
    #[test]
    fn star_join_decomposes_into_singletons() {
        let q = QueryDef::new(
            &[("H", &["P", "X"]), ("S", &["P", "Y"]), ("I", &["P", "Z"])],
            &[],
        );
        let ivm: RecursiveIvm<i64> = RecursiveIvm::new(q, &[0, 1, 2], LiftingMap::new());
        // top + 3 single-relation views keyed on P (deduped)
        assert_eq!(ivm.stored_view_count(), 4);
        let top = &ivm.views[ivm.top];
        for r in 0..3 {
            let comps = &top.complements[&r];
            assert_eq!(comps.len(), 2, "two satellites per update");
            for &c in comps {
                assert_eq!(ivm.views[c].mask.count_ones(), 1);
            }
        }
    }

    /// Snowflake: removing the fact relation leaves the dimension chain
    /// L–C connected through their private join key.
    #[test]
    fn snowflake_keeps_connected_dimensions_together() {
        let q = QueryDef::new(
            &[
                ("Inv", &["locn", "ksn"]),
                ("Item", &["ksn", "cat"]),
                ("Loc", &["locn", "zip"]),
                ("Census", &["zip", "pop"]),
            ],
            &[],
        );
        let ivm: RecursiveIvm<i64> = RecursiveIvm::new(q.clone(), &[0, 1, 2, 3], LiftingMap::new());
        let top = &ivm.views[ivm.top];
        let inv = q.relation_index("Inv").unwrap();
        let comps = &top.complements[&inv];
        // components: {Item}, {Loc, Census} — zip connects L and C
        let masks: Vec<u32> = comps
            .iter()
            .map(|&c| ivm.views[c].mask.count_ones())
            .collect();
        let mut sorted = masks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn load_then_update() {
        let q = QueryDef::example_rst(&[]);
        let lifts = LiftingMap::<i64>::new();
        let mut db = Database::empty(&q);
        db.relations[0].insert(tuple![1, 1], 1);
        db.relations[1].insert(tuple![1, 2, 3], 1);
        db.relations[2].insert(tuple![2, 4], 1);
        let mut ivm = RecursiveIvm::new(q.clone(), &[0, 1, 2], lifts.clone());
        ivm.load(&db);
        assert_eq!(ivm.result(), oracle(&q, &db, &lifts));
        let d = Relation::from_pairs(q.relations[0].schema.clone(), [(tuple![1, 5], 1i64)]);
        ivm.apply(0, &Delta::Flat(d.clone()));
        db.relations[0].union_in_place(&d);
        assert_eq!(ivm.result(), oracle(&q, &db, &lifts));
    }

    /// The recursive hierarchy uses at least as many views as F-IVM’s
    /// single view tree on the same query (the paper’s qualitative
    /// comparison).
    #[test]
    fn more_views_than_fivm() {
        let q = QueryDef::example_rst(&[]);
        let ivm: RecursiveIvm<i64> = RecursiveIvm::new(q.clone(), &[0, 1, 2], LiftingMap::new());
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        assert!(ivm.stored_view_count() >= tree.inner_count());
    }
}
