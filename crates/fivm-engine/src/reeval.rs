//! Re-evaluation baselines (paper Appendix C, Figure 11):
//!
//! * [`FactorizedReeval`] (F-RE) — recomputes the result from scratch on
//!   every update, but *using the factorized view-tree plan*.
//! * [`NaiveReeval`] (DBT-RE) — recomputes by joining all relations into
//!   the listing representation first and aggregating afterwards.
//!
//! Both illustrate the first factorization lock (factorized evaluation)
//! in isolation from incremental maintenance.

use crate::eval::{eval_tree, Database};
use fivm_core::{Delta, Lifting, LiftingMap, Relation, Ring};
use fivm_query::{QueryDef, RelIndex, ViewTree};

/// F-RE: factorized re-evaluation on every update.
pub struct FactorizedReeval<R: Ring> {
    query: QueryDef,
    tree: ViewTree,
    liftings: LiftingMap<R>,
    db: Database<R>,
    result: Relation<R>,
}

impl<R: Ring> FactorizedReeval<R> {
    /// Build over a view tree.
    pub fn new(query: QueryDef, tree: ViewTree, liftings: LiftingMap<R>) -> Self {
        let db = Database::empty(&query);
        let result = eval_tree(&tree, &db, &liftings);
        FactorizedReeval {
            query,
            tree,
            liftings,
            db,
            result,
        }
    }

    /// Apply an update: fold into the base relation and recompute.
    pub fn apply(&mut self, rel: RelIndex, delta: &Delta<R>) {
        let flat = delta.flatten().reorder(&self.query.relations[rel].schema);
        self.db.relations[rel].union_in_place(&flat);
        self.result = eval_tree(&self.tree, &self.db, &self.liftings);
    }

    /// The current result.
    pub fn result(&self) -> &Relation<R> {
        &self.result
    }
}

/// DBT-RE: naive join-then-aggregate re-evaluation on every update.
pub struct NaiveReeval<R: Ring> {
    query: QueryDef,
    liftings: LiftingMap<R>,
    db: Database<R>,
    result: Relation<R>,
}

impl<R: Ring> NaiveReeval<R> {
    /// Build for a query.
    pub fn new(query: QueryDef, liftings: LiftingMap<R>) -> Self {
        let db = Database::empty(&query);
        let mut s = NaiveReeval {
            query,
            liftings,
            db,
            result: Relation::new(fivm_core::Schema::empty()),
        };
        s.recompute();
        s
    }

    fn recompute(&mut self) {
        // join everything (the listing representation)…
        let mut acc = self.db.relations[0].clone();
        for r in &self.db.relations[1..] {
            acc = acc.join(r);
        }
        // …then aggregate the bound variables
        let margins: Vec<(u32, Lifting<R>)> = acc
            .schema()
            .iter()
            .filter(|v| !self.query.free.contains(**v))
            .map(|&v| (v, self.liftings.get(v)))
            .collect();
        let out = acc.marginalize_many(&margins);
        self.result = if out.schema().len() == self.query.free.len() {
            out.reorder(&self.query.free)
        } else {
            out
        };
    }

    /// Apply an update: fold into the base relation and recompute.
    pub fn apply(&mut self, rel: RelIndex, delta: &Delta<R>) {
        let flat = delta.flatten().reorder(&self.query.relations[rel].schema);
        self.db.relations[rel].union_in_place(&flat);
        self.recompute();
    }

    /// The current result.
    pub fn result(&self) -> &Relation<R> {
        &self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_core::lifting::int_identity;
    use fivm_core::tuple;
    use fivm_query::VariableOrder;

    #[test]
    fn both_reevals_agree_with_each_other() {
        let q = QueryDef::example_rst(&["A"]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let mut lifts = LiftingMap::<i64>::new();
        lifts.set(q.catalog.lookup("E").unwrap(), int_identity());
        let mut fre = FactorizedReeval::new(q.clone(), tree, lifts.clone());
        let mut dre = NaiveReeval::new(q.clone(), lifts);
        for (ri, t) in [
            (0usize, tuple![1, 1]),
            (1, tuple![1, 2, 3]),
            (2, tuple![2, 7]),
            (0, tuple![2, 5]),
            (1, tuple![2, 2, 4]),
        ] {
            let d = Delta::Flat(Relation::from_pairs(
                q.relations[ri].schema.clone(),
                [(t, 1i64)],
            ));
            fre.apply(ri, &d);
            dre.apply(ri, &d);
            assert_eq!(fre.result(), dre.result());
        }
        // SUM(E) for A=1: 3 (single joining tuple chain)
        assert_eq!(fre.result().payload(&tuple![1]), 3);
    }

    #[test]
    fn deletion_supported() {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::auto(&q);
        let tree = ViewTree::build(&q, &vo);
        let mut fre = FactorizedReeval::new(q.clone(), tree, LiftingMap::<i64>::new());
        let ins = Delta::Flat(Relation::from_pairs(
            q.relations[0].schema.clone(),
            [(tuple![1, 1], 1i64)],
        ));
        fre.apply(0, &ins);
        fre.apply(0, &ins.neg());
        assert!(fre.result().is_empty());
    }
}
