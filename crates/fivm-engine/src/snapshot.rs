//! Epoch-pinned snapshot reads over a maintained engine.
//!
//! The executor is single-owner: while a thread is inside
//! [`IvmEngine::apply`], no other thread may probe the views. This
//! module splits the read path from the maintenance path the way a
//! serving system needs (the paper's views are only useful if they can
//! be *queried* while staying fresh):
//!
//! * the maintenance thread owns the mutable [`IvmEngine`] and, at
//!   moments of its choosing, **publishes** an epoch — an immutable
//!   [`EngineSnapshot`] built copy-on-write from the live stores;
//! * readers **pin** the current epoch through a [`SnapshotReader`]
//!   (one brief, uncontended lock to clone an `Arc`) and then probe it
//!   entirely lock-free: point [`EngineSnapshot::get`], index
//!   [`EngineSnapshot::probe`], full enumeration;
//! * an epoch **retires** when the maintenance thread publishes past it
//!   and the last reader unpins (its `Arc` count reaches zero — no
//!   epoch list, no GC thread).
//!
//! Copy-on-write is keyed on [`ViewStore::version`]: publishing clones
//! only stores mutated since the previous epoch and carries clean ones
//! forward as shared `Arc`s, so publish cost is proportional to what
//! actually changed. Between publishes the writer pays nothing — the
//! single-tuple maintenance path is untouched.
//!
//! [`ServingEngine`] packages the common arrangement: engine +
//! publisher + subscription hub (see [`crate::subscribe`]), with an
//! optional publish-every-N-updates cadence.

use crate::executor::IvmEngine;
use crate::subscribe::{Subscriber, SubscriptionHub};
use crate::view::ViewStore;
use fivm_core::sync::atomic::{AtomicU64, Ordering};
use fivm_core::sync::RwLock;
use fivm_core::{Catalog, Delta, Relation, Ring, Tuple, TupleKey};
use fivm_query::{NodeId, RelIndex};
use std::sync::Arc;

/// Seeded-fault knobs for the model checker (`--cfg fivm_model_check`
/// builds only). Real builds compile none of this.
#[cfg(fivm_model_check)]
pub mod faults {
    use std::sync::atomic::AtomicBool;

    /// Advertise the new epoch number *before* the slot holds the new
    /// snapshot (and with `Relaxed` instead of `Release`): a reader that
    /// observes the advertised epoch can then pin the *previous*
    /// snapshot — the torn publish the model checker must catch.
    pub static TORN_PUBLISH: AtomicBool = AtomicBool::new(false);
}

/// Single-slot epoch handoff: one writer publishes immutable values,
/// any number of readers pin the current one.
///
/// This is the whole synchronization story of the serving layer,
/// extracted so the model checker can explore it in isolation:
///
/// * [`EpochCell::publish`] swaps the new `Arc` into the slot under the
///   write lock, then advertises its epoch number with a `Release`
///   store;
/// * [`EpochCell::pin`] clones the `Arc` under a brief read lock —
///   everything after is lock-free against the immutable value;
/// * [`EpochCell::epoch`] is the cheap freshness probe (`Acquire`
///   load, no lock): once it returns `e`, a subsequent `pin` is
///   guaranteed to return epoch `>= e`.
pub struct EpochCell<T> {
    slot: RwLock<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> EpochCell<T> {
    /// A cell holding `initial` as epoch `epoch`.
    pub fn new(epoch: u64, initial: Arc<T>) -> Self {
        EpochCell {
            slot: RwLock::new(initial),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// Publish `next` as epoch `epoch`. Pinned older values are
    /// unaffected; new pins see `next`. The epoch number must only
    /// increase (single writer).
    pub fn publish(&self, epoch: u64, next: Arc<T>) {
        #[cfg(fivm_model_check)]
        // relaxed-ok: fault knob, set before the checker runs.
        if faults::TORN_PUBLISH.load(std::sync::atomic::Ordering::Relaxed) {
            // Seeded bug: advertise before the slot holds the value
            // (relaxed-ok: the weak order IS the bug under test).
            self.epoch.store(epoch, Ordering::Relaxed);
            *self.slot.write().expect("epoch slot poisoned") = next;
            return;
        }
        *self.slot.write().expect("epoch slot poisoned") = next;
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Pin the current value (brief read lock, then lock-free).
    pub fn pin(&self) -> Arc<T> {
        self.slot.read().expect("epoch slot poisoned").clone()
    }

    /// The advertised epoch: after `epoch()` returns `e`, `pin()`
    /// returns a value published as epoch `>= e`.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

/// One published epoch: an immutable, internally consistent image of
/// every materialized view at a single update boundary (LSN).
pub struct EngineSnapshot<R> {
    epoch: u64,
    lsn: u64,
    root: NodeId,
    views: Vec<Option<Arc<ViewStore<R>>>>,
}

impl<R: Ring> EngineSnapshot<R> {
    /// Epoch number (strictly increasing across publishes).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Update boundary this snapshot reflects: exactly the first `lsn`
    /// applied updates, never a torn mix.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// A node's view at this epoch, if materialized.
    pub fn view(&self, node: NodeId) -> Option<&ViewStore<R>> {
        self.views.get(node)?.as_deref()
    }

    /// Point lookup in a node's view (lock-free; borrowed probe keys
    /// accepted).
    pub fn get<K: TupleKey + ?Sized>(&self, node: NodeId, key: &K) -> Option<&R> {
        self.view(node)?.get(key)
    }

    /// Secondary-index probe in a node's view (lock-free). The index
    /// must have been created on the live store before this epoch was
    /// published.
    pub fn probe<K: TupleKey + ?Sized>(&self, node: NodeId, ix: usize, key: &K) -> &[Tuple] {
        self.view(node).map(|v| v.probe(ix, key)).unwrap_or(&[])
    }

    /// Full enumeration of a node's view (lock-free).
    pub fn iter(&self, node: NodeId) -> impl Iterator<Item = (&Tuple, &R)> {
        self.view(node).into_iter().flat_map(ViewStore::iter)
    }

    /// The root view (query result) at this epoch.
    pub fn result(&self) -> Relation<R> {
        self.view(self.root)
            .expect("root view is always materialized")
            .to_relation()
    }

    /// Ordered enumeration of a node's view for user-facing readback:
    /// symbol keys sort by their resolved strings (dictionary order via
    /// [`fivm_core::Value::cmp_resolved`]), not by intern id.
    pub fn sorted(&self, node: NodeId, catalog: &Catalog) -> Option<Vec<(Tuple, R)>> {
        Some(self.view(node)?.to_relation().sorted_resolved(catalog))
    }
}

/// Live-epoch observability of the serving layer: which published
/// epochs are still reachable and how far behind the oldest pin is.
/// An epoch stays alive as long as any reader holds its `Arc` (the
/// current epoch is always alive — the publish slot itself holds it),
/// so a wedged reader shows up as `oldest_pinned_age` growing without
/// bound while `live_epochs` stays flat.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Epoch of the most recent publish.
    pub current_epoch: u64,
    /// Published epochs still reachable (pinned by a reader or held by
    /// the publish slot). At least 1 once anything was published.
    pub live_epochs: usize,
    /// The oldest still-reachable epoch.
    pub oldest_live_epoch: Option<u64>,
    /// `current_epoch - oldest_live_epoch`: how many epochs behind the
    /// most stale pin is. 0 when only the current epoch is alive.
    pub oldest_pinned_age: u64,
}

/// The write half of the epoch handoff: owned by the maintenance
/// thread, builds and publishes [`EngineSnapshot`]s.
pub struct SnapshotPublisher<R> {
    slot: Arc<EpochCell<EngineSnapshot<R>>>,
    /// Per-node [`ViewStore::version`] at the last publish — the
    /// copy-on-write key.
    versions: Vec<Option<u64>>,
    /// Weak handle per published epoch still alive at the last publish
    /// — pruned there, so its length is bounded by the number of
    /// epochs readers actually keep pinned (plus the current one).
    live: Vec<(u64, std::sync::Weak<EngineSnapshot<R>>)>,
    epoch: u64,
}

impl<R: Ring> SnapshotPublisher<R> {
    /// Start publishing for `engine`, immediately publishing epoch 0
    /// with its current state (so readers always have an epoch to pin).
    pub fn new(engine: &IvmEngine<R>) -> Self {
        let n = engine.node_count();
        let mut this = SnapshotPublisher {
            slot: Arc::new(EpochCell::new(
                0,
                Arc::new(EngineSnapshot {
                    epoch: 0,
                    lsn: engine.updates_applied(),
                    root: engine.tree().root,
                    views: vec![None; n],
                }),
            )),
            versions: vec![None; n],
            live: Vec::new(),
            epoch: 0,
        };
        this.publish_at(engine, 0);
        this
    }

    /// Build the next epoch from the live stores (copy-on-write against
    /// the previous one) and swap it into the readers' slot. Readers
    /// pinned to older epochs are unaffected; new pins see this epoch.
    pub fn publish(&mut self, engine: &IvmEngine<R>) -> Arc<EngineSnapshot<R>> {
        let next = self.epoch + 1;
        self.publish_at(engine, next)
    }

    fn publish_at(&mut self, engine: &IvmEngine<R>, epoch: u64) -> Arc<EngineSnapshot<R>> {
        let prev = self.slot.pin();
        let views = (0..engine.node_count())
            .map(|node| {
                let store = engine.view_store(node)?;
                let ver = store.version();
                if self.versions[node] == Some(ver) {
                    if let Some(shared) = prev.views.get(node).and_then(Option::as_ref) {
                        return Some(shared.clone());
                    }
                }
                self.versions[node] = Some(ver);
                Some(Arc::new(store.clone()))
            })
            .collect();
        let snap = Arc::new(EngineSnapshot {
            epoch,
            lsn: engine.updates_applied(),
            root: engine.tree().root,
            views,
        });
        self.slot.publish(epoch, snap.clone());
        self.epoch = epoch;
        self.live.retain(|(_, w)| w.strong_count() > 0);
        self.live.push((epoch, Arc::downgrade(&snap)));
        snap
    }

    /// Epoch of the most recent publish.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Count the epochs still reachable right now. O(live epochs) —
    /// the registry only holds epochs that were alive at the last
    /// publish, so a pin leak is visible without being payable.
    pub fn stats(&self) -> ServingStats {
        let mut live_epochs = 0;
        let mut oldest_live_epoch = None;
        for (epoch, w) in &self.live {
            if w.strong_count() > 0 {
                live_epochs += 1;
                if oldest_live_epoch.is_none() {
                    oldest_live_epoch = Some(*epoch);
                }
            }
        }
        ServingStats {
            current_epoch: self.epoch,
            live_epochs,
            oldest_live_epoch,
            oldest_pinned_age: oldest_live_epoch.map_or(0, |o| self.epoch - o),
        }
    }

    /// A handle readers use to pin epochs; cheap to clone, `Send`.
    pub fn reader(&self) -> SnapshotReader<R> {
        SnapshotReader {
            slot: self.slot.clone(),
        }
    }
}

/// The read half of the epoch handoff: pins the current epoch. One
/// brief read-lock clones the `Arc`; everything after is lock-free
/// against the immutable snapshot. Epochs retire when the last pin
/// (and the publisher's slot) drop their `Arc`.
pub struct SnapshotReader<R> {
    slot: Arc<EpochCell<EngineSnapshot<R>>>,
}

impl<R> Clone for SnapshotReader<R> {
    fn clone(&self) -> Self {
        SnapshotReader {
            slot: self.slot.clone(),
        }
    }
}

impl<R: Ring> SnapshotReader<R> {
    /// Pin the current epoch.
    pub fn pin(&self) -> Arc<EngineSnapshot<R>> {
        self.slot.pin()
    }

    /// Freshness probe without pinning: once this returns `e`, a
    /// subsequent [`SnapshotReader::pin`] returns epoch `>= e`.
    pub fn epoch(&self) -> u64 {
        self.slot.epoch()
    }
}

/// Engine + epoch publisher + subscription hub: the serving arrangement
/// for a non-durable engine (for the write-ahead-logged equivalent see
/// `fivm_durability::DurableEngine`, which embeds the same layers and
/// publishes its recovered state as an epoch).
pub struct ServingEngine<R: Ring> {
    engine: IvmEngine<R>,
    publisher: SnapshotPublisher<R>,
    hub: SubscriptionHub<R>,
    publish_every: u64,
    unpublished: u64,
}

impl<R: Ring> ServingEngine<R> {
    /// Wrap `engine`, publishing its current state as epoch 0.
    pub fn new(engine: IvmEngine<R>) -> Self {
        let publisher = SnapshotPublisher::new(&engine);
        ServingEngine {
            engine,
            publisher,
            hub: SubscriptionHub::new(),
            publish_every: 0,
            unpublished: 0,
        }
    }

    /// Publish automatically after every `n` applied updates (`0`, the
    /// default, publishes only on explicit [`ServingEngine::publish`]).
    pub fn with_publish_every(mut self, n: u64) -> Self {
        self.publish_every = n;
        self
    }

    /// Reader handle for pinning epochs (clone one per reader thread).
    pub fn reader(&self) -> SnapshotReader<R> {
        self.publisher.reader()
    }

    /// Subscribe to a materialized node's output-delta stream (`None`
    /// if the node is not materialized). Deltas are delivered at
    /// publish: per epoch, at most one [`crate::subscribe::ViewDelta`]
    /// per subscription, coalesced and zero-free, in epoch order.
    pub fn subscribe(&mut self, node: NodeId) -> Option<Subscriber<R>> {
        if !self.engine.set_change_capture(node, true) {
            return None;
        }
        Some(self.hub.subscribe(node))
    }

    /// [`ServingEngine::subscribe`] with a per-subscriber queue bound:
    /// once more than `bound` deltas are queued, the oldest are dropped
    /// and folded into a [`crate::subscribe::SubMessage::Lagged`]
    /// marker, so a slow consumer costs bounded memory and never blocks
    /// the maintenance thread.
    pub fn subscribe_bounded(&mut self, node: NodeId, bound: usize) -> Option<Subscriber<R>> {
        if !self.engine.set_change_capture(node, true) {
            return None;
        }
        Some(self.hub.subscribe_bounded(node, bound))
    }

    /// Live-epoch / pin-age observability (see [`ServingStats`]).
    pub fn serving_stats(&self) -> ServingStats {
        self.publisher.stats()
    }

    /// Apply one update (then maybe auto-publish).
    pub fn apply(&mut self, rel: RelIndex, delta: &Delta<R>) {
        self.engine.apply(rel, delta);
        self.unpublished += 1;
        if self.publish_every > 0 && self.unpublished >= self.publish_every {
            self.publish();
        }
    }

    /// Apply a sequence of updates (publishing per the cadence).
    pub fn apply_batch(&mut self, updates: &[(RelIndex, Delta<R>)]) {
        for (rel, d) in updates {
            self.apply(*rel, d);
        }
    }

    /// Publish the next epoch and deliver the epoch's coalesced output
    /// deltas to subscribers.
    pub fn publish(&mut self) -> Arc<EngineSnapshot<R>> {
        let snap = self.publisher.publish(&self.engine);
        self.hub.deliver(snap.epoch(), snap.lsn(), &mut self.engine);
        self.unpublished = 0;
        snap
    }

    /// The wrapped engine (read-only; mutations must go through
    /// [`ServingEngine::apply`] so capture and publish cadence hold).
    pub fn engine(&self) -> &IvmEngine<R> {
        &self.engine
    }

    /// Mutable access for setup (loads, index creation, worker count).
    /// Changes become visible to readers at the next publish.
    pub fn engine_mut(&mut self) -> &mut IvmEngine<R> {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_core::{tuple, LiftingMap};
    use fivm_query::{QueryDef, VariableOrder, ViewTree};

    fn serving() -> ServingEngine<i64> {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        ServingEngine::new(IvmEngine::new(q, tree, &[0, 1, 2], LiftingMap::new()))
    }

    fn rst_delta(s: &ServingEngine<i64>, rel: usize, t: Tuple) -> Delta<i64> {
        Delta::Flat(Relation::from_pairs(
            s.engine().query().relations[rel].schema.clone(),
            [(t, 1i64)],
        ))
    }

    #[test]
    fn pinned_epoch_survives_later_publishes() {
        let mut s = serving();
        let reader = s.reader();
        let d0 = rst_delta(&s, 0, tuple![1, 2]);
        let d1 = rst_delta(&s, 1, tuple![1, 3, 5]);
        let d2 = rst_delta(&s, 2, tuple![3, 4]);
        s.apply(0, &d0);
        s.apply(1, &d1);
        s.publish();
        let pinned = reader.pin();
        assert_eq!(pinned.lsn(), 2);
        assert!(pinned.result().is_empty()); // T still empty
        s.apply(2, &d2);
        s.publish();
        // The old pin is immutable; a fresh pin sees the join complete.
        assert!(pinned.result().is_empty());
        let fresh = reader.pin();
        assert_eq!(fresh.lsn(), 3);
        assert_eq!(fresh.result().len(), 1);
        assert!(fresh.epoch() > pinned.epoch());
    }

    #[test]
    fn unpublished_updates_are_invisible() {
        let mut s = serving();
        let d0 = rst_delta(&s, 0, tuple![1, 2]);
        s.apply(0, &d0);
        let snap = s.reader().pin();
        assert_eq!(snap.lsn(), 0, "apply without publish must not leak");
        s.publish();
        assert_eq!(s.reader().pin().lsn(), 1);
    }

    #[test]
    fn publish_cadence_auto_publishes() {
        let mut s = serving().with_publish_every(2);
        let reader = s.reader();
        let d = rst_delta(&s, 0, tuple![1, 2]);
        s.apply(0, &d);
        assert_eq!(reader.pin().lsn(), 0);
        s.apply(0, &d);
        assert_eq!(reader.pin().lsn(), 2);
    }

    /// Clean views are carried forward by reference (copy-on-write):
    /// republishing without intervening changes shares every store.
    #[test]
    fn publish_reuses_clean_stores() {
        let mut s = serving();
        let d0 = rst_delta(&s, 0, tuple![1, 2]);
        s.apply(0, &d0);
        let a = s.publish();
        let b = s.publish();
        for node in 0..s.engine().node_count() {
            match (a.views[node].as_ref(), b.views[node].as_ref()) {
                (Some(x), Some(y)) => assert!(Arc::ptr_eq(x, y), "node {node} was re-cloned"),
                (None, None) => {}
                _ => panic!("materialization changed between epochs"),
            }
        }
        assert!(b.epoch() > a.epoch());
    }

    /// A wedged reader (one that pins an epoch and never unpins) is
    /// visible in [`ServingStats`] — live epochs stay flat at 2 while
    /// the pin's age grows — and releasing the pin retires the epoch
    /// at the next publish.
    #[test]
    fn serving_stats_expose_wedged_reader() {
        let mut s = serving();
        let d = rst_delta(&s, 0, tuple![1, 2]);
        s.apply(0, &d);
        s.publish();
        let wedged = s.reader().pin();
        let pinned_epoch = wedged.epoch();
        for i in 0..5i64 {
            let d = rst_delta(&s, 0, tuple![i + 10, i + 11]);
            s.apply(0, &d);
            s.publish();
            let stats = s.serving_stats();
            assert_eq!(stats.live_epochs, 2, "wedged pin + current epoch");
            assert_eq!(stats.oldest_live_epoch, Some(pinned_epoch));
            assert_eq!(stats.oldest_pinned_age, stats.current_epoch - pinned_epoch);
        }
        drop(wedged);
        s.publish();
        let stats = s.serving_stats();
        assert_eq!(stats.live_epochs, 1, "released epoch must retire");
        assert_eq!(stats.oldest_pinned_age, 0);
        assert_eq!(stats.oldest_live_epoch, Some(stats.current_epoch));
    }

    /// Readers can pin from other threads while the writer publishes.
    #[test]
    fn concurrent_pin_and_publish_smoke() {
        let mut s = serving();
        let reader = s.reader();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let r = &reader;
            let stop = &stop;
            let h = scope.spawn(move || {
                let mut last = 0u64;
                // relaxed-ok: test stop flag; eventual visibility
                // is all the loop needs.
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = r.pin();
                    assert!(snap.epoch() >= last, "epochs must be monotonic");
                    last = snap.epoch();
                }
                last
            });
            for i in 0..200i64 {
                let rel = (i % 3) as usize;
                let t = if rel == 1 {
                    tuple![i, i + 1, i + 2] // S(A,C,E) is ternary
                } else {
                    tuple![i, i + 1]
                };
                let d = rst_delta(&s, rel, t);
                s.apply(rel, &d);
                s.publish();
            }
            // relaxed-ok: test stop flag.
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let seen = h.join().unwrap();
            assert!(seen <= s.publisher.current_epoch());
        });
    }
}
