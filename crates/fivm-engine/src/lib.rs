//! # fivm-engine — F-IVM execution
//!
//! Executes the plans of `fivm-query` over the rings of `fivm-core`:
//!
//! * [`ViewStore`] — a materialized view: hash map from keys to payloads
//!   plus secondary indexes for the probe patterns of delta propagation.
//! * [`eval`] — static factorized evaluation of a view tree over a
//!   database (used for initial loads, re-evaluation baselines and as the
//!   correctness oracle in tests).
//! * [`IvmEngine`] — the factorized higher-order IVM executor (paper §4):
//!   maintains the views chosen by µ under flat and *factored* updates
//!   (§5), including indicator projections for cyclic queries
//!   (Appendix B) and an optional factorized-payload mode (§6.3).
//! * [`enumerate`] — constant-delay enumeration of query results from
//!   factorized payloads.
//! * [`heavylight`] — the IVM^ε adaptive layer for triangle queries:
//!   degree-partitioned part stores, auxiliary views and the
//!   threshold-migration router (sub-linear single-tuple maintenance).
//! * [`snapshot`] / [`subscribe`] — the serving layer: epoch-pinned
//!   lock-free snapshot reads concurrent with maintenance, and
//!   per-view output-delta subscriptions.
//! * Baselines from the paper’s evaluation (§7): [`FirstOrderIvm`]
//!   (1-IVM), [`RecursiveIvm`] (DBToaster-style fully recursive
//!   higher-order IVM — DBT / DBT-RING), and [`reeval`] (F-RE, DBT-RE).
//! * [`memory`] — approximate byte accounting replacing the paper’s
//!   gperftools profiles.

pub mod enumerate;
pub mod eval;
pub mod executor;
pub mod first_order;
pub mod heavylight;
pub mod memory;
pub mod parallel;
pub mod recursive;
pub mod reeval;
pub mod snapshot;
pub mod subscribe;
pub mod view;

pub use enumerate::FactorizedResult;
pub use eval::{eval_node, eval_tree, Database};
pub use executor::{IvmEngine, PayloadTransform};
pub use first_order::FirstOrderIvm;
pub use heavylight::{HlConfig, HlStats, TriangleHlEngine};
pub use parallel::WorkerPool;
pub use recursive::RecursiveIvm;
pub use snapshot::{
    EngineSnapshot, ServingEngine, ServingStats, SnapshotPublisher, SnapshotReader,
};
pub use subscribe::{SubMessage, Subscriber, SubscriptionHub, ViewDelta};
pub use view::ViewStore;
