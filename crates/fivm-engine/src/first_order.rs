//! Classical first-order IVM (the paper’s 1-IVM baseline, §7).
//!
//! 1-IVM stores only the input relations and the query result — no
//! auxiliary views. On an update `δR` it recomputes the delta query
//! on the fly over the base relations:
//!
//! ```text
//! δQ = Q(R1, …, δR, …, Rn)
//! ```
//!
//! which is sound because every operator of the language is (multi)linear
//! in each relation. The delta query is evaluated over the view tree with
//! aggregates pushed past joins — matching DBToaster’s 1-IVM, which
//! “optimizes such a delta query by placing an aggregate around each
//! component”, i.e. pre-aggregates on the fly. Per-update cost is linear
//! in the database (vs. F-IVM’s constant/linear-in-views), which is
//! exactly the gap Figures 7/11/13 measure.

use crate::eval::{eval_tree, Database};
use fivm_core::{Delta, LiftingMap, Relation, Ring};
use fivm_query::{QueryDef, RelIndex, ViewTree};

/// First-order IVM: base relations + the result, nothing else.
pub struct FirstOrderIvm<R: Ring> {
    query: QueryDef,
    tree: ViewTree,
    liftings: LiftingMap<R>,
    db: Database<R>,
    result: Relation<R>,
    updates_applied: u64,
}

impl<R: Ring> FirstOrderIvm<R> {
    /// Build over a view tree (used only as the delta-evaluation plan —
    /// no intermediate view is materialized).
    pub fn new(query: QueryDef, tree: ViewTree, liftings: LiftingMap<R>) -> Self {
        let db = Database::empty(&query);
        let result = eval_tree(&tree, &db, &liftings);
        FirstOrderIvm {
            query,
            tree,
            liftings,
            db,
            result,
            updates_applied: 0,
        }
    }

    /// Bulk-load the initial database and compute the result once.
    pub fn load(&mut self, db: Database<R>) {
        self.result = eval_tree(&self.tree, &db, &self.liftings);
        self.db = db;
    }

    /// Apply an update: recompute the delta query over the base
    /// relations with `δR` substituted for `R` (linear time), then fold
    /// it into the result and the stored relation.
    pub fn apply(&mut self, rel: RelIndex, delta: &Delta<R>) {
        self.updates_applied += 1;
        let flat = delta.flatten().reorder(&self.query.relations[rel].schema);
        // substitute δR for R and evaluate: multilinearity gives δQ
        let saved = std::mem::replace(&mut self.db.relations[rel], flat.clone());
        let delta_q = eval_tree(&self.tree, &self.db, &self.liftings);
        self.db.relations[rel] = saved;
        self.result.union_in_place(&delta_q);
        self.db.relations[rel].union_in_place(&flat);
    }

    /// The maintained result.
    pub fn result(&self) -> &Relation<R> {
        &self.result
    }

    /// Number of stored “views”: the input relations plus the result —
    /// the §7 accounting for 1-IVM (per maintained aggregate).
    pub fn stored_view_count(&self) -> usize {
        self.query.relations.len() + 1
    }

    /// Approximate resident bytes (base relations + result).
    pub fn approx_bytes(&self) -> usize {
        self.db
            .relations
            .iter()
            .map(Relation::approx_bytes)
            .sum::<usize>()
            + self.result.approx_bytes()
    }

    /// Updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_core::lifting::int_identity;
    use fivm_core::{tuple, Tuple};
    use fivm_query::VariableOrder;

    fn setup(free: &[&str]) -> (QueryDef, ViewTree, LiftingMap<i64>) {
        let q = QueryDef::example_rst(free);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        (q, tree, LiftingMap::new())
    }

    #[test]
    fn tracks_count_under_mixed_updates() {
        let (q, tree, lifts) = setup(&[]);
        let mut ivm = FirstOrderIvm::new(q.clone(), tree.clone(), lifts.clone());
        let mut db = Database::empty(&q);
        let updates: Vec<(usize, Tuple, i64)> = vec![
            (0, tuple![1, 1], 1),
            (1, tuple![1, 2, 3], 1),
            (2, tuple![2, 5], 1),
            (0, tuple![1, 1], -1),
            (0, tuple![1, 9], 2),
            (2, tuple![2, 6], 1),
        ];
        for (ri, t, m) in updates {
            let d = Relation::from_pairs(q.relations[ri].schema.clone(), [(t, m)]);
            ivm.apply(ri, &Delta::Flat(d.clone()));
            db.relations[ri].union_in_place(&d);
            assert_eq!(*ivm.result(), eval_tree(&tree, &db, &lifts));
        }
    }

    #[test]
    fn group_by_and_lifting() {
        let (q, tree, mut lifts) = setup(&["A", "C"]);
        lifts.set(q.catalog.lookup("B").unwrap(), int_identity());
        let mut ivm = FirstOrderIvm::new(q.clone(), tree.clone(), lifts.clone());
        let mut db = Database::empty(&q);
        for (ri, t) in [
            (0usize, tuple![1, 7]),
            (1, tuple![1, 4, 2]),
            (2, tuple![4, 9]),
            (0, tuple![1, 3]),
        ] {
            let d = Relation::from_pairs(q.relations[ri].schema.clone(), [(t, 1i64)]);
            ivm.apply(ri, &Delta::Flat(d.clone()));
            db.relations[ri].union_in_place(&d);
        }
        assert_eq!(*ivm.result(), eval_tree(&tree, &db, &lifts));
        // SUM(B) over group (A=1, C=4) is 7 + 3 = 10
        assert_eq!(ivm.result().payload(&tuple![1, 4]), 10);
    }

    #[test]
    fn load_then_update() {
        let (q, tree, lifts) = setup(&[]);
        let mut db = Database::empty(&q);
        db.relations[0].insert(tuple![1, 1], 1);
        db.relations[1].insert(tuple![1, 2, 3], 1);
        db.relations[2].insert(tuple![2, 4], 1);
        let mut ivm = FirstOrderIvm::new(q.clone(), tree.clone(), lifts.clone());
        ivm.load(db.clone());
        assert_eq!(ivm.result().payload(&Tuple::unit()), 1);
        let d = Relation::from_pairs(q.relations[2].schema.clone(), [(tuple![2, 5], 1i64)]);
        ivm.apply(2, &Delta::Flat(d.clone()));
        db.relations[2].union_in_place(&d);
        assert_eq!(*ivm.result(), eval_tree(&tree, &db, &lifts));
        assert_eq!(ivm.result().payload(&Tuple::unit()), 2);
    }
}
