//! Reactive view subscriptions: per-view output-delta streams.
//!
//! Delta propagation already computes the exact output delta of every
//! materialized view on every update — the subscription layer just
//! keeps it instead of dropping it. A subscribed node's [`ViewStore`]
//! records each applied `(key, payload-delta)` pair (change capture,
//! one branch on the unsubscribed hot path); at **publish** the hub
//! drains the capture buffer, coalesces it per key over the ring
//! (dropping zero net changes), and queues one [`ViewDelta`] per
//! subscription.
//!
//! Delivery semantics:
//!
//! * **epoch-ordered** — deltas arrive in strictly increasing epoch
//!   order per subscription;
//! * **at-most-once per epoch** — at most one `ViewDelta` per
//!   subscription per epoch, and none when the view's net change over
//!   the epoch is empty;
//! * **exactly the epoch boundary** — applying a subscription's deltas
//!   in order over the epoch-0 snapshot reproduces each published
//!   epoch's view state (pairs within one delta are unordered);
//! * **bounded lag, loss made explicit** — a subscription created with
//!   [`SubscriptionHub::subscribe_bounded`] holds at most `bound`
//!   queued deltas; when a slow consumer falls further behind, the
//!   *oldest* deltas are dropped and replaced by a single
//!   [`SubMessage::Lagged`] marker carrying how many epochs were lost,
//!   so the publisher never blocks and never grows without bound, and
//!   the consumer can tell a gap from an empty epoch (resync by
//!   pinning a fresh snapshot, then resume applying deltas);
//! * dropped receivers are pruned at the next delivery, and a node's
//!   capture is switched off when its last subscriber goes away.
//!
//! [`ViewStore`]: crate::view::ViewStore

use crate::executor::IvmEngine;
use fivm_core::{Ring, Tuple, TupleMap};
use fivm_query::NodeId;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// One epoch's coalesced output delta for one view.
#[derive(Debug, Clone)]
pub struct ViewDelta<R> {
    /// Epoch whose publish produced this delta.
    pub epoch: u64,
    /// Update boundary of that epoch (all updates with LSN ≤ this are
    /// reflected).
    pub lsn: u64,
    /// The view-tree node this delta belongs to.
    pub node: NodeId,
    /// Net `(key, payload-delta)` pairs, coalesced per key, zero-free,
    /// in unspecified order.
    pub pairs: Vec<(Tuple, R)>,
}

/// What a subscriber receives: an epoch's delta, or notice that the
/// queue bound forced older deltas to be dropped.
#[derive(Debug, Clone)]
pub enum SubMessage<R> {
    /// One epoch's coalesced output delta.
    Delta(ViewDelta<R>),
    /// The consumer lagged past its queue bound: the deltas of
    /// `missed_epochs` published epochs were dropped. The stream is no
    /// longer a replayable prefix — resync from a pinned snapshot
    /// before applying subsequent deltas.
    Lagged {
        /// The subscribed node the gap belongs to.
        node: NodeId,
        /// How many epochs' deltas were dropped (empty-change epochs,
        /// which never enqueue anything, are not counted).
        missed_epochs: u64,
    },
}

impl<R> SubMessage<R> {
    /// The delta, if this message carries one.
    pub fn into_delta(self) -> Option<ViewDelta<R>> {
        match self {
            SubMessage::Delta(d) => Some(d),
            SubMessage::Lagged { .. } => None,
        }
    }

    /// Whether this is a [`SubMessage::Lagged`] gap marker.
    pub fn is_lagged(&self) -> bool {
        matches!(self, SubMessage::Lagged { .. })
    }
}

/// The queue shared by one subscription's two ends. The hub pushes at
/// publish; the subscriber pops. The mutex is held only for queue
/// surgery — never while coalescing or while user code runs.
struct Queue<R> {
    inner: Mutex<QueueInner<R>>,
    ready: Condvar,
}

struct QueueInner<R> {
    items: VecDeque<SubMessage<R>>,
    /// `Delta` messages currently queued (`Lagged` markers are exempt
    /// from the bound — there is at most one, at the front).
    deltas: usize,
    /// Max queued deltas; `None` is unbounded.
    bound: Option<usize>,
    /// Cleared when the hub (publisher side) goes away.
    tx_alive: bool,
    /// Cleared when the subscriber is dropped.
    rx_alive: bool,
}

impl<R> Queue<R> {
    fn new(bound: Option<usize>) -> Self {
        Queue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                deltas: 0,
                bound,
                tx_alive: true,
                rx_alive: true,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner<R>> {
        // A panic mid-pop can poison the lock; the queue itself is
        // still structurally sound, so keep serving.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Push one delta, evicting from the front (and folding the loss
    /// into a single leading `Lagged` marker) if the bound is hit.
    /// Returns `false` if the receiver is gone.
    fn push(&self, node: NodeId, delta: ViewDelta<R>) -> bool {
        let mut q = self.lock();
        if !q.rx_alive {
            return false;
        }
        if let Some(bound) = q.bound {
            let mut missed = 0u64;
            while q.deltas >= bound.max(1) {
                match q.items.pop_front() {
                    Some(SubMessage::Delta(_)) => {
                        q.deltas -= 1;
                        missed += 1;
                    }
                    Some(SubMessage::Lagged { missed_epochs, .. }) => {
                        missed += missed_epochs;
                    }
                    None => break,
                }
            }
            if missed > 0 {
                // Merge with an existing front marker so a persistently
                // slow consumer sees one cumulative gap, not a trickle.
                if let Some(SubMessage::Lagged { missed_epochs, .. }) = q.items.front_mut() {
                    *missed_epochs += missed;
                } else {
                    q.items.push_front(SubMessage::Lagged {
                        node,
                        missed_epochs: missed,
                    });
                }
            }
        }
        q.items.push_back(SubMessage::Delta(delta));
        q.deltas += 1;
        drop(q);
        self.ready.notify_one();
        true
    }

    fn pop(&self) -> Option<SubMessage<R>> {
        let mut q = self.lock();
        let m = q.items.pop_front();
        if matches!(m, Some(SubMessage::Delta(_))) {
            q.deltas -= 1;
        }
        m
    }
}

/// The receiving end of one subscription.
pub struct Subscriber<R> {
    node: NodeId,
    queue: Arc<Queue<R>>,
}

impl<R> Subscriber<R> {
    /// The subscribed node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Next queued message, if one is ready (non-blocking).
    pub fn try_recv(&self) -> Option<SubMessage<R>> {
        self.queue.pop()
    }

    /// Block until the next message (or `None` once the publisher side
    /// is gone and the queue is drained).
    pub fn recv(&self) -> Option<SubMessage<R>> {
        let mut q = self.queue.lock();
        loop {
            if let Some(m) = q.items.pop_front() {
                if matches!(m, SubMessage::Delta(_)) {
                    q.deltas -= 1;
                }
                return Some(m);
            }
            if !q.tx_alive {
                return None;
            }
            q = match self.queue.ready.wait(q) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<SubMessage<R>> {
        let mut q = self.queue.lock();
        q.deltas = 0;
        q.items.drain(..).collect()
    }
}

impl<R> Drop for Subscriber<R> {
    fn drop(&mut self) {
        self.queue.lock().rx_alive = false;
    }
}

/// The delivery side: owns the subscription registry and the per-epoch
/// coalescing scratch. Embedded by `ServingEngine` and the durable
/// engine wrapper; [`SubscriptionHub::deliver`] runs on the maintenance
/// thread at each publish.
pub struct SubscriptionHub<R> {
    subs: Vec<(NodeId, Arc<Queue<R>>)>,
    /// Raw captured pairs drained from the engine (reused).
    raw: Vec<(Tuple, R)>,
    /// Per-key coalescing scratch (reused).
    acc: TupleMap<R>,
}

impl<R: Ring> SubscriptionHub<R> {
    pub fn new() -> Self {
        SubscriptionHub {
            subs: Vec::new(),
            raw: Vec::new(),
            acc: TupleMap::new(),
        }
    }

    /// Register an unbounded subscription for `node`. The caller is
    /// responsible for having enabled change capture on the node's
    /// store (`IvmEngine::set_change_capture`).
    pub fn subscribe(&mut self, node: NodeId) -> Subscriber<R> {
        self.subscribe_inner(node, None)
    }

    /// Register a subscription holding at most `bound` queued deltas;
    /// beyond that the oldest are dropped and folded into a
    /// [`SubMessage::Lagged`] marker (a bound of 0 behaves as 1).
    pub fn subscribe_bounded(&mut self, node: NodeId, bound: usize) -> Subscriber<R> {
        self.subscribe_inner(node, Some(bound))
    }

    fn subscribe_inner(&mut self, node: NodeId, bound: Option<usize>) -> Subscriber<R> {
        let queue = Arc::new(Queue::new(bound));
        self.subs.push((node, queue.clone()));
        Subscriber { node, queue }
    }

    /// Whether any live subscription targets `node`.
    pub fn has_subscribers(&self, node: NodeId) -> bool {
        self.subs
            .iter()
            .any(|(n, q)| *n == node && q.lock().rx_alive)
    }

    /// Drain each subscribed node's captured changes from `engine`,
    /// coalesce them, and queue one [`ViewDelta`] per subscription
    /// (skipping empty net changes). Dead receivers are pruned; a node
    /// whose last subscriber vanished has its capture switched off.
    pub fn deliver(&mut self, epoch: u64, lsn: u64, engine: &mut IvmEngine<R>) {
        // One coalescing pass per distinct subscribed node.
        let mut nodes: Vec<NodeId> = self.subs.iter().map(|(n, _)| *n).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let mut per_node: Vec<(NodeId, Vec<(Tuple, R)>)> = Vec::with_capacity(nodes.len());
        for node in nodes {
            self.raw.clear();
            engine.drain_changes(node, &mut self.raw);
            debug_assert!(self.acc.is_empty());
            for (t, p) in self.raw.drain(..) {
                self.acc.upsert(&t, R::zero).1.add_assign(&p);
            }
            let pairs: Vec<(Tuple, R)> = self
                .acc
                .iter()
                .filter(|(_, p)| !p.is_zero())
                .map(|(t, p)| (t.clone(), p.clone()))
                .collect();
            self.acc.clear();
            per_node.push((node, pairs));
        }
        self.subs.retain(|(node, queue)| {
            let pairs = &per_node
                .iter()
                .find(|(n, _)| n == node)
                .expect("every subscribed node was coalesced")
                .1;
            if pairs.is_empty() {
                // Empty net change: nothing queued this epoch
                // (at-most-once means zero is allowed), but a dropped
                // receiver is still pruned.
                return queue.lock().rx_alive;
            }
            queue.push(
                *node,
                ViewDelta {
                    epoch,
                    lsn,
                    node: *node,
                    pairs: pairs.clone(),
                },
            )
        });
        for (node, _) in &per_node {
            if !self.has_subscribers(*node) {
                engine.set_change_capture(*node, false);
            }
        }
    }
}

impl<R> Drop for SubscriptionHub<R> {
    fn drop(&mut self) {
        // Unblock subscribers waiting in `recv`: the publisher side is
        // gone for good.
        for (_, queue) in &self.subs {
            queue.lock().tx_alive = false;
            queue.ready.notify_all();
        }
    }
}

impl<R: Ring> Default for SubscriptionHub<R> {
    fn default() -> Self {
        Self::new()
    }
}
