//! Reactive view subscriptions: per-view output-delta streams.
//!
//! Delta propagation already computes the exact output delta of every
//! materialized view on every update — the subscription layer just
//! keeps it instead of dropping it. A subscribed node's [`ViewStore`]
//! records each applied `(key, payload-delta)` pair (change capture,
//! one branch on the unsubscribed hot path); at **publish** the hub
//! drains the capture buffer, coalesces it per key over the ring
//! (dropping zero net changes), and sends one [`ViewDelta`] per
//! subscription over a channel.
//!
//! Delivery semantics:
//!
//! * **epoch-ordered** — deltas arrive in strictly increasing epoch
//!   order per subscription;
//! * **at-most-once per epoch** — at most one `ViewDelta` per
//!   subscription per epoch, and none when the view's net change over
//!   the epoch is empty;
//! * **exactly the epoch boundary** — applying a subscription's deltas
//!   in order over the epoch-0 snapshot reproduces each published
//!   epoch's view state (pairs within one delta are unordered);
//! * dropped receivers are pruned at the next delivery, and a node's
//!   capture is switched off when its last subscriber goes away.
//!
//! [`ViewStore`]: crate::view::ViewStore

use crate::executor::IvmEngine;
use fivm_core::{Ring, Tuple, TupleMap};
use fivm_query::NodeId;
use std::sync::mpsc;

/// One epoch's coalesced output delta for one view.
#[derive(Debug, Clone)]
pub struct ViewDelta<R> {
    /// Epoch whose publish produced this delta.
    pub epoch: u64,
    /// Update boundary of that epoch (all updates with LSN ≤ this are
    /// reflected).
    pub lsn: u64,
    /// The view-tree node this delta belongs to.
    pub node: NodeId,
    /// Net `(key, payload-delta)` pairs, coalesced per key, zero-free,
    /// in unspecified order.
    pub pairs: Vec<(Tuple, R)>,
}

/// The receiving end of one subscription.
pub struct Subscriber<R> {
    node: NodeId,
    rx: mpsc::Receiver<ViewDelta<R>>,
}

impl<R> Subscriber<R> {
    /// The subscribed node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Next delivered delta, if one is ready (non-blocking).
    pub fn try_recv(&self) -> Option<ViewDelta<R>> {
        self.rx.try_recv().ok()
    }

    /// Block until the next delta (or `None` once the publisher side is
    /// gone and the queue is drained).
    pub fn recv(&self) -> Option<ViewDelta<R>> {
        self.rx.recv().ok()
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<ViewDelta<R>> {
        self.rx.try_iter().collect()
    }
}

/// The delivery side: owns the subscription registry and the per-epoch
/// coalescing scratch. Embedded by `ServingEngine` and the durable
/// engine wrapper; [`SubscriptionHub::deliver`] runs on the maintenance
/// thread at each publish.
pub struct SubscriptionHub<R> {
    subs: Vec<(NodeId, mpsc::Sender<ViewDelta<R>>)>,
    /// Raw captured pairs drained from the engine (reused).
    raw: Vec<(Tuple, R)>,
    /// Per-key coalescing scratch (reused).
    acc: TupleMap<R>,
}

impl<R: Ring> SubscriptionHub<R> {
    pub fn new() -> Self {
        SubscriptionHub {
            subs: Vec::new(),
            raw: Vec::new(),
            acc: TupleMap::new(),
        }
    }

    /// Register a subscription for `node`. The caller is responsible
    /// for having enabled change capture on the node's store
    /// (`IvmEngine::set_change_capture`).
    pub fn subscribe(&mut self, node: NodeId) -> Subscriber<R> {
        let (tx, rx) = mpsc::channel();
        self.subs.push((node, tx));
        Subscriber { node, rx }
    }

    /// Whether any live subscription targets `node`.
    pub fn has_subscribers(&self, node: NodeId) -> bool {
        self.subs.iter().any(|(n, _)| *n == node)
    }

    /// Drain each subscribed node's captured changes from `engine`,
    /// coalesce them, and deliver one [`ViewDelta`] per subscription
    /// (skipping empty net changes). Dead receivers are pruned; a node
    /// whose last subscriber vanished has its capture switched off.
    pub fn deliver(&mut self, epoch: u64, lsn: u64, engine: &mut IvmEngine<R>) {
        // One coalescing pass per distinct subscribed node.
        let mut nodes: Vec<NodeId> = self.subs.iter().map(|(n, _)| *n).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let mut per_node: Vec<(NodeId, Vec<(Tuple, R)>)> = Vec::with_capacity(nodes.len());
        for node in nodes {
            self.raw.clear();
            engine.drain_changes(node, &mut self.raw);
            debug_assert!(self.acc.is_empty());
            for (t, p) in self.raw.drain(..) {
                self.acc.upsert(&t, R::zero).1.add_assign(&p);
            }
            let pairs: Vec<(Tuple, R)> = self
                .acc
                .iter()
                .filter(|(_, p)| !p.is_zero())
                .map(|(t, p)| (t.clone(), p.clone()))
                .collect();
            self.acc.clear();
            per_node.push((node, pairs));
        }
        self.subs.retain(|(node, tx)| {
            let pairs = &per_node
                .iter()
                .find(|(n, _)| n == node)
                .expect("every subscribed node was coalesced")
                .1;
            if pairs.is_empty() {
                // Empty net change: nothing sent this epoch (at-most-once
                // means zero is allowed), liveness unprobed until the
                // node next changes.
                return true;
            }
            tx.send(ViewDelta {
                epoch,
                lsn,
                node: *node,
                pairs: pairs.clone(),
            })
            .is_ok()
        });
        for (node, _) in &per_node {
            if !self.has_subscribers(*node) {
                engine.set_change_capture(*node, false);
            }
        }
    }
}

impl<R: Ring> Default for SubscriptionHub<R> {
    fn default() -> Self {
        Self::new()
    }
}
