//! Static plan verification: every compiled [`FastPlan`] /
//! [`FactoredPlan`] is exported as the neutral IR of
//! [`fivm_check::plan_ir`] and typechecked against the view tree — a
//! symbolic re-simulation over schemas that proves the compiled
//! positions (probe keys, index ids, rest columns, margin lifts, store
//! projections, factor slots, worker ranges) are consistent *before*
//! the first tuple flows through them.
//!
//! Wiring:
//!
//! * debug builds verify at compile time — [`IvmEngine::new`] (via
//!   `compile_fast_plans`) and every lazy factored-shape compile panic
//!   on any finding;
//! * [`IvmEngine::verify_plans`] runs the same checks on demand in any
//!   build and returns the findings, for tests and operational
//!   auditing.

use super::{FactorOp, FactoredPlan, FactoredStep, FastPlan, FastSibling, Fused, IvmEngine};
use crate::parallel;
use crate::view::ViewStore;
use fivm_check::plan_ir::{
    self, FactorOpIr, FactoredPlanIr, FactoredStepIr, FastPlanIr, FastStepIr, FlattenIr, FusedIr,
    PlanCtx, SiblingIr,
};
use fivm_core::{Ring, Schema};
use fivm_query::delta::FactorShape;

pub use fivm_check::plan_ir::Finding;

fn schema_vars(s: &Schema) -> Vec<u32> {
    s.vars().to_vec()
}

fn sibling_ir(s: &FastSibling) -> SiblingIr {
    SiblingIr {
        node: s.node,
        full_key: s.full_key,
        probe_pos: s.probe_pos.to_vec(),
        rest_pos: s.rest_pos.to_vec(),
        // Full-key probes carry usize::MAX, which is the IR's FULL_KEY
        // sentinel — copied verbatim so a plan that mislabels one is
        // caught, not papered over.
        index_id: s.index_id,
    }
}

fn fused_ir<R>(f: &Fused<R>) -> FusedIr {
    FusedIr {
        lift_pos: f.lifts.iter().map(|&(p, _)| p).collect(),
        out_pos: f.out_pos.to_vec(),
    }
}

fn factor_op_ir<R>(op: &FactorOp<R>) -> FactorOpIr {
    match op {
        FactorOp::Cross { a, b, out } => FactorOpIr::Cross {
            a: *a,
            b: *b,
            out: *out,
        },
        FactorOp::Adopt { node, out } => FactorOpIr::Adopt {
            node: *node,
            out: *out,
        },
        FactorOp::Join {
            input,
            out,
            sib,
            fused,
        } => FactorOpIr::Join {
            input: *input,
            out: *out,
            sib: sibling_ir(sib),
            fused: fused.as_ref().map(fused_ir),
        },
        FactorOp::Fold { input, out, fused } => FactorOpIr::Fold {
            input: *input,
            out: *out,
            fused: fused_ir(fused),
        },
    }
}

fn factored_step_ir<R>(st: &FactoredStep<R>) -> FactoredStepIr {
    FactoredStepIr {
        node: st.node,
        live_in: st.live_in.to_vec(),
        ops: st.ops.iter().map(factor_op_ir).collect(),
        store: st.store.as_ref().map(|s| FlattenIr {
            a: s.a,
            b: s.b,
            out_pos: s.out_pos.to_vec(),
        }),
    }
}

/// Export a compiled flat-delta plan as the neutral IR.
pub(super) fn fast_plan_ir<R>(p: &FastPlan<R>) -> FastPlanIr {
    FastPlanIr {
        entry: p.entry,
        entry_schema: schema_vars(&p.entry_schema),
        steps: p
            .steps
            .iter()
            .map(|st| FastStepIr {
                node: st.node,
                store: st.store,
                siblings: st.siblings.iter().map(sibling_ir).collect(),
                lift_pos: st.lifts.iter().map(|&(pos, _)| pos).collect(),
                out_pos: st.out_pos.to_vec(),
            })
            .collect(),
    }
}

/// Export a compiled factored-delta slot program as the neutral IR.
pub(super) fn factored_plan_ir<R>(shape: &FactorShape, p: &FactoredPlan<R>) -> FactoredPlanIr {
    FactoredPlanIr {
        entry: p.entry,
        shape: shape.schemas().iter().map(schema_vars).collect(),
        n_slots: p.n_slots,
        entry_store: p.entry_store.as_ref().map(|e| FactoredStepIr {
            node: p.entry,
            live_in: Vec::new(),
            ops: e.ops.iter().map(factor_op_ir).collect(),
            store: Some(FlattenIr {
                a: e.a,
                b: e.b,
                out_pos: e.out_pos.to_vec(),
            }),
        }),
        steps: p.steps.iter().map(factored_step_ir).collect(),
    }
}

fn labeled(findings: &mut Vec<Finding>, label: &str, batch: Vec<Finding>) {
    for mut f in batch {
        f.at = format!("{label}: {}", f.at);
        findings.push(f);
    }
}

/// Panic (debug-build plan-compile hook) if `findings` is non-empty.
#[cfg_attr(not(debug_assertions), allow(dead_code))]
pub(super) fn assert_clean(findings: &[Finding], what: &str) {
    assert!(
        findings.is_empty(),
        "{what} failed static plan verification:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

impl<R: Ring> IvmEngine<R> {
    /// The neutral view-tree description compiled plans are verified
    /// against: per-node key schemas, materialization, and the key
    /// positions of every registered secondary index.
    pub(super) fn plan_ctx(&self) -> PlanCtx {
        PlanCtx {
            node_keys: self
                .tree
                .nodes
                .iter()
                .map(|n| schema_vars(&n.keys))
                .collect(),
            materialized: self.views.iter().map(Option::is_some).collect(),
            node_indexes: self
                .views
                .iter()
                .map(|v| {
                    v.as_ref()
                        .map(ViewStore::index_positions)
                        .unwrap_or_default()
                })
                .collect(),
        }
    }

    /// Statically verify every compiled plan in the engine — all
    /// flat-delta fast plans (per relation and per indicator), every
    /// cached factored-shape slot program, and the worker hash-range
    /// partitioning. Returns all findings (empty = verified clean).
    pub fn verify_plans(&self) -> Vec<Finding> {
        let ctx = self.plan_ctx();
        let mut findings = Vec::new();
        for (r, plan) in self.rel_fast.iter().enumerate() {
            if let Some(p) = plan {
                let label = format!("relation {r} fast plan");
                labeled(
                    &mut findings,
                    &label,
                    plan_ir::verify_fast_plan(&ctx, &fast_plan_ir(p)),
                );
            }
        }
        for (&ind, ip) in &self.ind_plans {
            if let Some(p) = &ip.fast {
                let label = format!("indicator {ind} fast plan");
                labeled(
                    &mut findings,
                    &label,
                    plan_ir::verify_fast_plan(&ctx, &fast_plan_ir(p)),
                );
            }
        }
        for (r, cache) in self.rel_factored.iter().enumerate() {
            for (shape, plan) in cache {
                if let Some(p) = plan {
                    let label = format!("relation {r} factored plan (shape {:?})", shape.schemas());
                    labeled(
                        &mut findings,
                        &label,
                        plan_ir::verify_factored_plan(&ctx, &factored_plan_ir(shape, p)),
                    );
                }
            }
        }
        // The parallel fan-out rests on two index partitions: the route
        // phase splits the step input into per-worker chunks, and the
        // merge phase assigns each destination partition to exactly one
        // worker. Verify both families across representative sizes at
        // the configured worker count.
        let parts = self.workers.max(1);
        for total in [0usize, 1, parts, parts + 1, 63, 64, 1000] {
            let chunks: Vec<(usize, usize)> = (0..parts)
                .map(|i| {
                    let r = parallel::chunk(total, parts, i);
                    (r.start, r.end)
                })
                .collect();
            let label = format!("chunk split ({parts} workers, {total} tuples)");
            labeled(
                &mut findings,
                &label,
                plan_ir::verify_partition(&chunks, total),
            );
        }
        // destination() must route every hash into [0, parts).
        for h in [0u64, 1, u64::MAX, 0x9e37_79b9_7f4a_7c15] {
            let d = parallel::destination(h, parts);
            if d >= parts {
                findings.push(Finding {
                    rule: "route-oob",
                    at: format!("destination(0x{h:x}, {parts})"),
                    message: format!("routes to partition {d} >= {parts}"),
                });
            }
        }
        findings
    }
}
