//! Static factorized evaluation of a view tree (paper §3).
//!
//! Computes the contents of every view bottom-up: leaves are the input
//! relations, indicator nodes project their relation’s support, and
//! inner views join their children and marginalize their bound
//! variables with the lifting functions. Runs in time proportional to
//! the sizes of the views — the factorized-evaluation guarantee that
//! avoids materializing Cartesian products.
//!
//! This is also the correctness oracle: every IVM strategy in this crate
//! must agree with `eval_tree` after any update sequence.

use fivm_core::{Lifting, LiftingMap, Relation, Schema, Semiring, Tuple};
use fivm_query::{NodeId, NodeKind, QueryDef, ViewTree};

/// A database: one relation per query relation, aligned with
/// [`QueryDef::relations`] indices.
#[derive(Clone, Debug)]
pub struct Database<R> {
    /// The relations, by [`fivm_query::RelIndex`].
    pub relations: Vec<Relation<R>>,
}

impl<R: Semiring> Database<R> {
    /// Empty relations matching the query’s schemas.
    pub fn empty(query: &QueryDef) -> Self {
        Database {
            relations: query
                .relations
                .iter()
                .map(|r| Relation::new(r.schema.clone()))
                .collect(),
        }
    }

    /// Total number of stored keys (the paper’s `|D|`).
    pub fn size(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }
}

/// Evaluate a single node of the tree given its children’s relations.
pub fn eval_node<R: Semiring>(
    tree: &ViewTree,
    node: NodeId,
    children: &[Relation<R>],
    db: &Database<R>,
    liftings: &LiftingMap<R>,
) -> Relation<R> {
    let n = &tree.nodes[node];
    match &n.kind {
        NodeKind::Relation(ri) => db.relations[*ri].clone(),
        NodeKind::Indicator { rel, proj } => indicator_relation(&db.relations[*rel], proj),
        NodeKind::Inner { margin, .. } => {
            let mut acc = match children.first() {
                None => Relation::unit(),
                Some(first) => first.clone(),
            };
            for c in &children[1..] {
                acc = acc.join(c);
            }
            let margins: Vec<(u32, Lifting<R>)> =
                margin.iter().map(|&v| (v, liftings.get(v))).collect();
            acc.marginalize_many(&margins).reorder(&n.keys)
        }
    }
}

/// Evaluate every view of the tree bottom-up; returns one relation per
/// node (indexed by [`NodeId`]).
pub fn eval_all<R: Semiring>(
    tree: &ViewTree,
    db: &Database<R>,
    liftings: &LiftingMap<R>,
) -> Vec<Relation<R>> {
    // nodes are bottom-up except indicators (appended last); evaluate
    // leaves/indicators first, then inner nodes in id order.
    let mut out: Vec<Option<Relation<R>>> = vec![None; tree.nodes.len()];
    for (id, n) in tree.nodes.iter().enumerate() {
        if !matches!(n.kind, NodeKind::Inner { .. }) {
            out[id] = Some(eval_node(tree, id, &[], db, liftings));
        }
    }
    for (id, n) in tree.nodes.iter().enumerate() {
        if matches!(n.kind, NodeKind::Inner { .. }) {
            let children: Vec<Relation<R>> = n
                .children
                .iter()
                .map(|&c| out[c].clone().expect("children evaluated before parents"))
                .collect();
            out[id] = Some(eval_node(tree, id, &children, db, liftings));
        }
    }
    out.into_iter()
        .map(|r| r.expect("all nodes evaluated"))
        .collect()
}

/// Evaluate the tree and return the root view (the query result).
pub fn eval_tree<R: Semiring>(
    tree: &ViewTree,
    db: &Database<R>,
    liftings: &LiftingMap<R>,
) -> Relation<R> {
    let mut all = eval_all(tree, db, liftings);
    all.swap_remove(tree.root)
}

/// The indicator projection `∃_proj R`: distinct `proj`-projections of
/// `R`’s support, each with payload 1 (Appendix B).
pub fn indicator_relation<R: Semiring>(rel: &Relation<R>, proj: &Schema) -> Relation<R> {
    let positions = rel
        .schema()
        .positions_of(proj.vars())
        .expect("projection vars must be in the relation schema");
    let mut seen: fivm_core::FxHashSet<Tuple> = fivm_core::FxHashSet::default();
    let mut out = Relation::new(proj.clone());
    for (t, _) in rel.iter() {
        let key = t.project(&positions);
        if seen.insert(key.clone()) {
            out.insert(key, R::one());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_core::lifting::int_identity;
    use fivm_core::tuple;
    use fivm_query::VariableOrder;

    /// Figure 2c database with all payloads 1 (for COUNT).
    fn fig2_db(q: &QueryDef) -> Database<i64> {
        let mut db = Database::empty(q);
        for (a, b) in [(1, 1), (1, 2), (2, 3), (3, 4)] {
            db.relations[0].insert(tuple![a, b], 1);
        }
        for (a, c, e) in [(1, 1, 1), (1, 1, 2), (1, 2, 3), (2, 2, 4)] {
            db.relations[1].insert(tuple![a, c, e], 1);
        }
        for (c, d) in [(1, 1), (2, 2), (2, 3), (3, 4)] {
            db.relations[2].insert(tuple![c, d], 1);
        }
        db
    }

    /// Figure 2d: the COUNT over the natural join is 10.
    #[test]
    fn figure_2d_count() {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let db = fig2_db(&q);
        let result = eval_tree(&tree, &db, &LiftingMap::<i64>::new());
        assert_eq!(result.payload(&Tuple::unit()), 10);
    }

    /// All views of Figure 2d have the contents shown in the paper.
    #[test]
    fn figure_2d_intermediate_views() {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let db = fig2_db(&q);
        let views = eval_all(&tree, &db, &LiftingMap::<i64>::new());
        // V@B_R[A]: a1→2, a2→1, a3→1
        let vb = tree
            .nodes
            .iter()
            .position(|n| n.rels == 0b001 && matches!(n.kind, NodeKind::Inner { .. }))
            .unwrap();
        assert_eq!(views[vb].payload(&tuple![1]), 2);
        assert_eq!(views[vb].payload(&tuple![2]), 1);
        // V@C_ST[A]: a1→4, a2→2
        let vst = tree
            .nodes
            .iter()
            .position(|n| n.rels == 0b110 && matches!(n.kind, NodeKind::Inner { .. }))
            .unwrap();
        assert_eq!(views[vst].payload(&tuple![1]), 4);
        assert_eq!(views[vst].payload(&tuple![2]), 2);
    }

    /// The same tree with identity liftings computes
    /// SUM(B * D * E) — different ring use, same plan (Example 2.3 with
    /// no free variables).
    #[test]
    fn sum_aggregate_same_tree() {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let db = fig2_db(&q);
        let mut lifts = LiftingMap::<i64>::new();
        for v in ["B", "D", "E"] {
            lifts.set(q.catalog.lookup(v).unwrap(), int_identity());
        }
        let result = eval_tree(&tree, &db, &lifts);
        // join tuples (a,b,c,d,e): enumerate manually from Figure 2e:
        // a1: b∈{1,2} × [(c1,d1,e∈{1,2}), (c2,{d2,d3},e3)]
        // a2: b3 × (c2,{d2,d3},e4)
        let mut expected = 0i64;
        for b in [1i64, 2] {
            for (d, e) in [(1, 1), (1, 2), (2, 3), (3, 3)] {
                expected += b * d * e;
            }
        }
        for (d, e) in [(2i64, 4i64), (3, 4)] {
            expected += 3 * d * e;
        }
        assert_eq!(result.payload(&Tuple::unit()), expected);
    }

    /// Group-by variant: free variables A, C (Example 1.1’s shape).
    #[test]
    fn group_by_free_vars() {
        let q = QueryDef::example_rst(&["A", "C"]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let db = fig2_db(&q);
        let result = eval_tree(&tree, &db, &LiftingMap::<i64>::new());
        // counts per (A, C) group
        assert_eq!(result.payload(&tuple![1, 1]), 4); // 2 B’s × 1 D × 2 E’s
        assert_eq!(result.payload(&tuple![1, 2]), 4); // 2 B’s × 2 D’s × 1 E
        assert_eq!(result.payload(&tuple![2, 2]), 2); // 1 B × 2 D’s × 1 E
        assert_eq!(result.len(), 3);
    }

    /// Factorized evaluation equals the naive join-then-aggregate plan.
    #[test]
    fn matches_naive_evaluation() {
        let q = QueryDef::example_rst(&["A"]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let db = fig2_db(&q);
        let mut lifts = LiftingMap::<i64>::new();
        lifts.set(q.catalog.lookup("D").unwrap(), int_identity());
        let fact = eval_tree(&tree, &db, &lifts);
        // naive: join everything, then marginalize bound vars
        let joined = db.relations[0]
            .join(&db.relations[1])
            .join(&db.relations[2]);
        let naive = joined
            .marginalize_many(&[
                (q.catalog.lookup("B").unwrap(), Lifting::One),
                (q.catalog.lookup("C").unwrap(), Lifting::One),
                (q.catalog.lookup("D").unwrap(), int_identity()),
                (q.catalog.lookup("E").unwrap(), Lifting::One),
            ])
            .reorder(fact.schema());
        assert_eq!(fact, naive);
    }

    #[test]
    fn indicator_projection_contents() {
        let mut r: Relation<i64> = Relation::new(Schema::new(vec![0, 1]));
        r.insert(tuple![1, 1], 5);
        r.insert(tuple![1, 2], -3);
        r.insert(tuple![2, 1], 1);
        let ind = indicator_relation(&r, &Schema::new(vec![0]));
        assert_eq!(ind.payload(&tuple![1]), 1); // support, not multiplicity
        assert_eq!(ind.payload(&tuple![2]), 1);
        assert_eq!(ind.len(), 2);
    }

    /// Triangle query via the indicator-extended tree agrees with naive.
    #[test]
    fn triangle_with_indicator_is_correct() {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut tree = ViewTree::build(&q, &vo);
        fivm_query::add_indicators(&mut tree, &q);
        let mut db = Database::<i64>::empty(&q);
        // small cyclic instance
        for (a, b) in [(1, 1), (1, 2), (2, 1)] {
            db.relations[0].insert(tuple![a, b], 1);
        }
        for (b, c) in [(1, 1), (2, 1), (1, 2)] {
            db.relations[1].insert(tuple![b, c], 1);
        }
        for (c, a) in [(1, 1), (1, 2), (2, 1)] {
            db.relations[2].insert(tuple![c, a], 1);
        }
        let result = eval_tree(&tree, &db, &LiftingMap::<i64>::new());
        let naive = db.relations[0]
            .join(&db.relations[1])
            .join(&db.relations[2])
            .marginalize_many(&[
                (q.catalog.lookup("A").unwrap(), Lifting::One),
                (q.catalog.lookup("B").unwrap(), Lifting::One),
                (q.catalog.lookup("C").unwrap(), Lifting::One),
            ]);
        assert_eq!(
            result.payload(&Tuple::unit()),
            naive.payload(&Tuple::unit())
        );
    }
}

#[cfg(test)]
mod semiring_tests {
    use super::*;
    use fivm_core::ring::boolean::{Bool, MaxProduct};
    use fivm_core::tuple;
    use fivm_query::VariableOrder;

    /// Static factorized evaluation works over pure semirings (no
    /// additive inverse): Boolean answers “does any join witness
    /// exist?”, max-product computes the best-scoring derivation — the
    /// Appendix A examples exercised end-to-end.
    #[test]
    fn boolean_semiring_existence() {
        let q = QueryDef::example_rst(&["A"]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let mut db: Database<Bool> = Database::empty(&q);
        db.relations[0].insert(tuple![1, 1], Bool(true));
        db.relations[0].insert(tuple![2, 9], Bool(true));
        db.relations[1].insert(tuple![1, 3, 5], Bool(true));
        db.relations[2].insert(tuple![3, 7], Bool(true));
        let result = eval_tree(&tree, &db, &LiftingMap::new());
        // only A=1 has a full join witness
        assert_eq!(result.payload(&tuple![1]), Bool(true));
        assert!(!result.contains(&tuple![2]));
    }

    #[test]
    fn max_product_best_derivation() {
        let q = QueryDef::new(&[("R", &["A", "B"]), ("S", &["B", "C"])], &["A"]);
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let mut db: Database<MaxProduct> = Database::empty(&q);
        db.relations[0].insert(tuple![1, 1], MaxProduct(0.5));
        db.relations[0].insert(tuple![1, 2], MaxProduct(0.9));
        db.relations[1].insert(tuple![1, 7], MaxProduct(0.8));
        db.relations[1].insert(tuple![2, 7], MaxProduct(0.1));
        let result = eval_tree(&tree, &db, &LiftingMap::new());
        // best derivation for A=1: max(0.5·0.8, 0.9·0.1) = 0.4
        let p = result.payload(&tuple![1]);
        assert!((p.0 - 0.4).abs() < 1e-12);
    }
}
