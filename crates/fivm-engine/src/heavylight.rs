//! IVM^ε adaptive heavy/light maintenance for triangle queries
//! (Kara et al., “Counting Triangles under Updates in Worst-Case
//! Optimal Time”, ICDT 2019), plugged into this crate's view storage.
//!
//! The classical engine maintains the triangle count with delta queries
//! that are O(N) per single-tuple update once a vertex is heavy (the
//! delta enumerates the vertex's neighborhood). [`TriangleHlEngine`]
//! instead keeps each relation split into a **heavy** and a **light**
//! part store by the degree of its partition key (cycle-first variable),
//! at threshold θ = Θ(N^ε), plus one materialized auxiliary view per
//! heavy⊗light pairing:
//!
//! ```text
//! Wₖ(vₖ, vₖ₊₂) = Σ_{vₖ₊₁} relₖᴴ(vₖ, vₖ₊₁) ⊗ relₖ₊₁ᴸ(vₖ₊₁, vₖ₊₂)
//! ```
//!
//! A single-tuple update δrelₖ(x, y) routes by the part of its join key
//! `y` in relₖ₊₁: if `y` is light the delta enumerates at most O(θ)
//! light tuples; if heavy, one O(1) probe of Wₖ₊₁ covers the
//! heavy⊗light term and a scan of the ≤ 2N/θ heavy keys of relₖ₊₂
//! covers heavy⊗heavy — O(N^ε + N^{1−ε}) total, O(√N) at ε = ½.
//! Keys migrate between parts only when their degree leaves the
//! hysteresis band `[θ/2, 2θ]`, so a migration's O(degree) cost is
//! amortized O(N^ε) per update; θ itself re-anchors lazily when the
//! database doubles or halves (docs/heavy-light.md has the full
//! invariants and the amortization argument).
//!
//! The engine maintains the **closed** (no group-by) aggregate over any
//! commutative [`Ring`] — the payload of a triangle is the product of
//! its three edge payloads in cycle order; deletions are negative
//! payloads exactly as everywhere else in the crate.

use crate::view::{SupportChange, ViewStore};
use fivm_core::ring::degree::{DegreeTracker, PartitionThreshold};
use fivm_core::{Delta, Relation, Ring, Schema, Tuple, Value};
use fivm_query::{PartitionError, QueryDef, RelIndex, TrianglePlan};

/// Tuning knobs for the adaptive layer.
#[derive(Clone, Copy, Debug)]
pub struct HlConfig {
    /// The ε of θ = Θ(N^ε); ½ minimizes N^ε + N^{1−ε}.
    pub epsilon: f64,
    /// Floor for θ, so tiny databases don't thrash migrations.
    pub min_theta: u32,
}

impl Default for HlConfig {
    fn default() -> Self {
        HlConfig {
            epsilon: 0.5,
            min_theta: 4,
        }
    }
}

/// Observability counters (tests assert migration storms actually
/// migrate; benches report the amortized cost drivers).
#[derive(Clone, Copy, Debug, Default)]
pub struct HlStats {
    /// Single-tuple updates applied.
    pub updates: u64,
    /// Light→heavy key promotions.
    pub promotions: u64,
    /// Heavy→light key demotions.
    pub demotions: u64,
    /// Tuples moved across part stores by migrations.
    pub tuples_migrated: u64,
    /// Times θ was re-anchored (database doubled/halved).
    pub rethresholds: u64,
}

/// The IVM^ε triangle engine: six part stores, three auxiliary views,
/// a per-relation degree tracker, and the update router.
///
/// All `[_; 3]` state is indexed by **cycle position** `k` of the
/// compiled [`TrianglePlan`] (`plan.cycle_of_rel` maps the query's
/// relation indices to cycle positions); part stores hold tuples in the
/// canonical `(partition key, other)` orientation.
#[derive(Clone, Debug)]
pub struct TriangleHlEngine<R> {
    query: QueryDef,
    plan: TrianglePlan,
    cfg: HlConfig,
    light: [ViewStore<R>; 3],
    heavy: [ViewStore<R>; 3],
    aux: [ViewStore<R>; 3],
    deg: [DegreeTracker; 3],
    /// First-column (partition-key) index of each light store.
    light_first: [usize; 3],
    /// First-column index of each heavy store (migrations enumerate it).
    heavy_first: [usize; 3],
    /// Second-column index of each heavy store (aux maintenance probes
    /// σ_{second=x} relₖ₊₂ᴴ on light-part updates).
    heavy_second: [usize; 3],
    threshold: PartitionThreshold,
    /// Distinct tuples across all three relations.
    n_tuples: usize,
    /// Population at the last θ anchor.
    n_anchor: usize,
    total: R,
    stats: HlStats,
}

impl<R: Ring> TriangleHlEngine<R> {
    /// Build the partitioned engine for a triangle query; fails with
    /// the structural reason if `q` is not a binary 3-cycle with no
    /// free variables.
    pub fn new(q: QueryDef, cfg: HlConfig) -> Result<Self, PartitionError> {
        let plan = TrianglePlan::build(&q)?;
        let mut light: [ViewStore<R>; 3] =
            std::array::from_fn(|k| ViewStore::new(plan.part_schema(k)));
        let mut heavy: [ViewStore<R>; 3] =
            std::array::from_fn(|k| ViewStore::new(plan.part_schema(k)));
        let aux: [ViewStore<R>; 3] = std::array::from_fn(|k| ViewStore::new(plan.aux_schema(k)));
        let light_first = std::array::from_fn(|k| light[k].ensure_index_on_positions(vec![0]));
        let heavy_first = std::array::from_fn(|k| heavy[k].ensure_index_on_positions(vec![0]));
        let heavy_second = std::array::from_fn(|k| heavy[k].ensure_index_on_positions(vec![1]));
        Ok(TriangleHlEngine {
            query: q,
            plan,
            cfg,
            light,
            heavy,
            aux,
            deg: std::array::from_fn(|_| DegreeTracker::new()),
            light_first,
            heavy_first,
            heavy_second,
            threshold: PartitionThreshold::for_size(0, cfg.epsilon, cfg.min_theta),
            n_tuples: 0,
            n_anchor: 1,
            total: R::zero(),
            stats: HlStats::default(),
        })
    }

    /// The query this engine maintains.
    pub fn query(&self) -> &QueryDef {
        &self.query
    }

    /// The compiled partition plan.
    pub fn plan(&self) -> &TrianglePlan {
        &self.plan
    }

    /// Current θ.
    pub fn theta(&self) -> u32 {
        self.threshold.theta
    }

    /// Counters.
    pub fn stats(&self) -> HlStats {
        self.stats
    }

    /// Heavy-key count per cycle position.
    pub fn heavy_counts(&self) -> [usize; 3] {
        std::array::from_fn(|k| self.deg[k].heavy_count())
    }

    /// Distinct tuples across all three relations.
    pub fn tuple_count(&self) -> usize {
        self.n_tuples
    }

    /// Degree of `key` in the relation `rel` of the query.
    pub fn degree(&self, rel: RelIndex, key: &Value) -> u32 {
        self.deg[self.plan.cycle_of_rel[rel]].degree(key)
    }

    /// Part assignment of `key` in relation `rel`.
    pub fn is_heavy(&self, rel: RelIndex, key: &Value) -> bool {
        self.deg[self.plan.cycle_of_rel[rel]].is_heavy(key)
    }

    /// The maintained closed aggregate.
    pub fn total(&self) -> &R {
        &self.total
    }

    /// The result in the engine-wide convention: a unit-keyed relation,
    /// empty when the aggregate is zero (matches
    /// [`crate::IvmEngine::result`] for the same query).
    pub fn result(&self) -> Relation<R> {
        if self.total.is_zero() {
            Relation::new(Schema::empty())
        } else {
            Relation::from_pairs(Schema::empty(), [(Tuple::unit(), self.total.clone())])
        }
    }

    /// Apply a delta to relation `rel`, routing each tuple through the
    /// partitioned single-tuple path (factored deltas are flattened —
    /// the sub-linear bound is per tuple, there is no batch fan-out).
    pub fn apply(&mut self, rel: RelIndex, delta: &Delta<R>) {
        match delta {
            Delta::Flat(r) => {
                for (t, p) in r.iter() {
                    self.apply_update(rel, t, p.clone());
                }
            }
            Delta::Factored(_) => {
                for (t, p) in delta.flatten().iter() {
                    self.apply_update(rel, t, p.clone());
                }
            }
        }
    }

    /// The router: apply one single-tuple update `δrel(t) = payload`.
    pub fn apply_update(&mut self, rel: RelIndex, t: &Tuple, payload: R) {
        if payload.is_zero() {
            return;
        }
        self.stats.updates += 1;
        let k = self.plan.cycle_of_rel[rel];
        let kp1 = (k + 1) % 3;
        let kp2 = (k + 2) % 3;
        let x = t.get(self.plan.pos_part[k]).clone();
        let y = t.get(self.plan.pos_other[k]).clone();
        let key = Tuple::pair(x.clone(), y.clone());

        // 1. Count delta ΔQ = δ ⊗ Σ_z relₖ₊₁(y, z) ⊗ relₖ₊₂(z, x),
        //    routed by the part of y in relₖ₊₁ (this update has not yet
        //    touched any store, so every probe sees pre-update state —
        //    which is exactly what the delta formula needs).
        let mut dq = R::zero();
        if self.deg[kp1].is_heavy(&y) {
            // heavy ⊗ light: one auxiliary-view probe.
            if let Some(w) = self.aux[kp1].get(&Tuple::pair(y.clone(), x.clone())) {
                dq.add_assign(w);
            }
            // heavy ⊗ heavy: scan the heavy keys of relₖ₊₂ (≤ 2N/θ).
            for z in self.deg[kp2].heavy_keys() {
                if let Some(p1) = self.heavy[kp1].get(&Tuple::pair(y.clone(), z.clone())) {
                    if let Some(p2) = self.heavy[kp2].get(&Tuple::pair(z.clone(), x.clone())) {
                        dq.add_assign(&p1.mul(p2));
                    }
                }
            }
        } else {
            // y light: enumerate its ≤ 2θ tuples, probe both parts of
            // relₖ₊₂ pointwise.
            let yk = Tuple::single(y.clone());
            for t1 in self.light[kp1].probe(self.light_first[kp1], &yk) {
                let Some(p1) = self.light[kp1].get(t1) else {
                    continue;
                };
                let zx = Tuple::pair(t1.get(1).clone(), x.clone());
                if let Some(p2) = self.light[kp2].get(&zx) {
                    dq.add_assign(&p1.mul(p2));
                }
                if let Some(p2) = self.heavy[kp2].get(&zx) {
                    dq.add_assign(&p1.mul(p2));
                }
            }
        }
        self.total.add_assign(&payload.mul(&dq));

        // 2. Apply the delta to x's current part store.
        let x_heavy = self.deg[k].is_heavy(&x);
        let change = if x_heavy {
            self.heavy[k].insert_ref(&key, payload.clone())
        } else {
            self.light[k].insert_ref(&key, payload.clone())
        };

        // 3. Auxiliary-view maintenance: relₖᴴ feeds Wₖ, relₖᴸ feeds
        //    Wₖ₊₂ (as its second factor).
        if x_heavy {
            // Wₖ(x, w) += δ ⊗ relₖ₊₁ᴸ(y, w) — bounded by y's light degree.
            let yk = Tuple::single(y.clone());
            for t1 in self.light[kp1].probe(self.light_first[kp1], &yk) {
                if let Some(pw) = self.light[kp1].get(t1) {
                    self.aux[k]
                        .insert_ref(&Tuple::pair(x.clone(), t1.get(1).clone()), payload.mul(pw));
                }
            }
        } else {
            // Wₖ₊₂(u, y) += relₖ₊₂ᴴ(u, x) ⊗ δ — bounded by the number
            // of heavy keys u of relₖ₊₂ (one tuple (u, x) each).
            let xk = Tuple::single(x.clone());
            for t2 in self.heavy[kp2].probe(self.heavy_second[kp2], &xk) {
                if let Some(pu) = self.heavy[kp2].get(t2) {
                    self.aux[kp2]
                        .insert_ref(&Tuple::pair(t2.get(0).clone(), y.clone()), pu.mul(&payload));
                }
            }
        }

        // 4. Degree / population bookkeeping, then rebalance lazily.
        match change {
            SupportChange::Appeared => {
                self.deg[k].record(&x, 1);
                self.n_tuples += 1;
            }
            SupportChange::Disappeared => {
                self.deg[k].record(&x, -1);
                self.n_tuples -= 1;
            }
            SupportChange::Unchanged => {}
        }
        self.maybe_rethreshold();
        self.rebalance(k, &x);
    }

    /// Re-anchor θ when the population has doubled or halved since the
    /// last anchor. A θ change does **not** force migrations: keys
    /// rebalance lazily the next time they are touched, which keeps the
    /// re-anchor O(1) (the partition stays correct for *any*
    /// assignment; see module docs).
    fn maybe_rethreshold(&mut self) {
        if self.n_tuples >= self.n_anchor.saturating_mul(2)
            || (self.n_anchor >= 2 && self.n_tuples <= self.n_anchor / 2)
        {
            self.n_anchor = self.n_tuples.max(1);
            self.threshold =
                PartitionThreshold::for_size(self.n_tuples, self.cfg.epsilon, self.cfg.min_theta);
            self.stats.rethresholds += 1;
        }
    }

    /// Migrate `x` between parts of the relation at cycle position `k`
    /// if its degree left the hysteresis band.
    fn rebalance(&mut self, k: usize, x: &Value) {
        let d = self.deg[k].degree(x);
        if self.deg[k].is_heavy(x) {
            if self.threshold.demotes(d) {
                self.migrate(k, x, false);
            }
        } else if self.threshold.promotes(d) {
            self.migrate(k, x, true);
        }
    }

    /// Move all tuples of key `x` in the relation at cycle position `j`
    /// to the other part and fix up the two auxiliary views its parts
    /// feed: `Wⱼ` (over relⱼᴴ ⊗ relⱼ₊₁ᴸ) and `Wⱼ₊₂` (over relⱼ₊₂ᴴ ⊗
    /// relⱼᴸ). The maintained total is partition-invariant, so it does
    /// not change here — which is exactly what the migration-storm
    /// tests pin down.
    fn migrate(&mut self, j: usize, x: &Value, to_heavy: bool) {
        let jp1 = (j + 1) % 3;
        let jp2 = (j + 2) % 3;
        let xk = Tuple::single(x.clone());
        let moved: Vec<(Tuple, R)> = {
            let (src, ix) = if to_heavy {
                (&self.light[j], self.light_first[j])
            } else {
                (&self.heavy[j], self.heavy_first[j])
            };
            src.probe(ix, &xk)
                .iter()
                .filter_map(|t| src.get(t).map(|p| (t.clone(), p.clone())))
                .collect()
        };
        for (t, m) in &moved {
            if to_heavy {
                self.light[j].insert_ref(t, m.neg());
                self.heavy[j].insert_ref(t, m.clone());
            } else {
                self.heavy[j].insert_ref(t, m.neg());
                self.light[j].insert_ref(t, m.clone());
            }
        }
        for (t, m) in &moved {
            let v = t.get(1);
            // Wⱼ(x, w) gains (promotion) or loses (demotion) the
            // contribution m ⊗ relⱼ₊₁ᴸ(v, w).
            let vk = Tuple::single(v.clone());
            for t1 in self.light[jp1].probe(self.light_first[jp1], &vk) {
                if let Some(pw) = self.light[jp1].get(t1) {
                    let d = m.mul(pw);
                    self.aux[j].insert_ref(
                        &Tuple::pair(x.clone(), t1.get(1).clone()),
                        if to_heavy { d } else { d.neg() },
                    );
                }
            }
            // Wⱼ₊₂(u, v) loses (promotion) or gains (demotion) the
            // contribution relⱼ₊₂ᴴ(u, x) ⊗ m.
            for t2 in self.heavy[jp2].probe(self.heavy_second[jp2], &xk) {
                if let Some(pu) = self.heavy[jp2].get(t2) {
                    let d = pu.mul(m);
                    self.aux[jp2].insert_ref(
                        &Tuple::pair(t2.get(0).clone(), v.clone()),
                        if to_heavy { d.neg() } else { d },
                    );
                }
            }
        }
        self.deg[j].set_heavy(x, to_heavy);
        self.stats.tuples_migrated += moved.len() as u64;
        if to_heavy {
            self.stats.promotions += 1;
        } else {
            self.stats.demotions += 1;
        }
    }

    /// Recompute every piece of derived state from the part stores and
    /// compare: part-assignment consistency, degrees, auxiliary views,
    /// population, and the total (via an independent probe join). Test
    /// and debugging aid — O(N · max degree), not for the hot path.
    pub fn verify_consistency(&self) -> Result<(), String> {
        use fivm_core::FxHashMap;
        // Assignments and degrees.
        let mut n = 0usize;
        for k in 0..3 {
            let mut degrees: FxHashMap<Value, u32> = FxHashMap::default();
            for (t, _) in self.heavy[k].iter() {
                if !self.deg[k].is_heavy(t.get(0)) {
                    return Err(format!("rel {k}: {t:?} in heavy store but assigned light"));
                }
                *degrees.entry(t.get(0).clone()).or_insert(0) += 1;
            }
            for (t, _) in self.light[k].iter() {
                if self.deg[k].is_heavy(t.get(0)) {
                    return Err(format!("rel {k}: {t:?} in light store but assigned heavy"));
                }
                *degrees.entry(t.get(0).clone()).or_insert(0) += 1;
            }
            for (key, d) in &degrees {
                if self.deg[k].degree(key) != *d {
                    return Err(format!(
                        "rel {k}: degree of {key:?} is {} but stores hold {d}",
                        self.deg[k].degree(key)
                    ));
                }
            }
            if self.deg[k].tracked_keys()
                != degrees.len() + {
                    // heavy keys at degree 0 are tracked but store-absent
                    self.deg[k]
                        .heavy_keys()
                        .filter(|z| !degrees.contains_key(*z))
                        .count()
                }
            {
                return Err(format!("rel {k}: tracker holds stale keys"));
            }
            n += self.heavy[k].len() + self.light[k].len();
        }
        if n != self.n_tuples {
            return Err(format!("population {} but stores hold {n}", self.n_tuples));
        }
        // Auxiliary views.
        for k in 0..3 {
            let kp1 = (k + 1) % 3;
            let mut expect: FxHashMap<Tuple, R> = FxHashMap::default();
            for (th, ph) in self.heavy[k].iter() {
                let vk = Tuple::single(th.get(1).clone());
                for tl in self.light[kp1].probe(self.light_first[kp1], &vk) {
                    if let Some(pl) = self.light[kp1].get(tl) {
                        expect
                            .entry(Tuple::pair(th.get(0).clone(), tl.get(1).clone()))
                            .or_insert_with(R::zero)
                            .add_assign(&ph.mul(pl));
                    }
                }
            }
            expect.retain(|_, p| !p.is_zero());
            if expect.len() != self.aux[k].len() {
                return Err(format!(
                    "W{k}: {} keys maintained, {} expected",
                    self.aux[k].len(),
                    expect.len()
                ));
            }
            for (t, p) in &expect {
                if self.aux[k].get(t) != Some(p) {
                    return Err(format!(
                        "W{k}[{t:?}] = {:?}, expected {p:?}",
                        self.aux[k].get(t)
                    ));
                }
            }
        }
        // Total, by an independent probe join over the part stores.
        let mut q = R::zero();
        for store0 in [&self.light[0], &self.heavy[0]] {
            for (t0, p0) in store0.iter() {
                let bk = Tuple::single(t0.get(1).clone());
                for (store1, ix1) in [
                    (&self.light[1], self.light_first[1]),
                    (&self.heavy[1], self.heavy_first[1]),
                ] {
                    for t1 in store1.probe(ix1, &bk) {
                        let Some(p1) = store1.get(t1) else { continue };
                        let ca = Tuple::pair(t1.get(1).clone(), t0.get(0).clone());
                        for store2 in [&self.light[2], &self.heavy[2]] {
                            if let Some(p2) = store2.get(&ca) {
                                q.add_assign(&p0.mul(p1).mul(p2));
                            }
                        }
                    }
                }
            }
        }
        if q != self.total {
            return Err(format!("total {:?}, recomputed {q:?}", self.total));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_core::tuple;

    fn engine(min_theta: u32) -> TriangleHlEngine<i64> {
        TriangleHlEngine::new(
            QueryDef::triangle(),
            HlConfig {
                epsilon: 0.5,
                min_theta,
            },
        )
        .unwrap()
    }

    fn upd(e: &mut TriangleHlEngine<i64>, rel: usize, a: i64, b: i64, m: i64) {
        e.apply_update(rel, &tuple![a, b], m);
    }

    #[test]
    fn counts_one_triangle() {
        let mut e = engine(4);
        upd(&mut e, 0, 1, 2, 1); // R(1,2)
        upd(&mut e, 1, 2, 3, 1); // S(2,3)
        assert_eq!(*e.total(), 0);
        upd(&mut e, 2, 3, 1, 1); // T(3,1)
        assert_eq!(*e.total(), 1);
        e.verify_consistency().unwrap();
        upd(&mut e, 2, 3, 1, -1);
        assert_eq!(*e.total(), 0);
        assert!(e.result().is_empty());
        e.verify_consistency().unwrap();
    }

    #[test]
    fn multiplicities_multiply() {
        let mut e = engine(4);
        upd(&mut e, 0, 1, 2, 2);
        upd(&mut e, 1, 2, 3, 3);
        upd(&mut e, 2, 3, 1, 5);
        assert_eq!(*e.total(), 30);
        // raising R's multiplicity adds (delta × S × T)
        upd(&mut e, 0, 1, 2, 1);
        assert_eq!(*e.total(), 45);
        e.verify_consistency().unwrap();
    }

    #[test]
    fn promotion_and_demotion_preserve_the_total() {
        let mut e = engine(1);
        // Hub a=0 in R: degree ramps past 2θ and must promote.
        for b in 0..32 {
            upd(&mut e, 0, 0, b, 1);
            upd(&mut e, 1, b, b + 100, 1);
            upd(&mut e, 2, b + 100, 0, 1);
            assert_eq!(*e.total(), b + 1, "b={b}");
        }
        e.verify_consistency().unwrap();
        assert!(e.is_heavy(0, &Value::Int(0)), "hub should be heavy");
        assert!(e.stats().promotions > 0);
        // Delete the hub's R-edges: total drains, key demotes, and the
        // emptied heavy key leaves no residue.
        for b in 0..32 {
            upd(&mut e, 0, 0, b, -1);
        }
        assert_eq!(*e.total(), 0);
        assert!(!e.is_heavy(0, &Value::Int(0)));
        assert!(e.stats().demotions > 0);
        e.verify_consistency().unwrap();
    }

    #[test]
    fn rejects_non_triangle_queries() {
        let q = QueryDef::example_rst(&[]);
        assert!(TriangleHlEngine::<i64>::new(q, HlConfig::default()).is_err());
    }

    #[test]
    fn flat_and_factored_deltas_route_through_the_same_path() {
        let q = QueryDef::triangle();
        let sch = q.relations[0].schema.clone();
        let mut e = engine(4);
        upd(&mut e, 1, 2, 3, 1);
        upd(&mut e, 2, 3, 1, 1);
        let d = Relation::from_pairs(sch, [(tuple![1, 2], 1i64)]);
        e.apply(0, &Delta::Flat(d));
        assert_eq!(*e.total(), 1);
        e.verify_consistency().unwrap();
    }
}
