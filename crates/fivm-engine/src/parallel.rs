//! Parallel delta propagation: a persistent worker pool plus the
//! per-worker scratch state the executor's fan-out uses.
//!
//! # Why the fan-out is safe
//!
//! Each maintenance step of the compiled fast path is a map over the
//! current delta buffer: probe sibling views (read-only), lift margin
//! payloads, project onto the node's keys, and merge duplicates. The
//! probes only ever take `&ViewStore` — all store *mutation* (the
//! per-step view merge) happens strictly after the step's fan-out has
//! been gathered — so workers share the stores behind plain shared
//! references ([`crate::view::ViewStore`] is `Sync` whenever the ring
//! payload is, which [`fivm_core::ring::Semiring`] requires).
//!
//! # The two-phase range partition
//!
//! Merging duplicates is the only cross-tuple interaction in a step, so
//! the fan-out runs as a radix-partitioned aggregation:
//!
//! 1. **Route** — worker `w` takes the `w`-th contiguous chunk of the
//!    step's input, joins and lifts it exactly like the sequential
//!    path, and routes every surviving `(output key, payload)` pair
//!    into one of `W` destination buffers by a multiply-shift range map
//!    of the output key's cached hash ([`destination`]).
//! 2. **Merge** — worker `d` owns hash range `d`: it folds every
//!    worker's `d`-buffer (in worker order, which is chunk order)
//!    through its own [`DeltaAccumulator`] and drains a merged run.
//!
//! The drained runs are **disjoint by construction** — a key's pairs
//! all land in the one destination its hash maps to — so concatenating
//! them is the step's merged delta, and only the final per-step store
//! merge needs single-writer access. Per-key payloads fold in the same
//! order as the sequential path (workers emit in chunk order, merges
//! consume in worker order), so exact rings produce bit-identical
//! results at any worker count; see `tests/parallel_determinism.rs`.
//!
//! String-keyed workloads route exactly like integer ones: string
//! values are interned to `Value::Sym(u32)` at load (fivm-core
//! `schema.rs`), so the pairs shipped between route and merge workers
//! carry 8-byte symbols — cloning a routed key moves no `Arc`
//! refcounts, which keeps the fan-out free of cross-thread atomic
//! contention on hot string values.
//!
//! # The pool
//!
//! [`WorkerPool`] keeps its threads parked between dispatches
//! (mutex + condvar), so a step's fan-out costs two wake/park rounds,
//! not thread spawns. [`WorkerPool::scatter`] publishes a
//! lifetime-erased closure pointer and blocks until every worker has
//! run it — that blocking is what makes the erasure sound (the borrow
//! cannot end before `scatter` returns). Below
//! [`DEFAULT_PARALLEL_THRESHOLD`] tuples the executor skips all of
//! this, so single-tuple latency pays one length comparison.

use fivm_core::sync::thread::JoinHandle;
use fivm_core::sync::{Condvar, Mutex};
use fivm_core::{DeltaAccumulator, Ring, Tuple};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Model-check fault injection for the dispatch protocol — the seeded
/// scatter bugs the WorkerPool model must catch.
#[cfg(fivm_model_check)]
pub mod faults {
    use std::sync::atomic::AtomicBool;

    /// `scatter` signals new work with `notify_one` instead of
    /// `notify_all`: with more than one parked worker, one never wakes
    /// and the dispatcher waits forever (modeled deadlock).
    pub static NOTIFY_ONE: AtomicBool = AtomicBool::new(false);

    /// `scatter` returns without waiting for `remaining == 0`: the
    /// lifetime-erased closure borrow ends while workers can still
    /// call through the raw pointer (modeled use-after-free).
    pub static NO_WAIT: AtomicBool = AtomicBool::new(false);
}

/// Steps with fewer input tuples than this take the sequential path
/// (see the executor): below it, the two wake/park rounds of a
/// dispatch cost more than the fan-out saves. Override per engine with
/// `IvmEngine::set_parallel_threshold` or globally with
/// `FIVM_PAR_THRESHOLD`.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4096;

/// Worker count from the `FIVM_WORKERS` environment variable
/// (`1` — fully sequential — when unset or unparsable).
pub fn env_workers() -> usize {
    std::env::var("FIVM_WORKERS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Parallel-step threshold from `FIVM_PAR_THRESHOLD`
/// ([`DEFAULT_PARALLEL_THRESHOLD`] when unset or unparsable).
pub fn env_parallel_threshold() -> usize {
    std::env::var("FIVM_PAR_THRESHOLD")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_PARALLEL_THRESHOLD)
}

/// The `i`-th of `parts` contiguous chunks of a `len`-element buffer
/// (balanced to within one element; deterministic).
#[inline]
pub fn chunk(len: usize, parts: usize, i: usize) -> std::ops::Range<usize> {
    (len * i / parts)..(len * (i + 1) / parts)
}

/// Range-partition a cached tuple hash over `parts` destinations:
/// remix (cached hashes feed slot indexes elsewhere; reusing their raw
/// bits would correlate partitions with table layouts), then map the
/// top 32 bits onto `0..parts` by multiply-shift — no modulo bias, and
/// `parts` need not be a power of two.
#[inline]
pub fn destination(hash: u64, parts: usize) -> usize {
    let mixed = (hash ^ (hash >> 31)).wrapping_mul(0xA24B_AED4_963E_E407);
    (((mixed >> 32) * parts as u64) >> 32) as usize
}

/// Lifetime-erased dispatch payload; see [`WorkerPool::scatter`] for
/// the soundness argument.
#[derive(Clone, Copy)]
struct Job {
    task: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointee is `Sync` (callable from any thread by shared
// reference) and `scatter` keeps the pointee's borrow alive until every
// worker is done with it.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    /// Dispatch counter; a worker runs each epoch's job exactly once.
    epoch: u64,
    /// Workers that have not finished the current epoch's job.
    remaining: usize,
    /// A worker panicked while running the current job.
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled on new work (and shutdown).
    work: Condvar,
    /// Signalled when the last worker finishes an epoch.
    done: Condvar,
}

/// A persistent pool of parked worker threads; see the
/// [module docs](self).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawn `workers` (≥ 1) parked threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                fivm_core::sync::thread::Builder::new()
                    .name(format!("fivm-worker-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("failed to spawn fivm worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads (also the partition count).
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(w)` once on every worker `w` in `0..workers()`,
    /// concurrently, and block until all have finished. Panics if any
    /// worker's invocation panicked.
    ///
    /// SAFETY of the internal lifetime erasure: `f`'s borrow is erased
    /// to publish it through the shared state, but this call does not
    /// return until `remaining == 0`, i.e. until no worker can touch
    /// the pointer again (workers take the job pointer only when the
    /// epoch advances, which happens only inside a later `scatter`).
    /// That argument requires dispatches to be serialized — two
    /// concurrent `scatter`s would race the epoch/remaining protocol
    /// and let one caller return while its closure is still running —
    /// which is why this takes `&mut self`: exclusive access makes
    /// concurrent dispatch unrepresentable in safe code.
    pub fn scatter(&mut self, f: &(dyn Fn(usize) + Sync)) {
        // SAFETY: pure lifetime erasure (same pointee, same vtable);
        // the doc comment above argues why the erased borrow outlives
        // every dereference.
        let task: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const _)
        };
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        st.job = Some(Job { task });
        st.epoch += 1;
        st.remaining = self.workers;
        st.panicked = false;
        #[cfg(not(fivm_model_check))]
        self.shared.work.notify_all();
        #[cfg(fivm_model_check)]
        {
            // relaxed-ok: fault knob, set before the checker runs.
            if faults::NOTIFY_ONE.load(std::sync::atomic::Ordering::Relaxed) {
                self.shared.work.notify_one();
            } else {
                self.shared.work.notify_all();
            }
            // relaxed-ok: fault knob, set before the checker runs.
            if faults::NO_WAIT.load(std::sync::atomic::Ordering::Relaxed) {
                return; // seeded bug: borrow ends while workers still run
            }
        }
        while st.remaining > 0 {
            st = self.shared.done.wait(st).expect("pool state poisoned");
        }
        st.job = None;
        let panicked = st.panicked;
        drop(st);
        assert!(!panicked, "a fivm worker panicked during a parallel step");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(w: usize, shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let task = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.as_ref().expect("epoch advanced without a job").task;
                }
                st = shared.work.wait(st).expect("pool state poisoned");
            }
        };
        // SAFETY: `scatter` blocks until this worker decrements
        // `remaining` below, so the erased borrow is still live here.
        let result = catch_unwind(AssertUnwindSafe(|| (unsafe { &*task })(w)));
        let mut st = shared.state.lock().expect("pool state poisoned");
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// Route-phase state owned by one worker: ping-pong join buffers plus
/// one destination buffer per merge partition. Grow-only, like the
/// executor's sequential scratch — steady-state batches at a stable
/// size reuse all of it.
pub(crate) struct WorkerScratch<R> {
    pub(crate) a: Vec<(Tuple, R)>,
    pub(crate) b: Vec<(Tuple, R)>,
    /// `route[d]` holds the pairs bound for merge partition `d`.
    pub(crate) route: Vec<Vec<(Tuple, R)>>,
}

/// Merge-phase state owned by one destination partition.
pub(crate) struct MergeSlot<R> {
    pub(crate) acc: DeltaAccumulator<R>,
    pub(crate) run: Vec<(Tuple, R)>,
    /// `pending[w]` swaps with worker `w`'s `route[self]` buffer at the
    /// start of the merge phase: collection happens under staggered,
    /// swap-only critical sections, and the actual merge runs lock-free
    /// afterwards — in `w` order, which the determinism contract
    /// needs. Each `(w, d)` pair always swaps with the same slot, so
    /// buffer capacities stay paired and grow-only.
    pub(crate) pending: Vec<Vec<(Tuple, R)>>,
}

/// Everything the executor needs to fan a step out: the pool plus
/// per-worker route scratches and per-destination merge slots. Lock
/// contention is kept structural, not incidental: each worker locks
/// only its own scratch in the route phase and its own slot in the
/// merge phase, and cross-worker route collection staggers its lock
/// order (destination `d` starts at scratch `d`) holding each lock
/// only for buffer swaps. The mutexes exist to keep the fan-out in
/// safe Rust.
pub(crate) struct ParRuntime<R> {
    pub(crate) pool: WorkerPool,
    pub(crate) scratches: Vec<Mutex<WorkerScratch<R>>>,
    pub(crate) merges: Vec<Mutex<MergeSlot<R>>>,
}

impl<R: Ring> ParRuntime<R> {
    /// A runtime with `workers` threads/partitions and the executor's
    /// accumulator regime thresholds.
    pub(crate) fn new(workers: usize, linear_max: usize, hash_min: usize) -> Self {
        let workers = workers.max(1);
        ParRuntime {
            pool: WorkerPool::new(workers),
            scratches: (0..workers)
                .map(|_| {
                    Mutex::new(WorkerScratch {
                        a: Vec::new(),
                        b: Vec::new(),
                        route: (0..workers).map(|_| Vec::new()).collect(),
                    })
                })
                .collect(),
            merges: (0..workers)
                .map(|_| {
                    Mutex::new(MergeSlot {
                        acc: DeltaAccumulator::with_thresholds(linear_max, hash_min),
                        run: Vec::new(),
                        pending: (0..workers).map(|_| Vec::new()).collect(),
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_runs_every_worker_once() {
        let mut pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.scatter(&|w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
        for (w, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "worker {w}");
        }
    }

    #[test]
    fn scatter_is_reusable_and_sees_borrowed_state() {
        let mut pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        let data: Vec<usize> = (0..300).collect();
        for _ in 0..50 {
            pool.scatter(&|w| {
                let r = chunk(data.len(), 3, w);
                let s: usize = data[r].iter().sum();
                total.fetch_add(s, Ordering::SeqCst);
            });
        }
        let expected: usize = 50 * data.iter().sum::<usize>();
        assert_eq!(total.load(Ordering::SeqCst), expected);
    }

    #[test]
    fn worker_panic_propagates_to_the_dispatcher() {
        let mut pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scatter(&|w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "scatter must re-raise worker panics");
        // The pool stays usable after a panicked dispatch.
        let ok = AtomicUsize::new(0);
        pool.scatter(&|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn chunks_cover_exactly_once() {
        for len in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8] {
                let mut covered = vec![0u8; len];
                for i in 0..parts {
                    for j in chunk(len, parts, i) {
                        covered[j] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "len {len} parts {parts}");
            }
        }
    }

    #[test]
    fn destinations_are_in_range_and_spread() {
        for parts in [1usize, 2, 3, 4, 8] {
            let mut counts = vec![0usize; parts];
            for i in 0..10_000u64 {
                // Feed realistic (already-mixed) hashes.
                let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let d = destination(h, parts);
                assert!(d < parts);
                counts[d] += 1;
            }
            let min = *counts.iter().min().unwrap();
            assert!(
                min * parts * 2 > 10_000,
                "partition skew at parts={parts}: {counts:?}"
            );
        }
    }

    #[test]
    fn pool_drop_joins_workers() {
        let mut pool = WorkerPool::new(2);
        pool.scatter(&|_| {});
        drop(pool); // must not hang
    }
}
