//! Approximate memory accounting (replaces the paper’s gperftools
//! profiling; see DESIGN.md §3).
//!
//! Views report resident bytes from entry counts, key widths, payload
//! sizes and fixed per-entry overheads. Absolute numbers differ from a
//! real allocator profile, but the *ratios between strategies* — which
//! is what Figures 7, 8 and 13 compare — are preserved, since all
//! strategies share the same storage layer.

/// A memory snapshot of a maintenance strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemoryReport {
    /// Approximate resident bytes.
    pub bytes: usize,
    /// Number of materialized views.
    pub views: usize,
    /// Total keys across views.
    pub entries: usize,
}

impl MemoryReport {
    /// Megabytes, for display.
    pub fn mb(&self) -> f64 {
        self.bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Human-readable byte count (`1.5 KiB`, `3.2 MiB`, …).
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn report_mb() {
        let r = MemoryReport {
            bytes: 2 * 1024 * 1024,
            views: 3,
            entries: 100,
        };
        assert!((r.mb() - 2.0).abs() < 1e-9);
    }
}
