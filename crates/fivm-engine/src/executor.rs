//! The F-IVM executor: factorized higher-order IVM (paper §4–§5).
//!
//! An [`IvmEngine`] instantiates a view tree over a concrete ring:
//! it materializes the views chosen by µ (Figure 5), registers a trigger
//! per updatable relation, and propagates deltas along leaf-to-root
//! paths (Figure 4). Deltas are carried as a **product of factors** with
//! pairwise-disjoint schemas; flat deltas are the single-factor case, and
//! factorizable updates (§5) keep their factors separate for as long as
//! possible — sibling views join into the factor they share variables
//! with, and marginalization happens inside a single factor — which is
//! the paper's `Optimize` rewrite (pushing `⊕X` past `⊗`). Factors are
//! multiplied out only when a materialized view must absorb the delta.
//!
//! Indicator projections (Appendix B) are maintained with support
//! counts per Example B.2; an update to `R` is followed by updates to
//! its indicator projections, each propagated along its own path.
//!
//! # The compiled fast path
//!
//! F-IVM's promise is that a single-tuple update costs a handful of
//! hash probes and ring operations per path node, so per-update setup
//! work (cloning step vectors, schemas, and relations; recomputing
//! projection positions) dominates if allowed on the hot path. The
//! probe and lift paths below are representation-uniform over
//! [`fivm_core::Value`]: string key columns arrive as interned
//! `Value::Sym(u32)` symbols (interned at load, fivm-core `schema.rs`),
//! so a string-keyed probe hashes, compares and clones exactly like an
//! integer one — string-heavy workloads take this same fast path at
//! integer speed. At
//! construction time the engine therefore *compiles* each maintenance
//! path into a [`FastPlan`]: per step, the sibling probe positions,
//! secondary-index ids, margin lifting positions, and the final
//! projection onto the node's key order are all precomputed. Applying
//! a flat delta then walks the compiled plan with two reusable scratch
//! buffers, probing sibling views through borrowed [`ProjKey`]s — in
//! the steady state (existing keys changing payload, or deletes
//! matched by later re-inserts) it performs **zero heap allocations**.
//! Payload-transform modes take the general factor-propagation path
//! below, which shares the same stores.
//!
//! # The compiled factored path
//!
//! Factorizable updates (§5) — rank-1 deltas expressed as a product of
//! per-variable vectors, and their rank-r sequences — are compiled the
//! same way. The factorization **shape** of a delta (which variables
//! travel together in one factor; [`fivm_query::FactorShape`]) fully
//! determines the sequence of probe/⊕-pushdown operations the
//! `Optimize` rewrite produces, so the engine compiles one
//! [`FactoredPlan`] per (relation, shape) pair and caches it: a slot
//! program of cross/adopt/join/fold operations over reusable factor
//! buffers, with marginalization **fused into the join that binds the
//! variable** (the push-⊕-into-factors rewrite, resolved to tuple
//! positions at compile time) and store flattening emitted directly in
//! each store's key order via [`Tuple::concat_project`]. The canonical
//! rank-1 shape (every leaf variable its own vector factor) is
//! precompiled at construction; other shapes compile once on first
//! sight and are cached thereafter — repeated rank-1/rank-r updates
//! run with zero plan interpretation and, at steady state, zero heap
//! allocations (tests/zero_alloc_propagation.rs, factored phase).
//! Shapes the compiler cannot express (and factored updates under a
//! payload transform) fall back to the general path below, which
//! remains the semantic reference.
//!
//! # The flat-batch path
//!
//! Flat deltas of **any size** — from one tuple to the 100k-tuple
//! batches of the paper's Figure 12 sweep — take the same compiled
//! plan; there is no batch-size gate. What changes with size is only
//! the per-step duplicate merge that projection onto a node's keys
//! requires, handled by a [`DeltaAccumulator`] that switches regime as
//! the working buffer grows:
//!
//! * ≤ [`FAST_PATH_LINEAR_MERGE`] buffered keys: linear scan-and-merge
//!   (cheapest for single-tuple updates, allocation-free for resident
//!   keys);
//! * up to [`FAST_PATH_HASH_MERGE`] buffered pairs: append now,
//!   sort/merge-adjacent on drain (cache-friendly for mid-size
//!   batches, in-place so still allocation-free after warm-up);
//! * above: a hash scratch table, O(1) per pair regardless of how
//!   skewed the join keys are.
//!
//! Each step applies its view and secondary-index mutations in one
//! pass over the merged buffer (`insert_ref` maintains the indexes
//! incrementally), so a batch never clones `Relation`s, step vectors,
//! or schemas the way the general path does. All buffers — the
//! ping-pong pair, the accumulator, and the support-transition list —
//! are grow-only: after warm-up at a given batch size, repeated
//! batches at that size perform zero heap allocations
//! (tests/zero_alloc_propagation.rs proves both the single-tuple and
//! the batch claim).
//!
//! # Parallel propagation
//!
//! Within one maintenance step, sibling probes are read-only and tuples
//! interact only at the duplicate merge, so batch-scale steps fan out
//! across a persistent worker pool (see [`crate::parallel`]): workers
//! join+lift disjoint chunks of the step's input and route surviving
//! pairs by output-key hash range; each range's owner merges its
//! (disjoint) share through its own [`DeltaAccumulator`]; only the
//! final per-step store merge is single-writer. The fan-out engages
//! when [`IvmEngine::workers`] > 1 **and** the step's input has at
//! least the parallel threshold's tuples — below that, updates take the
//! unchanged sequential path, so single-tuple latency pays exactly one
//! length comparison. Defaults come from `FIVM_WORKERS` /
//! `FIVM_PAR_THRESHOLD`; see [`IvmEngine::set_workers`] and
//! [`IvmEngine::set_parallel_threshold`]. For exact rings the parallel
//! path is bit-identical to the sequential one at every worker count
//! (per-key payloads fold in chunk order either way); floating-point
//! payloads are deterministic for a fixed worker count but may round
//! differently across counts.

pub mod verify;

use crate::parallel::{self, ParRuntime};
use crate::view::{SupportChange, ViewStore};
use fivm_core::{
    Delta, DeltaAccumulator, FxHashMap, Lifting, LiftingMap, ProjKey, Relation, Ring, Schema,
    Tuple, TupleKey,
};
use fivm_query::delta::{delta_steps, path_from, DeltaStep, FactorShape};
use fivm_query::{
    delta_path, materialization, MaterializationPlan, NodeId, NodeKind, QueryDef, RelIndex,
    ViewTree,
};
use std::sync::Arc;

/// Hook rewriting a node's delta payloads before they are stored and
/// propagated — used by the factorized-payload mode (§6.3) to project
/// relational payloads onto each node's own variables.
pub type PayloadTransform<R> = Arc<dyn Fn(NodeId, &Tuple, &R) -> R + Send + Sync>;

/// Hook collapsing child payloads before they enter a parent's payload
/// product (see [`IvmEngine::with_payload_preprojection`]).
pub type PayloadPreprojection<R> = Arc<dyn Fn(&R) -> R + Send + Sync>;

/// Up to this many buffered keys the per-step duplicate merge is a
/// linear scan (cheapest for single-tuple updates; quadratic beyond).
const FAST_PATH_LINEAR_MERGE: usize = 32;

/// Between the linear bound and this working-buffer length the merge
/// defers deduplication to an in-place sort/merge on drain; above it
/// the pairs migrate into a hash scratch table, which stays O(1) per
/// pair even when skewed join keys fan a delta out arbitrarily.
const FAST_PATH_HASH_MERGE: usize = 1024;

/// One sibling join in a compiled maintenance step.
#[derive(Debug)]
struct FastSibling {
    /// The sibling view probed.
    node: NodeId,
    /// True: the delta covers the sibling's full key — primary-map
    /// probe, no new columns. False: partial-key probe through a
    /// secondary index, appending `rest_pos` columns.
    full_key: bool,
    /// Positions (in the current delta tuple) forming the probe key,
    /// in the order the sibling's primary map / index expects.
    probe_pos: Box<[usize]>,
    /// Positions (in the sibling's full key) appended to the delta
    /// tuple; empty for full-key probes.
    rest_pos: Box<[usize]>,
    /// Secondary-index id in the sibling store (partial probes only).
    index_id: usize,
}

/// One compiled maintenance step (one view-tree node on the path).
struct FastStep<R> {
    /// The node whose delta this step computes.
    node: NodeId,
    /// Whether that node is materialized (delta must be merged).
    store: bool,
    /// Sibling joins, in plan order.
    siblings: Vec<FastSibling>,
    /// Non-trivial margin liftings: position of the marginalized
    /// variable in the joined tuple, applied in margin order.
    lifts: Vec<(usize, Lifting<R>)>,
    /// Projection from the joined tuple onto the node's key order
    /// (drops marginalized variables).
    out_pos: Box<[usize]>,
}

/// A fully compiled maintenance path (see the module docs).
struct FastPlan<R> {
    /// The path's entry node (relation leaf or indicator node).
    entry: NodeId,
    /// Whether the entry node itself is materialized.
    entry_stored: bool,
    /// Expected delta schema (the entry node's keys, exact order).
    entry_schema: Schema,
    steps: Vec<FastStep<R>>,
}

/// Fused marginalization (the compiled push-⊕-into-factors rewrite):
/// lift payloads at the given tuple positions, project the tuple onto
/// `out_pos`, and merge duplicates through the step accumulator.
struct Fused<R> {
    /// Non-trivial margin liftings: position of the marginalized
    /// variable in the factor's (joined) tuple, in margin order.
    lifts: Vec<(usize, Lifting<R>)>,
    /// Projection dropping the marginalized positions.
    out_pos: Box<[usize]>,
}

/// One compiled operation of a [`FactoredPlan`] over factor slots.
/// Slots are single-assignment within a plan: every op reads its
/// inputs by reference and overwrites its output slot, so the backing
/// buffers are reused across updates and never alias.
enum FactorOp<R> {
    /// Cross product of two disjoint-schema factors (`out = a ⊗ b`,
    /// schemas concatenate) — factor merging and store flattening.
    Cross { a: usize, b: usize, out: usize },
    /// Copy a sibling view in as a fresh factor: a sibling disjoint
    /// from every delta factor contributes a Cartesian factor, kept
    /// unexpanded until a store forces multiplication.
    Adopt { node: NodeId, out: usize },
    /// Join a factor with a sibling view (compiled probe), optionally
    /// applying the fused margin lifts + projection on the fly — the
    /// `Optimize` rewrite pushes `⊕X` into the single factor that
    /// binds `X`, so marginalization never leaves the factor.
    Join {
        input: usize,
        out: usize,
        sib: FastSibling,
        fused: Option<Fused<R>>,
    },
    /// Margin lifts + projection on a factor that joined no sibling
    /// this step (e.g. a margin variable private to one vector factor).
    Fold {
        input: usize,
        out: usize,
        fused: Fused<R>,
    },
}

/// Flatten-and-merge of the live factors into a node's store; factors
/// are crossed down to at most two slots at compile time, and the
/// final pair lands in the store's key order via
/// [`Tuple::concat_project`] without materializing the full product
/// tuple first.
///
/// Unlike the general path — which switches to the flat form after a
/// mid-path store merge — the compiled path **keeps propagating the
/// factors**: the store must absorb the multiplied-out product (a
/// rank-1 outer product is a `p²` change to the view, unavoidable),
/// but the delta itself stays a pair of vectors, so the *next* step's
/// sibling join is a matrix-vector product instead of a `p²`-tuple
/// flat join. This is precisely §5's "keep factors separate for as
/// long as possible", and what preserves the `O(p² log k)` rank-1
/// bound when every chain matrix is updatable (all internal product
/// views materialized).
struct FactoredStore {
    a: usize,
    b: Option<usize>,
    /// Projection onto the node's key order over the virtual `a ⧺ b`.
    out_pos: Box<[usize]>,
}

/// One compiled maintenance step of a [`FactoredPlan`].
struct FactoredStep<R> {
    /// The node whose delta this step computes.
    node: NodeId,
    /// Slots that must all be non-empty entering the step: an empty
    /// factor means the whole product delta vanished.
    live_in: Box<[usize]>,
    ops: Vec<FactorOp<R>>,
    store: Option<FactoredStore>,
}

/// A maintenance path compiled for one (relation, factorization-shape)
/// pair — see the module docs. Input factors land in slots
/// `0..shape_len`; every other slot is written by an op before any op
/// reads it.
struct FactoredPlan<R> {
    /// The relation's leaf node.
    entry: NodeId,
    /// Number of input factors (the shape's length).
    shape_len: usize,
    /// Total slots the plan addresses (scratch is sized to this).
    n_slots: usize,
    /// Flatten-and-merge of the update into the leaf store, collecting
    /// support transitions for indicator maintenance; present iff the
    /// leaf is materialized. `ops` holds only `Cross` (reading the
    /// input slots non-destructively — they stay live for propagation).
    entry_store: Option<FactoredEntry<R>>,
    steps: Vec<FactoredStep<R>>,
}

/// The entry flatten of a [`FactoredPlan`] (leaf store maintenance).
struct FactoredEntry<R> {
    ops: Vec<FactorOp<R>>,
    a: usize,
    b: Option<usize>,
    /// Projection onto the leaf's key order over the virtual `a ⧺ b`.
    out_pos: Box<[usize]>,
}

/// One relation's cached factored plans, probed linearly by shape.
type ShapeCache<R> = Vec<(FactorShape, Option<Arc<FactoredPlan<R>>>)>;

/// Reusable per-update buffers; capacity warms up and is never
/// released, which is what makes the steady state allocation-free.
struct Scratch<R> {
    /// Ping-pong delta buffers.
    a: Vec<(Tuple, R)>,
    b: Vec<(Tuple, R)>,
    /// Leaf support transitions of the current update.
    transitions: Vec<(Tuple, i8)>,
    /// Indicator delta under construction.
    ind: Vec<(Tuple, R)>,
    /// Size-adaptive per-step duplicate merge (linear / sort-merge /
    /// hash — see the module docs).
    acc: DeltaAccumulator<R>,
    /// Factor slot buffers for the compiled factored path (grow-only,
    /// shared across every cached [`FactoredPlan`]).
    slots: Vec<Vec<(Tuple, R)>>,
}

impl<R: Ring> Default for Scratch<R> {
    fn default() -> Self {
        Scratch {
            a: Vec::new(),
            b: Vec::new(),
            transitions: Vec::new(),
            ind: Vec::new(),
            acc: DeltaAccumulator::with_thresholds(FAST_PATH_LINEAR_MERGE, FAST_PATH_HASH_MERGE),
            slots: Vec::new(),
        }
    }
}

/// Per-indicator compiled metadata.
struct IndicatorPlan<R> {
    /// Projection schema (the indicator node's keys).
    proj: Schema,
    /// Positions of the projection variables in the source relation's
    /// schema.
    positions: Arc<Vec<usize>>,
    /// General-path maintenance steps from the indicator node up.
    steps: Arc<Vec<DeltaStep>>,
    /// Compiled steps, when the path admits them.
    fast: Option<Arc<FastPlan<R>>>,
}

/// The factorized higher-order IVM executor.
pub struct IvmEngine<R: Ring> {
    query: QueryDef,
    tree: ViewTree,
    plan: MaterializationPlan,
    liftings: LiftingMap<R>,
    views: Vec<Option<ViewStore<R>>>,
    /// Precomputed maintenance steps per updatable relation
    /// (`Arc` so propagation borrows them without cloning the steps).
    rel_steps: Vec<Option<Arc<Vec<DeltaStep>>>>,
    /// Compiled fast plans per updatable relation.
    rel_fast: Vec<Option<Arc<FastPlan<R>>>>,
    /// Compiled factored plans per relation, keyed by factorization
    /// shape. A handful of shapes per relation at most, so the probe
    /// is an allocation-free linear scan; `None` caches "this shape
    /// does not compile" so unsupported shapes pay one probe, not a
    /// recompile, per update.
    rel_factored: Vec<ShapeCache<R>>,
    /// Indicator nodes per relation (precomputed: `indicators_of`
    /// allocates, and `apply` is the hot path).
    rel_indicators: Vec<Arc<[NodeId]>>,
    /// Compiled metadata per indicator node.
    ind_plans: FxHashMap<NodeId, IndicatorPlan<R>>,
    /// Support counts per indicator node (Example B.2).
    ind_counts: FxHashMap<NodeId, FxHashMap<Tuple, i64>>,
    payload_transform: Option<PayloadTransform<R>>,
    /// Applied to child payloads *before* they enter a parent's payload
    /// product. In factorized-payload mode no child payload variable
    /// survives the parent's projection, so children collapse to their
    /// totals first — this is what keeps the parent product linear
    /// instead of forming the cross product that the projection would
    /// immediately discard (§6.3).
    payload_preproject: Option<PayloadPreprojection<R>>,
    scratch: Scratch<R>,
    /// Whether flat deltas may take the compiled fast path (disabled by
    /// benchmarks and differential tests to expose the general path).
    fast_path: bool,
    /// Worker/partition count for parallel propagation (1 = sequential).
    workers: usize,
    /// Minimum step-input tuples before a step fans out.
    par_threshold: usize,
    /// Pool + per-worker scratches, created on first parallel step.
    par: Option<ParRuntime<R>>,
    updates_applied: u64,
}

impl<R: Ring> IvmEngine<R> {
    /// Build an engine for `query` over `tree`, materializing per µ for
    /// the given updatable relations.
    pub fn new(
        query: QueryDef,
        tree: ViewTree,
        updatable: &[RelIndex],
        liftings: LiftingMap<R>,
    ) -> Self {
        let mask = updatable.iter().fold(0u64, |m, &r| m | (1u64 << r));
        let mut plan = materialization(&tree, mask);
        // Indicator maintenance derives support transitions from the
        // relation store, so force-store leaves of indicated relations.
        for &r in updatable {
            if !tree.indicators_of(r).is_empty() {
                if let Some(leaf) = tree.leaf_of(r) {
                    plan.store[leaf] = true;
                }
            }
        }
        let rel_steps: Vec<Option<Arc<Vec<DeltaStep>>>> = (0..query.relations.len())
            .map(|r| {
                (mask & (1 << r) != 0)
                    .then(|| delta_path(&tree, r).map(|p| Arc::new(delta_steps(&tree, &p))))
                    .flatten()
            })
            .collect();
        let mut ind_steps = FxHashMap::default();
        let mut ind_counts = FxHashMap::default();
        for (id, n) in tree.nodes.iter().enumerate() {
            if matches!(n.kind, NodeKind::Indicator { .. }) {
                ind_steps.insert(id, Arc::new(delta_steps(&tree, &path_from(&tree, id))));
                ind_counts.insert(id, FxHashMap::default());
            }
        }
        // Every sibling along a registered maintenance path must be
        // materialized. µ (Figure 5) already guarantees this for the
        // relation paths; indicator paths (Appendix B) route updates
        // through views whose own relations may be static, so their
        // siblings are forced here.
        let all_steps = rel_steps
            .iter()
            .flatten()
            .chain(ind_steps.values())
            .flat_map(|steps| steps.iter());
        let mut forced: Vec<NodeId> = Vec::new();
        for step in all_steps {
            forced.extend(&step.siblings);
        }
        for s in forced {
            plan.store[s] = true;
        }
        let views = tree
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| plan.store[id].then(|| ViewStore::new(n.keys.clone())))
            .collect();
        let rel_indicators: Vec<Arc<[NodeId]>> = (0..query.relations.len())
            .map(|r| tree.indicators_of(r).into())
            .collect();
        let mut engine = IvmEngine {
            query,
            tree,
            plan,
            liftings,
            views,
            rel_steps,
            rel_fast: Vec::new(),
            rel_factored: Vec::new(),
            rel_indicators,
            ind_plans: FxHashMap::default(),
            ind_counts,
            payload_transform: None,
            payload_preproject: None,
            scratch: Scratch::default(),
            fast_path: true,
            workers: parallel::env_workers(),
            par_threshold: parallel::env_parallel_threshold(),
            par: None,
            updates_applied: 0,
        };
        engine.compile_fast_plans(&ind_steps);
        engine
    }

    /// Compile every maintenance path whose shape admits the
    /// buffer-based fast path; creates the secondary indexes partial
    /// probes will use, so probing never hits the index-build path at
    /// update time.
    fn compile_fast_plans(&mut self, ind_steps: &FxHashMap<NodeId, Arc<Vec<DeltaStep>>>) {
        self.rel_fast = (0..self.query.relations.len())
            .map(|r| {
                let steps = self.rel_steps[r].clone()?;
                let entry = self.tree.leaf_of(r)?;
                self.compile_path(entry, &steps).map(Arc::new)
            })
            .collect();
        for (&ind, steps) in ind_steps {
            let (proj, rel) = match &self.tree.nodes[ind].kind {
                NodeKind::Indicator { proj, rel } => (proj.clone(), *rel),
                _ => unreachable!("registered as indicator"),
            };
            let positions = self.query.relations[rel]
                .schema
                .positions_of(proj.vars())
                .expect("indicator proj in relation schema");
            let fast = self.compile_path(ind, steps).map(Arc::new);
            self.ind_plans.insert(
                ind,
                IndicatorPlan {
                    proj,
                    positions: Arc::new(positions),
                    steps: steps.clone(),
                    fast,
                },
            );
        }
        // Precompile the canonical rank-1 shape — every leaf variable
        // its own vector factor — per updatable relation, so
        // fig6-style factorizable updates never touch the lazy-compile
        // path; other shapes compile once on first sight (see
        // `factored_plan`).
        self.rel_factored = vec![Vec::new(); self.query.relations.len()];
        for r in 0..self.query.relations.len() {
            if self.rel_steps[r].is_none() {
                continue;
            }
            let Some(leaf) = self.tree.leaf_of(r) else {
                continue;
            };
            let shape = FactorShape::new(
                self.tree.nodes[leaf]
                    .keys
                    .iter()
                    .map(|&v| Schema::new(vec![v]))
                    .collect::<Vec<_>>(),
            );
            let plan = self.compile_factored(r, shape.schemas()).map(Arc::new);
            self.rel_factored[r].push((shape, plan));
        }
        // Debug builds typecheck every plan just compiled against the
        // view tree — a defective plan aborts construction instead of
        // corrupting views at the first update (release builds run the
        // same checks on demand via `verify_plans`).
        #[cfg(debug_assertions)]
        verify::assert_clean(&self.verify_plans(), "engine plan compilation");
    }

    /// Compile one maintenance path, or `None` if its shape is not
    /// fast-path-eligible (schema mismatch along the way).
    fn compile_path(&mut self, entry: NodeId, steps: &Arc<Vec<DeltaStep>>) -> Option<FastPlan<R>> {
        let entry_schema = self.tree.nodes[entry].keys.clone();
        let mut cur = entry_schema.clone();
        let mut compiled = Vec::with_capacity(steps.len());
        for step in steps.iter() {
            let mut siblings = Vec::with_capacity(step.siblings.len());
            for &s in &step.siblings {
                let sib = self.tree.nodes[s].keys.clone();
                let common = cur.intersect(&sib);
                if common.len() == sib.len() {
                    // Full-key probe, in the sibling's column order.
                    let probe_pos = cur.positions_of(sib.vars())?;
                    siblings.push(FastSibling {
                        node: s,
                        full_key: true,
                        probe_pos: probe_pos.into(),
                        rest_pos: Box::from([]),
                        index_id: usize::MAX,
                    });
                } else {
                    // Partial-key probe through a secondary index keyed
                    // on the common variables (in current-delta order).
                    let index_positions = sib.positions_of(common.vars())?;
                    let probe_pos = cur.positions_of(common.vars())?;
                    let rest_vars = sib.minus(&common);
                    let rest_pos = sib.positions_of(rest_vars.vars())?;
                    let index_id = self.views[s]
                        .as_mut()?
                        .ensure_index_on_positions(index_positions);
                    siblings.push(FastSibling {
                        node: s,
                        full_key: false,
                        probe_pos: probe_pos.into(),
                        rest_pos: rest_pos.into(),
                        index_id,
                    });
                    cur = cur.union(&sib);
                }
            }
            let mut lifts = Vec::new();
            for &mv in &step.margin {
                let pos = cur.position(mv)?;
                let lifting = self.liftings.get(mv);
                if !lifting.is_one() {
                    lifts.push((pos, lifting));
                }
            }
            // The step's output is the node's keys: the joined schema
            // minus the margins, reordered. Shape mismatch → give up.
            let node_keys = &self.tree.nodes[step.node].keys;
            if node_keys.len() + step.margin.len() != cur.len() {
                return None;
            }
            let out_pos = cur.positions_of(node_keys.vars())?;
            compiled.push(FastStep {
                node: step.node,
                store: self.plan.store[step.node],
                siblings,
                lifts,
                out_pos: out_pos.into(),
            });
            cur = node_keys.clone();
        }
        Some(FastPlan {
            entry,
            entry_stored: self.plan.store[entry],
            entry_schema,
            steps: compiled,
        })
    }

    /// Compile the maintenance path of `rel` for one factorization
    /// shape (see the module docs), or `None` if the shape does not
    /// partition the leaf schema or the path's geometry defeats the
    /// compiler. Runs the general path's factor algebra **symbolically
    /// over schemas**: the factor list is simulated step by step and
    /// every probe position, cross order, fused margin and store
    /// flatten is resolved to fixed slot indices and tuple positions.
    fn compile_factored(&mut self, rel: RelIndex, shape: &[Schema]) -> Option<FactoredPlan<R>> {
        let steps = self.rel_steps[rel].clone()?;
        let entry = self.tree.leaf_of(rel)?;
        let leaf_keys = self.tree.nodes[entry].keys.clone();
        if !FactorShape::new(shape.to_vec()).partitions(&leaf_keys) {
            return None;
        }
        let mut next_slot = shape.len();
        let alloc_slot = |next_slot: &mut usize| {
            let s = *next_slot;
            *next_slot += 1;
            s
        };
        // The live factor list: (slot, schema), mirrored exactly at
        // runtime by the slot buffers.
        let mut factors: Vec<(usize, Schema)> = shape.iter().cloned().enumerate().collect();

        // Leaf store maintenance (also feeds indicator support
        // transitions): flatten the input factors into leaf-key order.
        // The crossing reads the input slots non-destructively, so the
        // factors stay live for propagation.
        let entry_store = if self.plan.store[entry] {
            let mut ops = Vec::new();
            let (a, b, out_pos) =
                Self::compile_flatten(factors.clone(), &leaf_keys, &mut next_slot, &mut ops)?;
            Some(FactoredEntry { ops, a, b, out_pos })
        } else {
            None
        };

        let mut compiled = Vec::with_capacity(steps.len());
        for step in steps.iter() {
            let live_in: Box<[usize]> = factors.iter().map(|&(s, _)| s).collect();
            let mut ops: Vec<FactorOp<R>> = Vec::new();
            // Index (into `ops`) of the op that produced each live
            // factor this step — margins fuse into a producing `Join`.
            let mut produced: Vec<Option<usize>> = vec![None; factors.len()];

            for &s in &step.siblings {
                let sib_keys = self.tree.nodes[s].keys.clone();
                let sharing: Vec<usize> = factors
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, sch))| !sch.disjoint(&sib_keys))
                    .map(|(i, _)| i)
                    .collect();
                if sharing.is_empty() {
                    // Cartesian contribution: the sibling becomes its
                    // own factor, unexpanded.
                    self.views[s].as_ref()?;
                    let out = alloc_slot(&mut next_slot);
                    ops.push(FactorOp::Adopt { node: s, out });
                    factors.push((out, sib_keys));
                    produced.push(Some(ops.len() - 1));
                    continue;
                }
                // Merge the sharing factors (disjoint schemas ⇒ cross
                // products), left to right.
                let (mut cur_slot, mut cur_schema) = factors[sharing[0]].clone();
                for &i in &sharing[1..] {
                    let (os, osch) = factors[i].clone();
                    let out = alloc_slot(&mut next_slot);
                    ops.push(FactorOp::Cross {
                        a: cur_slot,
                        b: os,
                        out,
                    });
                    cur_schema = cur_schema.union(&osch);
                    cur_slot = out;
                }
                for &i in sharing.iter().rev() {
                    factors.remove(i);
                    produced.remove(i);
                }
                // Compile the probe exactly like the flat path.
                let common = cur_schema.intersect(&sib_keys);
                let sib = if common.len() == sib_keys.len() {
                    let probe_pos = cur_schema.positions_of(sib_keys.vars())?;
                    FastSibling {
                        node: s,
                        full_key: true,
                        probe_pos: probe_pos.into(),
                        rest_pos: Box::from([]),
                        index_id: usize::MAX,
                    }
                } else {
                    let index_positions = sib_keys.positions_of(common.vars())?;
                    let probe_pos = cur_schema.positions_of(common.vars())?;
                    let rest_vars = sib_keys.minus(&common);
                    let rest_pos = sib_keys.positions_of(rest_vars.vars())?;
                    let index_id = self.views[s]
                        .as_mut()?
                        .ensure_index_on_positions(index_positions);
                    cur_schema = cur_schema.union(&sib_keys);
                    FastSibling {
                        node: s,
                        full_key: false,
                        probe_pos: probe_pos.into(),
                        rest_pos: rest_pos.into(),
                        index_id,
                    }
                };
                let out = alloc_slot(&mut next_slot);
                ops.push(FactorOp::Join {
                    input: cur_slot,
                    out,
                    sib,
                    fused: None,
                });
                factors.push((out, cur_schema));
                produced.push(Some(ops.len() - 1));
            }

            // Margins, grouped by the single factor binding each
            // variable; fused into that factor's producing join when
            // there is one (the push-⊕ rewrite), a standalone fold
            // otherwise.
            let mut margin_of: Vec<Vec<fivm_core::VarId>> = vec![Vec::new(); factors.len()];
            for &mv in &step.margin {
                let idx = factors.iter().position(|(_, sch)| sch.contains(mv))?;
                margin_of[idx].push(mv);
            }
            for (idx, mvs) in margin_of.iter().enumerate() {
                if mvs.is_empty() {
                    continue;
                }
                let (slot, schema) = factors[idx].clone();
                let mut lifts = Vec::new();
                for &mv in mvs {
                    let pos = schema.position(mv)?;
                    let lifting = self.liftings.get(mv);
                    if !lifting.is_one() {
                        lifts.push((pos, lifting));
                    }
                }
                let mut out_schema = schema.clone();
                for &mv in mvs {
                    out_schema = out_schema.without(mv);
                }
                let out_pos: Box<[usize]> = schema.positions_of(out_schema.vars())?.into();
                let fused = Fused { lifts, out_pos };
                let mut fused = Some(fused);
                if let Some(op_idx) = produced[idx] {
                    if let FactorOp::Join { fused: f, .. } = &mut ops[op_idx] {
                        if f.is_none() {
                            *f = fused.take();
                            factors[idx].1 = out_schema.clone();
                        }
                    }
                }
                if let Some(fused) = fused {
                    let out = alloc_slot(&mut next_slot);
                    ops.push(FactorOp::Fold {
                        input: slot,
                        out,
                        fused,
                    });
                    factors[idx] = (out, out_schema);
                    produced[idx] = Some(ops.len() - 1);
                }
            }

            // Sanity: the live schemas must partition the node's keys.
            let node_keys = self.tree.nodes[step.node].keys.clone();
            {
                let mut union = Schema::empty();
                for (_, sch) in &factors {
                    if !union.disjoint(sch) {
                        return None;
                    }
                    union = union.union(sch);
                }
                if union.len() != node_keys.len() || !union.subset_of(&node_keys) {
                    return None;
                }
            }

            let store = if self.plan.store[step.node] {
                let (a, b, out_pos) =
                    Self::compile_flatten(factors.clone(), &node_keys, &mut next_slot, &mut ops)?;
                Some(FactoredStore { a, b, out_pos })
            } else {
                None
            };
            compiled.push(FactoredStep {
                node: step.node,
                live_in,
                ops,
                store,
            });
        }
        Some(FactoredPlan {
            entry,
            shape_len: shape.len(),
            n_slots: next_slot,
            entry_store,
            steps: compiled,
        })
    }

    /// Reduce a live factor list to at most two slots by cross
    /// products and compute the projection of their virtual
    /// concatenation onto `keys` — the compile-time form of the
    /// general path's `flatten_to`.
    fn compile_flatten(
        mut live: Vec<(usize, Schema)>,
        keys: &Schema,
        next_slot: &mut usize,
        ops: &mut Vec<FactorOp<R>>,
    ) -> Option<(usize, Option<usize>, Box<[usize]>)> {
        while live.len() > 2 {
            let (sa, xa) = live.remove(0);
            let (sb, xb) = live.remove(0);
            let out = *next_slot;
            *next_slot += 1;
            ops.push(FactorOp::Cross { a: sa, b: sb, out });
            live.insert(0, (out, xa.union(&xb)));
        }
        match live.as_slice() {
            [(a, sa)] => Some((*a, None, sa.positions_of(keys.vars())?.into())),
            [(a, sa), (b, sb)] => {
                let cat = sa.union(sb);
                Some((*a, Some(*b), cat.positions_of(keys.vars())?.into()))
            }
            _ => None,
        }
    }

    /// Install a payload transform (factorized-payload mode, §6.3).
    /// Must be set before any data is loaded; incompatible with factored
    /// (multi-factor) updates.
    pub fn with_payload_transform(mut self, t: PayloadTransform<R>) -> Self {
        assert_eq!(self.updates_applied, 0, "set the transform before updating");
        self.payload_transform = Some(t);
        self
    }

    /// Install a child-payload pre-projection (see the field docs); only
    /// sound together with a payload transform that discards all child
    /// payload variables, as the factorized mode does.
    pub fn with_payload_preprojection(mut self, f: PayloadPreprojection<R>) -> Self {
        assert_eq!(
            self.updates_applied, 0,
            "set the projection before updating"
        );
        self.payload_preproject = Some(f);
        self
    }

    /// The view tree this engine executes.
    pub fn tree(&self) -> &ViewTree {
        &self.tree
    }

    /// The query.
    pub fn query(&self) -> &QueryDef {
        &self.query
    }

    /// The materialization plan in effect.
    pub fn plan(&self) -> &MaterializationPlan {
        &self.plan
    }

    /// Bulk-load an initial database: evaluates all views bottom-up
    /// (applying the payload transform) and fills the materialized ones;
    /// initializes indicator support counts.
    pub fn load(&mut self, db: &crate::eval::Database<R>) {
        let mut rels: Vec<Option<Relation<R>>> = vec![None; self.tree.nodes.len()];
        // `load` replaces all state: support counts must restart from
        // the loaded database, not accumulate onto prior contents.
        for counts in self.ind_counts.values_mut() {
            counts.clear();
        }
        // leaves and indicators first
        for (id, n) in self.tree.nodes.iter().enumerate() {
            match &n.kind {
                NodeKind::Relation(ri) => rels[id] = Some(db.relations[*ri].clone()),
                NodeKind::Indicator { rel, proj } => {
                    rels[id] = Some(crate::eval::indicator_relation(&db.relations[*rel], proj));
                    // initialize support counts
                    let positions = db.relations[*rel]
                        .schema()
                        .positions_of(proj.vars())
                        .expect("indicator proj in relation schema");
                    let counts = self.ind_counts.get_mut(&id).expect("registered");
                    for (t, _) in db.relations[*rel].iter() {
                        *counts.entry(t.project(&positions)).or_insert(0) += 1;
                    }
                }
                NodeKind::Inner { .. } => {}
            }
        }
        for (id, n) in self.tree.nodes.iter().enumerate() {
            if let NodeKind::Inner { margin, .. } = &n.kind {
                let pre = |r: &Relation<R>| -> Relation<R> {
                    match &self.payload_preproject {
                        Some(pp) => r.map_payloads(|_, p| pp(p)),
                        None => r.clone(),
                    }
                };
                let mut acc = match n.children.first() {
                    None => Relation::unit(),
                    Some(&c) => pre(rels[c].as_ref().expect("children before parents")),
                };
                for &c in &n.children[1..] {
                    acc = acc.join(&pre(rels[c].as_ref().expect("children before parents")));
                }
                let margins: Vec<(u32, Lifting<R>)> =
                    margin.iter().map(|&v| (v, self.liftings.get(v))).collect();
                let mut out = acc.marginalize_many(&margins).reorder(&n.keys);
                if let Some(hook) = &self.payload_transform {
                    out = out.map_payloads(|t, p| hook(id, t, p));
                }
                rels[id] = Some(out);
            }
        }
        for (id, rel) in rels.into_iter().enumerate() {
            if let (Some(store), Some(rel)) = (&mut self.views[id], rel) {
                // In-place reload: keeps the store's capacity and its
                // secondary indexes (so the compiled plans' index ids
                // stay valid — no recompile), rebuilds index contents,
                // and resets the high-water live-bucket sweep counters
                // from the loaded data. A reloaded engine must not
                // inherit the previous lifetime's sweep budgets.
                store.reload(&rel);
            }
        }
    }

    /// Restore materialized views from checkpointed snapshots — the
    /// recovery counterpart of [`IvmEngine::load`]. Where `load`
    /// derives every view bottom-up from base relations, this trusts
    /// the snapshots: each `(node, relation)` pair is reloaded in place
    /// (keeping secondary-index ids, so compiled flat/factored plans
    /// stay valid without a recompile), indicator support counts are
    /// rebuilt from the restored leaf stores, and the update counter is
    /// set to the checkpoint's logical position so subsequent log
    /// replay continues the original numbering.
    ///
    /// `snapshots` must cover every materialized node of this engine
    /// (checkpoints always snapshot all of them); panics otherwise,
    /// since a partial restore would silently mix checkpoint state with
    /// pre-restore state.
    pub fn restore_views(&mut self, snapshots: &[(NodeId, Relation<R>)], updates_applied: u64) {
        let mut restored = vec![false; self.views.len()];
        for (node, rel) in snapshots {
            let store = self.views[*node]
                .as_mut()
                .expect("checkpointed node must be materialized in this engine");
            store.reload(rel);
            restored[*node] = true;
        }
        for (id, v) in self.views.iter().enumerate() {
            assert!(
                v.is_none() || restored[id],
                "restore_views: materialized node {id} missing from the checkpoint"
            );
        }
        self.rebuild_indicator_counts();
        self.updates_applied = updates_applied;
    }

    /// Recompute indicator support counts from the (restored) leaf
    /// stores of the indicated relations. Mirrors the count
    /// initialization in [`IvmEngine::load`]: a leaf store holds one
    /// entry per distinct live tuple, so each contributes `+1` to its
    /// projection's count.
    fn rebuild_indicator_counts(&mut self) {
        let mut rebuilt: Vec<(NodeId, FxHashMap<Tuple, i64>)> = Vec::new();
        for (id, n) in self.tree.nodes.iter().enumerate() {
            if let NodeKind::Indicator { rel, proj } = &n.kind {
                let leaf = self
                    .tree
                    .nodes
                    .iter()
                    .position(|m| matches!(&m.kind, NodeKind::Relation(ri) if ri == rel))
                    .expect("indicated relation has a leaf node");
                let store = self.views[leaf]
                    .as_ref()
                    .expect("indicated relation leaves are force-stored");
                let positions = store
                    .schema()
                    .positions_of(proj.vars())
                    .expect("indicator proj in relation schema");
                let mut counts: FxHashMap<Tuple, i64> = FxHashMap::default();
                for (t, _) in store.iter() {
                    *counts.entry(t.project(&positions)).or_insert(0) += 1;
                }
                rebuilt.push((id, counts));
            }
        }
        for (id, counts) in rebuilt {
            *self.ind_counts.get_mut(&id).expect("registered") = counts;
        }
    }

    /// Node ids of all materialized views, in tree order (checkpoints
    /// iterate these).
    pub fn materialized_nodes(&self) -> Vec<NodeId> {
        self.views
            .iter()
            .enumerate()
            .filter_map(|(id, v)| v.as_ref().map(|_| id))
            .collect()
    }

    /// Content-mutation version of a node's view store, if
    /// materialized. Monotonic; incremental checkpoints skip views
    /// whose version is unchanged since the last checkpoint.
    pub fn view_version(&self, node: NodeId) -> Option<u64> {
        self.views[node].as_ref().map(ViewStore::version)
    }

    /// Borrow a node's view store, if materialized. The serving layer's
    /// snapshot publisher clones stores through this, copy-on-write
    /// keyed on [`ViewStore::version`].
    pub fn view_store(&self, node: NodeId) -> Option<&ViewStore<R>> {
        self.views.get(node)?.as_ref()
    }

    /// Number of view-tree nodes (the index space of
    /// [`IvmEngine::view_store`] / [`IvmEngine::view_version`]).
    pub fn node_count(&self) -> usize {
        self.views.len()
    }

    /// Enable or disable output-delta capture on a node's store (the
    /// subscription layer's feed). Returns `false` if the node is not
    /// materialized. While enabled, every applied `(key, payload)` pair
    /// is recorded until [`IvmEngine::drain_changes`] collects them.
    pub fn set_change_capture(&mut self, node: NodeId, on: bool) -> bool {
        match self.views.get_mut(node).and_then(Option::as_mut) {
            Some(store) => {
                store.set_capture(on);
                true
            }
            None => false,
        }
    }

    /// Move a node's captured change pairs into `out` (appending;
    /// uncoalesced — callers sum payloads per key and drop zeros).
    pub fn drain_changes(&mut self, node: NodeId, out: &mut Vec<(Tuple, R)>) {
        if let Some(store) = self.views.get_mut(node).and_then(Option::as_mut) {
            store.drain_captured(out);
        }
    }

    /// Apply an update to `rel` (paper §4's IVM trigger): maintains the
    /// leaf store, propagates the delta leaf-to-root, then maintains and
    /// propagates any indicator projections of `rel`.
    pub fn apply(&mut self, rel: RelIndex, delta: &Delta<R>) {
        self.updates_applied += 1;
        assert!(
            self.rel_steps[rel].is_some(),
            "relation {rel} is not updatable in this engine"
        );
        if self.fast_path && self.payload_transform.is_none() && self.payload_preproject.is_none() {
            match delta {
                Delta::Flat(r) => {
                    if let Some(fast) = &self.rel_fast[rel] {
                        if *r.schema() == fast.entry_schema {
                            let fast = fast.clone();
                            self.apply_fast(rel, r, &fast);
                            return;
                        }
                    }
                }
                Delta::Factored(fs) => {
                    if let Some(plan) = self.factored_plan(rel, fs) {
                        self.apply_factored(rel, fs, &plan);
                        return;
                    }
                }
            }
        }
        self.apply_general(rel, delta);
    }

    /// The cached compiled plan for this delta's factorization shape,
    /// compiling it on first sight. The cache probe is an
    /// allocation-free linear scan over the handful of shapes a
    /// relation ever sees; a shape that fails to compile is cached as
    /// `None` so it routes to the general path at probe cost.
    fn factored_plan(
        &mut self,
        rel: RelIndex,
        factors: &[Relation<R>],
    ) -> Option<Arc<FactoredPlan<R>>> {
        if let Some((_, plan)) = self.rel_factored[rel]
            .iter()
            .find(|(shape, _)| shape.matches(factors))
        {
            return plan.clone();
        }
        let shape = FactorShape::of(factors);
        let plan = self.compile_factored(rel, shape.schemas()).map(Arc::new);
        #[cfg(debug_assertions)]
        if let Some(p) = &plan {
            let findings = fivm_check::plan_ir::verify_factored_plan(
                &self.plan_ctx(),
                &verify::factored_plan_ir(&shape, p),
            );
            verify::assert_clean(&findings, "lazily compiled factored plan");
        }
        self.rel_factored[rel].push((shape, plan.clone()));
        plan
    }

    /// Enable or disable the compiled fast path. Disabling routes every
    /// update through the general factor-propagation path — the
    /// before/after baseline for benchmarks and the foil for
    /// fast-vs-general differential tests. Both paths maintain the same
    /// stores, so the switch can be flipped mid-stream.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Set the worker/partition count for parallel propagation. `1`
    /// (the default when `FIVM_WORKERS` is unset) keeps every update on
    /// the sequential path; higher counts fan batch-scale steps out
    /// across a persistent pool (threads are spawned lazily, on the
    /// first step that crosses the parallel threshold). Both paths
    /// maintain the same stores, so the count can change mid-stream.
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        if workers != self.workers {
            self.workers = workers;
            // Partition count changed: rebuild lazily at the new width.
            self.par = None;
        }
    }

    /// The configured worker/partition count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Set the minimum step-input size (in tuples) for the parallel
    /// fan-out; smaller steps take the sequential path. Exposed so
    /// tests and benchmarks can force parallelism onto small batches.
    pub fn set_parallel_threshold(&mut self, tuples: usize) {
        self.par_threshold = tuples.max(1);
    }

    /// Number of factorization shapes cached for `rel`'s compiled
    /// factored path (compiled or cached-as-uncompilable) — a
    /// diagnostic for tests: a steady stream of same-shape rank-1
    /// updates must not grow this.
    pub fn factored_shapes_cached(&self, rel: RelIndex) -> usize {
        self.rel_factored.get(rel).map_or(0, Vec::len)
    }

    /// Whether the canonical rank-1 shape (every leaf variable its own
    /// vector factor) compiled for `rel` — precompiled at construction.
    pub fn has_rank1_plan(&self, rel: RelIndex) -> bool {
        let Some(leaf) = self.tree.leaf_of(rel) else {
            return false;
        };
        let n = self.tree.nodes[leaf].keys.len();
        self.rel_factored.get(rel).is_some_and(|shapes| {
            shapes
                .iter()
                .any(|(s, plan)| s.len() == n && plan.is_some())
        })
    }

    /// Worst-case probe-chain length across all materialized views'
    /// primary maps and secondary indexes — a table-health diagnostic
    /// (the retain-compaction and sweep policies keep it bounded under
    /// churn; stress tests assert on it).
    pub fn max_probe_run(&self) -> usize {
        self.views
            .iter()
            .flatten()
            .map(ViewStore::max_probe_run)
            .max()
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Compiled fast path
    // ------------------------------------------------------------------

    /// Apply a flat delta of any size through the compiled plan.
    /// Steady-state allocation-free: see the module docs.
    fn apply_fast(&mut self, rel: RelIndex, delta: &Relation<R>, fast: &FastPlan<R>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.transitions.clear();

        let indicators = self.rel_indicators[rel].clone();
        if fast.entry_stored {
            let store = self.views[fast.entry].as_mut().expect("entry stored");
            store.merge_into(delta, &mut scratch.transitions);
        }

        scratch.a.clear();
        scratch
            .a
            .extend(delta.iter().map(|(t, p)| (t.clone(), p.clone())));
        self.run_fast_steps(fast, &mut scratch);
        self.run_indicators(&indicators, &mut scratch);
        self.scratch = scratch;
    }

    /// Maintain and propagate the indicator projections of a relation
    /// from the leaf support transitions in `scratch.transitions`
    /// (Appendix B, sequenced after the relation's own delta) — shared
    /// by the compiled flat and factored paths.
    fn run_indicators(&mut self, indicators: &Arc<[NodeId]>, scratch: &mut Scratch<R>) {
        for &ind in indicators.iter() {
            let plan = &self.ind_plans[&ind];
            let positions = plan.positions.clone();
            let fast_ind = plan.fast.clone();
            let general_steps = plan.steps.clone();
            let proj = plan.proj.clone();
            self.indicator_delta_into(ind, &positions, scratch);
            if scratch.ind.is_empty() {
                continue;
            }
            if let Some(store) = &mut self.views[ind] {
                for (t, p) in &scratch.ind {
                    store.insert_ref(t, p.clone());
                }
            }
            match &fast_ind {
                Some(f) => {
                    scratch.a.clear();
                    scratch.a.append(&mut scratch.ind);
                    self.run_fast_steps(f, scratch);
                }
                None => {
                    let delta_ind = Relation::from_pairs(proj, scratch.ind.drain(..));
                    self.propagate(&general_steps, vec![delta_ind]);
                }
            }
        }
    }

    /// Walk compiled steps over the ping-pong buffers, fanning
    /// batch-scale steps across the worker pool (module docs).
    fn run_fast_steps(&mut self, plan: &FastPlan<R>, scratch: &mut Scratch<R>) {
        for step in &plan.steps {
            if scratch.a.is_empty() {
                return; // delta vanished
            }
            if self.workers > 1 && scratch.a.len() >= self.par_threshold {
                self.parallel_step(step, scratch);
            } else {
                self.sequential_step(step, scratch);
            }
            if scratch.a.is_empty() {
                return;
            }
            // The per-step store merge stays single-writer on both
            // paths.
            if step.store {
                if let Some(store) = &mut self.views[step.node] {
                    // Pre-size for batch-scale deltas — but not when the
                    // store already dwarfs the delta (mostly payload
                    // updates then; a blanket reserve would force a
                    // pointless rehash-and-double of a large table).
                    if scratch.a.len() > FAST_PATH_HASH_MERGE && store.len() < scratch.a.len() * 8 {
                        store.reserve(scratch.a.len());
                    }
                    for (t, p) in &scratch.a {
                        store.insert_ref(t, p.clone());
                    }
                }
            }
        }
    }

    /// One compiled step, sequentially: sibling joins over the
    /// ping-pong buffers, then lift/project/merge. Leaves the step's
    /// merged delta in `scratch.a`.
    fn sequential_step(&mut self, step: &FastStep<R>, scratch: &mut Scratch<R>) {
        // Sibling joins.
        for sib in &step.siblings {
            let store = self.views[sib.node]
                .as_ref()
                .unwrap_or_else(|| panic!("sibling view {} not materialized", sib.node));
            scratch.b.clear();
            if sib.full_key {
                for (t, p) in scratch.a.drain(..) {
                    let probe = ProjKey::new(&t, &sib.probe_pos);
                    if let Some(sp) = store.get(&probe) {
                        let prod = p.mul(sp);
                        if !prod.is_zero() {
                            scratch.b.push((t, prod));
                        }
                    }
                }
            } else {
                for (t, p) in scratch.a.drain(..) {
                    let probe = ProjKey::new(&t, &sib.probe_pos);
                    for full in store.probe(sib.index_id, &probe) {
                        let sp = store.get(full).expect("indexed keys are live");
                        let prod = p.mul(sp);
                        if !prod.is_zero() {
                            scratch
                                .b
                                .push((t.concat_projected(full, &sib.rest_pos), prod));
                        }
                    }
                }
            }
            std::mem::swap(&mut scratch.a, &mut scratch.b);
            if scratch.a.is_empty() {
                return;
            }
        }
        // Margins (lift payloads), then project to the node's keys,
        // merging duplicates through the size-adaptive accumulator
        // (linear scan / sort-merge / hash scratch — module docs).
        debug_assert!(scratch.acc.is_empty());
        for (t, p) in scratch.a.drain(..) {
            let mut p = p;
            for (pos, lifting) in &step.lifts {
                p = p.mul(&lifting.lift(t.get(*pos)));
            }
            if p.is_zero() {
                continue;
            }
            scratch.acc.push(&ProjKey::new(&t, &step.out_pos), p);
        }
        scratch.b.clear();
        scratch.acc.drain_into(&mut scratch.b);
        std::mem::swap(&mut scratch.a, &mut scratch.b);
    }

    /// One compiled step, fanned out across the worker pool (see the
    /// module docs and [`crate::parallel`]): route phase (each worker
    /// joins+lifts a contiguous chunk of `scratch.a` against the
    /// shared read-only stores and routes output pairs by key-hash
    /// range), merge phase (each worker folds its own range's pairs —
    /// disjoint from every other range — through its own accumulator),
    /// then a sequential gather of the runs into `scratch.a`.
    fn parallel_step(&mut self, step: &FastStep<R>, scratch: &mut Scratch<R>) {
        if self.par.is_none() {
            self.par = Some(ParRuntime::new(
                self.workers,
                FAST_PATH_LINEAR_MERGE,
                FAST_PATH_HASH_MERGE,
            ));
        }
        // Split the runtime's fields: the pool dispatches by `&mut`
        // (serialized dispatch is what makes its lifetime erasure
        // sound), while the closures share the scratches/merges and
        // the views immutably.
        let par = self.par.as_mut().expect("just created");
        let ParRuntime {
            pool,
            scratches,
            merges,
        } = par;
        let views = &self.views;
        let input = &scratch.a;
        let parts = pool.workers();

        // Route phase. The worker's first stage reads its chunk
        // *borrowed* — tuples and payloads are cloned only once a pair
        // survives its first probe (or, with no siblings, reaches the
        // route buffer), not upfront.
        pool.scatter(&|w| {
            let range = parallel::chunk(input.len(), parts, w);
            let chunk = &input[range];
            let mut ws = scratches[w].lock().expect("worker scratch poisoned");
            let ws = &mut *ws;
            ws.a.clear();
            // `owned` = the current delta lives in ws.a; before the
            // first sibling it is still the borrowed chunk.
            let mut owned = false;
            for sib in &step.siblings {
                let store = views[sib.node]
                    .as_ref()
                    .unwrap_or_else(|| panic!("sibling view {} not materialized", sib.node));
                ws.b.clear();
                if sib.full_key {
                    if owned {
                        for (t, p) in ws.a.drain(..) {
                            let probe = ProjKey::new(&t, &sib.probe_pos);
                            if let Some(sp) = store.get(&probe) {
                                let prod = p.mul(sp);
                                if !prod.is_zero() {
                                    ws.b.push((t, prod));
                                }
                            }
                        }
                    } else {
                        for (t, p) in chunk {
                            let probe = ProjKey::new(t, &sib.probe_pos);
                            if let Some(sp) = store.get(&probe) {
                                let prod = p.mul(sp);
                                if !prod.is_zero() {
                                    ws.b.push((t.clone(), prod));
                                }
                            }
                        }
                    }
                } else {
                    // Partial-key probes build fresh (concatenated)
                    // tuples either way; the borrowed stage differs
                    // only in how the source pair is held.
                    if owned {
                        for (t, p) in ws.a.drain(..) {
                            let probe = ProjKey::new(&t, &sib.probe_pos);
                            for full in store.probe(sib.index_id, &probe) {
                                let sp = store.get(full).expect("indexed keys are live");
                                let prod = p.mul(sp);
                                if !prod.is_zero() {
                                    ws.b.push((t.concat_projected(full, &sib.rest_pos), prod));
                                }
                            }
                        }
                    } else {
                        for (t, p) in chunk {
                            let probe = ProjKey::new(t, &sib.probe_pos);
                            for full in store.probe(sib.index_id, &probe) {
                                let sp = store.get(full).expect("indexed keys are live");
                                let prod = p.mul(sp);
                                if !prod.is_zero() {
                                    ws.b.push((t.concat_projected(full, &sib.rest_pos), prod));
                                }
                            }
                        }
                    }
                }
                std::mem::swap(&mut ws.a, &mut ws.b);
                owned = true;
                if ws.a.is_empty() {
                    break;
                }
            }
            let route = |ws: &mut crate::parallel::WorkerScratch<R>, t: &Tuple, p: R| {
                let mut p = p;
                for (pos, lifting) in &step.lifts {
                    p = p.mul(&lifting.lift(t.get(*pos)));
                }
                if p.is_zero() {
                    return;
                }
                let key = ProjKey::new(t, &step.out_pos);
                let d = parallel::destination(key.key_hash(), parts);
                ws.route[d].push((key.materialize(), p));
            };
            if owned {
                let mut pairs = std::mem::take(&mut ws.a);
                for (t, p) in pairs.drain(..) {
                    route(ws, &t, p);
                }
                ws.a = pairs; // return the warmed buffer
            } else {
                for (t, p) in chunk {
                    route(ws, t, p.clone());
                }
            }
        });

        // Merge phase: destination `d` owns hash range `d`. Collection
        // staggers lock order (start at scratch `d`, wrap) and holds
        // each scratch lock only for a buffer swap; the fold then runs
        // lock-free in worker order (= chunk order, so per-key payload
        // folds replay the sequential order). The runs are key-disjoint
        // because routing is a function of the key hash.
        pool.scatter(&|d| {
            let mut slot = merges[d].lock().expect("merge slot poisoned");
            let slot = &mut *slot;
            debug_assert!(slot.acc.is_empty() && slot.run.is_empty());
            for k in 0..parts {
                let w = (d + k) % parts;
                let mut ws = scratches[w].lock().expect("worker scratch poisoned");
                std::mem::swap(&mut ws.route[d], &mut slot.pending[w]);
            }
            for w in 0..parts {
                for (t, p) in slot.pending[w].drain(..) {
                    slot.acc.push(&t, p);
                }
            }
            slot.acc.drain_into(&mut slot.run);
        });

        // Gather the disjoint runs (buffers retain their capacity).
        scratch.b.clear();
        for slot in merges.iter().take(parts) {
            let mut slot = slot.lock().expect("merge slot poisoned");
            scratch.b.append(&mut slot.run);
        }
        std::mem::swap(&mut scratch.a, &mut scratch.b);
    }

    // ------------------------------------------------------------------
    // Compiled factored path
    // ------------------------------------------------------------------

    /// Apply a factored delta through its compiled plan (module docs):
    /// copy the input factors into their slots, maintain the leaf
    /// store, run the slot program, then the indicator projections.
    /// Steady-state allocation-free for factor/key arities within the
    /// inline-tuple width, like the flat path.
    fn apply_factored(&mut self, rel: RelIndex, factors: &[Relation<R>], plan: &FactoredPlan<R>) {
        debug_assert_eq!(factors.len(), plan.shape_len);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.transitions.clear();
        if scratch.slots.len() < plan.n_slots {
            scratch.slots.resize_with(plan.n_slots, Vec::new);
        }
        for (i, f) in factors.iter().enumerate() {
            let mut buf = std::mem::take(&mut scratch.slots[i]);
            buf.clear();
            buf.extend(f.iter().map(|(t, p)| (t.clone(), p.clone())));
            scratch.slots[i] = buf;
        }

        let indicators = self.rel_indicators[rel].clone();
        if let Some(es) = &plan.entry_store {
            for op in &es.ops {
                self.run_factor_op(op, &mut scratch);
            }
            let store = self.views[plan.entry].as_mut().expect("entry stored");
            let Scratch {
                slots, transitions, ..
            } = &mut scratch;
            let mut merge =
                |key: Tuple, p: R, store: &mut ViewStore<R>| match store.insert_ref(&key, p) {
                    SupportChange::Appeared => transitions.push((key, 1)),
                    SupportChange::Disappeared => transitions.push((key, -1)),
                    SupportChange::Unchanged => {}
                };
            match es.b {
                None => {
                    for (t, p) in &slots[es.a] {
                        merge(t.project(&es.out_pos), p.clone(), store);
                    }
                }
                Some(b) => {
                    for (ta, pa) in &slots[es.a] {
                        for (tb, pb) in &slots[b] {
                            let p = pa.mul(pb);
                            if !p.is_zero() {
                                merge(ta.concat_project(tb, &es.out_pos), p, store);
                            }
                        }
                    }
                }
            }
        }

        self.run_factored_steps(plan, &mut scratch);
        self.run_indicators(&indicators, &mut scratch);
        self.scratch = scratch;
    }

    /// Walk the compiled factored steps over the slot buffers.
    fn run_factored_steps(&mut self, plan: &FactoredPlan<R>, scratch: &mut Scratch<R>) {
        for step in &plan.steps {
            if step.live_in.iter().any(|&s| scratch.slots[s].is_empty()) {
                return; // an empty factor ⇒ the product delta vanished
            }
            for op in &step.ops {
                self.run_factor_op(op, scratch);
            }
            if let Some(st) = &step.store {
                let store = self.views[step.node].as_mut().expect("stored node");
                match st.b {
                    None => {
                        for (t, p) in &scratch.slots[st.a] {
                            store.insert_ref(&t.project(&st.out_pos), p.clone());
                        }
                    }
                    Some(b) => {
                        for (ta, pa) in &scratch.slots[st.a] {
                            for (tb, pb) in &scratch.slots[b] {
                                let p = pa.mul(pb);
                                if !p.is_zero() {
                                    store.insert_ref(&ta.concat_project(tb, &st.out_pos), p);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Execute one slot op (see [`FactorOp`]). Inputs are read by
    /// reference; the output buffer is taken, cleared, filled and put
    /// back, so warmed capacity survives across updates.
    fn run_factor_op(&mut self, op: &FactorOp<R>, scratch: &mut Scratch<R>) {
        match op {
            FactorOp::Cross { a, b, out } => {
                let mut buf = std::mem::take(&mut scratch.slots[*out]);
                buf.clear();
                for (ta, pa) in &scratch.slots[*a] {
                    for (tb, pb) in &scratch.slots[*b] {
                        let p = pa.mul(pb);
                        if !p.is_zero() {
                            buf.push((ta.concat(tb), p));
                        }
                    }
                }
                scratch.slots[*out] = buf;
            }
            FactorOp::Adopt { node, out } => {
                let store = self.views[*node]
                    .as_ref()
                    .unwrap_or_else(|| panic!("sibling view {node} not materialized"));
                let mut buf = std::mem::take(&mut scratch.slots[*out]);
                buf.clear();
                buf.extend(store.iter().map(|(t, p)| (t.clone(), p.clone())));
                scratch.slots[*out] = buf;
            }
            FactorOp::Join {
                input,
                out,
                sib,
                fused,
            } => {
                let store = self.views[sib.node]
                    .as_ref()
                    .unwrap_or_else(|| panic!("sibling view {} not materialized", sib.node));
                let mut buf = std::mem::take(&mut scratch.slots[*out]);
                buf.clear();
                let Scratch { slots, acc, .. } = &mut *scratch;
                let input_buf = &slots[*input];
                match fused {
                    None => {
                        if sib.full_key {
                            for (t, p) in input_buf {
                                let probe = ProjKey::new(t, &sib.probe_pos);
                                if let Some(sp) = store.get(&probe) {
                                    let prod = p.mul(sp);
                                    if !prod.is_zero() {
                                        buf.push((t.clone(), prod));
                                    }
                                }
                            }
                        } else {
                            for (t, p) in input_buf {
                                let probe = ProjKey::new(t, &sib.probe_pos);
                                for full in store.probe(sib.index_id, &probe) {
                                    let sp = store.get(full).expect("indexed keys are live");
                                    let prod = p.mul(sp);
                                    if !prod.is_zero() {
                                        buf.push((t.concat_projected(full, &sib.rest_pos), prod));
                                    }
                                }
                            }
                        }
                    }
                    Some(f) => {
                        // The fused ⊕: lift, project, merge — the
                        // joined pairs never materialize as a factor.
                        debug_assert!(acc.is_empty());
                        if sib.full_key {
                            for (t, p) in input_buf {
                                let probe = ProjKey::new(t, &sib.probe_pos);
                                if let Some(sp) = store.get(&probe) {
                                    let mut prod = p.mul(sp);
                                    for (pos, lifting) in &f.lifts {
                                        prod = prod.mul(&lifting.lift(t.get(*pos)));
                                    }
                                    if !prod.is_zero() {
                                        acc.push(&ProjKey::new(t, &f.out_pos), prod);
                                    }
                                }
                            }
                        } else {
                            for (t, p) in input_buf {
                                let probe = ProjKey::new(t, &sib.probe_pos);
                                for full in store.probe(sib.index_id, &probe) {
                                    let sp = store.get(full).expect("indexed keys are live");
                                    let mut prod = p.mul(sp);
                                    if prod.is_zero() {
                                        continue;
                                    }
                                    let joined = t.concat_projected(full, &sib.rest_pos);
                                    for (pos, lifting) in &f.lifts {
                                        prod = prod.mul(&lifting.lift(joined.get(*pos)));
                                    }
                                    if !prod.is_zero() {
                                        acc.push(&ProjKey::new(&joined, &f.out_pos), prod);
                                    }
                                }
                            }
                        }
                        acc.drain_into(&mut buf);
                    }
                }
                scratch.slots[*out] = buf;
            }
            FactorOp::Fold { input, out, fused } => {
                let mut buf = std::mem::take(&mut scratch.slots[*out]);
                buf.clear();
                let Scratch { slots, acc, .. } = &mut *scratch;
                debug_assert!(acc.is_empty());
                for (t, p) in &slots[*input] {
                    let mut prod = p.clone();
                    for (pos, lifting) in &fused.lifts {
                        prod = prod.mul(&lifting.lift(t.get(*pos)));
                    }
                    if !prod.is_zero() {
                        acc.push(&ProjKey::new(t, &fused.out_pos), prod);
                    }
                }
                acc.drain_into(&mut buf);
                scratch.slots[*out] = buf;
            }
        }
    }

    /// Compute an indicator delta from the leaf support transitions in
    /// `scratch.transitions` into `scratch.ind` (Example B.2).
    fn indicator_delta_into(&mut self, ind: NodeId, positions: &[usize], scratch: &mut Scratch<R>) {
        let counts = self.ind_counts.get_mut(&ind).expect("registered");
        debug_assert!(scratch.acc.is_empty());
        for (t, sign) in &scratch.transitions {
            let key = ProjKey::new(t, positions);
            let entry = counts.entry(key.materialize()).or_insert(0);
            let before = *entry;
            *entry += i64::from(*sign);
            let now = *entry;
            let payload = if before == 0 && now == 1 {
                R::one()
            } else if before == 1 && now == 0 {
                R::one().neg()
            } else {
                R::zero()
            };
            if now == 0 {
                counts.remove(&key.materialize());
            }
            if !payload.is_zero() {
                scratch.acc.push(&key, payload);
            }
        }
        scratch.ind.clear();
        scratch.acc.drain_into(&mut scratch.ind);
    }

    // ------------------------------------------------------------------
    // General path (factored deltas, payload transforms, uncompiled
    // plan shapes)
    // ------------------------------------------------------------------

    fn apply_general(&mut self, rel: RelIndex, delta: &Delta<R>) {
        let steps = self.rel_steps[rel].clone().expect("checked by apply");
        let indicators = self.tree.indicators_of(rel);
        let leaf = self.tree.leaf_of(rel).expect("leaf");
        let needs_flat = self.plan.store[leaf] || !indicators.is_empty();

        // merge the relation store (and collect support transitions)
        let mut transitions = Vec::new();
        if needs_flat {
            let flat = delta.flatten().reorder(&self.tree.nodes[leaf].keys);
            if let Some(store) = &mut self.views[leaf] {
                transitions = store.merge(&flat);
            }
        }

        // propagate the relation delta
        let factors: Vec<Relation<R>> = match delta {
            Delta::Flat(r) => vec![r.clone()],
            Delta::Factored(fs) => {
                assert!(
                    self.payload_transform.is_none() || fs.len() == 1,
                    "factored updates are not supported in factorized-payload mode"
                );
                fs.clone()
            }
        };
        self.propagate(&steps, factors);

        // then maintain indicator projections (sequenced after, App. B)
        for ind in indicators {
            let delta_ind = self.indicator_delta(ind, &transitions, rel);
            if delta_ind.is_empty() {
                continue;
            }
            if let Some(store) = &mut self.views[ind] {
                store.merge(&delta_ind);
            }
            let steps = self.ind_plans[&ind].steps.clone();
            self.propagate(&steps, vec![delta_ind]);
        }
    }

    /// Apply a batch of per-relation updates in sequence.
    pub fn apply_batch(&mut self, updates: &[(RelIndex, Delta<R>)]) {
        for (rel, d) in updates {
            self.apply(*rel, d);
        }
    }

    fn propagate(&mut self, steps: &[DeltaStep], mut factors: Vec<Relation<R>>) {
        for step in steps {
            if factors.is_empty() || factors.iter().any(Relation::is_empty) {
                return; // delta vanished
            }
            factors = self.propagate_step(step, factors);
            if self.plan.store[step.node] {
                let keys = self.tree.nodes[step.node].keys.clone();
                let flat = flatten_to(&factors, &keys);
                if let Some(store) = &mut self.views[step.node] {
                    store.merge(&flat);
                }
                // once multiplied out for the store, continue with the
                // flat form (it is never larger than re-multiplying).
                if factors.len() > 1 {
                    factors = vec![flat];
                }
            }
        }
    }

    /// One maintenance step: join the current delta factors with the
    /// sibling views and marginalize this node's bound variables
    /// (Figure 4 with the §5 `Optimize` rewrite).
    fn propagate_step(
        &mut self,
        step: &DeltaStep,
        mut factors: Vec<Relation<R>>,
    ) -> Vec<Relation<R>> {
        if let Some(pp) = &self.payload_preproject {
            factors = factors
                .iter()
                .map(|f| f.map_payloads(|_, p| pp(p)))
                .collect();
        }
        for &s in &step.siblings {
            let sib_schema = &self.tree.nodes[s].keys;
            let sharing: Vec<usize> = factors
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.schema().disjoint(sib_schema))
                .map(|(i, _)| i)
                .collect();
            if sharing.is_empty() {
                // Cartesian contribution: keep the sibling as its own
                // factor (never multiplied out unless a store needs it).
                let rel = self.views[s]
                    .as_ref()
                    .unwrap_or_else(|| panic!("sibling view {s} not materialized"))
                    .to_relation();
                factors.push(rel);
                continue;
            }
            // merge the sharing factors (pairwise disjoint ⇒ products)
            let mut acc = factors.swap_remove(sharing[sharing.len() - 1]);
            for &i in sharing[..sharing.len() - 1].iter().rev() {
                let f = factors.swap_remove(i);
                acc = acc.join(&f);
            }
            let joined = self.join_with_view(&acc, s);
            factors.push(joined);
        }
        // marginalize inside the single factor holding each variable
        for &mv in &step.margin {
            let idx = factors
                .iter()
                .position(|f| f.schema().contains(mv))
                .expect("marginalized variable must appear in the delta");
            let lifting = self.liftings.get(mv);
            factors[idx] = factors[idx].marginalize(mv, &lifting);
        }
        if let Some(hook) = &self.payload_transform {
            let keys = self.tree.nodes[step.node].keys.clone();
            let flat = flatten_to(&factors, &keys);
            let id = step.node;
            return vec![flat.map_payloads(|t, p| hook(id, t, p))];
        }
        factors
    }

    /// Join `acc ⊗ view(s)` by probing the sibling's store with
    /// borrowed keys (no per-probe tuple materialization).
    fn join_with_view(&mut self, acc: &Relation<R>, s: NodeId) -> Relation<R> {
        let sib_schema = self.tree.nodes[s].keys.clone();
        let common = acc.schema().intersect(&sib_schema);
        let acc_probe = acc.schema().positions_of(common.vars()).expect("subset");
        let rest_vars = sib_schema.minus(&common);
        let out_schema = acc.schema().union(&sib_schema);

        if common.len() == sib_schema.len() {
            // full-key probe: primary lookup, in the sibling's column
            // order (compose the two projections into one).
            let store = self.views[s]
                .as_ref()
                .unwrap_or_else(|| panic!("sibling view {s} not materialized"));
            let reorder = common.positions_of(store.schema().vars()).expect("perm");
            let composed: Vec<usize> = reorder.iter().map(|&i| acc_probe[i]).collect();
            let pp = self.payload_preproject.clone();
            let mut out = Relation::new(out_schema);
            for (t, p) in acc.iter() {
                let probe = ProjKey::new(t, &composed);
                if let Some(sp) = store.get(&probe) {
                    let sp = match &pp {
                        Some(pp) => pp(sp),
                        None => sp.clone(),
                    };
                    out.insert(t.clone(), p.mul(&sp));
                }
            }
            return out;
        }

        // partial-key probe: secondary index (created on demand, then
        // maintained incrementally)
        let ix = self.views[s]
            .as_mut()
            .unwrap_or_else(|| panic!("sibling view {s} not materialized"))
            .ensure_index(&common);
        let store = self.views[s].as_ref().expect("just accessed");
        let rest_pos = store
            .schema()
            .positions_of(rest_vars.vars())
            .expect("subset");
        let pp = self.payload_preproject.clone();
        let mut out = Relation::new(out_schema);
        for (t, p) in acc.iter() {
            let probe = ProjKey::new(t, &acc_probe);
            for full in store.probe(ix, &probe) {
                let sp = store.get(full).expect("indexed keys are live");
                let sp = match &pp {
                    Some(pp) => pp(sp),
                    None => sp.clone(),
                };
                out.insert(t.concat_projected(full, &rest_pos), p.mul(&sp));
            }
        }
        out
    }

    /// Compute the indicator delta for `ind` from leaf support
    /// transitions (Example B.2) — general-path form.
    fn indicator_delta(
        &mut self,
        ind: NodeId,
        transitions: &[(Tuple, i8)],
        _rel: RelIndex,
    ) -> Relation<R> {
        let plan = &self.ind_plans[&ind];
        let proj = plan.proj.clone();
        let positions = plan.positions.clone();
        let counts = self.ind_counts.get_mut(&ind).expect("registered");
        let mut delta = Relation::new(proj);
        for (t, sign) in transitions {
            let key = t.project(&positions);
            let c = counts.entry(key.clone()).or_insert(0);
            let before = *c;
            *c += i64::from(*sign);
            let now = *c;
            if now == 0 {
                counts.remove(&key);
            }
            if before == 0 && now == 1 {
                delta.insert(key, R::one());
            } else if before == 1 && now == 0 {
                delta.insert(key, R::one().neg());
            }
        }
        delta
    }

    /// The maintained query result (the root view).
    pub fn result(&self) -> Relation<R> {
        self.views[self.tree.root]
            .as_ref()
            .expect("root is always materialized")
            .to_relation()
    }

    /// Snapshot of a node's view, if materialized.
    pub fn view_relation(&self, node: NodeId) -> Option<Relation<R>> {
        self.views[node].as_ref().map(ViewStore::to_relation)
    }

    /// Number of materialized views (the §7 view-count metric).
    pub fn stored_view_count(&self) -> usize {
        self.views.iter().filter(|v| v.is_some()).count()
    }

    /// Total keys across materialized views.
    pub fn total_entries(&self) -> usize {
        self.views.iter().flatten().map(ViewStore::len).sum()
    }

    /// Total secondary-index buckets retained across materialized
    /// views, including emptied ones kept for allocation-freedom. The
    /// high-water-mark sweep bounds this against adversarial key churn;
    /// tests assert on it.
    pub fn index_footprint(&self) -> usize {
        self.views
            .iter()
            .flatten()
            .map(ViewStore::index_footprint)
            .sum()
    }

    /// Approximate resident bytes across materialized views and
    /// indicator counters.
    pub fn approx_bytes(&self) -> usize {
        let views: usize = self
            .views
            .iter()
            .flatten()
            .map(ViewStore::approx_bytes)
            .sum();
        let counts: usize = self
            .ind_counts
            .values()
            .map(|m| m.keys().map(|t| t.approx_bytes() + 16).sum::<usize>())
            .sum();
        views + counts
    }

    /// Number of updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }
}

/// Multiply factors out and reorder to `keys`.
fn flatten_to<R: Ring>(factors: &[Relation<R>], keys: &Schema) -> Relation<R> {
    if factors.is_empty() {
        return Relation::new(keys.clone());
    }
    let mut acc = factors[0].clone();
    for f in &factors[1..] {
        acc = acc.join(f);
    }
    acc.reorder(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_tree, Database};
    use fivm_core::lifting::int_identity;
    use fivm_core::tuple;
    use fivm_query::VariableOrder;

    fn fig2_setup(free: &[&str]) -> (QueryDef, ViewTree, Database<i64>, LiftingMap<i64>) {
        let q = QueryDef::example_rst(free);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let db = Database::empty(&q);
        (q, tree, db, LiftingMap::new())
    }

    fn insert_fig2(engine: &mut IvmEngine<i64>) {
        let rs = [
            (
                0usize,
                vec![tuple![1, 1], tuple![1, 2], tuple![2, 3], tuple![3, 4]],
            ),
            (
                1,
                vec![
                    tuple![1, 1, 1],
                    tuple![1, 1, 2],
                    tuple![1, 2, 3],
                    tuple![2, 2, 4],
                ],
            ),
            (
                2,
                vec![tuple![1, 1], tuple![2, 2], tuple![2, 3], tuple![3, 4]],
            ),
        ];
        for (ri, tuples) in rs {
            for t in tuples {
                let schema = engine.query.relations[ri].schema.clone();
                let d = Relation::from_pairs(schema, [(t, 1i64)]);
                engine.apply(ri, &Delta::Flat(d));
            }
        }
    }

    /// Incremental single-tuple inserts reach the Figure 2d COUNT of 10.
    #[test]
    fn incremental_count_matches_figure_2d() {
        let (q, tree, _, lifts) = fig2_setup(&[]);
        let mut engine = IvmEngine::new(q, tree, &[0, 1, 2], lifts);
        insert_fig2(&mut engine);
        assert_eq!(engine.result().payload(&Tuple::unit()), 10);
    }

    /// Example 4.1: after loading Figure 2c, the update
    /// δT = {(c1,d1)→−1, (c2,d2)→3} changes the count by 5.
    #[test]
    fn example_4_1_delta_propagation() {
        let (q, tree, mut db, lifts) = fig2_setup(&[]);
        for (a, b) in [(1, 1), (1, 2), (2, 3), (3, 4)] {
            db.relations[0].insert(tuple![a, b], 1);
        }
        for (a, c, e) in [(1, 1, 1), (1, 1, 2), (1, 2, 3), (2, 2, 4)] {
            db.relations[1].insert(tuple![a, c, e], 1);
        }
        for (c, d) in [(1, 1), (2, 2), (2, 3), (3, 4)] {
            db.relations[2].insert(tuple![c, d], 1);
        }
        let mut engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        engine.load(&db);
        assert_eq!(engine.result().payload(&Tuple::unit()), 10);
        let dt = Relation::from_pairs(
            q.relations[2].schema.clone(),
            [(tuple![1, 1], -1i64), (tuple![2, 2], 3)],
        );
        engine.apply(2, &Delta::Flat(dt));
        // paper: δV@A_RST[()] = 5, so the count becomes 15
        assert_eq!(engine.result().payload(&Tuple::unit()), 15);
    }

    /// IVM result equals recomputation after mixed inserts and deletes,
    /// with group-by variables and non-trivial liftings.
    #[test]
    fn ivm_equals_recompute_with_deletes() {
        let (q, tree, _, mut lifts) = fig2_setup(&["A", "C"]);
        for v in ["B", "D", "E"] {
            lifts.set(q.catalog.lookup(v).unwrap(), int_identity());
        }
        let mut engine = IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        let mut db = Database::empty(&q);
        let updates: Vec<(usize, Tuple, i64)> = vec![
            (0, tuple![1, 5], 1),
            (1, tuple![1, 2, 7], 1),
            (2, tuple![2, 3], 1),
            (0, tuple![1, 6], 1),
            (2, tuple![2, 4], 2),
            (0, tuple![1, 5], -1), // delete
            (1, tuple![1, 2, 9], 1),
            (2, tuple![2, 4], -2), // delete both copies
            (1, tuple![2, 2, 3], 1),
            (0, tuple![2, 8], 1),
        ];
        for (ri, t, m) in updates {
            let d = Relation::from_pairs(q.relations[ri].schema.clone(), [(t.clone(), m)]);
            engine.apply(ri, &Delta::Flat(d.clone()));
            db.relations[ri].union_in_place(&d);
            let expected = eval_tree(&tree, &db, &lifts);
            assert_eq!(engine.result(), expected, "diverged after {ri}:{t}");
        }
    }

    /// Deleting everything returns all views to empty.
    #[test]
    fn full_deletion_returns_to_empty() {
        let (q, tree, _, lifts) = fig2_setup(&[]);
        let mut engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        insert_fig2(&mut engine);
        // delete in a different order
        let rs = [
            (
                2usize,
                vec![tuple![1, 1], tuple![2, 2], tuple![2, 3], tuple![3, 4]],
            ),
            (
                0,
                vec![tuple![1, 1], tuple![1, 2], tuple![2, 3], tuple![3, 4]],
            ),
            (
                1,
                vec![
                    tuple![1, 1, 1],
                    tuple![1, 1, 2],
                    tuple![1, 2, 3],
                    tuple![2, 2, 4],
                ],
            ),
        ];
        for (ri, tuples) in rs {
            for t in tuples {
                let schema = engine.query.relations[ri].schema.clone();
                let d = Relation::from_pairs(schema, [(t, -1i64)]);
                engine.apply(ri, &Delta::Flat(d));
            }
        }
        assert!(engine.result().is_empty());
        assert_eq!(engine.total_entries(), 0);
    }

    /// Factored (rank-1) updates produce the same result as their flat
    /// form — Example 5.2's scenario over the running query.
    #[test]
    fn factored_update_equals_flat() {
        let (q, tree, _, lifts) = fig2_setup(&["A"]);
        let mut flat_engine = IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        let mut fact_engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        insert_fig2(&mut flat_engine);
        insert_fig2(&mut fact_engine);
        // δS = δS_A[A] ⊗ δS_CE[C,E]  (a product update)
        let (a, c, e) = (
            q.catalog.lookup("A").unwrap(),
            q.catalog.lookup("C").unwrap(),
            q.catalog.lookup("E").unwrap(),
        );
        let sa = Relation::from_pairs(Schema::new(vec![a]), [(tuple![1], 1i64), (tuple![2], 1)]);
        let sce = Relation::from_pairs(
            Schema::new(vec![c, e]),
            [(tuple![2, 9], 1i64), (tuple![1, 9], 2)],
        );
        let factored = Delta::factored(vec![sa, sce]);
        fact_engine.apply(1, &factored);
        flat_engine.apply(
            1,
            &Delta::Flat(factored.flatten().reorder(&q.relations[1].schema)),
        );
        assert_eq!(fact_engine.result(), flat_engine.result());
    }

    /// Streaming scenario (µ with one updatable relation): updates to R
    /// only; the R leaf is not stored, yet the result stays correct.
    #[test]
    fn one_relation_stream() {
        let (q, tree, mut db, lifts) = fig2_setup(&[]);
        // static S and T
        for (a, c, e) in [(1, 1, 1), (2, 2, 4)] {
            db.relations[1].insert(tuple![a, c, e], 1);
        }
        for (c, d) in [(1, 1), (2, 2)] {
            db.relations[2].insert(tuple![c, d], 1);
        }
        let mut engine = IvmEngine::new(q.clone(), tree.clone(), &[0], lifts.clone());
        engine.load(&db);
        let leaf_r = engine.tree().leaf_of(0).unwrap();
        assert!(engine.view_relation(leaf_r).is_none(), "stream not stored");
        for (a, b) in [(1, 1), (2, 5), (1, 2)] {
            let d = Relation::from_pairs(q.relations[0].schema.clone(), [(tuple![a, b], 1i64)]);
            engine.apply(0, &Delta::Flat(d));
            db.relations[0].insert(tuple![a, b], 1);
        }
        assert_eq!(engine.result(), eval_tree(&tree, &db, &lifts));
    }

    /// Triangle query with indicator projections stays correct under
    /// updates to all three relations (Example B.3), including deletes
    /// that shrink the indicator.
    #[test]
    fn triangle_indicator_maintenance() {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut tree = ViewTree::build(&q, &vo);
        let added = fivm_query::add_indicators(&mut tree, &q);
        assert_eq!(added.len(), 1);
        let lifts = LiftingMap::<i64>::new();
        let mut engine = IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        let mut db = Database::empty(&q);
        let updates: Vec<(usize, Tuple, i64)> = vec![
            (0, tuple![1, 1], 1),
            (1, tuple![1, 1], 1),
            (2, tuple![1, 1], 1), // closes triangle (1,1,1)
            (0, tuple![1, 2], 1),
            (1, tuple![2, 1], 1),  // closes (1,2,1)
            (0, tuple![1, 1], 1),  // multiplicity 2
            (0, tuple![1, 1], -2), // delete both copies → support shrinks
            (2, tuple![1, 2], 1),
            (1, tuple![1, 1], 1),
            (0, tuple![2, 1], 1),
        ];
        for (ri, t, m) in updates {
            let d = Relation::from_pairs(q.relations[ri].schema.clone(), [(t.clone(), m)]);
            engine.apply(ri, &Delta::Flat(d.clone()));
            db.relations[ri].union_in_place(&d);
            let expected = eval_tree(&tree, &db, &lifts);
            assert_eq!(
                engine.result().payload(&Tuple::unit()),
                expected.payload(&Tuple::unit()),
                "diverged after {ri}:{t}:{m}"
            );
        }
    }

    /// Memory accounting is monotone in content.
    #[test]
    fn memory_accounting() {
        let (q, tree, _, lifts) = fig2_setup(&[]);
        let mut engine = IvmEngine::new(q, tree, &[0, 1, 2], lifts);
        let empty = engine.approx_bytes();
        insert_fig2(&mut engine);
        assert!(engine.approx_bytes() > empty);
        assert!(engine.stored_view_count() >= 5);
    }

    /// The compiled fast path and the general factor path agree on
    /// every update of a mixed insert/delete stream (routing the foil
    /// engine through the general entry point directly).
    #[test]
    fn fast_path_equals_general_path() {
        let (q, tree, _, mut lifts) = fig2_setup(&["C"]);
        lifts.set(q.catalog.lookup("B").unwrap(), int_identity());
        let mut fast = IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        let mut general = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        // Every relation path must have compiled.
        for r in 0..3 {
            assert!(fast.rel_fast[r].is_some(), "relation {r} did not compile");
        }
        let updates: Vec<(usize, Tuple, i64)> = vec![
            (0, tuple![1, 5], 1),
            (1, tuple![1, 2, 7], 1),
            (2, tuple![2, 3], 1),
            (2, tuple![2, 4], 2),
            (0, tuple![1, 5], -1),
            (1, tuple![1, 2, 9], 1),
            (1, tuple![1, 2, 9], -1),
            (2, tuple![2, 4], -2),
            (0, tuple![2, 8], 1),
            (1, tuple![2, 2, 3], 1),
        ];
        for (ri, t, m) in updates {
            let d = Relation::from_pairs(q.relations[ri].schema.clone(), [(t.clone(), m)]);
            fast.apply(ri, &Delta::Flat(d.clone()));
            general.apply_general(ri, &Delta::Flat(d));
            assert_eq!(
                fast.result(),
                general.result(),
                "diverged after {ri}:{t}:{m}"
            );
        }
    }

    /// A single-tuple update hitting a skewed join key fans out past
    /// the hash-merge threshold; the adaptive merge must agree with
    /// recomputation (and not stall).
    #[test]
    fn skewed_fanout_uses_hash_merge_correctly() {
        let (q, tree, mut db, lifts) = fig2_setup(&[]);
        // Hub: 500 S-tuples share A=1, each with a distinct C matched
        // in T, so one δR tuple at A=1 joins 500 ways before ⊕C.
        for i in 0..500 {
            db.relations[1].insert(tuple![1, i, 7], 1);
            db.relations[2].insert(tuple![i, 1], 1);
        }
        let mut engine = IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        engine.load(&db);
        let d = Relation::from_pairs(q.relations[0].schema.clone(), [(tuple![1, 42], 1i64)]);
        engine.apply(0, &Delta::Flat(d.clone()));
        db.relations[0].union_in_place(&d);
        assert_eq!(engine.result(), eval_tree(&tree, &db, &lifts));
        // and the inverse returns to the pre-update state
        let neg = Relation::from_pairs(q.relations[0].schema.clone(), [(tuple![1, 42], -1i64)]);
        engine.apply(0, &Delta::Flat(neg.clone()));
        db.relations[0].union_in_place(&neg);
        assert_eq!(engine.result(), eval_tree(&tree, &db, &lifts));
    }

    /// `load` on a non-empty engine resets indicator support counts
    /// instead of accumulating onto them.
    #[test]
    fn load_resets_indicator_support_counts() {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut tree = ViewTree::build(&q, &vo);
        fivm_query::add_indicators(&mut tree, &q);
        let lifts = LiftingMap::<i64>::new();
        let mut engine = IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        // Dirty the engine with an applied update...
        let d = Relation::from_pairs(q.relations[0].schema.clone(), [(tuple![1, 1], 1i64)]);
        engine.apply(0, &Delta::Flat(d));
        // ...then load a database that also contains that tuple.
        let mut db = Database::empty(&q);
        db.relations[0].insert(tuple![1, 1], 1);
        db.relations[1].insert(tuple![1, 1], 1);
        db.relations[2].insert(tuple![1, 1], 1);
        engine.load(&db);
        assert_eq!(engine.result().payload(&Tuple::unit()), 1);
        // Deleting the R edge must retract the triangle: with stale
        // (doubled) support counts the indicator would never shrink.
        let neg = Relation::from_pairs(q.relations[0].schema.clone(), [(tuple![1, 1], -1i64)]);
        engine.apply(0, &Delta::Flat(neg.clone()));
        db.relations[0].union_in_place(&neg);
        assert_eq!(
            engine.result().payload(&Tuple::unit()),
            eval_tree(&tree, &db, &lifts).payload(&Tuple::unit())
        );
    }

    /// The canonical rank-1 shape precompiles for every updatable
    /// relation of the benchmark shapes, and repeated same-shape
    /// updates never grow the plan cache (zero-interpretation steady
    /// state).
    #[test]
    fn rank1_plans_precompile_and_cache_is_stable() {
        let (q, tree, _, lifts) = fig2_setup(&[]);
        let mut engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        for r in 0..3 {
            assert!(engine.has_rank1_plan(r), "relation {r} missing rank-1 plan");
            assert_eq!(engine.factored_shapes_cached(r), 1);
        }
        insert_fig2(&mut engine);
        // S(A, C, E) as a product of three vector factors — the
        // precompiled shape: the cache must not grow across updates.
        let (a, c, e) = (
            q.catalog.lookup("A").unwrap(),
            q.catalog.lookup("C").unwrap(),
            q.catalog.lookup("E").unwrap(),
        );
        let mk = || {
            Delta::factored(vec![
                Relation::from_pairs(Schema::new(vec![a]), [(tuple![1], 1i64)]),
                Relation::from_pairs(Schema::new(vec![c]), [(tuple![2], 1i64)]),
                Relation::from_pairs(Schema::new(vec![e]), [(tuple![9], 3i64)]),
            ])
        };
        for _ in 0..4 {
            engine.apply(1, &mk());
        }
        assert_eq!(engine.factored_shapes_cached(1), 1);
        // A two-factor grouping is a *different* shape: compiled once
        // on first sight, cached thereafter.
        let grouped = || {
            Delta::factored(vec![
                Relation::from_pairs(Schema::new(vec![a]), [(tuple![1], 1i64)]),
                Relation::from_pairs(Schema::new(vec![c, e]), [(tuple![2, 9], 1i64)]),
            ])
        };
        for _ in 0..4 {
            engine.apply(1, &grouped());
        }
        assert_eq!(engine.factored_shapes_cached(1), 2);
    }

    /// `load` after factored-path activity: the warm shape cache holds
    /// compiled `FactoredPlan`s with secondary-index ids baked in, and
    /// `ViewStore::reload` (which `load` uses) keeps index ids and
    /// positions stable — so cached plans must stay valid, producing
    /// the same views as a cold engine given the same load + updates.
    /// The durability layer's `restore_views` leans on exactly this
    /// invariant when replaying a log tail over restored snapshots.
    #[test]
    fn load_after_warm_factored_cache_keeps_plans_valid() {
        let (q, tree, mut db, lifts) = fig2_setup(&[]);
        let mut warm = IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        let (a, c, e) = (
            q.catalog.lookup("A").unwrap(),
            q.catalog.lookup("C").unwrap(),
            q.catalog.lookup("E").unwrap(),
        );
        let rank1 = |av: i64, cv: i64, ev: i64, sign: i64| {
            Delta::factored(vec![
                Relation::from_pairs(Schema::new(vec![a]), [(tuple![av], sign)]),
                Relation::from_pairs(Schema::new(vec![c]), [(tuple![cv], 1i64)]),
                Relation::from_pairs(Schema::new(vec![e]), [(tuple![ev], 1i64)]),
            ])
        };
        // Warm the cache (compiles the plan, creating its secondary
        // indexes) with pre-load activity that `load` will supersede.
        insert_fig2(&mut warm);
        warm.apply(1, &rank1(1, 2, 9, 1));
        let shapes_before = warm.factored_shapes_cached(1);
        assert!(shapes_before >= 1);

        for (t, r) in [(tuple![1, 1], 0), (tuple![2, 3], 0), (tuple![7, 8], 0)] {
            db.relations[r].insert(t, 1);
        }
        for t in [tuple![1, 1, 1], tuple![1, 2, 3], tuple![7, 7, 7]] {
            db.relations[1].insert(t, 1);
        }
        for t in [tuple![1, 1], tuple![2, 2], tuple![7, 9]] {
            db.relations[2].insert(t, 1);
        }
        warm.load(&db);
        // Post-load factored updates run through the *cached* plan —
        // no recompilation, same shape count.
        warm.apply(1, &rank1(1, 2, 4, 1));
        warm.apply(1, &rank1(7, 7, 7, -1));
        assert_eq!(warm.factored_shapes_cached(1), shapes_before);

        // A cold engine over the same load + updates is the oracle.
        let mut cold = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        cold.load(&db);
        cold.apply(1, &rank1(1, 2, 4, 1));
        cold.apply(1, &rank1(7, 7, 7, -1));
        for node in warm.materialized_nodes() {
            assert_eq!(
                warm.view_relation(node).unwrap().sorted(),
                cold.view_relation(node).unwrap().sorted(),
                "view {node} diverged after load with a warm plan cache"
            );
        }
    }

    /// The compiled factored path agrees with the general factor path
    /// on a mixed insert/delete rank-1 stream, across every
    /// materialized view (exact i64 ring).
    #[test]
    fn factored_fast_path_equals_general_path() {
        let (q, tree, _, mut lifts) = fig2_setup(&["A"]);
        lifts.set(q.catalog.lookup("B").unwrap(), int_identity());
        let mut fast = IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        let mut general = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        general.set_fast_path(false);
        insert_fig2(&mut fast);
        insert_fig2(&mut general);
        let (a, c, e) = (
            q.catalog.lookup("A").unwrap(),
            q.catalog.lookup("C").unwrap(),
            q.catalog.lookup("E").unwrap(),
        );
        let updates: Vec<Delta<i64>> = vec![
            Delta::factored(vec![
                Relation::from_pairs(Schema::new(vec![a]), [(tuple![1], 1i64), (tuple![2], 1)]),
                Relation::from_pairs(
                    Schema::new(vec![c, e]),
                    [(tuple![2, 9], 1i64), (tuple![1, 9], 2)],
                ),
            ]),
            Delta::factored(vec![
                Relation::from_pairs(Schema::new(vec![a]), [(tuple![1], -1i64)]),
                Relation::from_pairs(Schema::new(vec![c]), [(tuple![2], 1i64)]),
                Relation::from_pairs(Schema::new(vec![e]), [(tuple![9], 1i64)]),
            ]),
            Delta::factored(vec![
                Relation::from_pairs(Schema::new(vec![c, e]), [(tuple![2, 9], -1i64)]),
                Relation::from_pairs(Schema::new(vec![a]), [(tuple![2], 1i64)]),
            ]),
        ];
        for (i, d) in updates.iter().enumerate() {
            fast.apply(1, d);
            general.apply(1, d);
            for node in 0..fast.tree().nodes.len() {
                assert_eq!(
                    fast.view_relation(node),
                    general.view_relation(node),
                    "view {node} diverged after update {i}"
                );
            }
        }
    }

    /// Factored updates maintain indicator projections (the leaf-store
    /// flatten collects support transitions): triangle query, rank-1
    /// edge updates, compared against recomputation.
    #[test]
    fn factored_update_maintains_indicators() {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut tree = ViewTree::build(&q, &vo);
        fivm_query::add_indicators(&mut tree, &q);
        let lifts = LiftingMap::<i64>::new();
        let mut engine = IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        let mut db = Database::empty(&q);
        let (a, b, c) = (
            q.catalog.lookup("A").unwrap(),
            q.catalog.lookup("B").unwrap(),
            q.catalog.lookup("C").unwrap(),
        );
        let vecs = [(0usize, a, b), (1, b, c), (2, c, a)];
        let updates: Vec<(usize, i64, i64, i64)> = vec![
            (0, 1, 1, 1),
            (1, 1, 1, 1),
            (2, 1, 1, 1), // closes (1,1,1)
            (0, 1, 2, 1),
            (1, 2, 1, 1),
            (0, 1, 1, -1), // delete → support shrinks
            (2, 1, 2, 1),
            (0, 2, 1, 1),
        ];
        for (ri, x, y, m) in updates {
            let (_, vx, vy) = vecs[ri];
            let d = Delta::factored(vec![
                Relation::from_pairs(Schema::new(vec![vx]), [(tuple![x], m)]),
                Relation::from_pairs(Schema::new(vec![vy]), [(tuple![y], 1i64)]),
            ]);
            engine.apply(ri, &d);
            db.relations[ri].union_in_place(&d.flatten().reorder(&q.relations[ri].schema));
            let expected = eval_tree(&tree, &db, &lifts);
            assert_eq!(
                engine.result().payload(&Tuple::unit()),
                expected.payload(&Tuple::unit()),
                "diverged after {ri}:({x},{y}):{m}"
            );
        }
    }

    /// Sanity: single-tuple updates on the running query go through the
    /// fast path (the general path is only entered when forced).
    #[test]
    fn fast_plans_compile_for_benchmark_shapes() {
        // Star join (fig11 shape).
        let (q, tree, _, lifts) = fig2_setup(&[]);
        let engine = IvmEngine::new(q, tree, &[0, 1, 2], lifts);
        assert!(engine.rel_fast.iter().all(Option::is_some));
        // Triangle with indicators (fig13 shape).
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut tree = ViewTree::build(&q, &vo);
        fivm_query::add_indicators(&mut tree, &q);
        let engine: IvmEngine<i64> = IvmEngine::new(q, tree, &[0, 1, 2], LiftingMap::new());
        assert!(engine.rel_fast.iter().all(Option::is_some));
        assert!(engine.ind_plans.values().all(|p| p.fast.is_some()));
    }
}
