//! The F-IVM executor: factorized higher-order IVM (paper §4–§5).
//!
//! An [`IvmEngine`] instantiates a view tree over a concrete ring:
//! it materializes the views chosen by µ (Figure 5), registers a trigger
//! per updatable relation, and propagates deltas along leaf-to-root
//! paths (Figure 4). Deltas are carried as a **product of factors** with
//! pairwise-disjoint schemas; flat deltas are the single-factor case, and
//! factorizable updates (§5) keep their factors separate for as long as
//! possible — sibling views join into the factor they share variables
//! with, and marginalization happens inside a single factor — which is
//! the paper’s `Optimize` rewrite (pushing `⊕X` past `⊗`). Factors are
//! multiplied out only when a materialized view must absorb the delta.
//!
//! Indicator projections (Appendix B) are maintained with support
//! counts per Example B.2; an update to `R` is followed by updates to
//! its indicator projections, each propagated along its own path.

use crate::view::ViewStore;
use fivm_core::{
    Delta, FxHashMap, Lifting, LiftingMap, Relation, Ring, Schema, Tuple,
};
use fivm_query::delta::{delta_steps, path_from, DeltaStep};
use fivm_query::{
    materialization, delta_path, MaterializationPlan, NodeId, NodeKind, QueryDef, RelIndex,
    ViewTree,
};
use std::sync::Arc;

/// Hook rewriting a node’s delta payloads before they are stored and
/// propagated — used by the factorized-payload mode (§6.3) to project
/// relational payloads onto each node’s own variables.
pub type PayloadTransform<R> = Arc<dyn Fn(NodeId, &Tuple, &R) -> R + Send + Sync>;

/// The factorized higher-order IVM executor.
pub struct IvmEngine<R: Ring> {
    query: QueryDef,
    tree: ViewTree,
    plan: MaterializationPlan,
    liftings: LiftingMap<R>,
    views: Vec<Option<ViewStore<R>>>,
    /// Precomputed maintenance steps per updatable relation.
    rel_steps: Vec<Option<Vec<DeltaStep>>>,
    /// Maintenance steps per indicator node.
    ind_steps: FxHashMap<NodeId, Vec<DeltaStep>>,
    /// Support counts per indicator node (Example B.2).
    ind_counts: FxHashMap<NodeId, FxHashMap<Tuple, i64>>,
    payload_transform: Option<PayloadTransform<R>>,
    /// Applied to child payloads *before* they enter a parent’s payload
    /// product. In factorized-payload mode no child payload variable
    /// survives the parent’s projection, so children collapse to their
    /// totals first — this is what keeps the parent product linear
    /// instead of forming the cross product that the projection would
    /// immediately discard (§6.3).
    payload_preproject: Option<Arc<dyn Fn(&R) -> R + Send + Sync>>,
    updates_applied: u64,
}

impl<R: Ring> IvmEngine<R> {
    /// Build an engine for `query` over `tree`, materializing per µ for
    /// the given updatable relations.
    pub fn new(
        query: QueryDef,
        tree: ViewTree,
        updatable: &[RelIndex],
        liftings: LiftingMap<R>,
    ) -> Self {
        let mask = updatable.iter().fold(0u64, |m, &r| m | (1u64 << r));
        let mut plan = materialization(&tree, mask);
        // Indicator maintenance derives support transitions from the
        // relation store, so force-store leaves of indicated relations.
        for &r in updatable {
            if !tree.indicators_of(r).is_empty() {
                if let Some(leaf) = tree.leaf_of(r) {
                    plan.store[leaf] = true;
                }
            }
        }
        let rel_steps: Vec<Option<Vec<DeltaStep>>> = (0..query.relations.len())
            .map(|r| {
                (mask & (1 << r) != 0)
                    .then(|| delta_path(&tree, r).map(|p| delta_steps(&tree, &p)))
                    .flatten()
            })
            .collect();
        let mut ind_steps = FxHashMap::default();
        let mut ind_counts = FxHashMap::default();
        for (id, n) in tree.nodes.iter().enumerate() {
            if matches!(n.kind, NodeKind::Indicator { .. }) {
                ind_steps.insert(id, delta_steps(&tree, &path_from(&tree, id)));
                ind_counts.insert(id, FxHashMap::default());
            }
        }
        // Every sibling along a registered maintenance path must be
        // materialized. µ (Figure 5) already guarantees this for the
        // relation paths; indicator paths (Appendix B) route updates
        // through views whose own relations may be static, so their
        // siblings are forced here.
        let all_steps = rel_steps
            .iter()
            .flatten()
            .chain(ind_steps.values())
            .flat_map(|steps: &Vec<DeltaStep>| steps.iter());
        let mut forced: Vec<NodeId> = Vec::new();
        for step in all_steps {
            forced.extend(&step.siblings);
        }
        for s in forced {
            plan.store[s] = true;
        }
        let views = tree
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| plan.store[id].then(|| ViewStore::new(n.keys.clone())))
            .collect();
        IvmEngine {
            query,
            tree,
            plan,
            liftings,
            views,
            rel_steps,
            ind_steps,
            ind_counts,
            payload_transform: None,
            payload_preproject: None,
            updates_applied: 0,
        }
    }

    /// Install a payload transform (factorized-payload mode, §6.3).
    /// Must be set before any data is loaded; incompatible with factored
    /// (multi-factor) updates.
    pub fn with_payload_transform(mut self, t: PayloadTransform<R>) -> Self {
        assert_eq!(self.updates_applied, 0, "set the transform before updating");
        self.payload_transform = Some(t);
        self
    }

    /// Install a child-payload pre-projection (see the field docs); only
    /// sound together with a payload transform that discards all child
    /// payload variables, as the factorized mode does.
    pub fn with_payload_preprojection(
        mut self,
        f: Arc<dyn Fn(&R) -> R + Send + Sync>,
    ) -> Self {
        assert_eq!(self.updates_applied, 0, "set the projection before updating");
        self.payload_preproject = Some(f);
        self
    }

    /// The view tree this engine executes.
    pub fn tree(&self) -> &ViewTree {
        &self.tree
    }

    /// The query.
    pub fn query(&self) -> &QueryDef {
        &self.query
    }

    /// The materialization plan in effect.
    pub fn plan(&self) -> &MaterializationPlan {
        &self.plan
    }

    /// Bulk-load an initial database: evaluates all views bottom-up
    /// (applying the payload transform) and fills the materialized ones;
    /// initializes indicator support counts.
    pub fn load(&mut self, db: &crate::eval::Database<R>) {
        let mut rels: Vec<Option<Relation<R>>> = vec![None; self.tree.nodes.len()];
        // leaves and indicators first
        for (id, n) in self.tree.nodes.iter().enumerate() {
            match &n.kind {
                NodeKind::Relation(ri) => rels[id] = Some(db.relations[*ri].clone()),
                NodeKind::Indicator { rel, proj } => {
                    rels[id] = Some(crate::eval::indicator_relation(&db.relations[*rel], proj));
                    // initialize support counts
                    let positions = db.relations[*rel]
                        .schema()
                        .positions_of(proj.vars())
                        .expect("indicator proj in relation schema");
                    let counts = self.ind_counts.get_mut(&id).expect("registered");
                    for (t, _) in db.relations[*rel].iter() {
                        *counts.entry(t.project(&positions)).or_insert(0) += 1;
                    }
                }
                NodeKind::Inner { .. } => {}
            }
        }
        for (id, n) in self.tree.nodes.iter().enumerate() {
            if let NodeKind::Inner { margin, .. } = &n.kind {
                let pre = |r: &Relation<R>| -> Relation<R> {
                    match &self.payload_preproject {
                        Some(pp) => r.map_payloads(|_, p| pp(p)),
                        None => r.clone(),
                    }
                };
                let mut acc = match n.children.first() {
                    None => Relation::unit(),
                    Some(&c) => pre(rels[c].as_ref().expect("children before parents")),
                };
                for &c in &n.children[1..] {
                    acc = acc.join(&pre(rels[c].as_ref().expect("children before parents")));
                }
                let margins: Vec<(u32, Lifting<R>)> =
                    margin.iter().map(|&v| (v, self.liftings.get(v))).collect();
                let mut out = acc.marginalize_many(&margins).reorder(&n.keys);
                if let Some(hook) = &self.payload_transform {
                    out = out.map_payloads(|t, p| hook(id, t, p));
                }
                rels[id] = Some(out);
            }
        }
        for (id, rel) in rels.into_iter().enumerate() {
            if let (Some(store), Some(rel)) = (&mut self.views[id], rel) {
                *store = ViewStore::new(rel.schema().clone());
                store.merge(&rel);
            }
        }
    }

    /// Apply an update to `rel` (paper §4’s IVM trigger): maintains the
    /// leaf store, propagates the delta leaf-to-root, then maintains and
    /// propagates any indicator projections of `rel`.
    pub fn apply(&mut self, rel: RelIndex, delta: &Delta<R>) {
        self.updates_applied += 1;
        let steps = self.rel_steps[rel]
            .clone()
            .unwrap_or_else(|| panic!("relation {rel} is not updatable in this engine"));
        let indicators = self.tree.indicators_of(rel);
        let needs_flat = self.plan.store[self.tree.leaf_of(rel).expect("leaf")]
            || !indicators.is_empty();

        // merge the relation store (and collect support transitions)
        let mut transitions = Vec::new();
        if needs_flat {
            let flat = delta.flatten().reorder(
                &self.tree.nodes[self.tree.leaf_of(rel).expect("leaf")]
                    .keys
                    .clone(),
            );
            let leaf = self.tree.leaf_of(rel).expect("leaf");
            if let Some(store) = &mut self.views[leaf] {
                transitions = store.merge(&flat);
            }
        }

        // propagate the relation delta
        let factors: Vec<Relation<R>> = match delta {
            Delta::Flat(r) => vec![r.clone()],
            Delta::Factored(fs) => {
                assert!(
                    self.payload_transform.is_none() || fs.len() == 1,
                    "factored updates are not supported in factorized-payload mode"
                );
                fs.clone()
            }
        };
        self.propagate(&steps, factors);

        // then maintain indicator projections (sequenced after, App. B)
        for ind in indicators {
            let delta_ind = self.indicator_delta(ind, &transitions, rel);
            if delta_ind.is_empty() {
                continue;
            }
            if let Some(store) = &mut self.views[ind] {
                store.merge(&delta_ind);
            }
            let steps = self.ind_steps[&ind].clone();
            self.propagate(&steps, vec![delta_ind]);
        }
    }

    /// Apply a batch of per-relation updates in sequence.
    pub fn apply_batch(&mut self, updates: &[(RelIndex, Delta<R>)]) {
        for (rel, d) in updates {
            self.apply(*rel, d);
        }
    }

    fn propagate(&mut self, steps: &[DeltaStep], mut factors: Vec<Relation<R>>) {
        for step in steps {
            if factors.is_empty() || factors.iter().any(Relation::is_empty) {
                return; // delta vanished
            }
            factors = self.propagate_step(step, factors);
            if self.plan.store[step.node] {
                let keys = self.tree.nodes[step.node].keys.clone();
                let flat = flatten_to(&factors, &keys);
                if let Some(store) = &mut self.views[step.node] {
                    store.merge(&flat);
                }
                // once multiplied out for the store, continue with the
                // flat form (it is never larger than re-multiplying).
                if factors.len() > 1 {
                    factors = vec![flat];
                }
            }
        }
    }

    /// One maintenance step: join the current delta factors with the
    /// sibling views and marginalize this node’s bound variables
    /// (Figure 4 with the §5 `Optimize` rewrite).
    fn propagate_step(
        &mut self,
        step: &DeltaStep,
        mut factors: Vec<Relation<R>>,
    ) -> Vec<Relation<R>> {
        if let Some(pp) = &self.payload_preproject {
            factors = factors
                .iter()
                .map(|f| f.map_payloads(|_, p| pp(p)))
                .collect();
        }
        for &s in &step.siblings {
            let sib_schema = self.tree.nodes[s].keys.clone();
            let sharing: Vec<usize> = factors
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.schema().disjoint(&sib_schema))
                .map(|(i, _)| i)
                .collect();
            if sharing.is_empty() {
                // Cartesian contribution: keep the sibling as its own
                // factor (never multiplied out unless a store needs it).
                let rel = self.views[s]
                    .as_ref()
                    .unwrap_or_else(|| panic!("sibling view {s} not materialized"))
                    .to_relation();
                factors.push(rel);
                continue;
            }
            // merge the sharing factors (pairwise disjoint ⇒ products)
            let mut acc = factors.swap_remove(sharing[sharing.len() - 1]);
            for &i in sharing[..sharing.len() - 1].iter().rev() {
                let f = factors.swap_remove(i);
                acc = acc.join(&f);
            }
            let joined = self.join_with_view(&acc, s);
            factors.push(joined);
        }
        // marginalize inside the single factor holding each variable
        for &mv in &step.margin {
            let idx = factors
                .iter()
                .position(|f| f.schema().contains(mv))
                .expect("marginalized variable must appear in the delta");
            let lifting = self.liftings.get(mv);
            factors[idx] = factors[idx].marginalize(mv, &lifting);
        }
        if let Some(hook) = &self.payload_transform {
            let keys = self.tree.nodes[step.node].keys.clone();
            let flat = flatten_to(&factors, &keys);
            let id = step.node;
            return vec![flat.map_payloads(|t, p| hook(id, t, p))];
        }
        factors
    }

    /// Join `acc ⊗ view(s)` by probing the sibling’s store.
    fn join_with_view(&mut self, acc: &Relation<R>, s: NodeId) -> Relation<R> {
        let sib_schema = self.tree.nodes[s].keys.clone();
        let common = acc.schema().intersect(&sib_schema);
        let acc_probe = acc.schema().positions_of(common.vars()).expect("subset");
        let rest_vars = sib_schema.minus(&common);
        let out_schema = acc.schema().union(&sib_schema);

        if common.len() == sib_schema.len() {
            // full-key probe: primary lookup
            let store = self.views[s]
                .as_ref()
                .unwrap_or_else(|| panic!("sibling view {s} not materialized"));
            // probe key must be in the sibling’s column order
            let reorder = common.positions_of(store.schema().vars()).expect("perm");
            let pp = self.payload_preproject.clone();
            let mut out = Relation::new(out_schema);
            for (t, p) in acc.iter() {
                let probe = t.project(&acc_probe).project(&reorder);
                if let Some(sp) = store.get(&probe) {
                    let sp = match &pp {
                        Some(pp) => pp(sp),
                        None => sp.clone(),
                    };
                    out.insert(t.clone(), p.mul(&sp));
                }
            }
            return out;
        }

        // partial-key probe: secondary index (created on demand, then
        // maintained incrementally)
        let ix = self.views[s]
            .as_mut()
            .unwrap_or_else(|| panic!("sibling view {s} not materialized"))
            .ensure_index(&common);
        let store = self.views[s].as_ref().expect("just accessed");
        let rest_pos = store
            .schema()
            .positions_of(rest_vars.vars())
            .expect("subset");
        let pp = self.payload_preproject.clone();
        let mut out = Relation::new(out_schema);
        for (t, p) in acc.iter() {
            let probe = t.project(&acc_probe);
            for full in store.probe(ix, &probe) {
                let sp = store.get(full).expect("indexed keys are live");
                let sp = match &pp {
                    Some(pp) => pp(sp),
                    None => sp.clone(),
                };
                out.insert(t.concat_projected(full, &rest_pos), p.mul(&sp));
            }
        }
        out
    }

    /// Compute the indicator delta for `ind` from leaf support
    /// transitions (Example B.2).
    fn indicator_delta(
        &mut self,
        ind: NodeId,
        transitions: &[(Tuple, i8)],
        rel: RelIndex,
    ) -> Relation<R> {
        let proj = match &self.tree.nodes[ind].kind {
            NodeKind::Indicator { proj, .. } => proj.clone(),
            _ => unreachable!("not an indicator"),
        };
        let positions = self.query.relations[rel]
            .schema
            .positions_of(proj.vars())
            .expect("indicator proj in relation schema");
        let counts = self.ind_counts.get_mut(&ind).expect("registered");
        let mut delta = Relation::new(proj);
        for (t, sign) in transitions {
            let key = t.project(&positions);
            let c = counts.entry(key.clone()).or_insert(0);
            let before = *c;
            *c += i64::from(*sign);
            let now = *c;
            if now == 0 {
                counts.remove(&key);
            }
            if before == 0 && now == 1 {
                delta.insert(key, R::one());
            } else if before == 1 && now == 0 {
                delta.insert(key, R::one().neg());
            }
        }
        delta
    }

    /// The maintained query result (the root view).
    pub fn result(&self) -> Relation<R> {
        self.views[self.tree.root]
            .as_ref()
            .expect("root is always materialized")
            .to_relation()
    }

    /// Snapshot of a node’s view, if materialized.
    pub fn view_relation(&self, node: NodeId) -> Option<Relation<R>> {
        self.views[node].as_ref().map(ViewStore::to_relation)
    }

    /// Number of materialized views (the §7 view-count metric).
    pub fn stored_view_count(&self) -> usize {
        self.views.iter().filter(|v| v.is_some()).count()
    }

    /// Total keys across materialized views.
    pub fn total_entries(&self) -> usize {
        self.views.iter().flatten().map(ViewStore::len).sum()
    }

    /// Approximate resident bytes across materialized views and
    /// indicator counters.
    pub fn approx_bytes(&self) -> usize {
        let views: usize = self.views.iter().flatten().map(ViewStore::approx_bytes).sum();
        let counts: usize = self
            .ind_counts
            .values()
            .map(|m| m.iter().map(|(t, _)| t.approx_bytes() + 16).sum::<usize>())
            .sum();
        views + counts
    }

    /// Number of updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }
}

/// Multiply factors out and reorder to `keys`.
fn flatten_to<R: Ring>(factors: &[Relation<R>], keys: &Schema) -> Relation<R> {
    if factors.is_empty() {
        return Relation::new(keys.clone());
    }
    let mut acc = factors[0].clone();
    for f in &factors[1..] {
        acc = acc.join(f);
    }
    acc.reorder(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_tree, Database};
    use fivm_core::lifting::int_identity;
    use fivm_core::tuple;
    use fivm_query::VariableOrder;

    fn fig2_setup(
        free: &[&str],
    ) -> (QueryDef, ViewTree, Database<i64>, LiftingMap<i64>) {
        let q = QueryDef::example_rst(free);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let db = Database::empty(&q);
        (q, tree, db, LiftingMap::new())
    }

    fn insert_fig2(engine: &mut IvmEngine<i64>) {
        let rs = [
            (0usize, vec![tuple![1, 1], tuple![1, 2], tuple![2, 3], tuple![3, 4]]),
            (
                1,
                vec![tuple![1, 1, 1], tuple![1, 1, 2], tuple![1, 2, 3], tuple![2, 2, 4]],
            ),
            (2, vec![tuple![1, 1], tuple![2, 2], tuple![2, 3], tuple![3, 4]]),
        ];
        for (ri, tuples) in rs {
            for t in tuples {
                let schema = engine.query.relations[ri].schema.clone();
                let d = Relation::from_pairs(schema, [(t, 1i64)]);
                engine.apply(ri, &Delta::Flat(d));
            }
        }
    }

    /// Incremental single-tuple inserts reach the Figure 2d COUNT of 10.
    #[test]
    fn incremental_count_matches_figure_2d() {
        let (q, tree, _, lifts) = fig2_setup(&[]);
        let mut engine = IvmEngine::new(q, tree, &[0, 1, 2], lifts);
        insert_fig2(&mut engine);
        assert_eq!(engine.result().payload(&Tuple::unit()), 10);
    }

    /// Example 4.1: after loading Figure 2c, the update
    /// δT = {(c1,d1)→−1, (c2,d2)→3} changes the count by 5.
    #[test]
    fn example_4_1_delta_propagation() {
        let (q, tree, mut db, lifts) = fig2_setup(&[]);
        for (a, b) in [(1, 1), (1, 2), (2, 3), (3, 4)] {
            db.relations[0].insert(tuple![a, b], 1);
        }
        for (a, c, e) in [(1, 1, 1), (1, 1, 2), (1, 2, 3), (2, 2, 4)] {
            db.relations[1].insert(tuple![a, c, e], 1);
        }
        for (c, d) in [(1, 1), (2, 2), (2, 3), (3, 4)] {
            db.relations[2].insert(tuple![c, d], 1);
        }
        let mut engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        engine.load(&db);
        assert_eq!(engine.result().payload(&Tuple::unit()), 10);
        let dt = Relation::from_pairs(
            q.relations[2].schema.clone(),
            [(tuple![1, 1], -1i64), (tuple![2, 2], 3)],
        );
        engine.apply(2, &Delta::Flat(dt));
        // paper: δV@A_RST[()] = 5, so the count becomes 15
        assert_eq!(engine.result().payload(&Tuple::unit()), 15);
    }

    /// IVM result equals recomputation after mixed inserts and deletes,
    /// with group-by variables and non-trivial liftings.
    #[test]
    fn ivm_equals_recompute_with_deletes() {
        let (q, tree, _, mut lifts) = fig2_setup(&["A", "C"]);
        for v in ["B", "D", "E"] {
            lifts.set(q.catalog.lookup(v).unwrap(), int_identity());
        }
        let mut engine = IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        let mut db = Database::empty(&q);
        let updates: Vec<(usize, Tuple, i64)> = vec![
            (0, tuple![1, 5], 1),
            (1, tuple![1, 2, 7], 1),
            (2, tuple![2, 3], 1),
            (0, tuple![1, 6], 1),
            (2, tuple![2, 4], 2),
            (0, tuple![1, 5], -1), // delete
            (1, tuple![1, 2, 9], 1),
            (2, tuple![2, 4], -2), // delete both copies
            (1, tuple![2, 2, 3], 1),
            (0, tuple![2, 8], 1),
        ];
        for (ri, t, m) in updates {
            let d = Relation::from_pairs(q.relations[ri].schema.clone(), [(t.clone(), m)]);
            engine.apply(ri, &Delta::Flat(d.clone()));
            db.relations[ri].union_in_place(&d);
            let expected = eval_tree(&tree, &db, &lifts);
            assert_eq!(engine.result(), expected, "diverged after {ri}:{t}");
        }
    }

    /// Deleting everything returns all views to empty.
    #[test]
    fn full_deletion_returns_to_empty() {
        let (q, tree, _, lifts) = fig2_setup(&[]);
        let mut engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        insert_fig2(&mut engine);
        // delete in a different order
        let rs = [
            (2usize, vec![tuple![1, 1], tuple![2, 2], tuple![2, 3], tuple![3, 4]]),
            (0, vec![tuple![1, 1], tuple![1, 2], tuple![2, 3], tuple![3, 4]]),
            (
                1,
                vec![tuple![1, 1, 1], tuple![1, 1, 2], tuple![1, 2, 3], tuple![2, 2, 4]],
            ),
        ];
        for (ri, tuples) in rs {
            for t in tuples {
                let schema = engine.query.relations[ri].schema.clone();
                let d = Relation::from_pairs(schema, [(t, -1i64)]);
                engine.apply(ri, &Delta::Flat(d));
            }
        }
        assert!(engine.result().is_empty());
        assert_eq!(engine.total_entries(), 0);
    }

    /// Factored (rank-1) updates produce the same result as their flat
    /// form — Example 5.2’s scenario over the running query.
    #[test]
    fn factored_update_equals_flat() {
        let (q, tree, _, lifts) = fig2_setup(&["A"]);
        let mut flat_engine = IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        let mut fact_engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        insert_fig2(&mut flat_engine);
        insert_fig2(&mut fact_engine);
        // δS = δS_A[A] ⊗ δS_CE[C,E]  (a product update)
        let (a, c, e) = (
            q.catalog.lookup("A").unwrap(),
            q.catalog.lookup("C").unwrap(),
            q.catalog.lookup("E").unwrap(),
        );
        let sa = Relation::from_pairs(
            Schema::new(vec![a]),
            [(tuple![1], 1i64), (tuple![2], 1)],
        );
        let sce = Relation::from_pairs(
            Schema::new(vec![c, e]),
            [(tuple![2, 9], 1i64), (tuple![1, 9], 2)],
        );
        let factored = Delta::factored(vec![sa, sce]);
        fact_engine.apply(1, &factored);
        flat_engine.apply(1, &Delta::Flat(factored.flatten().reorder(&q.relations[1].schema)));
        assert_eq!(fact_engine.result(), flat_engine.result());
    }

    /// Streaming scenario (µ with one updatable relation): updates to R
    /// only; the R leaf is not stored, yet the result stays correct.
    #[test]
    fn one_relation_stream() {
        let (q, tree, mut db, lifts) = fig2_setup(&[]);
        // static S and T
        for (a, c, e) in [(1, 1, 1), (2, 2, 4)] {
            db.relations[1].insert(tuple![a, c, e], 1);
        }
        for (c, d) in [(1, 1), (2, 2)] {
            db.relations[2].insert(tuple![c, d], 1);
        }
        let mut engine = IvmEngine::new(q.clone(), tree.clone(), &[0], lifts.clone());
        engine.load(&db);
        let leaf_r = engine.tree().leaf_of(0).unwrap();
        assert!(engine.view_relation(leaf_r).is_none(), "stream not stored");
        for (a, b) in [(1, 1), (2, 5), (1, 2)] {
            let d = Relation::from_pairs(q.relations[0].schema.clone(), [(tuple![a, b], 1i64)]);
            engine.apply(0, &Delta::Flat(d));
            db.relations[0].insert(tuple![a, b], 1);
        }
        assert_eq!(engine.result(), eval_tree(&tree, &db, &lifts));
    }

    /// Triangle query with indicator projections stays correct under
    /// updates to all three relations (Example B.3), including deletes
    /// that shrink the indicator.
    #[test]
    fn triangle_indicator_maintenance() {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut tree = ViewTree::build(&q, &vo);
        let added = fivm_query::add_indicators(&mut tree, &q);
        assert_eq!(added.len(), 1);
        let lifts = LiftingMap::<i64>::new();
        let mut engine = IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
        let mut db = Database::empty(&q);
        let updates: Vec<(usize, Tuple, i64)> = vec![
            (0, tuple![1, 1], 1),
            (1, tuple![1, 1], 1),
            (2, tuple![1, 1], 1), // closes triangle (1,1,1)
            (0, tuple![1, 2], 1),
            (1, tuple![2, 1], 1), // closes (1,2,1)
            (0, tuple![1, 1], 1), // multiplicity 2
            (0, tuple![1, 1], -2), // delete both copies → support shrinks
            (2, tuple![1, 2], 1),
            (1, tuple![1, 1], 1),
            (0, tuple![2, 1], 1),
        ];
        for (ri, t, m) in updates {
            let d = Relation::from_pairs(q.relations[ri].schema.clone(), [(t.clone(), m)]);
            engine.apply(ri, &Delta::Flat(d.clone()));
            db.relations[ri].union_in_place(&d);
            let expected = eval_tree(&tree, &db, &lifts);
            assert_eq!(
                engine.result().payload(&Tuple::unit()),
                expected.payload(&Tuple::unit()),
                "diverged after {ri}:{t}:{m}"
            );
        }
    }

    /// Memory accounting is monotone in content.
    #[test]
    fn memory_accounting() {
        let (q, tree, _, lifts) = fig2_setup(&[]);
        let mut engine = IvmEngine::new(q, tree, &[0, 1, 2], lifts);
        let empty = engine.approx_bytes();
        insert_fig2(&mut engine);
        assert!(engine.approx_bytes() > empty);
        assert!(engine.stored_view_count() >= 5);
    }
}
