//! Exhaustive interleaving checks for the `WorkerPool`
//! scatter/completion protocol (epoch bump + notify_all dispatch,
//! remaining-counter completion, panic propagation, shutdown/join).
//!
//! Build with `RUSTFLAGS="--cfg fivm_model_check"`; in normal builds
//! this file is empty.
#![cfg(fivm_model_check)]

use fivm_check::Checker;
use fivm_core::sync::atomic::{AtomicUsize, Ordering};
use fivm_engine::parallel::faults;
use fivm_engine::WorkerPool;

#[test]
fn scatter_runs_every_worker_exactly_once() {
    let report = Checker::new().check("worker-pool scatter", || {
        let hits = [AtomicUsize::new(0), AtomicUsize::new(0)];
        {
            let mut pool = WorkerPool::new(2);
            pool.scatter(&|w| {
                hits[w].fetch_add(1, Ordering::SeqCst);
            });
            // scatter returned: every worker ran the job exactly once.
            assert_eq!(hits[0].load(Ordering::SeqCst), 1, "worker 0");
            assert_eq!(hits[1].load(Ordering::SeqCst), 1, "worker 1");
        } // pool Drop: shutdown + join must terminate in every schedule
    });
    println!("{report}");
    report.assert_ok();
}

#[test]
fn back_to_back_scatters_do_not_mix_epochs() {
    let report = Checker::new().check("worker-pool epochs", || {
        let hits = AtomicUsize::new(0);
        {
            let mut pool = WorkerPool::new(1);
            pool.scatter(&|_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), 1, "first epoch");
            pool.scatter(&|_| {
                hits.fetch_add(10, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), 11, "second epoch");
        }
    });
    println!("{report}");
    report.assert_ok();
}

#[test]
fn worker_panic_propagates_to_the_dispatcher() {
    let report = Checker::new().check("worker-pool panic propagation", || {
        let mut pool = WorkerPool::new(1);
        pool.scatter(&|_| panic!("job exploded"));
    });
    println!("{report}");
    report.assert_fails("a fivm worker panicked during a parallel step");
}

/// Mutation verification: dispatch with `notify_one` instead of
/// `notify_all` (the seeded fault) and the checker must find the
/// schedule where the un-notified worker sleeps forever — scatter's
/// completion wait deadlocks.
#[test]
fn notify_one_dispatch_deadlocks() {
    faults::NOTIFY_ONE.store(true, std::sync::atomic::Ordering::SeqCst);
    let report = Checker::new().check("worker-pool notify_one fault", || {
        let hits = [AtomicUsize::new(0), AtomicUsize::new(0)];
        let mut pool = WorkerPool::new(2);
        pool.scatter(&|w| {
            hits[w].fetch_add(1, Ordering::SeqCst);
        });
    });
    faults::NOTIFY_ONE.store(false, std::sync::atomic::Ordering::SeqCst);
    println!("{report}");
    report.assert_fails("deadlock");
}

/// Mutation verification: return from scatter without waiting for
/// `remaining == 0` (the seeded fault) and the checker must find a
/// schedule where the borrow has ended while a worker still runs the
/// erased closure — observed as a completion-count violation.
#[test]
fn scatter_without_completion_wait_is_caught() {
    faults::NO_WAIT.store(true, std::sync::atomic::Ordering::SeqCst);
    let report = Checker::new().check("worker-pool no-wait fault", || {
        let hits = AtomicUsize::new(0);
        {
            let mut pool = WorkerPool::new(2);
            pool.scatter(&|_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(
                hits.load(Ordering::SeqCst),
                2,
                "scatter returned before every worker finished"
            );
        }
    });
    faults::NO_WAIT.store(false, std::sync::atomic::Ordering::SeqCst);
    println!("{report}");
    report.assert_fails("scatter returned before every worker finished");
}
