//! Exhaustive interleaving checks for the serving layer's
//! [`EpochCell`] publish/pin handoff: pins never tear, the advertised
//! epoch never runs ahead of the slot, and pinned epochs are monotonic
//! per reader.
//!
//! Build with `RUSTFLAGS="--cfg fivm_model_check"`; in normal builds
//! this file is empty.
#![cfg(fivm_model_check)]

use fivm_check::Checker;
use fivm_core::sync::thread;
use fivm_engine::snapshot::{faults, EpochCell};
use std::sync::Arc;

/// Writer publishes epochs 1 and 2 while the reader probes freshness
/// and pins. The cell's contract: once `epoch()` returns `e`, a
/// subsequent `pin()` returns a value published at epoch `>= e`.
fn publish_pin_model() {
    // The cell's payload is its own epoch number, so a torn handoff is
    // directly visible as a number mismatch.
    let cell = Arc::new(EpochCell::new(0, Arc::new(0u64)));
    let c = cell.clone();
    let writer = thread::spawn(move || {
        c.publish(1, Arc::new(1u64));
        c.publish(2, Arc::new(2u64));
    });
    let advertised = cell.epoch();
    let pinned = cell.pin();
    assert!(
        *pinned >= advertised,
        "epoch {advertised} advertised but pin returned epoch {}",
        *pinned
    );
    // Pins are monotonic for a single reader.
    let again = cell.pin();
    assert!(*again >= *pinned, "pinned epochs went backwards");
    let _ = writer.join();
    // Quiescent: the final publish is visible.
    assert_eq!(*cell.pin(), 2);
}

#[test]
fn publish_while_pin_never_tears() {
    let report = Checker::new().check("epoch-cell publish/pin", publish_pin_model);
    println!("{report}");
    report.assert_ok();
}

#[test]
fn two_readers_one_writer_smoke() {
    let report = Checker::new().check("epoch-cell two readers", || {
        let cell = Arc::new(EpochCell::new(0, Arc::new(0u64)));
        let c = cell.clone();
        let writer = thread::spawn(move || {
            c.publish(1, Arc::new(1u64));
        });
        let r = cell.clone();
        let reader = thread::spawn(move || {
            let advertised = r.epoch();
            let pinned = r.pin();
            assert!(*pinned >= advertised);
        });
        let advertised = cell.epoch();
        let pinned = cell.pin();
        assert!(*pinned >= advertised);
        let _ = reader.join();
        let _ = writer.join();
    });
    println!("{report}");
    report.assert_ok();
}

/// Mutation verification: advertise the epoch before the slot holds
/// the snapshot (and with Relaxed ordering) — the seeded fault — and
/// the checker must find the interleaving where a reader sees the
/// advertised epoch but pins the previous snapshot.
#[test]
fn torn_publish_is_caught() {
    faults::TORN_PUBLISH.store(true, std::sync::atomic::Ordering::SeqCst);
    let report = Checker::new().check("epoch-cell torn publish", publish_pin_model);
    faults::TORN_PUBLISH.store(false, std::sync::atomic::Ordering::SeqCst);
    println!("{report}");
    report.assert_fails("advertised but pin returned");
}
