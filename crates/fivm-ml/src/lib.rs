//! # fivm-ml — learning over joins with F-IVM
//!
//! The paper’s §6.2 application: maintain the **cofactor matrix**
//! (sufficient statistics `(c, s, Q)`) of the join result under updates,
//! then train linear regression models with batch gradient descent whose
//! per-iteration cost is independent of the data size.
//!
//! * [`cofactor`] — builds the degree-*m* ring lifting maps for any join
//!   query, wires them into the engines of `fivm-engine` (F-IVM,
//!   DBT-RING, SQL-OPT, and the scalar per-aggregate encodings used by
//!   the DBT / 1-IVM baselines), and extracts dense `(c, s, Q)` triples.
//! * [`regression`] — batch gradient descent over the cofactor matrix
//!   (the convergence step of §6.2), supporting any choice of label and
//!   feature set from the maintained statistics (as in [36]).

#![forbid(unsafe_code)]

pub mod cofactor;
pub mod regression;

pub use cofactor::CofactorSpec;
pub use regression::{train, TrainConfig, TrainedModel};
