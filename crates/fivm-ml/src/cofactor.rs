//! Cofactor-matrix queries over joins (paper §6.2).
//!
//! The cofactor matrix over **all** query variables suffices to learn a
//! linear model for any label/feature subset ([36], §7), so the spec
//! assigns every variable an index `0..m` and lifts variable `j`’s
//! values with `g_j(x) = (1, x·e_j, x²·e_j e_jᵀ)`. The same spec
//! produces the lifting maps for:
//!
//! * the F-IVM / DBT-RING engines (sparse [`Cofactor`] ring),
//! * SQL-OPT (degree-indexed [`DegreeRing`] encoding),
//! * the scalar per-aggregate maps used by the DBT and 1-IVM baselines,
//!   which maintain each of the `1 + m + m(m+1)/2` aggregates as its own
//!   query (no sharing — the cause of their large view counts in §7).

use fivm_core::ring::cofactor::Cofactor;
use fivm_core::ring::degree::DegreeRing;
use fivm_core::{Lifting, LiftingMap, Relation, Semiring, Tuple, VarId};
use fivm_query::QueryDef;

/// Variable-to-index assignment for a cofactor computation.
#[derive(Clone, Debug)]
pub struct CofactorSpec {
    /// The query variables in index order (index `j` ↔ `vars[j]`).
    pub vars: Vec<VarId>,
}

impl CofactorSpec {
    /// Cofactor over all query variables, in catalog (first-appearance)
    /// order.
    pub fn over_all_vars(query: &QueryDef) -> Self {
        CofactorSpec {
            vars: query.all_vars().vars().to_vec(),
        }
    }

    /// Number of indexed variables (`m`).
    pub fn m(&self) -> usize {
        self.vars.len()
    }

    /// The index of a variable.
    pub fn index_of(&self, v: VarId) -> Option<u32> {
        self.vars.iter().position(|&x| x == v).map(|i| i as u32)
    }

    /// Lifting map for the sparse cofactor ring (F-IVM, DBT-RING).
    pub fn liftings(&self) -> LiftingMap<Cofactor> {
        let mut lifts = LiftingMap::new();
        for (j, &v) in self.vars.iter().enumerate() {
            let j = j as u32;
            lifts.set(v, Lifting::from_fn(move |val| Cofactor::lift_value(j, val)));
        }
        lifts
    }

    /// Lifting map for the SQL-OPT degree-indexed encoding.
    pub fn degree_liftings(&self) -> LiftingMap<DegreeRing> {
        let mut lifts = LiftingMap::new();
        for (j, &v) in self.vars.iter().enumerate() {
            let j = j as u32;
            lifts.set(
                v,
                Lifting::from_fn(move |val| DegreeRing::lift(j, val.feature_code())),
            );
        }
        lifts
    }

    /// The scalar aggregates of the cofactor computation, one lifting
    /// map each: the count, `m` linear sums and `m(m+1)/2` quadratic
    /// sums. This is what DBT / 1-IVM maintain without sharing.
    pub fn scalar_aggregates(&self) -> Vec<(String, LiftingMap<f64>)> {
        let mut out = Vec::new();
        out.push(("count".to_string(), LiftingMap::new()));
        for (j, &v) in self.vars.iter().enumerate() {
            let mut lifts = LiftingMap::new();
            lifts.set(v, Lifting::from_fn(|val| val.feature_code()));
            out.push((format!("sum[{j}]"), lifts));
        }
        for (i, &vi) in self.vars.iter().enumerate() {
            for (j, &vj) in self.vars.iter().enumerate().skip(i) {
                let mut lifts = LiftingMap::new();
                if i == j {
                    lifts.set(
                        vi,
                        Lifting::from_fn(|val| {
                            let x = val.feature_code();
                            x * x
                        }),
                    );
                } else {
                    lifts.set(vi, Lifting::from_fn(|val| val.feature_code()));
                    lifts.set(vj, Lifting::from_fn(|val| val.feature_code()));
                }
                out.push((format!("prod[{i},{j}]"), lifts));
            }
        }
        out
    }

    /// Total number of scalar aggregates (`1 + m + m(m+1)/2` — e.g. 990
    /// for the 43-variable Retailer schema of §7).
    pub fn aggregate_count(&self) -> usize {
        let m = self.m();
        1 + m + m * (m + 1) / 2
    }

    /// Extract the dense `(c, s, Q)` triple from a cofactor-ring result
    /// relation (keyed on the empty tuple for global models).
    pub fn extract(&self, result: &Relation<Cofactor>) -> (i64, Vec<f64>, Vec<f64>) {
        result
            .get(&Tuple::unit())
            .cloned()
            .unwrap_or_else(Cofactor::zero)
            .to_dense(self.m())
    }

    /// Extract the dense triple from a SQL-OPT (degree-ring) result.
    pub fn extract_degree(&self, result: &Relation<DegreeRing>) -> (i64, Vec<f64>, Vec<f64>) {
        let m = self.m();
        let p = result
            .get(&Tuple::unit())
            .cloned()
            .unwrap_or_else(DegreeRing::zero);
        let mut s = vec![0.0; m];
        let mut q = vec![0.0; m * m];
        for j in 0..m {
            s[j] = p.sum(j as u32);
            for i in 0..=j {
                let v = p.prod(i as u32, j as u32);
                q[i * m + j] = v;
                q[j * m + i] = v;
            }
        }
        (p.count() as i64, s, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_core::{tuple, Delta};
    use fivm_engine::{eval_tree, Database, IvmEngine};
    use fivm_query::{VariableOrder, ViewTree};

    fn tiny_query() -> QueryDef {
        QueryDef::new(&[("R", &["A", "B"]), ("S", &["A", "C"])], &[])
    }

    fn tiny_db(q: &QueryDef) -> Database<Cofactor> {
        let mut db = Database::empty(q);
        for (a, b) in [(1, 2), (1, 3), (2, 5)] {
            db.relations[0].insert(tuple![a, b], Cofactor::one());
        }
        for (a, c) in [(1, 7), (2, 4), (2, 6)] {
            db.relations[1].insert(tuple![a, c], Cofactor::one());
        }
        db
    }

    /// Expected statistics computed from the explicit design matrix.
    fn naive_stats(rows: &[(f64, f64, f64)]) -> (i64, Vec<f64>, Vec<f64>) {
        let m = 3;
        let mut c = 0i64;
        let mut s = vec![0.0; m];
        let mut q = vec![0.0; m * m];
        for &(a, b, cc) in rows {
            let z = [a, b, cc];
            c += 1;
            for i in 0..m {
                s[i] += z[i];
                for j in 0..m {
                    q[i * m + j] += z[i] * z[j];
                }
            }
        }
        (c, s, q)
    }

    fn join_rows() -> Vec<(f64, f64, f64)> {
        // R ⋈ S on A: (A,B,C) rows
        vec![
            (1.0, 2.0, 7.0),
            (1.0, 3.0, 7.0),
            (2.0, 5.0, 4.0),
            (2.0, 5.0, 6.0),
        ]
    }

    #[test]
    fn cofactor_matches_design_matrix() {
        let q = tiny_query();
        let spec = CofactorSpec::over_all_vars(&q);
        assert_eq!(spec.m(), 3);
        let vo = VariableOrder::auto(&q);
        let tree = ViewTree::build(&q, &vo);
        let db = tiny_db(&q);
        let result = eval_tree(&tree, &db, &spec.liftings());
        let (c, s, qm) = spec.extract(&result);
        let (ec, es, eq) = naive_stats(&join_rows());
        assert_eq!(c, ec);
        for (a, b) in s.iter().zip(&es) {
            assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in qm.iter().zip(&eq) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn incremental_cofactor_matches_static() {
        let q = tiny_query();
        let spec = CofactorSpec::over_all_vars(&q);
        let vo = VariableOrder::auto(&q);
        let tree = ViewTree::build(&q, &vo);
        let mut engine = IvmEngine::new(q.clone(), tree.clone(), &[0, 1], spec.liftings());
        let db = tiny_db(&q);
        for ri in 0..2 {
            for (t, p) in db.relations[ri].iter() {
                let d =
                    Relation::from_pairs(q.relations[ri].schema.clone(), [(t.clone(), p.clone())]);
                engine.apply(ri, &Delta::Flat(d));
            }
        }
        let (c, s, qm) = spec.extract(&engine.result());
        let (ec, es, eq) = naive_stats(&join_rows());
        assert_eq!(c, ec);
        assert!(s.iter().zip(&es).all(|(a, b)| (a - b).abs() < 1e-9));
        assert!(qm.iter().zip(&eq).all(|(a, b)| (a - b).abs() < 1e-9));
    }

    /// SQL-OPT’s degree encoding computes the same statistics.
    #[test]
    fn sqlopt_matches_cofactor() {
        let q = tiny_query();
        let spec = CofactorSpec::over_all_vars(&q);
        let vo = VariableOrder::auto(&q);
        let tree = ViewTree::build(&q, &vo);
        let mut db: Database<DegreeRing> = Database::empty(&q);
        for (a, b) in [(1, 2), (1, 3), (2, 5)] {
            db.relations[0].insert(tuple![a, b], DegreeRing::one());
        }
        for (a, c) in [(1, 7), (2, 4), (2, 6)] {
            db.relations[1].insert(tuple![a, c], DegreeRing::one());
        }
        let result = eval_tree(&tree, &db, &spec.degree_liftings());
        let (c, s, qm) = spec.extract_degree(&result);
        let (ec, es, eq) = naive_stats(&join_rows());
        assert_eq!(c, ec);
        assert!(s.iter().zip(&es).all(|(a, b)| (a - b).abs() < 1e-9));
        assert!(qm.iter().zip(&eq).all(|(a, b)| (a - b).abs() < 1e-9));
    }

    /// Each scalar aggregate (the DBT / 1-IVM encoding) equals the
    /// corresponding entry of the shared cofactor matrix.
    #[test]
    fn scalar_aggregates_match_shared_ring() {
        let q = tiny_query();
        let spec = CofactorSpec::over_all_vars(&q);
        assert_eq!(spec.aggregate_count(), 1 + 3 + 6);
        let vo = VariableOrder::auto(&q);
        let tree = ViewTree::build(&q, &vo);
        let mut dbf: Database<f64> = Database::empty(&q);
        for (a, b) in [(1, 2), (1, 3), (2, 5)] {
            dbf.relations[0].insert(tuple![a, b], 1.0);
        }
        for (a, c) in [(1, 7), (2, 4), (2, 6)] {
            dbf.relations[1].insert(tuple![a, c], 1.0);
        }
        let (ec, es, eq) = naive_stats(&join_rows());
        let aggs = spec.scalar_aggregates();
        for (name, lifts) in aggs {
            let val = eval_tree(&tree, &dbf, &lifts).payload(&Tuple::unit());
            let expected = if name == "count" {
                ec as f64
            } else if let Some(rest) = name.strip_prefix("sum[") {
                let j: usize = rest.trim_end_matches(']').parse().unwrap();
                es[j]
            } else {
                let inner = name.strip_prefix("prod[").unwrap().trim_end_matches(']');
                let (i, j) = inner.split_once(',').unwrap();
                eq[i.parse::<usize>().unwrap() * 3 + j.parse::<usize>().unwrap()]
            };
            assert!((val - expected).abs() < 1e-9, "{name}: {val} vs {expected}");
        }
    }
}
