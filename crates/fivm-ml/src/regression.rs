//! Batch-gradient-descent linear regression over the cofactor matrix
//! (paper §6.2).
//!
//! With the sufficient statistics `(c, s, Q)` maintained by F-IVM, each
//! convergence step `θ := θ − α·MᵀMθ` costs `O(m²)` — independent of
//! the number of training tuples `k` — which is why maintaining the
//! cofactor matrix incrementally gives real-time model refresh. The
//! restriction trick of [36] applies: any label/feature subset of the
//! indexed variables trains from the same statistics.

/// Training configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Initial step size (adapted by backtracking).
    pub alpha: f64,
    /// Maximum gradient-descent iterations.
    pub max_iters: usize,
    /// Stop when the gradient’s ∞-norm falls below this.
    pub tolerance: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            alpha: 0.1,
            max_iters: 50_000,
            tolerance: 1e-9,
        }
    }
}

/// A trained linear model `y ≈ θ₀ + Σ θ_f · x_f`.
#[derive(Clone, Debug)]
pub struct TrainedModel {
    /// Bias term `θ₀`.
    pub bias: f64,
    /// One weight per feature, aligned with the `features` passed to
    /// [`train`].
    pub weights: Vec<f64>,
    /// Mean squared error on the training data (from the statistics).
    pub mse: f64,
    /// Iterations executed.
    pub iterations: usize,
}

impl TrainedModel {
    /// Predict a label from feature values.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

/// Train by batch gradient descent on the square loss, from the dense
/// cofactor statistics `(c, s, q)` over `m` variables (`q` is row-major
/// `m × m`). `label` and `features` index into those variables.
///
/// Internally works on the extended parameter vector `θ~ = (θ₀, θ, −1)`
/// over `(1, features…, label)`, whose Gram matrix is assembled from
/// `(c, s, q)`; the gradient is `Σ·θ~` restricted to the non-label rows
/// (§6.2). Features are standardized by their second moment for
/// conditioning and the weights un-scaled afterwards.
pub fn train(
    c: i64,
    s: &[f64],
    q: &[f64],
    label: usize,
    features: &[usize],
    config: &TrainConfig,
) -> TrainedModel {
    let m = s.len();
    assert_eq!(q.len(), m * m, "q must be m×m");
    assert!(label < m, "label out of range");
    let k = features.len();
    let n = k + 2; // 1 (bias), features…, label
    let count = c as f64;
    assert!(count > 0.0, "cannot train on an empty join");

    // Gram matrix over z = (1, x_f1 … x_fk, y), normalized by count.
    let idx = |zi: usize| -> Option<usize> {
        match zi {
            0 => None,
            i if i <= k => Some(features[i - 1]),
            _ => Some(label),
        }
    };
    let moment = |a: Option<usize>, b: Option<usize>| -> f64 {
        match (a, b) {
            (None, None) => count,
            (None, Some(j)) | (Some(j), None) => s[j],
            (Some(i), Some(j)) => q[i * m + j],
        }
    };
    // scale features (and label) by sqrt of second moment
    let scale: Vec<f64> = (0..n)
        .map(|zi| match idx(zi) {
            None => 1.0,
            Some(j) => {
                let sm = q[j * m + j] / count;
                if sm > 0.0 {
                    sm.sqrt()
                } else {
                    1.0
                }
            }
        })
        .collect();
    let mut gram = vec![0.0; n * n];
    for a in 0..n {
        for b in 0..n {
            gram[a * n + b] = moment(idx(a), idx(b)) / count / (scale[a] * scale[b]);
        }
    }

    // θ~ = (θ0, θ1..θk, −1); optimize the first k+1 components.
    let mut theta = vec![0.0; n];
    theta[n - 1] = -1.0;
    let mut alpha = config.alpha;
    let mut iterations = 0;
    let loss = |theta: &[f64]| -> f64 {
        // 0.5 θ~ᵀ Σ θ~ (proportional to the squared error)
        let mut acc = 0.0;
        for a in 0..n {
            for b in 0..n {
                acc += theta[a] * gram[a * n + b] * theta[b];
            }
        }
        0.5 * acc
    };
    let mut cur_loss = loss(&theta);
    for it in 0..config.max_iters {
        iterations = it + 1;
        // gradient = Σ θ~ restricted to the non-label rows
        let mut grad = vec![0.0; n - 1];
        let mut gmax = 0.0f64;
        for a in 0..n - 1 {
            let mut acc = 0.0;
            for b in 0..n {
                acc += gram[a * n + b] * theta[b];
            }
            grad[a] = acc;
            gmax = gmax.max(acc.abs());
        }
        if gmax < config.tolerance {
            break;
        }
        // backtracking step
        loop {
            let mut cand = theta.clone();
            for a in 0..n - 1 {
                cand[a] -= alpha * grad[a];
            }
            let cand_loss = loss(&cand);
            if cand_loss <= cur_loss || alpha < 1e-12 {
                theta = cand;
                cur_loss = cand_loss;
                // gentle growth keeps steps large when the surface allows
                alpha *= 1.05;
                break;
            }
            alpha *= 0.5;
        }
    }

    // un-scale: prediction used θ_a · (x/scale) … and y/scale_y ≈ …
    let sy = scale[n - 1];
    let bias = theta[0] * sy / scale[0];
    let weights: Vec<f64> = (1..=k).map(|a| theta[a] * sy / scale[a]).collect();
    let mse = 2.0 * cur_loss * sy * sy;
    TrainedModel {
        bias,
        weights,
        mse,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build dense stats from explicit rows over m variables.
    fn stats(rows: &[Vec<f64>]) -> (i64, Vec<f64>, Vec<f64>) {
        let m = rows[0].len();
        let mut c = 0i64;
        let mut s = vec![0.0; m];
        let mut q = vec![0.0; m * m];
        for r in rows {
            c += 1;
            for i in 0..m {
                s[i] += r[i];
                for j in 0..m {
                    q[i * m + j] += r[i] * r[j];
                }
            }
        }
        (c, s, q)
    }

    #[test]
    fn recovers_exact_linear_function() {
        // y = 2 + 3·x0 − x1, noise-free
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let x0 = (i % 7) as f64;
                let x1 = ((i * 3) % 5) as f64 - 2.0;
                vec![x0, x1, 2.0 + 3.0 * x0 - x1]
            })
            .collect();
        let (c, s, q) = stats(&rows);
        let model = train(c, &s, &q, 2, &[0, 1], &TrainConfig::default());
        assert!((model.bias - 2.0).abs() < 1e-3, "bias {}", model.bias);
        assert!((model.weights[0] - 3.0).abs() < 1e-3);
        assert!((model.weights[1] + 1.0).abs() < 1e-3);
        assert!(model.mse < 1e-5);
        assert!((model.predict(&[2.0, 1.0]) - 7.0).abs() < 1e-2);
    }

    #[test]
    fn feature_subset_from_same_statistics() {
        // three variables; train once on x0 only, once on both —
        // the [36] restriction trick: same (c,s,Q), different models.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let x0 = (i % 11) as f64 * 0.5;
                let x1 = ((i * 7) % 13) as f64 * 0.25;
                vec![x0, x1, 1.0 + 2.0 * x0]
            })
            .collect();
        let (c, s, q) = stats(&rows);
        let full = train(c, &s, &q, 2, &[0, 1], &TrainConfig::default());
        let restricted = train(c, &s, &q, 2, &[0], &TrainConfig::default());
        assert!((restricted.weights[0] - 2.0).abs() < 1e-3);
        assert!((restricted.bias - 1.0).abs() < 1e-3);
        // the full model also finds x1 irrelevant
        assert!(full.weights[1].abs() < 1e-2);
    }

    #[test]
    fn noisy_data_converges_to_least_squares() {
        // y = 1 + x + deterministic “noise” with zero mean
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let x = i as f64 * 0.1;
                let noise = if i % 2 == 0 { 0.1 } else { -0.1 };
                vec![x, 1.0 + x + noise]
            })
            .collect();
        let (c, s, q) = stats(&rows);
        let model = train(c, &s, &q, 1, &[0], &TrainConfig::default());
        assert!((model.weights[0] - 1.0).abs() < 1e-2);
        assert!((model.bias - 1.0).abs() < 5e-2);
        // MSE ≈ noise variance = 0.01
        assert!((model.mse - 0.01).abs() < 2e-3, "mse {}", model.mse);
    }

    #[test]
    #[should_panic(expected = "empty join")]
    fn empty_join_rejected() {
        let _ = train(0, &[0.0], &[0.0], 0, &[], &TrainConfig::default());
    }
}
