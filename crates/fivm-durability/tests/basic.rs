//! Basic durability cycle: log → checkpoint → crash (drop) → recover,
//! and the incremental-checkpoint bookkeeping. The adversarial
//! crash-point/fault-injection suite lives in the workspace-level
//! `tests/durability_crashpoints.rs`; this file covers the happy paths
//! close to the implementation.

use fivm_core::{tuple, Delta, LiftingMap, Relation, Value};
use fivm_durability::{checkpoint, wal, DurabilityConfig, DurableEngine};
use fivm_engine::IvmEngine;
use fivm_query::{QueryDef, VariableOrder, ViewTree};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fivm-durability-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn rst_engine() -> (QueryDef, IvmEngine<i64>) {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
    (q, engine)
}

fn delta(q: &QueryDef, rel: usize, rows: &[(&[i64], i64)]) -> Delta<i64> {
    Delta::Flat(Relation::from_pairs(
        q.relations[rel].schema.clone(),
        rows.iter().map(|(vals, p)| {
            (
                fivm_core::Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect()),
                *p,
            )
        }),
    ))
}

fn all_views(e: &IvmEngine<i64>) -> Vec<(usize, Vec<(fivm_core::Tuple, i64)>)> {
    e.materialized_nodes()
        .into_iter()
        .map(|n| (n, e.view_relation(n).unwrap().sorted()))
        .collect()
}

#[test]
fn create_apply_recover_round_trip() {
    let dir = temp_dir("basic");
    let (q, engine) = rst_engine();
    let cfg = DurabilityConfig {
        checkpoint_every: 0,
        ..DurabilityConfig::default()
    };
    let mut d = DurableEngine::create(&dir, engine, cfg.clone()).unwrap();
    d.apply(0, &delta(&q, 0, &[(&[1, 2], 1), (&[3, 4], 2)]))
        .unwrap();
    d.apply(1, &delta(&q, 1, &[(&[1, 5, 7], 1)])).unwrap();
    d.apply(2, &delta(&q, 2, &[(&[5, 6], 1)])).unwrap();
    d.sync_all().unwrap();
    let expected = all_views(d.engine());
    assert!(!d.engine().result().is_empty());
    drop(d);

    let (_, engine2) = rst_engine();
    let (r, report) = DurableEngine::open(&dir, engine2, cfg).unwrap();
    assert_eq!(report.last_lsn, 3);
    assert_eq!(
        report.replayed_updates, 3,
        "initial checkpoint covers LSN 0"
    );
    assert_eq!(all_views(r.engine()), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_skips_clean_views_and_truncates_log() {
    let dir = temp_dir("incr");
    let (q, engine) = rst_engine();
    let cfg = DurabilityConfig {
        checkpoint_every: 0,
        segment_bytes: 256, // force rotation nearly every update
        retained_checkpoints: 2,
        ..DurabilityConfig::default()
    };
    let mut d = DurableEngine::create(&dir, engine, cfg.clone()).unwrap();
    for i in 0..20i64 {
        d.apply(0, &delta(&q, 0, &[(&[i, i + 1], 1)])).unwrap();
    }
    d.checkpoint().unwrap();
    let files_after_first = checkpoint::list_manifests(&dir).unwrap().len();
    assert_eq!(
        files_after_first, 2,
        "initial + explicit checkpoint retained"
    );

    // Touch only relation 1: the next checkpoint must re-snapshot the
    // views on R1's maintenance path but carry the rest forward.
    let m1 = checkpoint::read_manifest(&checkpoint::list_manifests(&dir).unwrap()[1].path).unwrap();
    d.apply(1, &delta(&q, 1, &[(&[1, 5, 7], 1)])).unwrap();
    d.checkpoint().unwrap();
    let manifests = checkpoint::list_manifests(&dir).unwrap();
    let m2 = checkpoint::read_manifest(&manifests.last().unwrap().path).unwrap();
    let changed: Vec<usize> = m2
        .views
        .iter()
        .filter(|(n, f)| m1.views.iter().any(|(n1, f1)| n1 == n && f1 != f))
        .map(|&(n, _)| n)
        .collect();
    let carried = m2.views.iter().filter(|v| m1.views.contains(v)).count();
    assert!(
        !changed.is_empty(),
        "R1's path views must be re-snapshotted"
    );
    assert!(
        carried > 0,
        "clean views must be carried forward, not rewritten"
    );

    // Old segments fully covered by the oldest retained checkpoint are
    // gone; the log still starts at or before that checkpoint's LSN+1.
    let segments = wal::list_segments(&dir).unwrap();
    let oldest_retained = checkpoint::read_manifest(&manifests.first().unwrap().path).unwrap();
    assert!(segments.len() < 22, "covered segments were truncated");
    assert!(segments[0].first_lsn <= oldest_retained.lsn + 1);

    // Recovery from the truncated log still reproduces the state.
    let expected = all_views(d.engine());
    drop(d);
    let (_, engine2) = rst_engine();
    let (r, report) = DurableEngine::open(&dir, engine2, cfg).unwrap();
    assert_eq!(report.last_lsn, 21);
    assert_eq!(all_views(r.engine()), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn symbols_replay_reproduces_intern_ids() {
    let dir = temp_dir("syms");
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
    let cfg = DurabilityConfig {
        checkpoint_every: 0,
        ..DurabilityConfig::default()
    };
    let mut d = DurableEngine::create(&dir, engine, cfg.clone()).unwrap();
    // Intern symbols mid-stream, as realistic string-keyed updates do.
    let a = q.catalog.intern("alpha");
    d.apply(
        0,
        &Delta::Flat(Relation::from_pairs(
            q.relations[0].schema.clone(),
            [(tuple![Value::Int(1), Value::Sym(a)], 1i64)],
        )),
    )
    .unwrap();
    let b = q.catalog.intern("beta");
    d.apply(
        0,
        &Delta::Flat(Relation::from_pairs(
            q.relations[0].schema.clone(),
            [(tuple![Value::Int(2), Value::Sym(b)], 1i64)],
        )),
    )
    .unwrap();
    d.sync_all().unwrap();
    let expected = all_views(d.engine());
    drop(d);

    // Fresh process simulation: a brand-new catalog with an empty
    // symbol table must come back with identical intern ids.
    let q2 = QueryDef::example_rst(&[]);
    let vo2 = VariableOrder::parse("A - { B, C - { D, E } }", &q2.catalog);
    let tree2 = ViewTree::build(&q2, &vo2);
    let engine2: IvmEngine<i64> = IvmEngine::new(q2.clone(), tree2, &[0, 1, 2], LiftingMap::new());
    assert_eq!(q2.catalog.symbols().len(), 0);
    let (r, _) = DurableEngine::open(&dir, engine2, cfg).unwrap();
    assert_eq!(q2.catalog.resolve_sym(a), Some("alpha"));
    assert_eq!(q2.catalog.resolve_sym(b), Some("beta"));
    assert_eq!(all_views(r.engine()), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mismatched_query_is_rejected() {
    let dir = temp_dir("fp");
    let (q, engine) = rst_engine();
    let cfg = DurabilityConfig::default();
    let mut d = DurableEngine::create(&dir, engine, cfg.clone()).unwrap();
    d.apply(0, &delta(&q, 0, &[(&[1, 2], 1)])).unwrap();
    d.checkpoint().unwrap();
    drop(d);

    let q2 = QueryDef::triangle();
    let vo2 = VariableOrder::parse("A - { B - { C } }", &q2.catalog);
    let tree2 = ViewTree::build(&q2, &vo2);
    let engine2: IvmEngine<i64> = IvmEngine::new(q2.clone(), tree2, &[0, 1, 2], LiftingMap::new());
    assert!(DurableEngine::open(&dir, engine2, cfg).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}
