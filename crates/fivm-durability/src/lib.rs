//! # fivm-durability — crash safety for the F-IVM engine
//!
//! The paper's delta-propagation model makes the update stream a
//! natural write-ahead log: every state change of the engine is an
//! applied `(relation, delta)` pair, so logging exactly those pairs —
//! plus the symbol-table increments that give `Value::Sym` ids meaning
//! — captures everything needed to rebuild the materialized views.
//! This crate provides:
//!
//! * [`wal`] — a segmented append-only delta log with length-prefixed,
//!   CRC-32-checksummed records (codec from `fivm_core::codec`);
//! * [`checkpoint`] — incremental checkpoints: per-view snapshot files
//!   (only views dirtied since the previous checkpoint are rewritten)
//!   under a checksummed manifest, committed by atomic rename;
//! * [`DurableEngine`] — the engine wrapper tying them together:
//!   log-then-apply on the write path, checkpoint + tail replay with
//!   torn-record truncation on recovery.
//!
//! The on-disk layout and the torn-write/corruption rules are
//! specified in `docs/wal-format.md` at the repository root.

pub mod checkpoint;
pub mod crc;
mod engine;
pub mod wal;

pub use engine::{DurableEngine, RecoveryReport};

use std::fmt;
use std::path::PathBuf;

/// Tuning knobs for [`DurableEngine`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Auto-checkpoint after this many updates since the last
    /// checkpoint; `0` disables auto-checkpointing (call
    /// [`DurableEngine::checkpoint`] manually).
    pub checkpoint_every: u64,
    /// Rotate to a new log segment once the current one exceeds this
    /// many bytes.
    pub segment_bytes: u64,
    /// Group-commit threshold: buffered log bytes are written to the
    /// OS once they exceed this.
    pub flush_bytes: usize,
    /// `fsync` on every group-commit flush (durability per flush
    /// instead of per checkpoint). Off by default: the crash-safety
    /// guarantee is "recover to a consistent prefix", and the bench
    /// overhead budget assumes OS-buffered appends.
    pub sync_data: bool,
    /// How many checkpoints to retain (min 1). Keeping 2 means a
    /// corrupted newest checkpoint still recovers from the previous
    /// one plus a longer log tail.
    pub retained_checkpoints: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            checkpoint_every: 10_000,
            segment_bytes: 8 << 20,
            flush_bytes: 256 << 10,
            sync_data: false,
            retained_checkpoints: 2,
        }
    }
}

/// Everything that can go wrong durably.
#[derive(Debug)]
pub enum DurabilityError {
    Io(std::io::Error),
    /// A record or file failed to decode (reported by the codec).
    Codec(fivm_core::CodecError),
    /// On-disk state is damaged beyond the torn-tail rules (corruption
    /// in a non-final segment, missing log prefix, LSN gap).
    Corrupt {
        file: PathBuf,
        detail: String,
    },
    /// The directory's state does not belong to this engine (query
    /// fingerprint, symbol table, or LSN clock disagree).
    Mismatch(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "i/o error: {e}"),
            DurabilityError::Codec(e) => write!(f, "decode error: {e}"),
            DurabilityError::Corrupt { file, detail } => {
                write!(
                    f,
                    "corrupt durability state in {}: {detail}",
                    file.display()
                )
            }
            DurabilityError::Mismatch(detail) => write!(f, "state mismatch: {detail}"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io(e) => Some(e),
            DurabilityError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<fivm_core::CodecError> for DurabilityError {
    fn from(e: fivm_core::CodecError) -> Self {
        DurabilityError::Codec(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DurabilityError>;
