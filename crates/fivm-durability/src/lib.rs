//! # fivm-durability — crash safety for the F-IVM engine
//!
//! The paper's delta-propagation model makes the update stream a
//! natural write-ahead log: every state change of the engine is an
//! applied `(relation, delta)` pair, so logging exactly those pairs —
//! plus the symbol-table increments that give `Value::Sym` ids meaning
//! — captures everything needed to rebuild the materialized views.
//! This crate provides:
//!
//! * [`wal`] — a segmented append-only delta log with length-prefixed,
//!   CRC-32-checksummed records (codec from `fivm_core::codec`);
//! * [`checkpoint`] — incremental checkpoints: per-view snapshot files
//!   (only views dirtied since the previous checkpoint are rewritten)
//!   under a checksummed manifest, committed by atomic rename;
//! * [`DurableEngine`] — the engine wrapper tying them together:
//!   log-then-apply on the write path, checkpoint + tail replay with
//!   torn-record truncation on recovery.
//!
//! The on-disk layout and the torn-write/corruption rules are
//! specified in `docs/wal-format.md` at the repository root.

pub mod checkpoint;
pub mod crc;
mod engine;
pub mod vfs;
pub mod wal;

pub use engine::{DurabilityStats, DurableEngine, EngineMode, HealReport, RecoveryReport};
pub use fivm_engine::{
    EngineSnapshot, ServingStats, SnapshotReader, SubMessage, Subscriber, ViewDelta,
};
pub use vfs::{FaultKind, FaultVfs, StdVfs, Vfs, VfsFile};

use std::fmt;
use std::path::PathBuf;

/// When the write-ahead log `fsync`s, i.e. the exact durability
/// contract behind [`DurableEngine::apply`]'s acknowledgement. In every
/// mode recovery returns a *consistent prefix* of acknowledged updates;
/// the policy bounds how much of the acknowledged tail a crash (power
/// loss, kernel panic — not a mere process kill, which loses nothing
/// flushed) may silently drop. [`DurableEngine::durable_lsn`] reports
/// the exact watermark at any moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` only at checkpoints, segment rotation, and explicit
    /// [`DurableEngine::sync_all`]. An acknowledged update is durable
    /// once the next checkpoint (at most `checkpoint_every` updates
    /// later) or sync completes; a crash before that loses the
    /// acknowledged tail back to the last checkpoint. Cheapest mode and
    /// the default — the bench overhead budget assumes OS-buffered
    /// appends.
    OnCheckpoint,
    /// `fsync` at every group-commit flush: whenever `flush_bytes` of
    /// buffered records reach the OS, they are synced before the next
    /// update is acknowledged. A crash loses at most the updates still
    /// in the group-commit buffer (< `flush_bytes` encoded bytes) —
    /// bounded in bytes, not in updates or time.
    EveryFlush,
    /// Amortized group-commit `fsync` batching: sync once at least
    /// `max_updates` acknowledged updates are unsynced, or at the first
    /// acknowledgement after `max_delay` has elapsed since the last
    /// sync — whichever comes first. A crash loses fewer than
    /// `max_updates` acknowledged updates (and, on an active stream, at
    /// most ~`max_delay` of them in time), at the cost of one `fsync`
    /// per window instead of per update.
    Batched {
        max_updates: u64,
        max_delay: std::time::Duration,
    },
}

/// Tuning knobs for [`DurableEngine`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Auto-checkpoint after this many updates since the last
    /// checkpoint; `0` disables auto-checkpointing (call
    /// [`DurableEngine::checkpoint`] manually).
    pub checkpoint_every: u64,
    /// Rotate to a new log segment once the current one exceeds this
    /// many bytes.
    pub segment_bytes: u64,
    /// Group-commit threshold: buffered log bytes are written to the
    /// OS once they exceed this.
    pub flush_bytes: usize,
    /// When the log `fsync`s — the durability contract of every
    /// acknowledged update (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// How many checkpoints to retain (min 1). Keeping 2 means a
    /// corrupted newest checkpoint still recovers from the previous
    /// one plus a longer log tail.
    pub retained_checkpoints: usize,
    /// How many times a *transient* storage fault (see
    /// [`DurabilityError::is_transient`]) on the logging path is
    /// retried before the engine degrades. `0` degrades on the first
    /// failure.
    pub max_retries: u32,
    /// Base delay between retries, doubled per attempt (capped at
    /// 100 ms). `Duration::ZERO` retries immediately — what the
    /// fault-injection suites use.
    pub retry_backoff: std::time::Duration,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            checkpoint_every: 10_000,
            segment_bytes: 8 << 20,
            flush_bytes: 256 << 10,
            sync: SyncPolicy::OnCheckpoint,
            retained_checkpoints: 2,
            max_retries: 2,
            retry_backoff: std::time::Duration::from_millis(1),
        }
    }
}

/// Everything that can go wrong durably.
#[derive(Debug)]
pub enum DurabilityError {
    Io(std::io::Error),
    /// A record or file failed to decode (reported by the codec).
    Codec(fivm_core::CodecError),
    /// On-disk state is damaged beyond the torn-tail rules (corruption
    /// in a non-final segment, missing log prefix, LSN gap).
    Corrupt {
        file: PathBuf,
        detail: String,
    },
    /// The directory's state does not belong to this engine (query
    /// fingerprint, symbol table, or LSN clock disagree).
    Mismatch(String),
    /// The engine is in degraded read-only mode: a persistent WAL
    /// failure exhausted its retries, so writes are rejected while
    /// reads keep serving the last published epoch. Carries the cause
    /// and the exact durability watermark at rejection time; see
    /// [`DurableEngine::try_heal`] for the way back.
    Degraded {
        /// Rendering of the storage error that drove the engine
        /// read-only (the original is kept — see
        /// [`DurableEngine::degraded_cause`]).
        cause: String,
        /// Everything at or below this LSN survives any crash.
        durable_lsn: u64,
        /// Last applied (acknowledged) update; the range
        /// `durable_lsn+1..=last_lsn` is in memory and the retained
        /// log buffer, re-persisted by a successful heal.
        last_lsn: u64,
    },
}

impl DurabilityError {
    /// Whether retrying the failed operation can plausibly succeed.
    /// Storage-level failures (EIO, ENOSPC, short writes, failed
    /// fsync) are transient — the condition may clear, and a bounded
    /// retry then degrade-and-heal path caps the cost of optimism.
    /// Decode failures, corruption, state mismatches, and the
    /// `Degraded` rejection itself are fatal: retrying cannot change
    /// the bytes.
    pub fn is_transient(&self) -> bool {
        matches!(self, DurabilityError::Io(_))
    }
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "i/o error: {e}"),
            DurabilityError::Codec(e) => write!(f, "decode error: {e}"),
            DurabilityError::Corrupt { file, detail } => {
                write!(
                    f,
                    "corrupt durability state in {}: {detail}",
                    file.display()
                )
            }
            DurabilityError::Mismatch(detail) => write!(f, "state mismatch: {detail}"),
            DurabilityError::Degraded {
                cause,
                durable_lsn,
                last_lsn,
            } => write!(
                f,
                "engine degraded to read-only (durable_lsn {durable_lsn}, \
                 last_lsn {last_lsn}): {cause}"
            ),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io(e) => Some(e),
            DurabilityError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<fivm_core::CodecError> for DurabilityError {
    fn from(e: fivm_core::CodecError) -> Self {
        DurabilityError::Codec(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DurabilityError>;
