//! CRC-32C (Castagnoli) for log frames and checkpoint files.
//!
//! The WAL's logging overhead budget (<15% on the single-tuple fig11
//! path, asserted by the smoke bench) leaves under ~90ns per record
//! for *all* of encode + checksum + buffer append, so the checksum is
//! the Castagnoli polynomial: on x86-64 the SSE4.2 `crc32` instruction
//! computes it at ~3 bytes/cycle (detected at runtime), and the
//! portable fallback is slicing-by-8 — eight table lookups per 8-byte
//! chunk instead of one per byte. Both paths produce identical values
//! (asserted by a test), so files written on one machine validate on
//! any other. Hand-rolled because the build environment is offline.
//!
//! Like the standard CRC-32C, the register is initialized to all-ones
//! and the final value is complemented. Check value:
//! `crc32(b"123456789") == 0xE306_9283`. Detects all single-bit flips
//! and all burst errors up to 32 bits — the corruption classes the
//! fault-injection harness exercises.

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Slicing-by-8 tables: `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][b]` advances byte `b` through `k` additional zero
/// bytes, letting one iteration consume 8 input bytes. Generated at
/// compile time, so there is no runtime initialization.
const fn make_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static TABLES: [[u32; 256]; 8] = make_tables();

fn update_soft(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][c[4] as usize]
            ^ TABLES[2][c[5] as usize]
            ^ TABLES[1][c[6] as usize]
            ^ TABLES[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// # Safety
/// Caller must have verified SSE4.2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn update_hw(crc: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut chunks = data.chunks_exact(8);
    let mut crc64 = u64::from(crc);
    for c in &mut chunks {
        let word = [c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]];
        crc64 = _mm_crc32_u64(crc64, u64::from_le_bytes(word));
    }
    let mut crc = crc64 as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

/// CRC-32C of `data`.
#[inline]
pub fn crc32(data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // SAFETY: the runtime detection above proves SSE4.2 is
            // available, which is `update_hw`'s only precondition.
            return !unsafe { update_hw(!0, data) };
        }
    }
    !update_soft(!0, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC-32C check value.
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn hardware_and_software_agree() {
        // Both paths must produce identical checksums at every length
        // (covering the 8-byte chunk boundary and remainder handling),
        // or files would fail to validate across machines.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            let soft = !update_soft(!0, &data[..len]);
            assert_eq!(crc32(&data[..len]), soft, "mismatch at len {len}");
        }
    }

    #[test]
    fn detects_every_single_bit_flip() {
        let data = b"incremental view maintenance with triple lock factorization";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
