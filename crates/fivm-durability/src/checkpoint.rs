//! Incremental checkpoints: per-view snapshot files plus a manifest.
//!
//! A checkpoint `s` consists of:
//!
//! * view files `view-<node>-<fileseq>.vw`, one per materialized view
//!   — but only views *dirtied since the previous checkpoint* get new
//!   files; clean views are carried forward by referencing the file
//!   the previous manifest already pointed at (view files are
//!   immutable once written — a fresh `fileseq` is allocated for every
//!   write, never reused);
//! * a manifest `ckpt-<s>.man` naming the checkpoint LSN, the query
//!   fingerprint, a full symbol-table snapshot, and the
//!   `(node, fileseq)` pair for **every** materialized view.
//!
//! Commit protocol: view files are written and fsynced first, then the
//! manifest is written to a temp name, fsynced, and renamed into
//! place. A crash (or injected fault — every operation here goes
//! through the [`crate::vfs::Vfs`] seam) mid-checkpoint therefore
//! leaves either no new manifest (stray view files are
//! garbage-collected later) or a complete one. Recovery validates a
//! manifest by checksum *and* by opening every view file it
//! references, falling back to the previous manifest on any failure.

use crate::crc::crc32;
use crate::vfs::{write_all_at, StdVfs, Vfs};
use crate::wal::{self, FRAME_HEADER_LEN};
use crate::{DurabilityError, Result};
use fivm_core::{Codec, Relation, Semiring};
use std::path::{Path, PathBuf};

/// Magic prefix of manifest files.
pub const MANIFEST_MAGIC: &[u8; 8] = b"FIVMCKP1";
/// Magic prefix of view snapshot files.
pub const VIEW_MAGIC: &[u8; 8] = b"FIVMVIW1";

/// A decoded checkpoint manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    pub seq: u64,
    /// All updates with LSN ≤ this are reflected in the view files.
    pub lsn: u64,
    /// [`fivm_query::QueryDef::fingerprint`] of the engine that cut it.
    pub query_fingerprint: u64,
    /// Full symbol table at `lsn`, in intern-id order.
    pub symbols: Vec<String>,
    /// `(node id, view file seq)` for every materialized view.
    pub views: Vec<(usize, u64)>,
}

/// A manifest file discovered on disk (not yet validated).
#[derive(Debug, Clone)]
pub struct ManifestInfo {
    pub path: PathBuf,
    pub seq: u64,
}

/// List manifests of `dir`, sorted by sequence number (oldest first).
pub fn list_manifests(dir: &Path) -> Result<Vec<ManifestInfo>> {
    list_manifests_in(&StdVfs, dir)
}

/// [`list_manifests`] through an explicit [`Vfs`].
pub fn list_manifests_in(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<ManifestInfo>> {
    let mut out = Vec::new();
    for path in vfs.read_dir(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".man"))
        else {
            continue;
        };
        if let Ok(seq) = stem.parse() {
            out.push(ManifestInfo { path, seq });
        }
    }
    out.sort_by_key(|m| m.seq);
    Ok(out)
}

pub fn manifest_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq:06}.man"))
}

pub fn view_file_path(dir: &Path, node: usize, file_seq: u64) -> PathBuf {
    dir.join(format!("view-{node:04}-{file_seq:06}.vw"))
}

/// Read a magic-prefixed single-frame file, validating the checksum.
fn read_framed(vfs: &dyn Vfs, path: &Path, magic: &[u8; 8]) -> Result<Vec<u8>> {
    let bytes = vfs.read(path)?;
    let corrupt = |detail: &str| DurabilityError::Corrupt {
        file: path.to_path_buf(),
        detail: detail.into(),
    };
    if bytes.len() < 8 + FRAME_HEADER_LEN as usize || &bytes[0..8] != magic {
        return Err(corrupt("bad magic or truncated header"));
    }
    let len = wal::le_u32(&bytes, 8).ok_or_else(|| corrupt("truncated frame header"))? as usize;
    let crc = wal::le_u32(&bytes, 12).ok_or_else(|| corrupt("truncated frame header"))?;
    let payload = bytes
        .get(16..16 + len)
        .ok_or_else(|| corrupt("payload shorter than frame length"))?;
    if crc32(payload) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    Ok(payload.to_vec())
}

/// Write a magic-prefixed single-frame file at `path` and fsync it.
fn write_framed(vfs: &dyn Vfs, path: &Path, magic: &[u8; 8], payload: &[u8]) -> Result<()> {
    let mut file = vfs.create(path)?;
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    write_all_at(file.as_mut(), 0, &bytes)?;
    file.sync_all()?;
    Ok(())
}

/// Read and validate a manifest file.
pub fn read_manifest(path: &Path) -> Result<Manifest> {
    read_manifest_in(&StdVfs, path)
}

/// [`read_manifest`] through an explicit [`Vfs`].
pub fn read_manifest_in(vfs: &dyn Vfs, path: &Path) -> Result<Manifest> {
    let payload = read_framed(vfs, path, MANIFEST_MAGIC)?;
    let input = &mut payload.as_slice();
    let seq = fivm_core::codec::take_u64(input)?;
    let lsn = fivm_core::codec::take_u64(input)?;
    let query_fingerprint = fivm_core::codec::take_u64(input)?;
    let n_syms = fivm_core::codec::take_count(input, "manifest symbols", 4)?;
    let mut symbols = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        symbols.push(String::decode(input)?);
    }
    let n_views = fivm_core::codec::take_count(input, "manifest views", 12)?;
    let mut views = Vec::with_capacity(n_views);
    for _ in 0..n_views {
        let node = fivm_core::codec::take_u32(input)? as usize;
        let file_seq = fivm_core::codec::take_u64(input)?;
        views.push((node, file_seq));
    }
    Ok(Manifest {
        seq,
        lsn,
        query_fingerprint,
        symbols,
        views,
    })
}

/// Write a manifest via the temp-then-rename commit protocol.
pub fn write_manifest(dir: &Path, m: &Manifest) -> Result<()> {
    write_manifest_in(&StdVfs, dir, m)
}

/// [`write_manifest`] through an explicit [`Vfs`].
pub fn write_manifest_in(vfs: &dyn Vfs, dir: &Path, m: &Manifest) -> Result<()> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&m.seq.to_le_bytes());
    payload.extend_from_slice(&m.lsn.to_le_bytes());
    payload.extend_from_slice(&m.query_fingerprint.to_le_bytes());
    payload.extend_from_slice(&(m.symbols.len() as u32).to_le_bytes());
    for s in &m.symbols {
        s.encode(&mut payload);
    }
    payload.extend_from_slice(&(m.views.len() as u32).to_le_bytes());
    for &(node, file_seq) in &m.views {
        payload.extend_from_slice(&(node as u32).to_le_bytes());
        payload.extend_from_slice(&file_seq.to_le_bytes());
    }
    let tmp = dir.join(format!("ckpt-{:06}.tmp", m.seq));
    write_framed(vfs, &tmp, MANIFEST_MAGIC, &payload)?;
    vfs.rename(&tmp, &manifest_path(dir, m.seq))?;
    Ok(())
}

/// Write one view snapshot file (fsynced).
pub fn write_view_file<R: Semiring + Codec>(
    dir: &Path,
    node: usize,
    file_seq: u64,
    rel: &Relation<R>,
) -> Result<()> {
    write_view_file_in(&StdVfs, dir, node, file_seq, rel)
}

/// [`write_view_file`] through an explicit [`Vfs`].
pub fn write_view_file_in<R: Semiring + Codec>(
    vfs: &dyn Vfs,
    dir: &Path,
    node: usize,
    file_seq: u64,
    rel: &Relation<R>,
) -> Result<()> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(node as u32).to_le_bytes());
    rel.encode(&mut payload);
    write_framed(
        vfs,
        &view_file_path(dir, node, file_seq),
        VIEW_MAGIC,
        &payload,
    )
}

/// Read and validate one view snapshot file.
pub fn read_view_file<R: Semiring + Codec>(
    dir: &Path,
    node: usize,
    file_seq: u64,
) -> Result<Relation<R>> {
    read_view_file_in(&StdVfs, dir, node, file_seq)
}

/// [`read_view_file`] through an explicit [`Vfs`].
pub fn read_view_file_in<R: Semiring + Codec>(
    vfs: &dyn Vfs,
    dir: &Path,
    node: usize,
    file_seq: u64,
) -> Result<Relation<R>> {
    let path = view_file_path(dir, node, file_seq);
    let payload = read_framed(vfs, &path, VIEW_MAGIC)?;
    let input = &mut payload.as_slice();
    let stored_node = fivm_core::codec::take_u32(input)? as usize;
    if stored_node != node {
        return Err(DurabilityError::Corrupt {
            file: path,
            detail: format!("view file claims node {stored_node}, expected {node}"),
        });
    }
    Ok(Relation::decode(input)?)
}

/// Garbage-collect checkpoints: keep the newest `retained` manifests
/// that are actually *restorable* (manifest checksums and every view
/// file it references exists), delete everything older or unrestorable,
/// plus any view file no kept manifest references (including stray
/// files from checkpoints that never committed). Returns the LSN of
/// the **oldest kept** manifest — the safe WAL truncation cutoff: even
/// if the newest checkpoint is later lost, recovery can still start
/// from the oldest kept one plus the surviving log tail.
///
/// Unrestorable manifests do not count toward `retained` and never
/// anchor the cutoff: a corrupt retained manifest would otherwise hold
/// the truncation watermark at an LSN recovery can't actually reach
/// (or, worse, let the WAL be truncated past the newest manifest that
/// *does* restore).
pub fn gc(dir: &Path, retained: usize) -> Result<Option<u64>> {
    gc_in(&StdVfs, dir, retained)
}

/// [`gc`] through an explicit [`Vfs`].
pub fn gc_in(vfs: &dyn Vfs, dir: &Path, retained: usize) -> Result<Option<u64>> {
    let manifests = list_manifests_in(vfs, dir)?;
    if manifests.is_empty() {
        return Ok(None);
    }
    // Walk newest → oldest, keeping up to `retained` restorable
    // manifests; everything else (older, corrupt, or missing a view
    // file) is deleted.
    let retained = retained.max(1);
    let mut kept: Vec<(&ManifestInfo, Manifest)> = Vec::with_capacity(retained);
    let mut doomed: Vec<&ManifestInfo> = Vec::new();
    for info in manifests.iter().rev() {
        if kept.len() >= retained {
            doomed.push(info);
            continue;
        }
        let restorable = read_manifest_in(vfs, &info.path).ok().filter(|m| {
            m.views
                .iter()
                .all(|&(node, file_seq)| vfs.is_file(&view_file_path(dir, node, file_seq)))
        });
        match restorable {
            Some(m) => kept.push((info, m)),
            None => doomed.push(info),
        }
    }
    let mut referenced: Vec<PathBuf> = Vec::new();
    for (_, m) in &kept {
        for &(node, file_seq) in &m.views {
            referenced.push(view_file_path(dir, node, file_seq));
        }
    }
    for info in doomed {
        vfs.remove_file(&info.path)?;
    }
    for path in vfs.read_dir(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let is_view = name.starts_with("view-") && name.ends_with(".vw");
        let is_stale_tmp = name.starts_with("ckpt-") && name.ends_with(".tmp");
        if (is_view && !referenced.contains(&path)) || is_stale_tmp {
            vfs.remove_file(&path)?;
        }
    }
    // `kept` is newest-first; the cutoff is the oldest kept manifest.
    Ok(kept.last().map(|(_, m)| m.lsn))
}
