//! The storage seam: every byte `fivm-durability` reads or writes goes
//! through a [`Vfs`], so the fault-injection suite can fail any
//! individual storage operation *mid-run* — not just damage files
//! between runs the way the crash-point harness does.
//!
//! Two implementations ship:
//!
//! * [`StdVfs`] — a passthrough to `std::fs`. The indirection is one
//!   dynamic dispatch per *file operation* (a 256 KiB group-commit
//!   flush is one call), never per byte, so the logged hot path costs
//!   nothing measurable (the fig11 overhead budget still holds).
//! * [`FaultVfs`] — wraps the real filesystem and injects deterministic
//!   faults: EIO, ENOSPC, short writes (some bytes land, then the call
//!   fails), fsync failure, rename failure, and torn-write-then-crash
//!   (a write lands a garbled prefix and the "device" goes away). Two
//!   trigger modes compose: one-shot faults at an exact operation index
//!   (for exhaustive every-call-site sweeps) and a seeded per-operation
//!   probability (for the chaos harness). All scheduling is
//!   deterministic in the seed.
//!
//! The engine-side response policy — transient-vs-fatal classification,
//! bounded retry, degraded mode, healing — lives in
//! [`crate::DurableEngine`]; see `docs/fault-injection.md`.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// An open writable file behind the seam.
///
/// Writes are positioned (`write_at`) rather than cursor-based so the
/// caller can re-write a suspect tail after a failed or short write
/// without reasoning about where a half-failed operation left the
/// cursor. Short writes are allowed (return `Ok(n)` with `n < buf
/// .len()`); callers loop.
pub trait VfsFile: Send {
    /// Write `buf` at absolute offset `off`; returns bytes written.
    fn write_at(&mut self, off: u64, buf: &[u8]) -> io::Result<usize>;
    /// Flush file *data* to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flush data and metadata to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The filesystem operations the durability layer needs, behind a
/// trait object so tests can interpose faults at every call site.
pub trait Vfs: Send + Sync {
    /// Create a file that must not already exist (WAL segments — a
    /// name collision means a sequencing bug, not a retry case).
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create or truncate a file (checkpoint view files / manifests,
    /// whose names may be re-tried after an aborted attempt).
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Current length of a file.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Truncate (or extend) a file to `len` bytes.
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Atomically rename `from` to `to` (the manifest commit point).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Entries of a directory (files only need their paths).
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Create a directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Whether `path` exists as a file (non-faultable existence probe;
    /// GC uses it to decide what a manifest can still restore).
    fn is_file(&self, path: &Path) -> bool;
}

// ---------------------------------------------------------------------
// StdVfs
// ---------------------------------------------------------------------

/// Zero-cost passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

struct StdFile(std::fs::File);

impl VfsFile for StdFile {
    fn write_at(&mut self, off: u64, buf: &[u8]) -> io::Result<usize> {
        self.0.seek(SeekFrom::Start(off))?;
        self.0.write(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for StdVfs {
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        Ok(Box::new(StdFile(f)))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(StdFile(f)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(len)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
    fn is_file(&self, path: &Path) -> bool {
        path.is_file()
    }
}

// ---------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------

/// What a single injected fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with `EIO`; no bytes change.
    Eio,
    /// The operation fails with `ENOSPC`; no bytes change.
    Enospc,
    /// A write lands only a prefix of its bytes, then fails with `EIO`
    /// — the classic short write. One-shot faults can pin the exact
    /// prefix length; random faults pick one from the seed.
    ShortWrite,
    /// `sync_data`/`sync_all` fails with `EIO`. Per fsync semantics the
    /// caller must assume every unsynced byte is now in unknown state.
    SyncFail,
    /// `rename` fails with `EIO`; the destination is untouched.
    RenameFail,
    /// A write lands a garbled prefix (last landed byte flipped) and
    /// every subsequent operation fails: the device is gone. Pair with
    /// dropping the engine to model a torn-write-then-crash.
    TornWrite,
}

impl FaultKind {
    fn to_error(self) -> io::Error {
        match self {
            // EIO = 5, ENOSPC = 28 on every Unix this builds on.
            FaultKind::Enospc => io::Error::from_raw_os_error(28),
            _ => io::Error::from_raw_os_error(5),
        }
    }
}

/// Operation categories, used to decide which fault kinds apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Write,
    Sync,
    Rename,
    Other,
}

#[derive(Debug, Clone, Copy)]
struct OneShot {
    /// Absolute operation index (see [`FaultVfs::op_count`]).
    at: u64,
    kind: FaultKind,
    /// For `ShortWrite`: exact bytes to land before failing.
    short_len: Option<usize>,
}

#[derive(Debug, Default)]
struct FaultState {
    /// Operations observed so far (always counted, even when disabled,
    /// so sweeps can locate call sites with faults off).
    ops: u64,
    enabled: bool,
    one_shots: Vec<OneShot>,
    /// Seeded random faults: probability per mille per operation.
    random_permille: u32,
    /// Remaining random-fault budget (so chaos runs eventually drain).
    random_budget: u64,
    rng: u64,
    injected: u64,
    /// Set by a `TornWrite`: the device is gone, everything fails.
    frozen: bool,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fault-injecting [`Vfs`] wrapping the real filesystem. Clones share
/// the fault schedule, so a test keeps one handle to steer faults while
/// the engine holds another.
#[derive(Clone, Default)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// No faults armed (pure passthrough until configured).
    pub fn new() -> Self {
        FaultVfs::default()
    }

    /// Seeded random faults: each fault-eligible operation fails with
    /// probability `permille`/1000, drawing the kind from the seed,
    /// until `budget` faults have fired. Deterministic in `seed`.
    pub fn seeded(seed: u64, permille: u32, budget: u64) -> Self {
        let vfs = FaultVfs::new();
        {
            let mut st = vfs.lock();
            st.enabled = true;
            st.random_permille = permille;
            st.random_budget = budget;
            st.rng = seed ^ 0x5851_f42d_4c95_7f2d;
        }
        vfs
    }

    fn lock(&self) -> MutexGuard<'_, FaultState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Arm a one-shot fault on the `n`-th fault-eligible operation from
    /// now (0 = the next one).
    pub fn fail_nth(&self, n: u64, kind: FaultKind) {
        let mut st = self.lock();
        let at = st.ops + n;
        st.enabled = true;
        st.one_shots.push(OneShot {
            at,
            kind,
            short_len: None,
        });
    }

    /// Arm a one-shot short write on the `n`-th operation from now that
    /// lands exactly `short_len` bytes before failing.
    pub fn fail_nth_short(&self, n: u64, short_len: usize) {
        let mut st = self.lock();
        let at = st.ops + n;
        st.enabled = true;
        st.one_shots.push(OneShot {
            at,
            kind: FaultKind::ShortWrite,
            short_len: Some(short_len),
        });
    }

    /// Master switch: with `false` the wrapper is a pure passthrough
    /// (operations are still counted). A frozen device stays frozen.
    pub fn set_enabled(&self, enabled: bool) {
        self.lock().enabled = enabled;
    }

    /// Thaw a device frozen by a [`FaultKind::TornWrite`].
    pub fn unfreeze(&self) {
        self.lock().frozen = false;
    }

    /// Total fault-eligible operations observed so far. Sweeps measure
    /// a region's operation count with faults disabled, then arm
    /// one-shots at each index inside it.
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.lock().injected
    }

    /// Decide whether the current operation faults. Counts the op.
    fn draw(&self, class: OpClass) -> Option<(FaultKind, Option<usize>)> {
        let mut st = self.lock();
        let op = st.ops;
        st.ops += 1;
        if st.frozen {
            st.injected += 1;
            return Some((FaultKind::Eio, None));
        }
        if !st.enabled {
            return None;
        }
        if let Some(i) = st.one_shots.iter().position(|o| o.at == op) {
            let shot = st.one_shots.swap_remove(i);
            st.injected += 1;
            return Some(coerce(shot.kind, shot.short_len, class));
        }
        if st.random_permille > 0 && st.random_budget > 0 {
            let roll = splitmix64(&mut st.rng);
            if roll % 1000 < st.random_permille as u64 {
                st.random_budget -= 1;
                st.injected += 1;
                let kind = match splitmix64(&mut st.rng) % 6 {
                    0 => FaultKind::Eio,
                    1 => FaultKind::Enospc,
                    2 => FaultKind::ShortWrite,
                    3 => FaultKind::SyncFail,
                    4 => FaultKind::RenameFail,
                    // TornWrite freezes the device; random schedules
                    // use plain EIO for the final slot so a chaos run
                    // keeps exercising retry/heal. Torn-write-then-
                    // crash is driven explicitly via `fail_nth`.
                    _ => FaultKind::Eio,
                };
                return Some(coerce(kind, None, class));
            }
        }
        None
    }

    /// Fail the whole call (non-write ops) if a fault fires.
    fn gate(&self, class: OpClass) -> io::Result<()> {
        match self.draw(class) {
            Some((kind, _)) => Err(kind.to_error()),
            None => Ok(()),
        }
    }

    fn freeze(&self) {
        self.lock().frozen = true;
    }
}

/// Map a drawn fault kind onto the operation class it fired against:
/// a kind that cannot apply (a short write on a rename, say) degrades
/// to a plain EIO so every armed fault observably fires.
fn coerce(kind: FaultKind, short_len: Option<usize>, class: OpClass) -> (FaultKind, Option<usize>) {
    let fits = match kind {
        FaultKind::ShortWrite | FaultKind::TornWrite => class == OpClass::Write,
        FaultKind::SyncFail => class == OpClass::Sync,
        FaultKind::RenameFail => class == OpClass::Rename,
        FaultKind::Eio | FaultKind::Enospc => true,
    };
    if fits {
        (kind, short_len)
    } else {
        (FaultKind::Eio, None)
    }
}

/// A write-side file handle that consults the shared fault schedule.
struct FaultFile {
    inner: Box<dyn VfsFile>,
    vfs: FaultVfs,
}

impl VfsFile for FaultFile {
    fn write_at(&mut self, off: u64, buf: &[u8]) -> io::Result<usize> {
        match self.vfs.draw(OpClass::Write) {
            None => self.inner.write_at(off, buf),
            Some((FaultKind::ShortWrite, short_len)) => {
                let n = short_len
                    .unwrap_or(buf.len() / 2)
                    .min(buf.len().saturating_sub(1));
                if n > 0 {
                    write_fully(self.inner.as_mut(), off, &buf[..n])?;
                }
                Err(io::Error::other(format!(
                    "injected short write ({n}/{} bytes)",
                    buf.len()
                )))
            }
            Some((FaultKind::TornWrite, _)) => {
                // Land a garbled prefix, then the device goes away.
                let n = (buf.len() / 2).max(1).min(buf.len());
                let mut torn = buf[..n].to_vec();
                if let Some(last) = torn.last_mut() {
                    *last ^= 0xff;
                }
                let _ = write_fully(self.inner.as_mut(), off, &torn);
                self.vfs.freeze();
                Err(io::Error::other("injected torn write; device frozen"))
            }
            Some((kind, _)) => Err(kind.to_error()),
        }
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.vfs.gate(OpClass::Sync)?;
        self.inner.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.vfs.gate(OpClass::Sync)?;
        self.inner.sync_all()
    }
}

fn write_fully(f: &mut dyn VfsFile, mut off: u64, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        let n = f.write_at(off, buf)?;
        if n == 0 {
            return Err(io::ErrorKind::WriteZero.into());
        }
        off += n as u64;
        buf = &buf[n..];
    }
    Ok(())
}

impl Vfs for FaultVfs {
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate(OpClass::Other)?;
        let inner = StdVfs.create_new(path)?;
        Ok(Box::new(FaultFile {
            inner,
            vfs: self.clone(),
        }))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate(OpClass::Other)?;
        let inner = StdVfs.create(path)?;
        Ok(Box::new(FaultFile {
            inner,
            vfs: self.clone(),
        }))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.gate(OpClass::Other)?;
        StdVfs.read(path)
    }
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.gate(OpClass::Other)?;
        StdVfs.file_len(path)
    }
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        self.gate(OpClass::Write)?;
        StdVfs.set_len(path, len)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(OpClass::Rename)?;
        StdVfs.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate(OpClass::Other)?;
        StdVfs.remove_file(path)
    }
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.gate(OpClass::Other)?;
        StdVfs.read_dir(dir)
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.gate(OpClass::Other)?;
        StdVfs.create_dir_all(dir)
    }
    fn is_file(&self, path: &Path) -> bool {
        // Existence probes are not fault-eligible: GC's restorability
        // check must reflect the actual directory.
        StdVfs.is_file(path)
    }
}

/// Write `buf` fully at `off`, looping over short writes.
pub(crate) fn write_all_at(f: &mut dyn VfsFile, off: u64, buf: &[u8]) -> io::Result<()> {
    write_fully(f, off, buf)
}
