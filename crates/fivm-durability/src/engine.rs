//! [`DurableEngine`]: an [`IvmEngine`] whose applied deltas are
//! write-ahead logged and whose materialized views are periodically
//! checkpointed, recoverable after a crash to exactly the prefix of
//! updates that reached disk.
//!
//! The logical clock is the engine's own `updates_applied` counter
//! (one LSN per applied delta). Recovery = newest valid checkpoint +
//! replay of the log tail; because delta propagation is deterministic
//! (bit-identical across worker counts for exact rings — the PR 3
//! parallel-determinism guarantee), the recovered views are
//! byte-identical to an uninterrupted engine that applied the same
//! prefix.
//!
//! # Storage-failure policy
//!
//! Every file operation goes through the [`crate::vfs::Vfs`] seam, and
//! the engine classifies failures (see
//! [`DurabilityError::is_transient`]) and responds:
//!
//! * **transient faults on the logging path** (EIO/ENOSPC/short write/
//!   failed fsync) are retried up to [`DurabilityConfig::max_retries`]
//!   times with exponential backoff, each attempt from a clean rolled-
//!   back frame boundary;
//! * **persistent WAL failure** transitions the engine into degraded
//!   read-only mode ([`EngineMode::Degraded`]): writes are rejected
//!   with [`DurabilityError::Degraded`] carrying the exact
//!   `durable_lsn` watermark, while readers keep pinning the last
//!   published epoch and subscribers keep draining;
//! * **checkpoint-file failures** (view files, manifest, GC) never
//!   degrade: the WAL is intact and the previous checkpoint stands, so
//!   the attempt is deferred and retried later;
//! * [`DurableEngine::try_heal`] rolls the WAL over to a fresh segment,
//!   re-persisting the retained group-commit buffer — no acked update
//!   is lost — and returns the engine to active mode.
//!
//! The full state machine is documented in `docs/fault-injection.md`.

use crate::checkpoint::{self, Manifest};
use crate::vfs::{StdVfs, Vfs};
use crate::wal::{self, DeltaLog, SegmentInfo, WalRecord};
use crate::{DurabilityConfig, DurabilityError, Result};
use fivm_core::{Codec, Delta, FxHashMap, Relation, Ring};
use fivm_engine::snapshot::{EngineSnapshot, ServingStats, SnapshotPublisher, SnapshotReader};
use fivm_engine::subscribe::{Subscriber, SubscriptionHub};
use fivm_engine::IvmEngine;
use fivm_query::{NodeId, RelIndex};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What recovery found and did. The fault-injection harness compares
/// the recovered engine against a reference that applied exactly
/// `1..=last_lsn`.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// No checkpoint was used (fresh directory, or replay from LSN 0).
    pub cold_start: bool,
    /// Sequence number of the checkpoint restored from.
    pub checkpoint_seq: Option<u64>,
    /// LSN the restored checkpoint covered (0 if none).
    pub checkpoint_lsn: u64,
    /// Last update reflected in the recovered engine.
    pub last_lsn: u64,
    /// Updates replayed from the log tail.
    pub replayed_updates: u64,
    /// Torn-tail bytes discarded from the final segment.
    pub truncated_bytes: u64,
    /// Newest-first manifests that failed validation and were skipped.
    pub manifests_skipped: usize,
    /// Mid-log segments skipped because the next segment re-carried
    /// their records (overlap left by an interrupted heal rollover).
    pub segments_skipped: usize,
}

/// Whether the engine accepts writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Normal operation: writes logged and applied.
    Active,
    /// Persistent WAL failure: writes rejected, reads still served
    /// from the last published epoch. See [`DurableEngine::try_heal`].
    Degraded,
}

/// What a successful [`DurableEngine::try_heal`] did.
#[derive(Debug, Clone, Default)]
pub struct HealReport {
    /// `false` when the engine was already active (no-op heal).
    pub healed: bool,
    /// Sequence number of the fresh WAL segment.
    pub new_segment_seq: u64,
    /// Retained group-commit bytes re-persisted into it (the acked-
    /// but-undurable window that would otherwise have been lost).
    pub carried_bytes: u64,
    /// Whether the failed segment's suspect tail was truncated.
    pub old_tail_truncated: bool,
    /// Whether the post-heal checkpoint committed.
    pub checkpointed: bool,
    /// Why it didn't (heal still succeeded; the WAL is whole again).
    pub checkpoint_error: Option<String>,
}

/// Counters for the storage-failure machinery.
#[derive(Debug, Clone, Default)]
pub struct DurabilityStats {
    /// Transient-fault retries performed on the logging path.
    pub io_retries: u64,
    /// Successful heals (degraded → active transitions).
    pub heals: u64,
    /// Auto-checkpoints deferred because the file phase failed.
    pub deferred_checkpoints: u64,
    /// Rendering of the most recent checkpoint-phase failure.
    pub last_checkpoint_error: Option<String>,
}

struct DegradedState {
    cause: DurabilityError,
}

/// A write-ahead-logged, checkpointed IVM engine.
pub struct DurableEngine<R: Ring> {
    engine: IvmEngine<R>,
    dir: PathBuf,
    cfg: DurabilityConfig,
    vfs: Arc<dyn Vfs>,
    log: DeltaLog,
    /// Reused scratch for record encoding — the append path allocates
    /// nothing once this and the log's group-commit buffer are warm.
    payload_buf: Vec<u8>,
    /// Symbol-table prefix already durable (in the log or a snapshot).
    symbols_logged: usize,
    last_lsn: u64,
    /// Everything at or below this LSN survives a crash (fsynced log
    /// prefix or checkpoint) — the exact acknowledgement watermark of
    /// the configured [`crate::SyncPolicy`].
    durable_lsn: u64,
    last_ckpt_lsn: u64,
    next_ckpt_seq: u64,
    next_file_seq: u64,
    /// Per-node view-store version at the last checkpoint — unchanged
    /// versions let the next checkpoint skip re-snapshotting the view.
    view_versions: FxHashMap<usize, u64>,
    /// Per-node snapshot file currently on disk.
    view_files: FxHashMap<usize, u64>,
    /// Set on persistent WAL failure; cleared by a successful heal.
    degraded: Option<DegradedState>,
    /// Next LSN at which a deferred auto-checkpoint is reattempted.
    ckpt_retry_at: u64,
    stats: DurabilityStats,
    /// Serving layer: epoch publisher + subscription hub. Constructed
    /// *after* recovery completes, publishing the recovered state as
    /// epoch 0 — readers always pin a fully recovered, consistent
    /// image, never a mid-replay one.
    publisher: SnapshotPublisher<R>,
    hub: SubscriptionHub<R>,
}

impl<R: Ring + Codec> DurableEngine<R> {
    /// Start durability for `engine` in an empty (or nonexistent)
    /// directory: writes an initial checkpoint of the engine's current
    /// state (so a pre-`load`ed engine is captured too) and opens the
    /// first log segment.
    pub fn create(
        dir: impl AsRef<Path>,
        engine: IvmEngine<R>,
        cfg: DurabilityConfig,
    ) -> Result<Self> {
        Self::create_with_vfs(dir, engine, cfg, Arc::new(StdVfs))
    }

    /// [`DurableEngine::create`] through an explicit [`Vfs`].
    pub fn create_with_vfs(
        dir: impl AsRef<Path>,
        engine: IvmEngine<R>,
        cfg: DurabilityConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        vfs.create_dir_all(dir)?;
        if !checkpoint::list_manifests_in(vfs.as_ref(), dir)?.is_empty()
            || !wal::list_segments_in(vfs.as_ref(), dir)?.is_empty()
        {
            return Err(DurabilityError::Mismatch(format!(
                "{} already holds durability state; use open() to recover",
                dir.display()
            )));
        }
        let last_lsn = engine.updates_applied();
        let log = DeltaLog::create(
            vfs.clone(),
            dir,
            0,
            last_lsn + 1,
            cfg.segment_bytes,
            cfg.flush_bytes,
            cfg.sync,
        )?;
        let publisher = SnapshotPublisher::new(&engine);
        let mut this = DurableEngine {
            engine,
            dir: dir.to_path_buf(),
            cfg,
            vfs,
            log,
            payload_buf: Vec::with_capacity(4096),
            symbols_logged: 0,
            last_lsn,
            durable_lsn: 0,
            last_ckpt_lsn: 0,
            next_ckpt_seq: 0,
            next_file_seq: 0,
            view_versions: FxHashMap::default(),
            view_files: FxHashMap::default(),
            degraded: None,
            ckpt_retry_at: 0,
            stats: DurabilityStats::default(),
            publisher,
            hub: SubscriptionHub::new(),
        };
        this.checkpoint()?;
        Ok(this)
    }

    /// Open a durability directory: recover from the newest valid
    /// checkpoint plus the log tail (truncating a torn final record),
    /// or behave like [`DurableEngine::create`] on an empty directory.
    /// `engine` must be freshly built for the same query (it is the
    /// recovery target); pre-applied updates would desync the LSN
    /// clock and are rejected.
    pub fn open(
        dir: impl AsRef<Path>,
        engine: IvmEngine<R>,
        cfg: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport)> {
        Self::open_with_vfs(dir, engine, cfg, Arc::new(StdVfs))
    }

    /// [`DurableEngine::open`] through an explicit [`Vfs`].
    pub fn open_with_vfs(
        dir: impl AsRef<Path>,
        engine: IvmEngine<R>,
        cfg: DurabilityConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(Self, RecoveryReport)> {
        let dir = dir.as_ref();
        vfs.create_dir_all(dir)?;
        let manifests = checkpoint::list_manifests_in(vfs.as_ref(), dir)?;
        let segments = wal::list_segments_in(vfs.as_ref(), dir)?;
        if manifests.is_empty() && segments.is_empty() {
            let this = Self::create_with_vfs(dir, engine, cfg, vfs)?;
            let report = RecoveryReport {
                cold_start: true,
                last_lsn: this.last_lsn,
                ..Default::default()
            };
            return Ok((this, report));
        }
        if engine.updates_applied() != 0 {
            return Err(DurabilityError::Mismatch(
                "recovery target engine has already applied updates".into(),
            ));
        }
        Self::recover(dir, engine, cfg, vfs, manifests, segments)
    }

    fn recover(
        dir: &Path,
        mut engine: IvmEngine<R>,
        cfg: DurabilityConfig,
        vfs: Arc<dyn Vfs>,
        manifests: Vec<checkpoint::ManifestInfo>,
        mut segments: Vec<SegmentInfo>,
    ) -> Result<(Self, RecoveryReport)> {
        let mut report = RecoveryReport::default();
        let fingerprint = engine.query().fingerprint();

        // Newest valid checkpoint: manifest must checksum, match the
        // engine's query, and have every referenced view file intact.
        type LoadedViews<R> = Vec<(usize, Relation<R>)>;
        let mut chosen: Option<(Manifest, LoadedViews<R>)> = None;
        for info in manifests.iter().rev() {
            let m = match checkpoint::read_manifest_in(vfs.as_ref(), &info.path) {
                Ok(m) => m,
                Err(_) => {
                    report.manifests_skipped += 1;
                    continue;
                }
            };
            if m.query_fingerprint != fingerprint {
                return Err(DurabilityError::Mismatch(format!(
                    "checkpoint {} was cut from a different query (fingerprint {:#x}, engine {:#x})",
                    info.seq, m.query_fingerprint, fingerprint
                )));
            }
            let mut snapshots = Vec::with_capacity(m.views.len());
            let mut ok = true;
            for &(node, file_seq) in &m.views {
                match checkpoint::read_view_file_in::<R>(vfs.as_ref(), dir, node, file_seq) {
                    Ok(rel) => snapshots.push((node, rel)),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                chosen = Some((m, snapshots));
                break;
            }
            report.manifests_skipped += 1;
        }

        let (ckpt_lsn, view_files) = match &chosen {
            Some((m, snapshots)) => {
                report.checkpoint_seq = Some(m.seq);
                report.checkpoint_lsn = m.lsn;
                restore_symbols(&engine, &m.symbols)?;
                engine.restore_views(snapshots, m.lsn);
                (m.lsn, m.views.iter().copied().collect::<FxHashMap<_, _>>())
            }
            None => {
                // No usable checkpoint. A full replay is only sound if
                // the log still reaches back to the beginning.
                report.cold_start = true;
                if let Some(first) = segments.first() {
                    if first.first_lsn > 1 {
                        return Err(DurabilityError::Corrupt {
                            file: first.path.clone(),
                            detail: format!(
                                "no valid checkpoint and the log starts at LSN {} — \
                                 earlier segments were truncated",
                                first.first_lsn
                            ),
                        });
                    }
                }
                (0, FxHashMap::default())
            }
        };
        drop(chosen);

        // Replay the tail. Start at the last segment that begins at or
        // before the checkpoint boundary; older segments are fully
        // covered by the restored snapshot.
        let mut last_lsn = ckpt_lsn;
        let start = match segments.iter().rposition(|s| s.first_lsn <= ckpt_lsn + 1) {
            Some(i) => i,
            None if segments.is_empty() => 0,
            None => {
                return Err(DurabilityError::Corrupt {
                    file: segments[0].path.clone(),
                    detail: format!(
                        "log does not reach back to checkpoint LSN {ckpt_lsn} \
                         (oldest surviving segment starts at {})",
                        segments[0].first_lsn
                    ),
                });
            }
        };
        let schemas: Vec<fivm_core::Schema> = engine
            .query()
            .relations
            .iter()
            .map(|r| r.schema.clone())
            .collect();
        for (i, info) in segments.iter().enumerate().skip(start) {
            let is_last = i + 1 == segments.len();
            // Whether skipping the rest of this segment leaves no LSN
            // gap: the next segment re-carries the records (the
            // overlap an interrupted heal rollover leaves behind).
            let next_continues = |last: u64| !is_last && segments[i + 1].first_lsn <= last + 1;
            let (records, torn_at) = match wal::read_segment_in::<R>(vfs.as_ref(), info, &schemas) {
                Ok(r) => r,
                // A final segment too short or garbled to even carry
                // its header is a torn segment creation: drop it.
                Err(DurabilityError::Corrupt { .. }) if is_last => {
                    report.truncated_bytes += vfs.file_len(&info.path)?;
                    vfs.remove_file(&info.path)?;
                    segments.pop();
                    break;
                }
                // A garbled mid-log segment whose successor continues
                // seamlessly carries nothing replay needs: skip it.
                Err(DurabilityError::Corrupt { .. }) if next_continues(last_lsn) => {
                    report.segments_skipped += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            for rec in records {
                match rec {
                    WalRecord::Symbols { first_id, syms } => {
                        replay_symbols(&engine, first_id, &syms)?;
                    }
                    WalRecord::Update { lsn, rel, delta } => {
                        // `lsn <= last_lsn` covers both the checkpoint
                        // prefix and duplicate records in a heal-
                        // rollover overlap — replay is idempotent
                        // because the log is deterministic.
                        if lsn <= last_lsn {
                            continue;
                        }
                        if lsn != last_lsn + 1 {
                            return Err(DurabilityError::Corrupt {
                                file: info.path.clone(),
                                detail: format!(
                                    "LSN gap in replay: expected {}, found {lsn}",
                                    last_lsn + 1
                                ),
                            });
                        }
                        engine.apply(rel, &delta);
                        last_lsn = lsn;
                        report.replayed_updates += 1;
                    }
                }
            }
            if let Some(valid_len) = torn_at {
                if is_last {
                    let total = vfs.file_len(&info.path)?;
                    report.truncated_bytes += total - valid_len;
                    vfs.set_len(&info.path, valid_len)?;
                } else if next_continues(last_lsn) {
                    // The suspect tail of a healed-over segment: its
                    // records (if it held any) are re-carried by the
                    // next segment.
                    report.segments_skipped += 1;
                } else {
                    return Err(DurabilityError::Corrupt {
                        file: info.path.clone(),
                        detail: format!("invalid record at byte {valid_len} mid-log"),
                    });
                }
            }
        }
        report.last_lsn = last_lsn;
        debug_assert_eq!(engine.updates_applied(), last_lsn);

        // Continue appending into a fresh segment after the tail.
        let next_seq = segments.last().map_or(0, |s| s.seq + 1);
        let log = DeltaLog::create(
            vfs.clone(),
            dir,
            next_seq,
            last_lsn + 1,
            cfg.segment_bytes,
            cfg.flush_bytes,
            cfg.sync,
        )?;
        let next_ckpt_seq = manifests.last().map_or(0, |m| m.seq + 1);
        let next_file_seq = max_view_file_seq(vfs.as_ref(), dir)?.map_or(0, |s| s + 1);
        let symbols_logged = engine.query().catalog.symbols().len();
        let view_versions = engine
            .materialized_nodes()
            .into_iter()
            .filter_map(|n| engine.view_version(n).map(|v| (n, v)))
            .collect();
        // Recovery lands in a published epoch: readers pinning right
        // after `open` observe exactly the recovered prefix.
        let publisher = SnapshotPublisher::new(&engine);
        let mut this = DurableEngine {
            engine,
            dir: dir.to_path_buf(),
            cfg,
            vfs,
            log,
            payload_buf: Vec::with_capacity(4096),
            symbols_logged,
            last_lsn,
            // Everything recovered came off disk, so the full prefix is
            // durable again the moment `open` returns.
            durable_lsn: last_lsn,
            last_ckpt_lsn: ckpt_lsn,
            next_ckpt_seq,
            next_file_seq,
            view_versions,
            view_files,
            degraded: None,
            ckpt_retry_at: 0,
            stats: DurabilityStats::default(),
            publisher,
            hub: SubscriptionHub::new(),
        };
        if this.view_files.is_empty() {
            // Cold replay had no checkpoint to carry forward — cut one
            // now so the directory always holds a restorable snapshot.
            this.view_versions.clear();
            this.checkpoint()?;
        }
        Ok((this, report))
    }

    /// Log `delta`, then apply it to the engine. The record (and any
    /// newly interned symbols) is buffered; when it becomes *durable*
    /// (fsynced) is governed by [`crate::SyncPolicy`] — see
    /// [`Self::durable_lsn`] for the current watermark.
    ///
    /// # Post-error contract
    ///
    /// Transient storage faults are retried ([`DurabilityConfig::
    /// max_retries`]), each attempt from a rolled-back frame boundary.
    /// If logging ultimately fails, **nothing happened**: the delta was
    /// not applied, the log holds no partial record, and the engine is
    /// degraded — the returned [`DurabilityError::Degraded`] carries
    /// the exact watermark. A failure *after* the delta was applied
    /// (the sync-policy fsync at the acknowledgement boundary) returns
    /// `Ok` — the update is acked and retained in memory + buffer —
    /// but degrades the engine, so the *next* write is rejected and
    /// `durable_lsn` stops advancing until [`Self::try_heal`].
    pub fn apply(&mut self, rel: RelIndex, delta: &Delta<R>) -> Result<()> {
        self.ensure_active()?;
        let lsn = self.last_lsn + 1;
        let mut attempt = 0u32;
        loop {
            match self.try_log(lsn, rel, delta) {
                Ok(()) => break,
                Err(e) if e.is_transient() && attempt < self.cfg.max_retries => {
                    attempt += 1;
                    self.stats.io_retries += 1;
                    self.backoff(attempt);
                }
                Err(e) => return Err(self.enter_degraded(e)),
            }
        }
        self.engine.apply(rel, delta);
        self.last_lsn = lsn;
        debug_assert_eq!(self.engine.updates_applied(), lsn);
        // Acknowledgement boundary: the sync policy decides whether
        // this update's durability is sealed now.
        if self.log.note_update() {
            match self.sync_with_retry() {
                Ok(()) => self.durable_lsn = lsn,
                Err(e) => {
                    // The update is applied and acked; it lives in the
                    // retained buffer until a heal re-persists it.
                    self.enter_degraded(e);
                    return Ok(());
                }
            }
        }
        if self.cfg.checkpoint_every > 0
            && lsn - self.last_ckpt_lsn >= self.cfg.checkpoint_every
            && lsn >= self.ckpt_retry_at
        {
            match self.checkpoint_inner() {
                Ok(_) => {}
                // The WAL died inside the checkpoint: the engine is
                // degraded but this update is applied and acked.
                Err(_) if self.degraded.is_some() => {}
                Err(e) => {
                    // Checkpoint-file failure with an intact WAL:
                    // defer, don't fail an applied update. Retry after
                    // a fraction of the checkpoint interval.
                    self.stats.deferred_checkpoints += 1;
                    self.stats.last_checkpoint_error = Some(e.to_string());
                    self.ckpt_retry_at = lsn + (self.cfg.checkpoint_every / 4).max(1);
                }
            }
        }
        Ok(())
    }

    /// One logging attempt for update `lsn`, rolled back to the
    /// pre-attempt frame boundary on failure so the next attempt (or
    /// the rejection) leaves no torn or duplicated record.
    fn try_log(&mut self, lsn: u64, rel: RelIndex, delta: &Delta<R>) -> Result<()> {
        self.log.maybe_rotate(lsn)?;
        let mark = self.log.mark();
        let symbols_mark = self.symbols_logged;
        let r = (|| -> Result<()> {
            self.log_new_symbols()?;
            wal::encode_update_record(&mut self.payload_buf, lsn, rel, delta);
            self.log.append_update(&self.payload_buf, lsn)
        })();
        if r.is_err() {
            self.log.rollback_to(mark);
            self.symbols_logged = symbols_mark;
        }
        r
    }

    /// `log.sync()` with the transient-retry policy.
    fn sync_with_retry(&mut self) -> Result<()> {
        let mut attempt = 0u32;
        loop {
            match self.log.sync() {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < self.cfg.max_retries => {
                    attempt += 1;
                    self.stats.io_retries += 1;
                    self.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn backoff(&self, attempt: u32) {
        if self.cfg.retry_backoff.is_zero() {
            return;
        }
        let delay = self
            .cfg
            .retry_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(std::time::Duration::from_millis(100));
        std::thread::sleep(delay);
    }

    /// Cut a checkpoint: snapshot views dirtied since the last one,
    /// commit a manifest covering all of them, garbage-collect old
    /// checkpoints and truncate fully-covered log segments. Returns
    /// the checkpoint LSN.
    ///
    /// A WAL-sync failure inside the checkpoint degrades the engine
    /// (it is a log failure); a failure writing checkpoint files
    /// leaves the engine active — the WAL is intact and the previous
    /// checkpoint remains authoritative.
    pub fn checkpoint(&mut self) -> Result<u64> {
        self.ensure_active()?;
        self.checkpoint_inner()
    }

    fn checkpoint_inner(&mut self) -> Result<u64> {
        // WAL half first: any symbols not yet in the log go in, then
        // the log is fsynced — every retained checkpoint + surviving
        // tail must be self-sufficient even if this manifest is later
        // lost. Persistent failure here is a WAL failure.
        let mut attempt = 0u32;
        loop {
            match self.sync_wal() {
                Ok(()) => break,
                Err(e) if e.is_transient() && attempt < self.cfg.max_retries => {
                    attempt += 1;
                    self.stats.io_retries += 1;
                    self.backoff(attempt);
                }
                Err(e) => return Err(self.enter_degraded(e)),
            }
        }
        self.durable_lsn = self.last_lsn;
        // File half: view snapshots, manifest, GC. Failures leave the
        // engine active (callers defer/retry).
        for node in self.engine.materialized_nodes() {
            // A node without a stored view has nothing to snapshot.
            let Some(ver) = self.engine.view_version(node) else {
                continue;
            };
            if self.view_versions.get(&node) == Some(&ver) && self.view_files.contains_key(&node) {
                continue;
            }
            let Some(rel) = self.engine.view_relation(node) else {
                continue;
            };
            let file_seq = self.next_file_seq;
            self.next_file_seq += 1;
            checkpoint::write_view_file_in(self.vfs.as_ref(), &self.dir, node, file_seq, &rel)?;
            self.view_files.insert(node, file_seq);
            self.view_versions.insert(node, ver);
        }
        let symbols = self.symbol_snapshot()?;
        let mut views: Vec<(usize, u64)> = self.view_files.iter().map(|(&n, &f)| (n, f)).collect();
        views.sort_unstable();
        let manifest = Manifest {
            seq: self.next_ckpt_seq,
            lsn: self.last_lsn,
            query_fingerprint: self.engine.query().fingerprint(),
            symbols,
            views,
        };
        checkpoint::write_manifest_in(self.vfs.as_ref(), &self.dir, &manifest)?;
        self.next_ckpt_seq += 1;
        self.last_ckpt_lsn = self.last_lsn;
        self.ckpt_retry_at = 0;
        if let Some(cutoff) =
            checkpoint::gc_in(self.vfs.as_ref(), &self.dir, self.cfg.retained_checkpoints)?
        {
            self.log.truncate_covered(cutoff)?;
        }
        Ok(self.last_lsn)
    }

    /// Append any unlogged symbols and fsync the log, rolled back on
    /// failure so a retry re-appends from a clean boundary.
    fn sync_wal(&mut self) -> Result<()> {
        let mark = self.log.mark();
        let symbols_mark = self.symbols_logged;
        let r = (|| -> Result<()> {
            self.log_new_symbols()?;
            self.log.sync()
        })();
        if r.is_err() {
            self.log.rollback_to(mark);
            self.symbols_logged = symbols_mark;
        }
        r
    }

    /// Flush the group-commit buffer and fsync the current segment.
    /// Afterwards every applied update is durable.
    pub fn sync_all(&mut self) -> Result<()> {
        self.ensure_active()?;
        match self.sync_with_retry() {
            Ok(()) => {
                self.durable_lsn = self.last_lsn;
                Ok(())
            }
            Err(e) => Err(self.enter_degraded(e)),
        }
    }

    /// Current mode: [`EngineMode::Degraded`] after a persistent WAL
    /// failure, until a successful [`Self::try_heal`].
    pub fn mode(&self) -> EngineMode {
        if self.degraded.is_some() {
            EngineMode::Degraded
        } else {
            EngineMode::Active
        }
    }

    /// Whether the engine is in degraded read-only mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// The storage error that drove the engine read-only, if degraded.
    pub fn degraded_cause(&self) -> Option<&DurabilityError> {
        self.degraded.as_ref().map(|s| &s.cause)
    }

    /// Storage-failure counters.
    pub fn stats(&self) -> DurabilityStats {
        self.stats.clone()
    }

    /// Attempt to leave degraded mode: roll the WAL over to a fresh
    /// segment (named past everything on disk), re-persisting the
    /// retained group-commit buffer so **no acked update is lost**,
    /// fsync it, and resume logging. On success the engine is active
    /// again with `durable_lsn == last_lsn`, and a checkpoint is
    /// attempted opportunistically (its failure is reported in the
    /// [`HealReport`] but does not un-heal — the WAL is whole).
    ///
    /// On failure the engine stays degraded and `try_heal` can simply
    /// be called again (each attempt allocates a fresh segment name;
    /// leftovers from failed attempts are deleted best-effort and
    /// tolerated by replay). Calling on an active engine is a no-op.
    pub fn try_heal(&mut self) -> Result<HealReport> {
        if self.degraded.is_none() {
            return Ok(HealReport::default());
        }
        let roll = self.log.roll_over()?;
        // Every acked update is back on fsynced disk.
        self.durable_lsn = self.last_lsn;
        self.degraded = None;
        self.stats.heals += 1;
        let mut report = HealReport {
            healed: true,
            new_segment_seq: roll.new_seq,
            carried_bytes: roll.carried_bytes,
            old_tail_truncated: roll.old_tail_truncated,
            checkpointed: false,
            checkpoint_error: None,
        };
        match self.checkpoint_inner() {
            Ok(_) => report.checkpointed = true,
            Err(e) => {
                if self.degraded.is_some() {
                    // The fresh segment failed its first sync: the
                    // heal did not hold.
                    return Err(self.degraded_error());
                }
                report.checkpoint_error = Some(e.to_string());
            }
        }
        Ok(report)
    }

    /// The wrapped engine. Mutating access is deliberately absent:
    /// updates applied behind the log's back would be lost on recovery.
    pub fn engine(&self) -> &IvmEngine<R> {
        &self.engine
    }

    /// LSN of the last applied update.
    pub fn last_lsn(&self) -> u64 {
        self.last_lsn
    }

    /// LSN covered by the most recent checkpoint.
    pub fn last_checkpoint_lsn(&self) -> u64 {
        self.last_ckpt_lsn
    }

    /// Highest LSN guaranteed to survive a crash right now: the prefix
    /// `1..=durable_lsn` is in fsynced log segments or a committed
    /// checkpoint. Updates in `durable_lsn+1..=last_lsn` are applied
    /// and acknowledged but could be lost to power failure, per the
    /// configured [`crate::SyncPolicy`].
    pub fn durable_lsn(&self) -> u64 {
        self.durable_lsn
    }

    /// `(segment seq, synced byte length)` of the current WAL segment —
    /// the exact on-disk extent an fsync has pinned. Crash harnesses
    /// truncate the segment to this length to simulate losing the
    /// OS-buffered tail.
    pub fn wal_durable_span(&self) -> (u64, u64) {
        self.log.durable_span()
    }

    /// A handle for concurrent lock-free reads of published snapshots
    /// (works in degraded mode — readers keep pinning the last
    /// published epoch). See [`fivm_engine::snapshot`] for the epoch
    /// protocol.
    pub fn reader(&self) -> SnapshotReader<R> {
        self.publisher.reader()
    }

    /// Subscribe to per-epoch output deltas of materialized view
    /// `node`. Returns `None` if the node is not materialized. Deltas
    /// are delivered on [`Self::publish`].
    pub fn subscribe(&mut self, node: NodeId) -> Option<Subscriber<R>> {
        if !self.engine.set_change_capture(node, true) {
            return None;
        }
        Some(self.hub.subscribe(node))
    }

    /// [`Self::subscribe`] with a per-subscriber queue bound: once more
    /// than `bound` deltas are queued, the oldest are dropped and
    /// replaced by a `Lagged` marker (see
    /// [`fivm_engine::subscribe::SubMessage`]).
    pub fn subscribe_bounded(&mut self, node: NodeId, bound: usize) -> Option<Subscriber<R>> {
        if !self.engine.set_change_capture(node, true) {
            return None;
        }
        Some(self.hub.subscribe_bounded(node, bound))
    }

    /// Publish the engine's current state as a new epoch (visible to
    /// all [`Self::reader`] handles) and deliver accumulated view
    /// deltas to subscribers. Works in degraded mode: applied-but-
    /// undurable updates stay servable while writes are rejected.
    pub fn publish(&mut self) -> Arc<EngineSnapshot<R>> {
        let snap = self.publisher.publish(&self.engine);
        self.hub.deliver(snap.epoch(), snap.lsn(), &mut self.engine);
        snap
    }

    /// Live-epoch / pin-age observability of the serving layer.
    pub fn serving_stats(&self) -> ServingStats {
        self.publisher.stats()
    }

    fn ensure_active(&self) -> Result<()> {
        if self.degraded.is_some() {
            Err(self.degraded_error())
        } else {
            Ok(())
        }
    }

    fn degraded_error(&self) -> DurabilityError {
        DurabilityError::Degraded {
            cause: self
                .degraded
                .as_ref()
                .map_or_else(String::new, |s| s.cause.to_string()),
            durable_lsn: self.durable_lsn,
            last_lsn: self.last_lsn,
        }
    }

    /// Record the cause, flip to degraded (first cause wins), and
    /// build the typed rejection error.
    fn enter_degraded(&mut self, cause: DurabilityError) -> DurabilityError {
        if self.degraded.is_none() {
            self.degraded = Some(DegradedState { cause });
        }
        self.degraded_error()
    }

    /// Log any symbols interned since the last record. No-op (and
    /// allocation-free) when the table hasn't grown.
    fn log_new_symbols(&mut self) -> Result<()> {
        let table = self.engine.query().catalog.symbols();
        let len = table.len();
        if len == self.symbols_logged {
            return Ok(());
        }
        let first_id = self.symbols_logged as u32;
        let syms: Vec<&str> = (self.symbols_logged..len)
            .map(|id| {
                table.resolve(id as u32).ok_or_else(|| {
                    DurabilityError::Mismatch(format!("symbol id {id} missing from a dense table"))
                })
            })
            .collect::<Result<_>>()?;
        wal::encode_symbols_record(&mut self.payload_buf, first_id, &syms);
        drop(syms);
        self.log.append(&self.payload_buf)?;
        self.symbols_logged = len;
        Ok(())
    }

    fn symbol_snapshot(&self) -> Result<Vec<String>> {
        let table = self.engine.query().catalog.symbols();
        (0..table.len())
            .map(|id| {
                table.resolve(id as u32).map(str::to_string).ok_or_else(|| {
                    DurabilityError::Mismatch(format!("symbol id {id} missing from a dense table"))
                })
            })
            .collect()
    }
}

/// Re-intern a full symbol-table snapshot into the engine's catalog,
/// verifying that ids come out identical (dense tables reproduce ids
/// by interning in id order).
fn restore_symbols<R: Ring>(engine: &IvmEngine<R>, symbols: &[String]) -> Result<()> {
    let table = engine.query().catalog.symbols();
    for (id, s) in symbols.iter().enumerate() {
        replay_symbol(table, id as u32, s)?;
    }
    Ok(())
}

/// Replay one symbols log record (idempotent against the snapshot).
fn replay_symbols<R: Ring>(engine: &IvmEngine<R>, first_id: u32, syms: &[String]) -> Result<()> {
    let table = engine.query().catalog.symbols();
    for (i, s) in syms.iter().enumerate() {
        replay_symbol(table, first_id + i as u32, s)?;
    }
    Ok(())
}

fn replay_symbol(table: &fivm_core::SymbolTable, expect: u32, s: &str) -> Result<()> {
    let len = table.len() as u32;
    if expect < len {
        if table.resolve(expect) != Some(s) {
            return Err(DurabilityError::Mismatch(format!(
                "symbol id {expect} is {:?} in the engine but {s:?} on disk",
                table.resolve(expect)
            )));
        }
        return Ok(());
    }
    if expect > len {
        return Err(DurabilityError::Mismatch(format!(
            "symbol record skips ids {len}..{expect} — log tail is incomplete"
        )));
    }
    let got = table.intern(s);
    debug_assert_eq!(got, expect);
    Ok(())
}

/// Highest `view-<node>-<seq>.vw` sequence present in `dir` (including
/// strays from aborted checkpoints — their names must not be reused).
fn max_view_file_seq(vfs: &dyn Vfs, dir: &Path) -> Result<Option<u64>> {
    let mut max = None;
    for path in vfs.read_dir(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix("view-")
            .and_then(|s| s.strip_suffix(".vw"))
        else {
            continue;
        };
        if let Some((_, seq_s)) = stem.rsplit_once('-') {
            if let Ok(seq) = seq_s.parse::<u64>() {
                max = Some(max.map_or(seq, |m: u64| m.max(seq)));
            }
        }
    }
    Ok(max)
}
