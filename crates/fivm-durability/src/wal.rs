//! The segmented append-only delta log.
//!
//! A log directory holds numbered segment files
//! `wal-<seq>-<firstlsn>.seg`, each a 24-byte header (magic, sequence
//! number, first LSN) followed by checksummed frames:
//!
//! ```text
//! [len: u32 LE][crc32c(payload): u32 LE][payload: len bytes]
//! ```
//!
//! Frame payloads are log records — either a symbol-table increment or
//! one `(lsn, relation, delta)` update (see [`WalRecord`]). LSNs are
//! the engine's own `updates_applied` counter: exactly one update
//! record per applied delta, so "replay the tail after LSN `c`" is
//! well-defined without any separate sequencing. Flat deltas are
//! stored schema-elided (see [`encode_update_record`]): the replayer
//! reconstructs the schema from the relation index, so the hot path
//! checksums roughly half the bytes a self-describing record would.
//!
//! Appends are group-committed through an in-memory buffer written to
//! the OS at a byte threshold (and on checkpoint/drop). The buffer is
//! **retained until the bytes are fsynced**, not merely written: after
//! a failed write or failed fsync every byte past the synced prefix is
//! suspect (a failed `fsync` may drop dirty pages), and the retained
//! buffer lets the log truncate back to the synced prefix and rewrite
//! — on a retry, or into a fresh segment on
//! [`DeltaLog::roll_over`] (the heal path). Rotation fsyncs, so the
//! retained window is bounded by `segment_bytes`. Both the payload
//! scratch buffer and the group-commit buffer are reused, so the
//! append path performs no per-update allocations once warm.
//!
//! All file operations go through the [`crate::vfs::Vfs`] seam; see
//! `docs/fault-injection.md` for the failure model.
//!
//! Torn-write policy (see `docs/wal-format.md`): an invalid frame —
//! short header, length overrunning the file, CRC mismatch — ends
//! replay at that offset. In the *final* segment that is a torn write:
//! the file is truncated to the valid prefix and recovery proceeds. In
//! an earlier segment it is hard corruption — unless the *next*
//! segment continues seamlessly from the valid prefix (no LSN gap),
//! which is exactly the overlap a heal rollover leaves behind.

use crate::crc::crc32;
use crate::vfs::{write_all_at, StdVfs, Vfs, VfsFile};
use crate::{DurabilityError, Result};
use fivm_core::{Codec, Delta, Schema, Semiring};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefix of every segment file (the trailing byte is the format
/// version).
pub const SEGMENT_MAGIC: &[u8; 8] = b"FIVMWAL1";
/// Segment header: magic + seq (u64) + first LSN (u64).
pub const SEGMENT_HEADER_LEN: u64 = 24;
/// Frame header: payload length + CRC-32.
pub const FRAME_HEADER_LEN: u64 = 8;

/// Record kind tags (first payload byte).
const REC_SYMBOLS: u8 = 1;
const REC_UPDATE: u8 = 2;

/// Little-endian u32 at `off`, or `None` when the slice is too short.
/// Recovery code reads untrusted bytes, so field reads are fallible
/// rather than `try_into().unwrap()` on a sub-slice.
pub(crate) fn le_u32(bytes: &[u8], off: usize) -> Option<u32> {
    let b = bytes.get(off..off + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Little-endian u64 at `off`, or `None` when the slice is too short.
pub(crate) fn le_u64(bytes: &[u8], off: usize) -> Option<u64> {
    let b = bytes.get(off..off + 8)?;
    Some(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// One decoded log record.
#[derive(Debug)]
pub enum WalRecord<R> {
    /// Symbol-table increment: strings interned as ids
    /// `first_id..first_id + syms.len()`, in order.
    Symbols { first_id: u32, syms: Vec<String> },
    /// One applied update.
    Update {
        lsn: u64,
        rel: usize,
        delta: Delta<R>,
    },
}

/// A segment file discovered on disk.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    pub path: PathBuf,
    pub seq: u64,
    pub first_lsn: u64,
}

/// Encode a symbols record into `out` (cleared first).
pub fn encode_symbols_record(out: &mut Vec<u8>, first_id: u32, syms: &[&str]) {
    out.clear();
    out.push(REC_SYMBOLS);
    out.extend_from_slice(&first_id.to_le_bytes());
    out.extend_from_slice(&(syms.len() as u32).to_le_bytes());
    for s in syms {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
}

/// Update-record delta layouts (byte after the relation index).
const DELTA_FLAT_ELIDED: u8 = 0;
const DELTA_SELF_DESCRIBING: u8 = 1;

/// Encode an update record into `out` (cleared first).
///
/// Flat deltas are written **schema-elided**: the replayer knows every
/// relation's schema from the query, so the record carries only the
/// tuple values and payloads — no schema, no per-tuple arity. This
/// halves the bytes encoded and checksummed per single-tuple update,
/// which is what keeps logging inside its overhead budget. Factored
/// deltas (multiple factor schemas, not derivable from the relation)
/// fall back to the self-describing [`Delta`] codec.
pub fn encode_update_record<R: Semiring + Codec>(
    out: &mut Vec<u8>,
    lsn: u64,
    rel: usize,
    delta: &Delta<R>,
) {
    out.clear();
    let mut hdr = [0u8; 14];
    hdr[0] = REC_UPDATE;
    hdr[1..9].copy_from_slice(&lsn.to_le_bytes());
    hdr[9..13].copy_from_slice(&(rel as u32).to_le_bytes());
    match delta {
        Delta::Flat(r) => {
            hdr[13] = DELTA_FLAT_ELIDED;
            out.extend_from_slice(&hdr);
            fivm_core::codec::put_count(out, r.len());
            for (t, p) in r.iter() {
                for v in t.values() {
                    v.encode(out);
                }
                p.encode(out);
            }
        }
        factored => {
            hdr[13] = DELTA_SELF_DESCRIBING;
            out.extend_from_slice(&hdr);
            factored.encode(out);
        }
    }
}

/// Decode one record payload. `schemas` maps relation index → schema
/// (from the recovering engine's query) for schema-elided flat deltas.
pub fn decode_record<R: Semiring + Codec>(
    mut payload: &[u8],
    schemas: &[Schema],
) -> Result<WalRecord<R>> {
    let input = &mut payload;
    match fivm_core::codec::take_u8(input)? {
        REC_SYMBOLS => {
            let first_id = fivm_core::codec::take_u32(input)?;
            let n = fivm_core::codec::take_count(input, "symbol count", 4)?;
            let mut syms = Vec::with_capacity(n);
            for _ in 0..n {
                syms.push(String::decode(input)?);
            }
            Ok(WalRecord::Symbols { first_id, syms })
        }
        REC_UPDATE => {
            let lsn = fivm_core::codec::take_u64(input)?;
            let rel = fivm_core::codec::take_u32(input)? as usize;
            let delta = match fivm_core::codec::take_u8(input)? {
                DELTA_FLAT_ELIDED => {
                    let Some(schema) = schemas.get(rel) else {
                        return Err(DurabilityError::Codec(fivm_core::CodecError::Invalid {
                            what: "update record (relation index out of range)",
                        }));
                    };
                    let arity = schema.len();
                    // Minimum pair: `arity` 5-byte values + 1 payload byte.
                    let n = fivm_core::codec::take_count(input, "flat delta size", arity * 5 + 1)?;
                    let mut pairs = Vec::with_capacity(n);
                    for _ in 0..n {
                        let mut vals = Vec::with_capacity(arity);
                        for _ in 0..arity {
                            vals.push(fivm_core::Value::decode(input)?);
                        }
                        pairs.push((fivm_core::Tuple::new(vals), R::decode(input)?));
                    }
                    Delta::Flat(fivm_core::Relation::from_pairs(schema.clone(), pairs))
                }
                DELTA_SELF_DESCRIBING => Delta::decode(input)?,
                tag => {
                    return Err(DurabilityError::Codec(fivm_core::CodecError::BadTag {
                        what: "update record delta layout",
                        tag,
                    }))
                }
            };
            Ok(WalRecord::Update { lsn, rel, delta })
        }
        tag => Err(DurabilityError::Codec(fivm_core::CodecError::BadTag {
            what: "log record",
            tag,
        })),
    }
}

/// List the segment files of `dir`, sorted by sequence number.
pub fn list_segments(dir: &Path) -> Result<Vec<SegmentInfo>> {
    list_segments_in(&StdVfs, dir)
}

/// [`list_segments`] through an explicit [`Vfs`].
pub fn list_segments_in(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<SegmentInfo>> {
    let mut out = Vec::new();
    for path in vfs.read_dir(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
        else {
            continue;
        };
        let Some((seq_s, lsn_s)) = stem.split_once('-') else {
            continue;
        };
        if let (Ok(seq), Ok(first_lsn)) = (seq_s.parse(), lsn_s.parse()) {
            out.push(SegmentInfo {
                path,
                seq,
                first_lsn,
            });
        }
    }
    out.sort_by_key(|s| s.seq);
    Ok(out)
}

fn segment_path(dir: &Path, seq: u64, first_lsn: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}-{first_lsn:012}.seg"))
}

/// Byte spans `(offset, total_len)` of every valid frame in a segment,
/// in file order. The fault-injection harness uses this to find the
/// final record's boundaries; `total_len` includes the frame header.
pub fn frame_spans(path: &Path) -> Result<Vec<(u64, u64)>> {
    let bytes = StdVfs.read(path)?;
    let mut spans = Vec::new();
    let mut off = SEGMENT_HEADER_LEN as usize;
    while let Some(consumed) = valid_frame_at(&bytes, off) {
        spans.push((off as u64, consumed as u64));
        off += consumed;
    }
    Ok(spans)
}

/// If a complete, checksum-valid frame starts at `off`, return its
/// total length (header + payload); otherwise `None`.
fn valid_frame_at(bytes: &[u8], off: usize) -> Option<usize> {
    let rest = bytes.get(off..)?;
    if rest.len() < FRAME_HEADER_LEN as usize {
        return None;
    }
    let len = le_u32(rest, 0)? as usize;
    let crc = le_u32(rest, 4)?;
    let payload = rest.get(8..8 + len)?;
    if len == 0 || crc32(payload) != crc {
        return None;
    }
    Some(8 + len)
}

/// Read and decode one segment. Returns the decoded records plus, when
/// the segment ends in an invalid frame, the byte offset of the valid
/// prefix (`Some(valid_len)`); the header itself is validated against
/// `info`'s name-derived seq/LSN.
pub fn read_segment<R: Semiring + Codec>(
    info: &SegmentInfo,
    schemas: &[Schema],
) -> Result<(Vec<WalRecord<R>>, Option<u64>)> {
    read_segment_in(&StdVfs, info, schemas)
}

/// [`read_segment`] through an explicit [`Vfs`].
pub fn read_segment_in<R: Semiring + Codec>(
    vfs: &dyn Vfs,
    info: &SegmentInfo,
    schemas: &[Schema],
) -> Result<(Vec<WalRecord<R>>, Option<u64>)> {
    let bytes = vfs.read(&info.path)?;
    if bytes.len() < SEGMENT_HEADER_LEN as usize
        || &bytes[0..8] != SEGMENT_MAGIC
        || le_u64(&bytes, 8) != Some(info.seq)
        || le_u64(&bytes, 16) != Some(info.first_lsn)
    {
        return Err(DurabilityError::Corrupt {
            file: info.path.clone(),
            detail: "bad segment header".into(),
        });
    }
    let mut records = Vec::new();
    let mut off = SEGMENT_HEADER_LEN as usize;
    while off < bytes.len() {
        match valid_frame_at(&bytes, off) {
            Some(consumed) => {
                let payload = &bytes[off + 8..off + consumed];
                // A frame that checksums but does not decode is hard
                // corruption, not a torn write — CRC-valid garbage
                // means the writer itself misbehaved.
                records.push(decode_record(payload, schemas)?);
                off += consumed;
            }
            None => return Ok((records, Some(off as u64))),
        }
    }
    Ok((records, None))
}

/// Buffer-position marker for [`DeltaLog::rollback_to`]: the frame
/// boundary the log rewinds to when an append fails mid-update.
#[derive(Debug, Clone, Copy)]
pub struct LogMark {
    buf_len: usize,
    last_appended_lsn: u64,
}

/// What a heal rollover did (see [`DeltaLog::roll_over`]).
#[derive(Debug, Clone, Copy)]
pub struct RollOver {
    /// Sequence number of the fresh segment.
    pub new_seq: u64,
    /// Retained-buffer bytes re-persisted into it.
    pub carried_bytes: u64,
    /// Whether the old segment's suspect tail was truncated away (a
    /// failure here is tolerable: replay skips the overlap).
    pub old_tail_truncated: bool,
}

/// The append half of the log: owns the current segment file and the
/// group-commit buffer.
pub struct DeltaLog {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    /// Path of the current segment (tail truncation and heal target).
    path: PathBuf,
    file: Box<dyn VfsFile>,
    seq: u64,
    /// File offset where `buf[0]` lands: segment header plus every
    /// frame byte already confirmed fsynced in this segment.
    buf_base: u64,
    /// Whether any fsync has completed on this segment — before the
    /// first, not even the header is durable.
    synced_once: bool,
    /// Frames appended since the last successful fsync. Retained (not
    /// cleared at flush) so a failed write or fsync can truncate back
    /// to the synced prefix and rewrite, losing nothing.
    buf: Vec<u8>,
    /// Prefix of `buf` confirmed written at `file[buf_base..]`.
    flushed: usize,
    /// A failed or short write (or failed fsync) left bytes past
    /// `buf_base + flushed` in unknown state; the next flush truncates
    /// the file back before writing.
    dirty_tail: bool,
    flush_bytes: usize,
    segment_bytes: u64,
    policy: crate::SyncPolicy,
    /// Updates acknowledged since the last `fsync` (the amortized
    /// batching window of [`crate::SyncPolicy::Batched`]).
    unsynced_updates: u64,
    /// When the last `fsync` completed (the `max_delay` clock).
    last_sync: std::time::Instant,
    /// Bytes reached the OS (flushed) without an `fsync` since.
    flushed_since_sync: bool,
    /// Highest update LSN appended to this log.
    last_appended_lsn: u64,
    /// Highest update LSN inside the fsynced prefix — the first LSN of
    /// a heal rollover's fresh segment is `synced_lsn + 1`.
    synced_lsn: u64,
}

impl DeltaLog {
    /// Open a fresh segment `seq` starting at `first_lsn` and return a
    /// log appending to it.
    pub fn create(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        seq: u64,
        first_lsn: u64,
        segment_bytes: u64,
        flush_bytes: usize,
        policy: crate::SyncPolicy,
    ) -> Result<Self> {
        let (path, file) = new_segment(vfs.as_ref(), dir, seq, first_lsn)?;
        Ok(DeltaLog {
            vfs,
            dir: dir.to_path_buf(),
            path,
            file,
            seq,
            buf_base: SEGMENT_HEADER_LEN,
            // The just-written segment header has not been fsynced.
            synced_once: false,
            buf: Vec::with_capacity(flush_bytes + 4096),
            flushed: 0,
            dirty_tail: false,
            flush_bytes,
            segment_bytes,
            policy,
            unsynced_updates: 0,
            last_sync: std::time::Instant::now(),
            flushed_since_sync: true,
            last_appended_lsn: first_lsn.saturating_sub(1),
            synced_lsn: first_lsn.saturating_sub(1),
        })
    }

    /// Rotate to a new segment if the current one is over budget. Must
    /// be called at an update boundary, *before* the symbol/update
    /// records of LSN `next_lsn` are appended, so the new segment's
    /// first-LSN label is exact.
    pub fn maybe_rotate(&mut self, next_lsn: u64) -> Result<()> {
        if self.buf_base + (self.buf.len() as u64) < self.segment_bytes {
            return Ok(());
        }
        self.sync()?;
        let (path, file) = new_segment(self.vfs.as_ref(), &self.dir, self.seq + 1, next_lsn)?;
        self.seq += 1;
        self.path = path;
        self.file = file;
        self.buf_base = SEGMENT_HEADER_LEN;
        self.synced_once = false;
        self.flushed_since_sync = true;
        Ok(())
    }

    /// Frame `payload` and append it (buffered; flushed to the OS at
    /// the group-commit threshold — syncing is the separate, per-update
    /// [`DeltaLog::note_update`]/[`DeltaLog::sync`] decision).
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut hdr = [0u8; FRAME_HEADER_LEN as usize];
        hdr[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        hdr[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(&hdr);
        self.buf.extend_from_slice(payload);
        if self.buf.len() - self.flushed >= self.flush_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// [`DeltaLog::append`] for an update record, recording its LSN
    /// (the heal rollover and rollback bookkeeping need it). The
    /// buffer extension itself cannot fail — only the threshold flush
    /// can — so the record's frames are in the buffer even on `Err`,
    /// and the LSN advances either way (rollback rewinds it).
    pub fn append_update(&mut self, payload: &[u8], lsn: u64) -> Result<()> {
        let r = self.append(payload);
        self.last_appended_lsn = lsn;
        r
    }

    /// Current frame-boundary position, for [`DeltaLog::rollback_to`].
    pub fn mark(&self) -> LogMark {
        LogMark {
            buf_len: self.buf.len(),
            last_appended_lsn: self.last_appended_lsn,
        }
    }

    /// Rewind the retained buffer (and, if a flush already pushed part
    /// of the rolled-back frames, the file) to `mark` — the post-error
    /// contract of the logging path: after a failed append the log
    /// holds exactly the frames it held before, so a retry cannot emit
    /// a torn or duplicated record. Never fails: if the file cannot be
    /// truncated right now, the tail is marked dirty and cut by the
    /// next flush.
    pub fn rollback_to(&mut self, mark: LogMark) {
        if self.buf.len() <= mark.buf_len {
            // Nothing appended past the mark (or a rotation reset the
            // buffer; the mark belongs to the previous segment and
            // everything under it was already synced).
            return;
        }
        self.buf.truncate(mark.buf_len);
        self.last_appended_lsn = mark.last_appended_lsn;
        if self.flushed > mark.buf_len {
            self.flushed = mark.buf_len;
            if self
                .vfs
                .set_len(&self.path, self.buf_base + self.flushed as u64)
                .is_err()
            {
                self.dirty_tail = true;
            }
        }
    }

    /// Record an update acknowledgement and report whether the sync
    /// policy wants an fsync now. The caller runs [`DeltaLog::sync`]
    /// (with its retry policy) when this returns `true`.
    pub fn note_update(&mut self) -> bool {
        self.unsynced_updates += 1;
        match self.policy {
            crate::SyncPolicy::OnCheckpoint => false,
            // Sync as soon as a threshold flush has put bytes at the
            // OS: the flush boundary is the durability boundary.
            crate::SyncPolicy::EveryFlush => self.flushed_since_sync,
            crate::SyncPolicy::Batched {
                max_updates,
                max_delay,
            } => {
                self.unsynced_updates >= max_updates.max(1) || self.last_sync.elapsed() >= max_delay
            }
        }
    }

    /// Write the unflushed part of the retained buffer through to the
    /// OS. After a previous failure the file is first truncated back to
    /// the last known-good boundary, so a half-landed write can never
    /// leave torn bytes under a later frame.
    pub fn flush(&mut self) -> Result<()> {
        if self.dirty_tail {
            self.vfs
                .set_len(&self.path, self.buf_base + self.flushed as u64)?;
            self.dirty_tail = false;
        }
        while self.flushed < self.buf.len() {
            let off = self.buf_base + self.flushed as u64;
            match self.file.write_at(off, &self.buf[self.flushed..]) {
                Ok(0) => {
                    self.dirty_tail = true;
                    return Err(std::io::Error::from(std::io::ErrorKind::WriteZero).into());
                }
                Ok(n) => {
                    self.flushed += n;
                    self.flushed_since_sync = true;
                }
                Err(e) => {
                    // The failed call may have landed bytes anyway.
                    self.dirty_tail = true;
                    return Err(e.into());
                }
            }
        }
        Ok(())
    }

    /// Flush and fsync the current segment. On success the whole
    /// retained buffer becomes part of the durable prefix and is
    /// released. On an fsync failure the kernel may already have
    /// dropped the dirty pages *and* the error, so everything past the
    /// synced prefix is treated as lost: the next flush truncates back
    /// and rewrites it from the retained buffer.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        if let Err(e) = self.file.sync_data() {
            self.dirty_tail = true;
            self.flushed = 0;
            return Err(e.into());
        }
        self.buf_base += self.buf.len() as u64;
        self.buf.clear();
        self.flushed = 0;
        self.synced_once = true;
        self.synced_lsn = self.last_appended_lsn;
        self.unsynced_updates = 0;
        self.last_sync = std::time::Instant::now();
        self.flushed_since_sync = false;
        Ok(())
    }

    /// Roll the log over to a fresh segment, re-persisting the whole
    /// retained buffer — the heal path after a persistent failure on
    /// the current segment (see `DurableEngine::try_heal`).
    ///
    /// The old segment's suspect tail (anything past its synced
    /// prefix) is truncated best-effort; the fresh segment is named
    /// past every segment on disk, starts at `synced_lsn + 1`, and is
    /// fully written and fsynced before the log commits to it — on any
    /// failure the old state stands and the caller stays degraded. A
    /// fresh segment left behind by a failed rollover is deleted
    /// best-effort; replay tolerates a survivor (duplicate LSNs are
    /// skipped, see `docs/wal-format.md`).
    pub fn roll_over(&mut self) -> Result<RollOver> {
        // Cut the unknown tail off the current segment and pin the
        // truncation. Both best-effort: the retained buffer re-carries
        // those bytes regardless, and replay handles the overlap.
        let old_tail_truncated = self.vfs.set_len(&self.path, self.buf_base).is_ok();
        let _ = self.file.sync_data();

        let max_seq = list_segments_in(self.vfs.as_ref(), &self.dir)?
            .last()
            .map_or(self.seq, |s| s.seq.max(self.seq));
        let new_seq = max_seq + 1;
        let first_lsn = self.synced_lsn + 1;
        let (path, mut file) = new_segment(self.vfs.as_ref(), &self.dir, new_seq, first_lsn)?;
        let written = (|| -> Result<()> {
            write_all_at(file.as_mut(), SEGMENT_HEADER_LEN, &self.buf)?;
            file.sync_data()?;
            Ok(())
        })();
        if let Err(e) = written {
            let _ = self.vfs.remove_file(&path);
            return Err(e);
        }
        let carried_bytes = self.buf.len() as u64;
        self.path = path;
        self.file = file;
        self.seq = new_seq;
        self.buf_base = SEGMENT_HEADER_LEN + carried_bytes;
        self.synced_once = true;
        self.synced_lsn = self.last_appended_lsn;
        self.buf.clear();
        self.flushed = 0;
        self.dirty_tail = false;
        self.unsynced_updates = 0;
        self.last_sync = std::time::Instant::now();
        self.flushed_since_sync = false;
        Ok(RollOver {
            new_seq,
            carried_bytes,
            old_tail_truncated,
        })
    }

    /// `(current segment seq, durable byte length of that segment)` —
    /// the crash-simulation cut point for fault-injection tests: a
    /// power loss may keep anything past the durable length, or lose
    /// it.
    pub fn durable_span(&self) -> (u64, u64) {
        (self.seq, if self.synced_once { self.buf_base } else { 0 })
    }

    /// Current segment sequence number.
    pub fn current_seq(&self) -> u64 {
        self.seq
    }

    /// Delete every segment whose records are all covered by a
    /// checkpoint at `cutoff_lsn` — i.e. whose *successor* segment
    /// starts at or before `cutoff_lsn + 1`. The current segment is
    /// never deleted.
    pub fn truncate_covered(&mut self, cutoff_lsn: u64) -> Result<usize> {
        let segments = list_segments_in(self.vfs.as_ref(), &self.dir)?;
        let mut removed = 0;
        for pair in segments.windows(2) {
            if pair[0].seq < self.seq && pair[1].first_lsn <= cutoff_lsn + 1 {
                self.vfs.remove_file(&pair[0].path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

impl Drop for DeltaLog {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

fn new_segment(
    vfs: &dyn Vfs,
    dir: &Path,
    seq: u64,
    first_lsn: u64,
) -> Result<(PathBuf, Box<dyn VfsFile>)> {
    let path = segment_path(dir, seq, first_lsn);
    let mut hdr = [0u8; SEGMENT_HEADER_LEN as usize];
    hdr[..8].copy_from_slice(SEGMENT_MAGIC);
    hdr[8..16].copy_from_slice(&seq.to_le_bytes());
    hdr[16..24].copy_from_slice(&first_lsn.to_le_bytes());
    let opened = (|| -> Result<Box<dyn VfsFile>> {
        let mut file = vfs.create_new(&path)?;
        write_all_at(file.as_mut(), 0, &hdr)?;
        Ok(file)
    })();
    match opened {
        Ok(file) => Ok((path, file)),
        Err(e) => {
            // A half-created segment must not survive: a later
            // recovery walking it mid-range would refuse.
            let _ = vfs.remove_file(&path);
            Err(e)
        }
    }
}
