//! The segmented append-only delta log.
//!
//! A log directory holds numbered segment files
//! `wal-<seq>-<firstlsn>.seg`, each a 24-byte header (magic, sequence
//! number, first LSN) followed by checksummed frames:
//!
//! ```text
//! [len: u32 LE][crc32c(payload): u32 LE][payload: len bytes]
//! ```
//!
//! Frame payloads are log records — either a symbol-table increment or
//! one `(lsn, relation, delta)` update (see [`WalRecord`]). LSNs are
//! the engine's own `updates_applied` counter: exactly one update
//! record per applied delta, so "replay the tail after LSN `c`" is
//! well-defined without any separate sequencing. Flat deltas are
//! stored schema-elided (see [`encode_update_record`]): the replayer
//! reconstructs the schema from the relation index, so the hot path
//! checksums roughly half the bytes a self-describing record would.
//!
//! Appends are group-committed through an in-memory buffer flushed at
//! a byte threshold (and on checkpoint/drop), so the steady-state cost
//! per update is an encode + a CRC over a few dozen bytes. Both the
//! payload scratch buffer and the group-commit buffer are reused, so
//! the append path performs no per-update allocations once warm.
//!
//! Torn-write policy (see `docs/wal-format.md`): an invalid frame —
//! short header, length overrunning the file, CRC mismatch — ends
//! replay at that offset. In the *final* segment that is a torn write:
//! the file is truncated to the valid prefix and recovery proceeds. In
//! any earlier segment it is hard corruption and recovery refuses.

use crate::crc::crc32;
use crate::{DurabilityError, Result};
use fivm_core::{Codec, Delta, Schema, Semiring};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of every segment file (the trailing byte is the format
/// version).
pub const SEGMENT_MAGIC: &[u8; 8] = b"FIVMWAL1";
/// Segment header: magic + seq (u64) + first LSN (u64).
pub const SEGMENT_HEADER_LEN: u64 = 24;
/// Frame header: payload length + CRC-32.
pub const FRAME_HEADER_LEN: u64 = 8;

/// Record kind tags (first payload byte).
const REC_SYMBOLS: u8 = 1;
const REC_UPDATE: u8 = 2;

/// Little-endian u32 at `off`, or `None` when the slice is too short.
/// Recovery code reads untrusted bytes, so field reads are fallible
/// rather than `try_into().unwrap()` on a sub-slice.
pub(crate) fn le_u32(bytes: &[u8], off: usize) -> Option<u32> {
    let b = bytes.get(off..off + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Little-endian u64 at `off`, or `None` when the slice is too short.
pub(crate) fn le_u64(bytes: &[u8], off: usize) -> Option<u64> {
    let b = bytes.get(off..off + 8)?;
    Some(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// One decoded log record.
#[derive(Debug)]
pub enum WalRecord<R> {
    /// Symbol-table increment: strings interned as ids
    /// `first_id..first_id + syms.len()`, in order.
    Symbols { first_id: u32, syms: Vec<String> },
    /// One applied update.
    Update {
        lsn: u64,
        rel: usize,
        delta: Delta<R>,
    },
}

/// A segment file discovered on disk.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    pub path: PathBuf,
    pub seq: u64,
    pub first_lsn: u64,
}

/// Encode a symbols record into `out` (cleared first).
pub fn encode_symbols_record(out: &mut Vec<u8>, first_id: u32, syms: &[&str]) {
    out.clear();
    out.push(REC_SYMBOLS);
    out.extend_from_slice(&first_id.to_le_bytes());
    out.extend_from_slice(&(syms.len() as u32).to_le_bytes());
    for s in syms {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
}

/// Update-record delta layouts (byte after the relation index).
const DELTA_FLAT_ELIDED: u8 = 0;
const DELTA_SELF_DESCRIBING: u8 = 1;

/// Encode an update record into `out` (cleared first).
///
/// Flat deltas are written **schema-elided**: the replayer knows every
/// relation's schema from the query, so the record carries only the
/// tuple values and payloads — no schema, no per-tuple arity. This
/// halves the bytes encoded and checksummed per single-tuple update,
/// which is what keeps logging inside its overhead budget. Factored
/// deltas (multiple factor schemas, not derivable from the relation)
/// fall back to the self-describing [`Delta`] codec.
pub fn encode_update_record<R: Semiring + Codec>(
    out: &mut Vec<u8>,
    lsn: u64,
    rel: usize,
    delta: &Delta<R>,
) {
    out.clear();
    let mut hdr = [0u8; 14];
    hdr[0] = REC_UPDATE;
    hdr[1..9].copy_from_slice(&lsn.to_le_bytes());
    hdr[9..13].copy_from_slice(&(rel as u32).to_le_bytes());
    match delta {
        Delta::Flat(r) => {
            hdr[13] = DELTA_FLAT_ELIDED;
            out.extend_from_slice(&hdr);
            fivm_core::codec::put_count(out, r.len());
            for (t, p) in r.iter() {
                for v in t.values() {
                    v.encode(out);
                }
                p.encode(out);
            }
        }
        factored => {
            hdr[13] = DELTA_SELF_DESCRIBING;
            out.extend_from_slice(&hdr);
            factored.encode(out);
        }
    }
}

/// Decode one record payload. `schemas` maps relation index → schema
/// (from the recovering engine's query) for schema-elided flat deltas.
pub fn decode_record<R: Semiring + Codec>(
    mut payload: &[u8],
    schemas: &[Schema],
) -> Result<WalRecord<R>> {
    let input = &mut payload;
    match fivm_core::codec::take_u8(input)? {
        REC_SYMBOLS => {
            let first_id = fivm_core::codec::take_u32(input)?;
            let n = fivm_core::codec::take_count(input, "symbol count", 4)?;
            let mut syms = Vec::with_capacity(n);
            for _ in 0..n {
                syms.push(String::decode(input)?);
            }
            Ok(WalRecord::Symbols { first_id, syms })
        }
        REC_UPDATE => {
            let lsn = fivm_core::codec::take_u64(input)?;
            let rel = fivm_core::codec::take_u32(input)? as usize;
            let delta = match fivm_core::codec::take_u8(input)? {
                DELTA_FLAT_ELIDED => {
                    let Some(schema) = schemas.get(rel) else {
                        return Err(DurabilityError::Codec(fivm_core::CodecError::Invalid {
                            what: "update record (relation index out of range)",
                        }));
                    };
                    let arity = schema.len();
                    // Minimum pair: `arity` 5-byte values + 1 payload byte.
                    let n = fivm_core::codec::take_count(input, "flat delta size", arity * 5 + 1)?;
                    let mut pairs = Vec::with_capacity(n);
                    for _ in 0..n {
                        let mut vals = Vec::with_capacity(arity);
                        for _ in 0..arity {
                            vals.push(fivm_core::Value::decode(input)?);
                        }
                        pairs.push((fivm_core::Tuple::new(vals), R::decode(input)?));
                    }
                    Delta::Flat(fivm_core::Relation::from_pairs(schema.clone(), pairs))
                }
                DELTA_SELF_DESCRIBING => Delta::decode(input)?,
                tag => {
                    return Err(DurabilityError::Codec(fivm_core::CodecError::BadTag {
                        what: "update record delta layout",
                        tag,
                    }))
                }
            };
            Ok(WalRecord::Update { lsn, rel, delta })
        }
        tag => Err(DurabilityError::Codec(fivm_core::CodecError::BadTag {
            what: "log record",
            tag,
        })),
    }
}

/// List the segment files of `dir`, sorted by sequence number.
pub fn list_segments(dir: &Path) -> Result<Vec<SegmentInfo>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
        else {
            continue;
        };
        let Some((seq_s, lsn_s)) = stem.split_once('-') else {
            continue;
        };
        if let (Ok(seq), Ok(first_lsn)) = (seq_s.parse(), lsn_s.parse()) {
            out.push(SegmentInfo {
                path,
                seq,
                first_lsn,
            });
        }
    }
    out.sort_by_key(|s| s.seq);
    Ok(out)
}

fn segment_path(dir: &Path, seq: u64, first_lsn: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}-{first_lsn:012}.seg"))
}

/// Byte spans `(offset, total_len)` of every valid frame in a segment,
/// in file order. The fault-injection harness uses this to find the
/// final record's boundaries; `total_len` includes the frame header.
pub fn frame_spans(path: &Path) -> Result<Vec<(u64, u64)>> {
    let bytes = std::fs::read(path)?;
    let mut spans = Vec::new();
    let mut off = SEGMENT_HEADER_LEN as usize;
    while let Some(consumed) = valid_frame_at(&bytes, off) {
        spans.push((off as u64, consumed as u64));
        off += consumed;
    }
    Ok(spans)
}

/// If a complete, checksum-valid frame starts at `off`, return its
/// total length (header + payload); otherwise `None`.
fn valid_frame_at(bytes: &[u8], off: usize) -> Option<usize> {
    let rest = bytes.get(off..)?;
    if rest.len() < FRAME_HEADER_LEN as usize {
        return None;
    }
    let len = le_u32(rest, 0)? as usize;
    let crc = le_u32(rest, 4)?;
    let payload = rest.get(8..8 + len)?;
    if len == 0 || crc32(payload) != crc {
        return None;
    }
    Some(8 + len)
}

/// Read and decode one segment. Returns the decoded records plus, when
/// the segment ends in an invalid frame, the byte offset of the valid
/// prefix (`Some(valid_len)`); the header itself is validated against
/// `info`'s name-derived seq/LSN.
pub fn read_segment<R: Semiring + Codec>(
    info: &SegmentInfo,
    schemas: &[Schema],
) -> Result<(Vec<WalRecord<R>>, Option<u64>)> {
    let mut bytes = Vec::new();
    File::open(&info.path)?.read_to_end(&mut bytes)?;
    if bytes.len() < SEGMENT_HEADER_LEN as usize
        || &bytes[0..8] != SEGMENT_MAGIC
        || le_u64(&bytes, 8) != Some(info.seq)
        || le_u64(&bytes, 16) != Some(info.first_lsn)
    {
        return Err(DurabilityError::Corrupt {
            file: info.path.clone(),
            detail: "bad segment header".into(),
        });
    }
    let mut records = Vec::new();
    let mut off = SEGMENT_HEADER_LEN as usize;
    while off < bytes.len() {
        match valid_frame_at(&bytes, off) {
            Some(consumed) => {
                let payload = &bytes[off + 8..off + consumed];
                // A frame that checksums but does not decode is hard
                // corruption, not a torn write — CRC-valid garbage
                // means the writer itself misbehaved.
                records.push(decode_record(payload, schemas)?);
                off += consumed;
            }
            None => return Ok((records, Some(off as u64))),
        }
    }
    Ok((records, None))
}

/// The append half of the log: owns the current segment file and the
/// group-commit buffer.
pub struct DeltaLog {
    dir: PathBuf,
    file: File,
    seq: u64,
    /// Bytes in the current segment, counting buffered-but-unflushed.
    seg_bytes: u64,
    buf: Vec<u8>,
    flush_bytes: usize,
    segment_bytes: u64,
    policy: crate::SyncPolicy,
    /// Updates acknowledged since the last `fsync` (the amortized
    /// batching window of [`crate::SyncPolicy::Batched`]).
    unsynced_updates: u64,
    /// When the last `fsync` completed (the `max_delay` clock).
    last_sync: std::time::Instant,
    /// Bytes reached the OS (flushed) without an `fsync` since.
    flushed_since_sync: bool,
    /// Durable prefix of the current segment: every byte below this is
    /// known `fsync`ed. The fault-injection harness truncates here to
    /// model a crash that loses the OS page cache.
    synced_len: u64,
}

impl DeltaLog {
    /// Open a fresh segment `seq` starting at `first_lsn` and return a
    /// log appending to it.
    pub fn create(
        dir: &Path,
        seq: u64,
        first_lsn: u64,
        segment_bytes: u64,
        flush_bytes: usize,
        policy: crate::SyncPolicy,
    ) -> Result<Self> {
        let file = new_segment(dir, seq, first_lsn)?;
        Ok(DeltaLog {
            dir: dir.to_path_buf(),
            file,
            seq,
            seg_bytes: SEGMENT_HEADER_LEN,
            buf: Vec::with_capacity(flush_bytes + 4096),
            flush_bytes,
            segment_bytes,
            policy,
            unsynced_updates: 0,
            last_sync: std::time::Instant::now(),
            // The just-written segment header has not been fsynced.
            flushed_since_sync: true,
            synced_len: 0,
        })
    }

    /// Rotate to a new segment if the current one is over budget. Must
    /// be called at an update boundary, *before* the symbol/update
    /// records of LSN `next_lsn` are appended, so the new segment's
    /// first-LSN label is exact.
    pub fn maybe_rotate(&mut self, next_lsn: u64) -> Result<()> {
        if self.seg_bytes < self.segment_bytes {
            return Ok(());
        }
        self.sync()?;
        self.seq += 1;
        self.file = new_segment(&self.dir, self.seq, next_lsn)?;
        self.seg_bytes = SEGMENT_HEADER_LEN;
        self.flushed_since_sync = true;
        self.synced_len = 0;
        Ok(())
    }

    /// Frame `payload` and append it (buffered; flushed to the OS at
    /// the group-commit threshold — syncing is the separate, per-update
    /// [`DeltaLog::note_update`] decision).
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut hdr = [0u8; FRAME_HEADER_LEN as usize];
        hdr[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        hdr[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(&hdr);
        self.buf.extend_from_slice(payload);
        self.seg_bytes += FRAME_HEADER_LEN + payload.len() as u64;
        if self.buf.len() >= self.flush_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Apply the sync policy at an update-acknowledgement boundary.
    /// Returns `true` iff everything appended so far is durable (the
    /// caller advances its durable-LSN watermark on `true`).
    pub fn note_update(&mut self) -> Result<bool> {
        self.unsynced_updates += 1;
        let due = match self.policy {
            crate::SyncPolicy::OnCheckpoint => false,
            // Sync as soon as a threshold flush has put bytes at the
            // OS: the flush boundary is the durability boundary.
            crate::SyncPolicy::EveryFlush => self.flushed_since_sync,
            crate::SyncPolicy::Batched {
                max_updates,
                max_delay,
            } => {
                self.unsynced_updates >= max_updates.max(1) || self.last_sync.elapsed() >= max_delay
            }
        };
        if due {
            self.sync()?;
        }
        Ok(self.unsynced_updates == 0)
    }

    /// Write the group-commit buffer through to the OS.
    pub fn flush(&mut self) -> Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
            self.flushed_since_sync = true;
        }
        Ok(())
    }

    /// Flush and fsync the current segment.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.file.sync_data()?;
        self.synced_len = self.seg_bytes;
        self.unsynced_updates = 0;
        self.last_sync = std::time::Instant::now();
        self.flushed_since_sync = false;
        Ok(())
    }

    /// `(current segment seq, durable byte length of that segment)` —
    /// the crash-simulation cut point for fault-injection tests: a
    /// power loss may keep anything past `synced_len`, or lose it.
    pub fn durable_span(&self) -> (u64, u64) {
        (self.seq, self.synced_len)
    }

    /// Current segment sequence number.
    pub fn current_seq(&self) -> u64 {
        self.seq
    }

    /// Delete every segment whose records are all covered by a
    /// checkpoint at `cutoff_lsn` — i.e. whose *successor* segment
    /// starts at or before `cutoff_lsn + 1`. The current segment is
    /// never deleted.
    pub fn truncate_covered(&mut self, cutoff_lsn: u64) -> Result<usize> {
        let segments = list_segments(&self.dir)?;
        let mut removed = 0;
        for pair in segments.windows(2) {
            if pair[0].seq < self.seq && pair[1].first_lsn <= cutoff_lsn + 1 {
                std::fs::remove_file(&pair[0].path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

impl Drop for DeltaLog {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

fn new_segment(dir: &Path, seq: u64, first_lsn: u64) -> Result<File> {
    let mut file = OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(segment_path(dir, seq, first_lsn))?;
    file.write_all(SEGMENT_MAGIC)?;
    file.write_all(&seq.to_le_bytes())?;
    file.write_all(&first_lsn.to_le_bytes())?;
    Ok(file)
}
