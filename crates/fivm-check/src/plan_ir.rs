//! Static verifier for the engine's compiled plan IRs.
//!
//! The engine exports each compiled `FastPlan` / `FactoredPlan` as a
//! neutral IR (plain variable ids and slot indices — no engine types),
//! and the checks here re-simulate the plan **symbolically over
//! schemas**: the delta schema is threaded through every sibling join,
//! margin lift and projection, and each compiled position is checked
//! against what the schema simulation says it must be. A plan that
//! passes cannot read out of bounds, probe an index with a
//! wrong-ordered key, alias a factor slot, or project onto the wrong
//! key order — before the first tuple ever flows through it.

/// Marker for a full-key probe (no secondary index involved).
pub const FULL_KEY: usize = usize::MAX;

/// Neutral description of the view tree the plans compile against.
pub struct PlanCtx {
    /// Key schema (variable ids, in order) of every view-tree node.
    pub node_keys: Vec<Vec<u32>>,
    /// Whether each node has a materialized store (probe-able).
    pub materialized: Vec<bool>,
    /// Secondary indexes per node: each index is its key positions
    /// into the node's key tuple, in index key order.
    pub node_indexes: Vec<Vec<Vec<usize>>>,
}

/// One sibling join of a compiled step.
pub struct SiblingIr {
    pub node: usize,
    pub full_key: bool,
    /// Positions in the current delta tuple forming the probe key.
    pub probe_pos: Vec<usize>,
    /// Positions in the sibling's key tuple appended to the delta.
    pub rest_pos: Vec<usize>,
    /// Secondary-index id ([`FULL_KEY`] for full-key probes).
    pub index_id: usize,
}

pub struct FastStepIr {
    pub node: usize,
    pub store: bool,
    pub siblings: Vec<SiblingIr>,
    /// Positions of non-trivial margin lifts in the joined tuple.
    pub lift_pos: Vec<usize>,
    /// Projection of the joined tuple onto the node's key order.
    pub out_pos: Vec<usize>,
}

pub struct FastPlanIr {
    pub entry: usize,
    pub entry_schema: Vec<u32>,
    pub steps: Vec<FastStepIr>,
}

/// Fused margin-lift + projection on a factor.
pub struct FusedIr {
    pub lift_pos: Vec<usize>,
    pub out_pos: Vec<usize>,
}

pub enum FactorOpIr {
    Cross {
        a: usize,
        b: usize,
        out: usize,
    },
    Adopt {
        node: usize,
        out: usize,
    },
    Join {
        input: usize,
        out: usize,
        sib: SiblingIr,
        fused: Option<FusedIr>,
    },
    Fold {
        input: usize,
        out: usize,
        fused: FusedIr,
    },
}

/// Flatten of (at most two) live slots into a store's key order.
pub struct FlattenIr {
    pub a: usize,
    pub b: Option<usize>,
    pub out_pos: Vec<usize>,
}

pub struct FactoredStepIr {
    pub node: usize,
    pub live_in: Vec<usize>,
    pub ops: Vec<FactorOpIr>,
    pub store: Option<FlattenIr>,
}

pub struct FactoredPlanIr {
    pub entry: usize,
    /// Schemas of the input factor slots `0..shape_len`.
    pub shape: Vec<Vec<u32>>,
    pub n_slots: usize,
    pub entry_store: Option<FactoredStepIr>,
    pub steps: Vec<FactoredStepIr>,
}

/// One verifier finding. `rule` is a stable machine-readable code;
/// `at` locates the defect inside the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub at: String,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.rule, self.at, self.message)
    }
}

struct Sink {
    findings: Vec<Finding>,
    at: String,
}

impl Sink {
    fn new() -> Self {
        Sink {
            findings: Vec::new(),
            at: String::new(),
        }
    }

    fn emit(&mut self, rule: &'static str, message: String) {
        self.findings.push(Finding {
            rule,
            at: self.at.clone(),
            message,
        });
    }
}

impl PlanCtx {
    fn keys(&self, node: usize) -> Option<&Vec<u32>> {
        self.node_keys.get(node)
    }
}

/// Verify one sibling probe against the current delta schema; returns
/// the schema after the join (the delta with the sibling's rest
/// columns appended) or `None` if the probe is too broken to continue.
fn verify_sibling(
    ctx: &PlanCtx,
    sib: &SiblingIr,
    cur: &[u32],
    sink: &mut Sink,
) -> Option<Vec<u32>> {
    let Some(sib_keys) = ctx.keys(sib.node) else {
        sink.emit(
            "sibling-node-oob",
            format!("sibling node {} not in the view tree", sib.node),
        );
        return None;
    };
    if !ctx.materialized.get(sib.node).copied().unwrap_or(false) {
        sink.emit(
            "sibling-not-materialized",
            format!("sibling node {} probed but not materialized", sib.node),
        );
    }
    for &p in &sib.probe_pos {
        if p >= cur.len() {
            sink.emit(
                "probe-pos-oob",
                format!(
                    "probe position {p} out of bounds for delta arity {}",
                    cur.len()
                ),
            );
            return None;
        }
    }
    if sib.full_key {
        if sib.index_id != FULL_KEY {
            sink.emit(
                "full-key-index-id",
                format!("full-key probe carries index id {}", sib.index_id),
            );
        }
        if !sib.rest_pos.is_empty() {
            sink.emit(
                "full-key-rest",
                format!("full-key probe appends {} rest columns", sib.rest_pos.len()),
            );
        }
        if sib.probe_pos.len() != sib_keys.len() {
            sink.emit(
                "probe-arity",
                format!(
                    "full-key probe arity {} != sibling key arity {}",
                    sib.probe_pos.len(),
                    sib_keys.len()
                ),
            );
            return None;
        }
        // The probe must present the sibling's key variables in the
        // sibling's own column order.
        for (i, &p) in sib.probe_pos.iter().enumerate() {
            if cur[p] != sib_keys[i] {
                sink.emit(
                    "probe-key-order",
                    format!(
                        "probe column {i} carries var {} but the sibling's key column {i} is var {}",
                        cur[p], sib_keys[i]
                    ),
                );
            }
        }
        return Some(cur.to_vec());
    }
    // Partial-key probe through a secondary index.
    let indexes = ctx
        .node_indexes
        .get(sib.node)
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    let Some(ipos) = indexes.get(sib.index_id) else {
        sink.emit(
            "index-id-unresolvable",
            format!(
                "index id {} not registered on node {} ({} indexes exist)",
                sib.index_id,
                sib.node,
                indexes.len()
            ),
        );
        return None;
    };
    if sib.probe_pos.len() != ipos.len() {
        sink.emit(
            "probe-arity",
            format!(
                "probe arity {} != index key arity {}",
                sib.probe_pos.len(),
                ipos.len()
            ),
        );
        return None;
    }
    // The probe must present the index's key variables in index key
    // order: position i of the probe must carry the variable the
    // index's i-th key column is built from.
    for (i, (&p, &ip)) in sib.probe_pos.iter().zip(ipos.iter()).enumerate() {
        if ip >= sib_keys.len() {
            sink.emit(
                "index-pos-oob",
                format!(
                    "index key column {i} reads sibling position {ip}, arity {}",
                    sib_keys.len()
                ),
            );
            return None;
        }
        if cur[p] != sib_keys[ip] {
            sink.emit(
                "probe-key-order",
                format!(
                    "probe column {i} carries var {} but index key column {i} is var {}",
                    cur[p], sib_keys[ip]
                ),
            );
        }
    }
    // The rest columns must be exactly the sibling variables the delta
    // does not already bind, in sibling order, with no duplicates.
    let expected_rest: Vec<usize> = (0..sib_keys.len())
        .filter(|&i| !cur.contains(&sib_keys[i]))
        .collect();
    if sib.rest_pos != expected_rest {
        sink.emit(
            "rest-columns",
            format!(
                "rest positions {:?} != expected complement {:?} of the probed variables",
                sib.rest_pos, expected_rest
            ),
        );
    }
    let mut joined = cur.to_vec();
    for &r in &sib.rest_pos {
        if r >= sib_keys.len() {
            sink.emit(
                "rest-pos-oob",
                format!(
                    "rest position {r} out of bounds for sibling arity {}",
                    sib_keys.len()
                ),
            );
            return None;
        }
        joined.push(sib_keys[r]);
    }
    Some(joined)
}

/// Verify a projection `out_pos` of `cur` onto `target`: in-bounds,
/// duplicate-free, and variable-exact in target order.
fn verify_projection(
    rule_prefix: &'static str,
    cur: &[u32],
    out_pos: &[usize],
    target: &[u32],
    sink: &mut Sink,
) {
    if out_pos.len() != target.len() {
        sink.emit(
            "projection-arity",
            format!(
                "{rule_prefix}: projection arity {} != target key arity {}",
                out_pos.len(),
                target.len()
            ),
        );
        return;
    }
    let mut seen = vec![false; cur.len()];
    for (i, &p) in out_pos.iter().enumerate() {
        if p >= cur.len() {
            sink.emit(
                "projection-oob",
                format!(
                    "{rule_prefix}: projection position {p} out of bounds for arity {}",
                    cur.len()
                ),
            );
            return;
        }
        if seen[p] {
            sink.emit(
                "projection-dup",
                format!("{rule_prefix}: projection reads position {p} twice"),
            );
        }
        seen[p] = true;
        if cur[p] != target[i] {
            sink.emit(
                "projection-order",
                format!(
                    "{rule_prefix}: output column {i} carries var {} but the target key column {i} is var {}",
                    cur[p], target[i]
                ),
            );
        }
    }
}

/// Verify lift positions: in-bounds and only on columns the projection
/// drops (a lifted variable is marginalized out, never retained).
fn verify_lifts(lift_pos: &[usize], cur: &[u32], out_pos: &[usize], sink: &mut Sink) {
    for &p in lift_pos {
        if p >= cur.len() {
            sink.emit(
                "lift-pos-oob",
                format!("lift position {p} out of bounds for arity {}", cur.len()),
            );
        } else if out_pos.contains(&p) {
            sink.emit(
                "lift-retained",
                format!("lift position {p} is also retained by the output projection"),
            );
        }
    }
}

/// Typecheck a compiled flat-delta plan against the view tree.
pub fn verify_fast_plan(ctx: &PlanCtx, plan: &FastPlanIr) -> Vec<Finding> {
    let mut sink = Sink::new();
    sink.at = format!("fast-plan entry {}", plan.entry);
    match ctx.keys(plan.entry) {
        None => {
            sink.emit(
                "entry-node-oob",
                format!("entry node {} not in the view tree", plan.entry),
            );
            return sink.findings;
        }
        Some(keys) => {
            if &plan.entry_schema != keys {
                sink.emit(
                    "entry-schema",
                    format!(
                        "entry delta schema {:?} != entry node keys {:?}",
                        plan.entry_schema, keys
                    ),
                );
            }
        }
    }
    let mut cur = plan.entry_schema.clone();
    for (si, step) in plan.steps.iter().enumerate() {
        let Some(node_keys) = ctx.keys(step.node).cloned() else {
            sink.at = format!("fast-plan step {si}");
            sink.emit(
                "step-node-oob",
                format!("step node {} not in the view tree", step.node),
            );
            return sink.findings;
        };
        for (bi, sib) in step.siblings.iter().enumerate() {
            sink.at = format!("fast-plan step {si} sibling {bi} (node {})", sib.node);
            match verify_sibling(ctx, sib, &cur, &mut sink) {
                Some(joined) => cur = joined,
                None => return sink.findings,
            }
        }
        sink.at = format!("fast-plan step {si} (node {})", step.node);
        verify_projection("step output", &cur, &step.out_pos, &node_keys, &mut sink);
        verify_lifts(&step.lift_pos, &cur, &step.out_pos, &mut sink);
        if step.store && !ctx.materialized.get(step.node).copied().unwrap_or(false) {
            sink.emit(
                "store-not-materialized",
                format!("step stores into node {} which has no store", step.node),
            );
        }
        cur = node_keys;
    }
    sink.findings
}

/// Slot dataflow state during factored-plan verification.
struct Slots {
    /// `Some(schema)` once written; `None` = never assigned yet.
    schema: Vec<Option<Vec<u32>>>,
}

impl Slots {
    fn read(&self, slot: usize, what: &str, sink: &mut Sink) -> Option<Vec<u32>> {
        match self.schema.get(slot) {
            Some(Some(s)) => Some(s.clone()),
            Some(None) => {
                sink.emit(
                    "slot-read-before-write",
                    format!("{what} reads slot {slot} before any op assigns it"),
                );
                None
            }
            None => {
                sink.emit("slot-oob", format!("{what} reads slot {slot} >= n_slots"));
                None
            }
        }
    }

    fn write(&mut self, slot: usize, schema: Vec<u32>, shape_len: usize, sink: &mut Sink) {
        match self.schema.get_mut(slot) {
            None => sink.emit("slot-oob", format!("op writes slot {slot} >= n_slots")),
            Some(existing) => {
                if slot < shape_len {
                    sink.emit(
                        "input-slot-overwritten",
                        format!("op overwrites input factor slot {slot} (inputs must stay live)"),
                    );
                } else if existing.is_some() {
                    sink.emit(
                        "slot-double-assignment",
                        format!("slot {slot} assigned twice (slots are single-assignment)"),
                    );
                }
                *existing = Some(schema);
            }
        }
    }
}

fn apply_fused(fused: &FusedIr, cur: &[u32], sink: &mut Sink) -> Vec<u32> {
    verify_lifts(&fused.lift_pos, cur, &fused.out_pos, sink);
    let mut out = Vec::with_capacity(fused.out_pos.len());
    let mut seen = vec![false; cur.len()];
    for &p in &fused.out_pos {
        if p >= cur.len() {
            sink.emit(
                "projection-oob",
                format!(
                    "fused projection position {p} out of bounds for arity {}",
                    cur.len()
                ),
            );
            return out;
        }
        if seen[p] {
            sink.emit(
                "projection-dup",
                format!("fused projection reads position {p} twice"),
            );
        }
        seen[p] = true;
        out.push(cur[p]);
    }
    // Every column that is dropped but not lifted would silently
    // discard a bound variable without marginalizing it — in the
    // compiled plans only trivially-lifted (lifting = 1) margins may
    // be dropped bare, which the IR cannot distinguish, so only the
    // retained+lifted conflict is checked (in verify_lifts).
    out
}

fn verify_factored_step(
    ctx: &PlanCtx,
    step: &FactoredStepIr,
    slots: &mut Slots,
    shape_len: usize,
    label: &str,
    sink: &mut Sink,
) {
    for (li, &slot) in step.live_in.iter().enumerate() {
        sink.at = format!("{label} live_in[{li}]");
        slots.read(slot, "live_in", sink);
    }
    for (oi, op) in step.ops.iter().enumerate() {
        sink.at = format!("{label} op {oi}");
        match op {
            FactorOpIr::Cross { a, b, out } => {
                let sa = slots.read(*a, "Cross.a", sink);
                let sb = slots.read(*b, "Cross.b", sink);
                let (Some(sa), Some(sb)) = (sa, sb) else {
                    continue;
                };
                if sa.iter().any(|v| sb.contains(v)) {
                    sink.emit(
                        "cross-overlap",
                        format!("cross factors share variables: {sa:?} × {sb:?}"),
                    );
                }
                let mut schema = sa;
                schema.extend_from_slice(&sb);
                slots.write(*out, schema, shape_len, sink);
            }
            FactorOpIr::Adopt { node, out } => {
                let Some(keys) = ctx.keys(*node) else {
                    sink.emit(
                        "adopt-node-oob",
                        format!("adopted node {node} not in the view tree"),
                    );
                    continue;
                };
                if !ctx.materialized.get(*node).copied().unwrap_or(false) {
                    sink.emit(
                        "adopt-not-materialized",
                        format!("adopted node {node} is not materialized"),
                    );
                }
                slots.write(*out, keys.clone(), shape_len, sink);
            }
            FactorOpIr::Join {
                input,
                out,
                sib,
                fused,
            } => {
                let Some(cur) = slots.read(*input, "Join.input", sink) else {
                    continue;
                };
                let Some(mut joined) = verify_sibling(ctx, sib, &cur, sink) else {
                    continue;
                };
                if let Some(f) = fused {
                    joined = apply_fused(f, &joined, sink);
                }
                slots.write(*out, joined, shape_len, sink);
            }
            FactorOpIr::Fold { input, out, fused } => {
                let Some(cur) = slots.read(*input, "Fold.input", sink) else {
                    continue;
                };
                let folded = apply_fused(fused, &cur, sink);
                slots.write(*out, folded, shape_len, sink);
            }
        }
    }
    if let Some(st) = &step.store {
        sink.at = format!("{label} store (node {})", step.node);
        let Some(node_keys) = ctx.keys(step.node) else {
            sink.emit(
                "step-node-oob",
                format!("store node {} not in the view tree", step.node),
            );
            return;
        };
        if !ctx.materialized.get(step.node).copied().unwrap_or(false) {
            sink.emit(
                "store-not-materialized",
                format!("flatten stores into node {} which has no store", step.node),
            );
        }
        let sa = slots.read(st.a, "flatten.a", sink);
        let sb = match st.b {
            Some(b) => slots.read(b, "flatten.b", sink),
            None => Some(Vec::new()),
        };
        let (Some(sa), Some(sb)) = (sa, sb) else {
            return;
        };
        if sa.iter().any(|v| sb.contains(v)) {
            sink.emit(
                "cross-overlap",
                format!("flatten pair shares variables: {sa:?} × {sb:?}"),
            );
        }
        let mut cat = sa;
        cat.extend_from_slice(&sb);
        verify_projection("store flatten", &cat, &st.out_pos, node_keys, sink);
    }
}

/// Typecheck a compiled factored-delta slot program.
pub fn verify_factored_plan(ctx: &PlanCtx, plan: &FactoredPlanIr) -> Vec<Finding> {
    let mut sink = Sink::new();
    sink.at = format!("factored-plan entry {}", plan.entry);
    let Some(leaf_keys) = ctx.keys(plan.entry) else {
        sink.emit(
            "entry-node-oob",
            format!("entry node {} not in the view tree", plan.entry),
        );
        return sink.findings;
    };
    // The shape must partition the leaf schema: disjoint factors whose
    // union is exactly the leaf's variable set.
    let mut all: Vec<u32> = Vec::new();
    for (i, f) in plan.shape.iter().enumerate() {
        for v in f {
            if all.contains(v) {
                sink.emit(
                    "shape-overlap",
                    format!("factor {i} rebinds var {v} already bound by an earlier factor"),
                );
            }
            all.push(*v);
        }
    }
    if all.len() != leaf_keys.len() || !all.iter().all(|v| leaf_keys.contains(v)) {
        sink.emit(
            "shape-partition",
            format!("shape variables {all:?} do not partition the leaf keys {leaf_keys:?}"),
        );
    }
    if plan.n_slots < plan.shape.len() {
        sink.emit(
            "slot-count",
            format!("n_slots {} < shape_len {}", plan.n_slots, plan.shape.len()),
        );
        return sink.findings;
    }
    let mut slots = Slots {
        schema: vec![None; plan.n_slots],
    };
    for (i, f) in plan.shape.iter().enumerate() {
        slots.schema[i] = Some(f.clone());
    }
    if let Some(entry) = &plan.entry_store {
        verify_factored_step(
            ctx,
            entry,
            &mut slots,
            plan.shape.len(),
            "entry-store",
            &mut sink,
        );
    }
    for (si, step) in plan.steps.iter().enumerate() {
        let label = format!("factored-plan step {si} (node {})", step.node);
        verify_factored_step(ctx, step, &mut slots, plan.shape.len(), &label, &mut sink);
    }
    sink.findings
}

/// Verify that `ranges` (half-open, one per worker) partition
/// `[0, total)`: pairwise disjoint and jointly covering. Used for both
/// the chunk split of the route phase and the hash-range ownership of
/// the merge phase.
pub fn verify_partition(ranges: &[(usize, usize)], total: usize) -> Vec<Finding> {
    let mut sink = Sink::new();
    sink.at = "partition".to_string();
    let mut covered = 0usize;
    for (i, &(lo, hi)) in ranges.iter().enumerate() {
        if lo > hi {
            sink.emit(
                "range-inverted",
                format!("range {i} is inverted: [{lo}, {hi})"),
            );
            return sink.findings;
        }
        if hi > total {
            sink.emit(
                "range-oob",
                format!("range {i} = [{lo}, {hi}) exceeds total {total}"),
            );
        }
        for (j, &(lo2, hi2)) in ranges.iter().enumerate().skip(i + 1) {
            if lo < hi2 && lo2 < hi {
                sink.emit(
                    "range-overlap",
                    format!("ranges {i} = [{lo}, {hi}) and {j} = [{lo2}, {hi2}) overlap"),
                );
            }
        }
        covered += hi.saturating_sub(lo).min(total);
    }
    if covered != total {
        sink.emit(
            "range-cover",
            format!("ranges cover {covered} of {total} elements (must be exact)"),
        );
    }
    sink.findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> PlanCtx {
        // node 0: leaf R(a=0, b=1); node 1: sibling S(b=1, c=2) with an
        // index on [b] (position 0); node 2: parent V(a=0).
        PlanCtx {
            node_keys: vec![vec![0, 1], vec![1, 2], vec![0]],
            materialized: vec![true, true, true],
            node_indexes: vec![vec![], vec![vec![0]], vec![]],
        }
    }

    fn plan() -> FastPlanIr {
        FastPlanIr {
            entry: 0,
            entry_schema: vec![0, 1],
            steps: vec![FastStepIr {
                node: 2,
                store: true,
                siblings: vec![SiblingIr {
                    node: 1,
                    full_key: false,
                    probe_pos: vec![1],
                    rest_pos: vec![1],
                    index_id: 0,
                }],
                // joined = [a, b, c]; margins b (pos 1), c (pos 2)
                lift_pos: vec![1, 2],
                out_pos: vec![0],
            }],
        }
    }

    #[test]
    fn good_plan_is_clean() {
        let findings = verify_fast_plan(&ctx(), &plan());
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn swapped_probe_position_is_caught() {
        let mut p = plan();
        p.steps[0].siblings[0].probe_pos = vec![0]; // probes var a against index on b
        let findings = verify_fast_plan(&ctx(), &p);
        assert!(
            findings.iter().any(|f| f.rule == "probe-key-order"),
            "{findings:?}"
        );
    }

    #[test]
    fn oob_probe_position_is_caught() {
        let mut p = plan();
        p.steps[0].siblings[0].probe_pos = vec![7];
        let findings = verify_fast_plan(&ctx(), &p);
        assert!(
            findings.iter().any(|f| f.rule == "probe-pos-oob"),
            "{findings:?}"
        );
    }

    #[test]
    fn unresolvable_index_is_caught() {
        let mut p = plan();
        p.steps[0].siblings[0].index_id = 3;
        let findings = verify_fast_plan(&ctx(), &p);
        assert!(
            findings.iter().any(|f| f.rule == "index-id-unresolvable"),
            "{findings:?}"
        );
    }

    #[test]
    fn wrong_projection_is_caught() {
        let mut p = plan();
        p.steps[0].out_pos = vec![1]; // projects b where the node key is a
        let findings = verify_fast_plan(&ctx(), &p);
        assert!(
            findings.iter().any(|f| f.rule == "projection-order"),
            "{findings:?}"
        );
    }

    #[test]
    fn retained_lift_is_caught() {
        let mut p = plan();
        p.steps[0].lift_pos = vec![0, 1, 2]; // lifts the retained column too
        let findings = verify_fast_plan(&ctx(), &p);
        assert!(
            findings.iter().any(|f| f.rule == "lift-retained"),
            "{findings:?}"
        );
    }

    #[test]
    fn factored_double_assignment_is_caught() {
        let c = ctx();
        let p = FactoredPlanIr {
            entry: 0,
            shape: vec![vec![0], vec![1]],
            n_slots: 3,
            entry_store: None,
            steps: vec![FactoredStepIr {
                node: 0,
                live_in: vec![0, 1],
                ops: vec![
                    FactorOpIr::Cross { a: 0, b: 1, out: 2 },
                    FactorOpIr::Cross { a: 0, b: 1, out: 2 },
                ],
                store: None,
            }],
        };
        let findings = verify_factored_plan(&c, &p);
        assert!(
            findings.iter().any(|f| f.rule == "slot-double-assignment"),
            "{findings:?}"
        );
    }

    #[test]
    fn factored_read_before_write_is_caught() {
        let c = ctx();
        let p = FactoredPlanIr {
            entry: 0,
            shape: vec![vec![0], vec![1]],
            n_slots: 4,
            entry_store: None,
            steps: vec![FactoredStepIr {
                node: 0,
                live_in: vec![0, 1],
                ops: vec![FactorOpIr::Cross { a: 0, b: 3, out: 2 }],
                store: None,
            }],
        };
        let findings = verify_factored_plan(&c, &p);
        assert!(
            findings.iter().any(|f| f.rule == "slot-read-before-write"),
            "{findings:?}"
        );
    }

    #[test]
    fn overlapping_ranges_are_caught() {
        let findings = verify_partition(&[(0, 5), (4, 10)], 10);
        assert!(
            findings.iter().any(|f| f.rule == "range-overlap"),
            "{findings:?}"
        );
        let findings = verify_partition(&[(0, 5), (5, 9)], 10);
        assert!(
            findings.iter().any(|f| f.rule == "range-cover"),
            "{findings:?}"
        );
        let findings = verify_partition(&[(0, 5), (5, 10)], 10);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
