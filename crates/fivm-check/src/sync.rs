//! Instrumented mirrors of the `std::sync` primitives the fivm
//! concurrency core uses. Under the checker every operation is a
//! scheduling point, atomics carry per-location store lists with
//! vector clocks (weak-memory modeling), and blocking primitives
//! park/wake through the model scheduler instead of the OS.
//!
//! `Arc` is re-exported from std: the scheduler serializes model
//! threads, so std refcounts behave deterministically, and epoch
//! retirement via `Arc::strong_count`-style reasoning is still
//! observable through model state.

use crate::sched::{
    clock_join, clock_le, with_ctx, ExecCore, Loc, RunState, Step, StoreEvent, VClock, MAX_THREADS,
};
use std::cell::UnsafeCell;
use std::sync::atomic::Ordering;
use std::sync::Mutex as StdMutex;

pub use std::sync::Arc;
pub use std::sync::{LockResult, TryLockError, TryLockResult};

const ZERO: VClock = [0; MAX_THREADS];

/// Lazily-registered scheduler location. Registration is per
/// *execution* (keyed on the generation counter), so instrumented
/// objects may live in statics and still get fresh model state each
/// explored interleaving.
struct LocHandle {
    slot: StdMutex<(u64, usize)>,
}

impl LocHandle {
    const fn new() -> Self {
        LocHandle {
            slot: StdMutex::new((0, usize::MAX)),
        }
    }

    fn get(&self, core: &mut ExecCore, make: impl FnOnce() -> Loc) -> usize {
        let mut s = self.slot.lock().unwrap();
        if s.0 != core.generation {
            *s = (core.generation, core.alloc_loc(make()));
        }
        s.1
    }
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

// ---------------------------------------------------------------------------
// Atomics (u64 backing store; SeqCst is modeled as AcqRel)
// ---------------------------------------------------------------------------

struct AtomicRepr {
    init: u64,
    loc: LocHandle,
}

impl AtomicRepr {
    const fn new(init: u64) -> Self {
        AtomicRepr {
            init,
            loc: LocHandle::new(),
        }
    }

    fn loc(&self, core: &mut ExecCore) -> usize {
        let init = self.init;
        self.loc.get(core, || Loc::Atomic {
            stores: vec![StoreEvent {
                value: init,
                ts: 0,
                hb: ZERO,
                release: None,
            }],
        })
    }

    /// A load observes any store not superseded by one the reader
    /// already happens-after and not behind its coherence frontier;
    /// when several are observable, which one is a choice point.
    fn load(&self, order: Ordering) -> u64 {
        with_ctx(|ctx| {
            ctx.op("atomic load", |core, tid| {
                let loc = self.loc(core);
                let frontier = core.frontier_ts(tid, loc);
                let reader_clock = core.threads[tid].clock;
                let Loc::Atomic { stores } = &core.locs[loc] else {
                    unreachable!()
                };
                let cands: Vec<(u32, u64, Option<VClock>)> = stores
                    .iter()
                    .filter(|s| {
                        s.ts >= frontier
                            && !stores
                                .iter()
                                .any(|s2| s2.ts > s.ts && clock_le(&s2.hb, &reader_clock))
                    })
                    .map(|s| (s.ts, s.value, s.release))
                    .collect();
                debug_assert!(!cands.is_empty());
                let pick = if cands.len() > 1 {
                    core.choose(cands.len() as u32) as usize
                } else {
                    0
                };
                let (ts, value, release) = cands[pick];
                if is_acquire(order) {
                    if let Some(rc) = release {
                        clock_join(&mut core.threads[tid].clock, &rc);
                    }
                }
                core.set_frontier(tid, loc, ts);
                Step::Done(value)
            })
        })
    }

    fn store(&self, value: u64, order: Ordering) {
        with_ctx(|ctx| {
            ctx.op("atomic store", |core, tid| {
                let loc = self.loc(core);
                // The store's own tick must be part of its hb clock so
                // that clock-dominance implies happens-after the store.
                core.threads[tid].clock[tid] += 1;
                let clock = core.threads[tid].clock;
                let release = if is_release(order) { Some(clock) } else { None };
                let Loc::Atomic { stores } = &mut core.locs[loc] else {
                    unreachable!()
                };
                let ts = stores.len() as u32;
                stores.push(StoreEvent {
                    value,
                    ts,
                    hb: clock,
                    release,
                });
                core.set_frontier(tid, loc, ts);
                Step::Done(())
            })
        })
    }

    /// Read-modify-write: reads the newest store in modification
    /// order; a release RMW continues the release sequence it joins.
    fn rmw(&self, order: Ordering, f: impl Fn(u64) -> Option<u64>) -> Result<u64, u64> {
        with_ctx(|ctx| {
            ctx.op("atomic rmw", |core, tid| {
                let loc = self.loc(core);
                let Loc::Atomic { stores } = &core.locs[loc] else {
                    unreachable!()
                };
                let last = stores.last().expect("atomic has an initial store");
                let (old, prev_release) = (last.value, last.release);
                let Some(new) = f(old) else {
                    if is_acquire(order) {
                        if let Some(rc) = prev_release {
                            clock_join(&mut core.threads[tid].clock, &rc);
                        }
                    }
                    let ts = last.ts;
                    core.set_frontier(tid, loc, ts);
                    return Step::Done(Err(old));
                };
                if is_acquire(order) {
                    if let Some(rc) = prev_release {
                        clock_join(&mut core.threads[tid].clock, &rc);
                    }
                }
                core.threads[tid].clock[tid] += 1;
                let clock = core.threads[tid].clock;
                let release = match (is_release(order), prev_release) {
                    (true, Some(p)) => {
                        let mut c = clock;
                        clock_join(&mut c, &p);
                        Some(c)
                    }
                    (true, None) => Some(clock),
                    (false, seq) => seq,
                };
                let Loc::Atomic { stores } = &mut core.locs[loc] else {
                    unreachable!()
                };
                let ts = stores.len() as u32;
                stores.push(StoreEvent {
                    value: new,
                    ts,
                    hb: clock,
                    release,
                });
                core.set_frontier(tid, loc, ts);
                Step::Done(Ok(old))
            })
        })
    }
}

macro_rules! atomic_int {
    ($name:ident, $ty:ty) => {
        pub struct $name {
            repr: AtomicRepr,
        }

        impl $name {
            pub const fn new(v: $ty) -> Self {
                $name {
                    repr: AtomicRepr::new(v as u64),
                }
            }

            pub fn load(&self, order: Ordering) -> $ty {
                self.repr.load(order) as $ty
            }

            pub fn store(&self, v: $ty, order: Ordering) {
                self.repr.store(v as u64, order)
            }

            pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                self.repr.rmw(order, |_| Some(v as u64)).unwrap() as $ty
            }

            pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                self.repr
                    .rmw(order, |old| Some((old as $ty).wrapping_add(v) as u64))
                    .unwrap() as $ty
            }

            pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                self.repr
                    .rmw(order, |old| Some((old as $ty).wrapping_sub(v) as u64))
                    .unwrap() as $ty
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.repr
                    .rmw(success, |old| (old as $ty == current).then_some(new as u64))
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name)).finish_non_exhaustive()
            }
        }
    };
}

atomic_int!(AtomicU32, u32);
atomic_int!(AtomicU64, u64);
atomic_int!(AtomicUsize, usize);

pub struct AtomicBool {
    repr: AtomicRepr,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        AtomicBool {
            repr: AtomicRepr::new(v as u64),
        }
    }

    pub fn load(&self, order: Ordering) -> bool {
        self.repr.load(order) != 0
    }

    pub fn store(&self, v: bool, order: Ordering) {
        self.repr.store(v as u64, order)
    }

    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        self.repr.rmw(order, |_| Some(v as u64)).unwrap() != 0
    }
}

// ---------------------------------------------------------------------------
// Mutex + Condvar
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    loc: LocHandle,
    data: UnsafeCell<T>,
}

// SAFETY: the model scheduler enforces mutual exclusion (a guard only
// exists while `owner == Some(tid)`), mirroring std's contract.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above; `&Mutex<T>` only hands out data access through
// scheduler-serialized guards.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    loc: usize,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex {
            loc: LocHandle::new(),
            data: UnsafeCell::new(t),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }
}

fn mutex_unlock(core: &mut ExecCore, tid: usize, loc: usize) {
    let my = core.threads[tid].clock;
    let Loc::Mutex { owner, clock } = &mut core.locs[loc] else {
        unreachable!()
    };
    debug_assert_eq!(*owner, Some(tid), "unlock by non-owner");
    *owner = None;
    clock_join(clock, &my);
    core.wake_where(|r| r == RunState::Mutex(loc));
}

impl<T: ?Sized> Mutex<T> {
    fn make_loc() -> Loc {
        Loc::Mutex {
            owner: None,
            clock: ZERO,
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let loc = with_ctx(|ctx| {
            ctx.op("mutex lock", |core, tid| {
                let loc = self.loc.get(core, Self::make_loc);
                let Loc::Mutex { owner, clock } = &mut core.locs[loc] else {
                    unreachable!()
                };
                match *owner {
                    None => {
                        *owner = Some(tid);
                        let c = *clock;
                        clock_join(&mut core.threads[tid].clock, &c);
                        Step::Done(loc)
                    }
                    Some(o) if o == tid => {
                        core.fail(format!(
                            "self-deadlock: thread '{}' relocks a mutex it holds",
                            core.threads[tid].name
                        ));
                        Step::Block(RunState::Mutex(loc))
                    }
                    Some(_) => Step::Block(RunState::Mutex(loc)),
                }
            })
        });
        Ok(MutexGuard { lock: self, loc })
    }

    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        let loc = with_ctx(|ctx| {
            ctx.op("mutex try_lock", |core, tid| {
                let loc = self.loc.get(core, Self::make_loc);
                let Loc::Mutex { owner, clock } = &mut core.locs[loc] else {
                    unreachable!()
                };
                if owner.is_none() {
                    *owner = Some(tid);
                    let c = *clock;
                    clock_join(&mut core.threads[tid].clock, &c);
                    Step::Done(Some(loc))
                } else {
                    Step::Done(None)
                }
            })
        });
        match loc {
            Some(loc) => Ok(MutexGuard { lock: self, loc }),
            None => Err(TryLockError::WouldBlock),
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusion is enforced by the model scheduler while
        // this guard is live.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let loc = self.loc;
        if std::thread::panicking() {
            // Unwinding (failure teardown): release the model state
            // without consuming a scheduling turn.
            with_ctx(|ctx| ctx.side_effect(|core, tid| mutex_unlock(core, tid, loc)));
        } else {
            with_ctx(|ctx| {
                ctx.op("mutex unlock", |core, tid| {
                    mutex_unlock(core, tid, loc);
                    Step::Done(())
                })
            });
        }
    }
}

pub struct Condvar {
    loc: LocHandle,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            loc: LocHandle::new(),
        }
    }

    fn make_loc() -> Loc {
        Loc::Condvar {
            waiters: Vec::new(),
        }
    }

    /// Atomic release-and-wait; on wakeup the mutex is reacquired
    /// before returning, exactly like std.
    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        let mloc = guard.loc;
        std::mem::forget(guard);
        with_ctx(|ctx| {
            let mut released = false;
            ctx.op("condvar wait", |core, tid| {
                if !released {
                    released = true;
                    mutex_unlock(core, tid, mloc);
                    let cvloc = self.loc.get(core, Self::make_loc);
                    let Loc::Condvar { waiters } = &mut core.locs[cvloc] else {
                        unreachable!()
                    };
                    waiters.push(tid);
                    Step::Block(RunState::Condvar(cvloc))
                } else {
                    // Notified: reacquire the mutex.
                    let Loc::Mutex { owner, clock } = &mut core.locs[mloc] else {
                        unreachable!()
                    };
                    if owner.is_none() {
                        *owner = Some(tid);
                        let c = *clock;
                        clock_join(&mut core.threads[tid].clock, &c);
                        Step::Done(())
                    } else {
                        Step::Block(RunState::Mutex(mloc))
                    }
                }
            });
            Ok(MutexGuard { lock, loc: mloc })
        })
    }

    /// Which waiter wakes is a choice point — lost-wakeup bugs that
    /// depend on the victim are explored, not sampled.
    pub fn notify_one(&self) {
        with_ctx(|ctx| {
            ctx.op("condvar notify_one", |core, _tid| {
                let cvloc = self.loc.get(core, Self::make_loc);
                let Loc::Condvar { waiters } = &mut core.locs[cvloc] else {
                    unreachable!()
                };
                let n = waiters.len();
                if n == 0 {
                    return Step::Done(());
                }
                let pick = if n > 1 {
                    core.choose(n as u32) as usize
                } else {
                    0
                };
                let Loc::Condvar { waiters } = &mut core.locs[cvloc] else {
                    unreachable!()
                };
                let w = waiters.remove(pick);
                // A waiter aborted mid-teardown stays Finished.
                if core.threads[w].run == RunState::Condvar(cvloc) {
                    core.threads[w].run = RunState::Runnable;
                }
                Step::Done(())
            })
        })
    }

    pub fn notify_all(&self) {
        with_ctx(|ctx| {
            ctx.op("condvar notify_all", |core, _tid| {
                let cvloc = self.loc.get(core, Self::make_loc);
                let Loc::Condvar { waiters } = &mut core.locs[cvloc] else {
                    unreachable!()
                };
                let ws = std::mem::take(waiters);
                for w in ws {
                    // A waiter aborted mid-teardown stays Finished.
                    if core.threads[w].run == RunState::Condvar(cvloc) {
                        core.threads[w].run = RunState::Runnable;
                    }
                }
                Step::Done(())
            })
        })
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

pub struct RwLock<T: ?Sized> {
    loc: LocHandle,
    data: UnsafeCell<T>,
}

// SAFETY: reader/writer exclusion is enforced by the model scheduler,
// mirroring std's contract.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
// SAFETY: as above; requires T: Sync for shared read guards.
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    loc: usize,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    loc: usize,
}

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock {
            loc: LocHandle::new(),
            data: UnsafeCell::new(t),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    fn make_loc() -> Loc {
        Loc::RwLock {
            writer: None,
            readers: Vec::new(),
            clock: ZERO,
        }
    }

    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let loc = with_ctx(|ctx| {
            ctx.op("rwlock read", |core, tid| {
                let loc = self.loc.get(core, Self::make_loc);
                let Loc::RwLock {
                    writer,
                    readers,
                    clock,
                } = &mut core.locs[loc]
                else {
                    unreachable!()
                };
                if writer.is_none() {
                    readers.push(tid);
                    let c = *clock;
                    clock_join(&mut core.threads[tid].clock, &c);
                    Step::Done(loc)
                } else {
                    Step::Block(RunState::RwRead(loc))
                }
            })
        });
        Ok(RwLockReadGuard { lock: self, loc })
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let loc = with_ctx(|ctx| {
            ctx.op("rwlock write", |core, tid| {
                let loc = self.loc.get(core, Self::make_loc);
                let Loc::RwLock {
                    writer,
                    readers,
                    clock,
                } = &mut core.locs[loc]
                else {
                    unreachable!()
                };
                if writer.is_none() && readers.is_empty() {
                    *writer = Some(tid);
                    let c = *clock;
                    clock_join(&mut core.threads[tid].clock, &c);
                    Step::Done(loc)
                } else {
                    Step::Block(RunState::RwWrite(loc))
                }
            })
        });
        Ok(RwLockWriteGuard { lock: self, loc })
    }
}

fn rw_release_read(core: &mut ExecCore, tid: usize, loc: usize) {
    let my = core.threads[tid].clock;
    let Loc::RwLock { readers, clock, .. } = &mut core.locs[loc] else {
        unreachable!()
    };
    if let Some(p) = readers.iter().position(|&r| r == tid) {
        readers.remove(p);
    }
    clock_join(clock, &my);
    core.wake_where(|r| matches!(r, RunState::RwRead(l) | RunState::RwWrite(l) if l == loc));
}

fn rw_release_write(core: &mut ExecCore, tid: usize, loc: usize) {
    let my = core.threads[tid].clock;
    let Loc::RwLock { writer, clock, .. } = &mut core.locs[loc] else {
        unreachable!()
    };
    debug_assert_eq!(*writer, Some(tid));
    *writer = None;
    clock_join(clock, &my);
    core.wake_where(|r| matches!(r, RunState::RwRead(l) | RunState::RwWrite(l) if l == loc));
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: no writer exists while read guards are live
        // (enforced by the model scheduler).
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusive access enforced by the model scheduler.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        let loc = self.loc;
        if std::thread::panicking() {
            with_ctx(|ctx| ctx.side_effect(|core, tid| rw_release_read(core, tid, loc)));
        } else {
            with_ctx(|ctx| {
                ctx.op("rwlock read release", |core, tid| {
                    rw_release_read(core, tid, loc);
                    Step::Done(())
                })
            });
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        let loc = self.loc;
        if std::thread::panicking() {
            with_ctx(|ctx| ctx.side_effect(|core, tid| rw_release_write(core, tid, loc)));
        } else {
            with_ctx(|ctx| {
                ctx.op("rwlock write release", |core, tid| {
                    rw_release_write(core, tid, loc);
                    Step::Done(())
                })
            });
        }
    }
}

// ---------------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------------

/// Write-once cell built on the instrumented atomics: state 0 = empty,
/// 1 = initializing, 2 = ready. The value itself is a plain cell whose
/// reads race-check against the initializing thread's clock — so a
/// reader that reaches the value without a happens-before edge from
/// initialization (e.g. through a Relaxed publish) is flagged even if
/// the bytes would happen to be intact on the test host.
pub struct OnceLock<T> {
    state: AtomicU32,
    value: UnsafeCell<Option<T>>,
    val_loc: LocHandle,
}

// SAFETY: writes are serialized by the state CAS; reads are
// race-checked by the model (and a detected race fails the execution
// before the read is used).
unsafe impl<T: Send> Send for OnceLock<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for OnceLock<T> {}

impl<T> Default for OnceLock<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OnceLock<T> {
    pub const fn new() -> Self {
        OnceLock {
            state: AtomicU32::new(0),
            value: UnsafeCell::new(None),
            val_loc: LocHandle::new(),
        }
    }

    fn value_write(&self) {
        with_ctx(|ctx| {
            ctx.op("oncelock value write", |core, tid| {
                let loc = self.val_loc.get(core, || Loc::Cell {
                    write: ZERO,
                    last_writer: None,
                });
                core.threads[tid].clock[tid] += 1;
                let clock = core.threads[tid].clock;
                let Loc::Cell { write, last_writer } = &mut core.locs[loc] else {
                    unreachable!()
                };
                *write = clock;
                *last_writer = Some(tid);
                Step::Done(())
            })
        })
    }

    fn value_read_check(&self) {
        with_ctx(|ctx| {
            ctx.op("oncelock value read", |core, tid| {
                let loc = self.val_loc.get(core, || Loc::Cell {
                    write: ZERO,
                    last_writer: None,
                });
                let Loc::Cell { write, last_writer } = &core.locs[loc] else {
                    unreachable!()
                };
                let (w, lw) = (*write, *last_writer);
                if !clock_le(&w, &core.threads[tid].clock) {
                    let name = core.threads[tid].name.clone();
                    core.fail(format!(
                        "data race: thread '{name}' reads OnceLock value without \
                         happens-before from its initialization (writer {lw:?})"
                    ));
                }
                Step::Done(())
            })
        })
    }

    pub fn get(&self) -> Option<&T> {
        if self.state.load(Ordering::Acquire) == 2 {
            self.value_read_check();
            // SAFETY: state 2 means the unique initializer completed
            // its write; the model race-check above flags any access
            // not ordered after it.
            unsafe { (*self.value.get()).as_ref() }
        } else {
            None
        }
    }

    pub fn set(&self, value: T) -> Result<(), T> {
        match self
            .state
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Acquire)
        {
            Ok(_) => {
                self.value_write();
                // SAFETY: the CAS made this thread the unique
                // initializer; no reader dereferences before state 2.
                unsafe { *self.value.get() = Some(value) };
                self.state.store(2, Ordering::Release);
                Ok(())
            }
            Err(2) => Err(value),
            Err(_) => {
                // Mid-initialization contention: std blocks here; the
                // fivm usage never contends (chunk init is serialized
                // by the intern mutex), so the model flags it instead
                // of modeling the park.
                panic!("OnceLock::set contention not supported by the model");
            }
        }
    }

    pub fn get_or_init(&self, f: impl FnOnce() -> T) -> &T {
        if let Some(v) = self.get() {
            return v;
        }
        match self
            .state
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Acquire)
        {
            Ok(_) => {
                let value = f();
                self.value_write();
                // SAFETY: unique initializer, as in `set`.
                unsafe { *self.value.get() = Some(value) };
                self.state.store(2, Ordering::Release);
                // SAFETY: just initialized by this thread.
                unsafe { (*self.value.get()).as_ref().unwrap() }
            }
            Err(2) => self.get().expect("state 2 implies initialized"),
            Err(_) => panic!("OnceLock::get_or_init contention not supported by the model"),
        }
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

pub mod thread {
    use crate::sched::{clock_join, spawn_model_thread, with_ctx, RunState, Step};
    use std::sync::{Arc, Mutex as StdMutex};

    pub struct JoinHandle<T> {
        tid: usize,
        result: Arc<StdMutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Model join: blocks until the target thread's `exit` op has
        /// been scheduled, then collects its result.
        pub fn join(self) -> std::thread::Result<T> {
            let target = self.tid;
            with_ctx(|ctx| {
                ctx.op("join", |core, tid| {
                    if core.threads[target].run == RunState::Finished {
                        let c = core.threads[target].clock;
                        clock_join(&mut core.threads[tid].clock, &c);
                        Step::Done(())
                    } else {
                        Step::Block(RunState::Join(target))
                    }
                })
            });
            match self.result.lock().unwrap().take() {
                Some(v) => Ok(v),
                None => Err(Box::new("model thread panicked".to_string())),
            }
        }
    }

    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        pub fn new() -> Self {
            Builder { name: None }
        }

        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let name = self.name.unwrap_or_else(|| "model-thread".to_string());
            let result = Arc::new(StdMutex::new(None));
            let slot = result.clone();
            let tid = spawn_model_thread(name, move || {
                let r = f();
                *slot.lock().unwrap() = Some(r);
            });
            Ok(JoinHandle { tid, result })
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("model spawn failed")
    }
}
