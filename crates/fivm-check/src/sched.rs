//! Deterministic-interleaving scheduler: the execution engine behind
//! [`crate::Checker`].
//!
//! Model threads are real OS threads, but the scheduler serializes them:
//! at every instrumented operation a thread parks until the controller
//! grants it the turn, so exactly one model thread runs between two
//! scheduling decisions. Every decision (which thread runs next, which
//! store a weak load observes, which waiter a `notify_one` wakes) is a
//! *choice point* recorded on a tape; the explorer backtracks over the
//! tape depth-first, replaying the prefix and taking the next branch,
//! until the whole tree (optionally preemption-bounded) is exhausted.
//!
//! Weak memory is modeled per atomic location as a store list with
//! vector clocks: a load may observe any store not superseded by one
//! the reader already happens-after, and only an `Acquire` load of a
//! `Release` store joins clocks (synchronizes-with). This is what lets
//! the checker catch a `Release`→`Relaxed` downgrade that no
//! sequentially-consistent interleaving explorer can see.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Hard cap on threads per model (vector clocks are fixed-width).
pub const MAX_THREADS: usize = 8;

pub(crate) type VClock = [u32; MAX_THREADS];

pub(crate) fn clock_le(a: &VClock, b: &VClock) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

pub(crate) fn clock_join(a: &mut VClock, b: &VClock) {
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = (*x).max(*y);
    }
}

/// One store event on an atomic location.
pub(crate) struct StoreEvent {
    pub value: u64,
    /// Modification-order timestamp (position in the store list).
    pub ts: u32,
    /// Clock of the storing thread at the store: a reader that
    /// happens-after a *later* store can no longer observe this one.
    pub hb: VClock,
    /// `Some(clock)` iff the store (or the head of its release
    /// sequence) had Release ordering: an Acquire load that observes it
    /// joins this clock. A Relaxed store publishes no clock — that is
    /// exactly the bug class the checker exists to catch.
    pub release: Option<VClock>,
}

pub(crate) enum Loc {
    Atomic {
        stores: Vec<StoreEvent>,
    },
    Mutex {
        owner: Option<usize>,
        clock: VClock,
    },
    RwLock {
        writer: Option<usize>,
        readers: Vec<usize>,
        clock: VClock,
    },
    Condvar {
        waiters: Vec<usize>,
    },
    /// A plain (non-atomic) cell guarded by the surrounding protocol;
    /// reads race-check against the last writer's clock.
    Cell {
        write: VClock,
        last_writer: Option<usize>,
    },
}

/// Why a thread is not currently runnable.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum RunState {
    Runnable,
    /// Waiting to acquire the mutex at this location.
    Mutex(usize),
    RwRead(usize),
    RwWrite(usize),
    /// Parked on a condvar; only a notify makes it runnable again.
    Condvar(usize),
    Join(usize),
    Finished,
}

pub(crate) struct ThreadState {
    pub run: RunState,
    pub clock: VClock,
    /// Per-location minimum observable store timestamp (read coherence:
    /// a thread never observes a store older than one it already read).
    pub frontier: Vec<u32>,
    pub ops: u32,
    pub name: String,
}

pub(crate) struct TraceEv {
    pub tid: usize,
    pub desc: &'static str,
}

const MAX_TRACE: usize = 4000;

pub(crate) struct ExecCore {
    pub threads: Vec<ThreadState>,
    pub locs: Vec<Loc>,
    /// The thread currently granted the turn; `None` while the
    /// controller is deciding.
    pub active: Option<usize>,
    pub aborting: bool,
    pub failure: Option<String>,
    pub trace: Vec<TraceEv>,
    /// Replay tape: choices forced for this execution (prefix).
    pub schedule: Vec<u32>,
    /// Position in `schedule` during replay.
    pub cursor: usize,
    /// Choices actually taken this execution, with their arity
    /// (branching factor) — the DFS frontier.
    pub taken: Vec<(u32, u32)>,
    pub last_run: usize,
    pub preemptions: u32,
    pub steps: u64,
    pub generation: u64,
    pub join_handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecCore {
    fn new(generation: u64) -> Self {
        ExecCore {
            threads: Vec::new(),
            locs: Vec::new(),
            active: None,
            aborting: false,
            failure: None,
            trace: Vec::new(),
            schedule: Vec::new(),
            cursor: 0,
            taken: Vec::new(),
            last_run: 0,
            preemptions: 0,
            steps: 0,
            generation,
            join_handles: Vec::new(),
        }
    }

    pub(crate) fn alloc_loc(&mut self, loc: Loc) -> usize {
        self.locs.push(loc);
        self.locs.len() - 1
    }

    pub(crate) fn register_thread(&mut self, name: String, clock: VClock) -> usize {
        let tid = self.threads.len();
        assert!(
            tid < MAX_THREADS,
            "fivm-check: model exceeds {MAX_THREADS} threads"
        );
        self.threads.push(ThreadState {
            run: RunState::Runnable,
            clock,
            frontier: Vec::new(),
            ops: 0,
            name,
        });
        tid
    }

    /// Resolve one choice point of the given arity: replay from the
    /// tape if a forced choice remains, otherwise take branch 0 and
    /// record the frontier for backtracking.
    pub(crate) fn choose(&mut self, arity: u32) -> u32 {
        debug_assert!(arity >= 1);
        let pick = if self.cursor < self.schedule.len() {
            let p = self.schedule[self.cursor];
            self.cursor += 1;
            // During an abort teardown un-modeled destructor effects
            // may have shifted later arities; the execution is being
            // discarded, so divergence is only an error before then.
            debug_assert!(
                self.aborting || p < arity,
                "fivm-check: replay divergence (tape pick out of range)"
            );
            p.min(arity - 1)
        } else {
            0
        };
        self.taken.push((pick, arity));
        pick
    }

    pub(crate) fn frontier_ts(&mut self, tid: usize, loc: usize) -> u32 {
        let f = &mut self.threads[tid].frontier;
        if f.len() <= loc {
            f.resize(loc + 1, 0);
        }
        f[loc]
    }

    pub(crate) fn set_frontier(&mut self, tid: usize, loc: usize, ts: u32) {
        let f = &mut self.threads[tid].frontier;
        if f.len() <= loc {
            f.resize(loc + 1, 0);
        }
        f[loc] = f[loc].max(ts);
    }

    pub(crate) fn push_trace(&mut self, tid: usize, desc: &'static str) {
        if self.trace.len() < MAX_TRACE {
            self.trace.push(TraceEv { tid, desc });
        }
    }

    pub(crate) fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.aborting = true;
    }

    /// Wake every thread blocked with the given run state.
    pub(crate) fn wake_where(&mut self, pred: impl Fn(RunState) -> bool) {
        for t in self.threads.iter_mut() {
            if t.run != RunState::Finished && pred(t.run) {
                t.run = RunState::Runnable;
            }
        }
    }

    /// Hash of the abstract model state, for visited-state reporting.
    fn state_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for t in &self.threads {
            t.run.hash(&mut h);
            t.ops.hash(&mut h);
        }
        for loc in &self.locs {
            match loc {
                Loc::Atomic { stores } => {
                    0u8.hash(&mut h);
                    stores.len().hash(&mut h);
                    if let Some(s) = stores.last() {
                        s.value.hash(&mut h);
                    }
                }
                Loc::Mutex { owner, .. } => {
                    1u8.hash(&mut h);
                    owner.hash(&mut h);
                }
                Loc::RwLock {
                    writer, readers, ..
                } => {
                    2u8.hash(&mut h);
                    writer.hash(&mut h);
                    readers.hash(&mut h);
                }
                Loc::Condvar { waiters } => {
                    3u8.hash(&mut h);
                    waiters.hash(&mut h);
                }
                Loc::Cell { last_writer, .. } => {
                    4u8.hash(&mut h);
                    last_writer.hash(&mut h);
                }
            }
        }
        h.finish()
    }
}

pub(crate) struct ExecShared {
    pub core: StdMutex<ExecCore>,
    pub cv: StdCondvar,
}

/// Panic payload used to unwind model threads when an execution aborts.
pub(crate) struct Abort;

/// Result of one instrumented-operation attempt.
pub(crate) enum Step<R> {
    Done(R),
    Block(RunState),
}

thread_local! {
    static CTX: std::cell::RefCell<Option<ThreadCtx>> = const { std::cell::RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct ThreadCtx {
    pub shared: Arc<ExecShared>,
    pub tid: usize,
}

/// True when the calling thread is a model thread under a checker.
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

pub(crate) fn with_ctx<R>(f: impl FnOnce(&ThreadCtx) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b.as_ref().expect(
            "fivm-check instrumented primitive used outside Checker::check \
             (model-check builds must run code under the checker)",
        );
        f(ctx)
    })
}

struct CtxGuard;

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| *c.borrow_mut() = None);
    }
}

fn install_ctx(ctx: ThreadCtx) -> CtxGuard {
    CTX.with(|c| *c.borrow_mut() = Some(ctx));
    CtxGuard
}

const STEP_BUDGET: u64 = 100_000;

impl ThreadCtx {
    /// Run one instrumented operation. The thread parks until the
    /// controller grants it the turn, then applies `f` under the core
    /// lock. `Block` parks the thread (state set by `f`) until another
    /// operation wakes it, at which point `f` is retried on its next
    /// granted turn.
    pub(crate) fn op<R>(
        &self,
        desc: &'static str,
        mut f: impl FnMut(&mut ExecCore, usize) -> Step<R>,
    ) -> R {
        let tid = self.tid;
        let mut core = self.shared.core.lock().unwrap();
        // Already unwinding (teardown Abort, or a real model failure
        // whose destructors — e.g. a pool shutdown in Drop — perform
        // sync ops): apply the effect without turn discipline or a
        // second panic. The execution is over and will be discarded or
        // reported as-is, so determinism no longer matters; the thread
        // leaves the model (marked Finished, never granted turns) and
        // its remaining effects run opportunistically under the core
        // lock so lock/unlock bookkeeping stays coherent and the
        // teardown cannot wedge the controller.
        if std::thread::panicking() {
            // A real panic mid-execution means destructor effects now
            // interleave outside the schedule tape: the execution is no
            // longer replayable, so end it for every thread.
            core.aborting = true;
            core.threads[tid].run = RunState::Finished;
            if core.active == Some(tid) {
                core.active = None;
            }
            loop {
                match f(&mut core, tid) {
                    Step::Done(r) => {
                        self.shared.cv.notify_all();
                        return r;
                    }
                    Step::Block(_) => {
                        // Do NOT record the block state: the scheduler
                        // must keep seeing this thread as Finished.
                        // Every model mutation notifies the condvar, so
                        // waiting and retrying cannot miss the release.
                        self.shared.cv.notify_all();
                        core = self.shared.cv.wait(core).unwrap();
                    }
                }
            }
        }
        loop {
            // Wait for the turn (or an abort).
            while core.active != Some(tid) && !core.aborting {
                core = self.shared.cv.wait(core).unwrap();
            }
            if core.aborting {
                core.threads[tid].run = RunState::Finished;
                if core.active == Some(tid) {
                    core.active = None;
                }
                self.shared.cv.notify_all();
                drop(core);
                std::panic::panic_any(Abort);
            }
            match f(&mut core, tid) {
                Step::Done(r) => {
                    core.threads[tid].clock[tid] += 1;
                    core.threads[tid].ops += 1;
                    core.steps += 1;
                    core.push_trace(tid, desc);
                    if core.steps > STEP_BUDGET && core.failure.is_none() {
                        core.fail(format!(
                            "step budget exceeded ({STEP_BUDGET} ops): livelock or runaway model"
                        ));
                    }
                    core.active = None;
                    self.shared.cv.notify_all();
                    return r;
                }
                Step::Block(st) => {
                    core.threads[tid].run = st;
                    core.active = None;
                    self.shared.cv.notify_all();
                    // Loop: wait until woken (Runnable) and granted
                    // the turn again, then retry `f`.
                }
            }
        }
    }

    /// Mutate core state without consuming a turn. Only for effects
    /// that must happen during unwinding (guard drops while panicking)
    /// or that are invisible to the model (join-handle stashing):
    /// anything else would break replay determinism.
    pub(crate) fn side_effect(&self, f: impl FnOnce(&mut ExecCore, usize)) {
        let mut core = self.shared.core.lock().unwrap();
        f(&mut core, self.tid);
        self.shared.cv.notify_all();
    }
}

/// Spawn a model thread: registers it with the scheduler (as an
/// instrumented op on the parent) and launches the real thread.
pub(crate) fn spawn_model_thread(name: String, f: impl FnOnce() + Send + 'static) -> usize {
    let (shared, child) = with_ctx(|ctx| {
        let shared = ctx.shared.clone();
        let child = ctx.op("spawn", |core, tid| {
            let clock = core.threads[tid].clock;
            Step::Done(core.register_thread(name.clone(), clock))
        });
        (shared, child)
    });
    let child_shared = shared.clone();
    let handle = std::thread::Builder::new()
        .name(format!("fivm-check-{name}"))
        .spawn(move || {
            let _g = install_ctx(ThreadCtx {
                shared: child_shared.clone(),
                tid: child,
            });
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            finish_thread(&child_shared, child, r);
        })
        .expect("fivm-check: failed to spawn model thread");
    // Stash the handle for end-of-execution joining. Not a model
    // effect: join_handles is invisible to state hashing and replay.
    let mut core = shared.core.lock().unwrap();
    core.join_handles.push(handle);
    drop(core);
    child
}

/// Terminal transition of a model thread: records panics as failures,
/// marks the thread finished (as a scheduled op so replay stays
/// deterministic), and wakes joiners.
fn finish_thread(shared: &Arc<ExecShared>, tid: usize, result: std::thread::Result<()>) {
    match result {
        Ok(()) => {
            let ctx = ThreadCtx {
                shared: shared.clone(),
                tid,
            };
            // `exit` is a scheduled op: a thread only becomes Finished
            // when the controller grants it the turn, so the point at
            // which joiners can proceed is tape-driven, not racy.
            // Abort during exit unwinds; state was already set then.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ctx.op("exit", |core, t| {
                    core.threads[t].run = RunState::Finished;
                    core.wake_where(|r| r == RunState::Join(t));
                    Step::Done(())
                });
            }));
        }
        Err(payload) => {
            if payload.is::<Abort>() {
                // Teardown unwind. Destructors that ran while
                // unwinding (pool shutdowns joining on sync ops) may
                // have overwritten this thread's run state — re-mark
                // it Finished so the controller's drain terminates.
                let mut core = shared.core.lock().unwrap();
                core.threads[tid].run = RunState::Finished;
                if core.active == Some(tid) {
                    core.active = None;
                }
                shared.cv.notify_all();
                return;
            }
            let msg = payload_to_string(&payload);
            let mut core = shared.core.lock().unwrap();
            let name = core.threads[tid].name.clone();
            core.fail(format!("model thread '{name}' panicked: {msg}"));
            core.threads[tid].run = RunState::Finished;
            if core.active == Some(tid) {
                core.active = None;
            }
            shared.cv.notify_all();
        }
    }
}

fn payload_to_string(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A failing execution: the invariant violation plus the interleaving
/// that produced it.
pub struct Failure {
    pub message: String,
    pub trace: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.message)?;
        write!(f, "interleaving:\n{}", self.trace)
    }
}

/// Outcome of exhaustive exploration of one model.
pub struct Report {
    pub name: String,
    /// Complete executions (interleavings) explored.
    pub executions: u64,
    /// Distinct abstract model states visited (hash-based estimate).
    pub states: u64,
    /// True if exploration stopped at `max_executions` before the
    /// tree was exhausted.
    pub truncated: bool,
    pub failure: Option<Failure>,
}

impl Report {
    /// Assert the model is correct: exploration found no failure and
    /// was not truncated (so the result is a proof over the bounded
    /// schedule space, not a sample).
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model '{}' FAILED after {} executions:\n{}",
                self.name, self.executions, f
            );
        }
        assert!(
            !self.truncated,
            "model '{}' exploration truncated at {} executions — raise max_executions",
            self.name, self.executions
        );
    }

    /// Assert the checker caught a (seeded) bug whose message contains
    /// `needle` — the mutation-verification direction.
    pub fn assert_fails(&self, needle: &str) {
        match &self.failure {
            None => panic!(
                "model '{}' expected to fail (needle: {:?}) but {} executions all passed",
                self.name, needle, self.executions
            ),
            Some(f) => assert!(
                f.message.contains(needle),
                "model '{}' failed with the wrong message.\nwanted needle: {:?}\ngot: {}",
                self.name,
                needle,
                f
            ),
        }
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model '{}': {} executions, {} distinct states{}{}",
            self.name,
            self.executions,
            self.states,
            if self.truncated {
                " (TRUNCATED)"
            } else {
                " (exhaustive)"
            },
            if self.failure.is_some() {
                " FAILED"
            } else {
                ""
            }
        )
    }
}

static EXEC_GEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// The explorer: exhaustively enumerates interleavings of a model
/// closure via DFS over the choice tape.
pub struct Checker {
    /// Max context switches away from a still-runnable thread per
    /// execution (`None` = unbounded). Bounding is sound for bug
    /// *finding* (most bugs need few preemptions) and keeps the
    /// schedule space tractable; `assert_ok` proofs are relative to
    /// this bound.
    pub preemption_bound: Option<u32>,
    /// Safety valve on the number of executions.
    pub max_executions: u64,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            preemption_bound: Some(2),
            max_executions: 500_000,
        }
    }
}

impl Checker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn preemption_bound(mut self, b: Option<u32>) -> Self {
        self.preemption_bound = b;
        self
    }

    pub fn max_executions(mut self, m: u64) -> Self {
        self.max_executions = m;
        self
    }

    /// Exhaustively explore `model`. The closure runs once per
    /// execution as model thread 0; it may spawn further model threads
    /// through `check::sync::thread`.
    pub fn check<F>(&self, name: &str, model: F) -> Report
    where
        F: Fn() + Sync,
    {
        let mut schedule: Vec<u32> = Vec::new();
        let mut executions: u64 = 0;
        let mut states: HashSet<u64> = HashSet::new();
        let mut truncated = false;
        let mut failure: Option<Failure> = None;

        loop {
            let (fail, taken) = self.run_once(&model, &schedule, &mut states);
            executions += 1;
            if let Some(f) = fail {
                failure = Some(f);
                break;
            }
            let more = next_schedule(&taken, &mut schedule);
            if !more {
                break;
            }
            if executions >= self.max_executions {
                truncated = true; // unexplored branches remain
                break;
            }
        }

        Report {
            name: name.to_string(),
            executions,
            states: states.len() as u64,
            truncated,
            failure,
        }
    }

    /// Run one execution under the forced `schedule` prefix; returns
    /// the failure (if any) and the full choice tape taken.
    fn run_once<F>(
        &self,
        model: &F,
        schedule: &[u32],
        states: &mut HashSet<u64>,
    ) -> (Option<Failure>, Vec<(u32, u32)>)
    where
        F: Fn() + Sync,
    {
        let generation = EXEC_GEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut core = ExecCore::new(generation);
        core.schedule = schedule.to_vec();
        core.register_thread("main".to_string(), [0; MAX_THREADS]);
        let shared = Arc::new(ExecShared {
            core: StdMutex::new(core),
            cv: StdCondvar::new(),
        });

        std::thread::scope(|scope| {
            let root_shared = shared.clone();
            let root = scope.spawn(move || {
                let _g = install_ctx(ThreadCtx {
                    shared: root_shared.clone(),
                    tid: 0,
                });
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(model));
                finish_thread(&root_shared, 0, r);
            });

            // Controller loop: wait for quiescence, pick, grant.
            let mut core = shared.core.lock().unwrap();
            loop {
                while core.active.is_some() {
                    core = shared.cv.wait(core).unwrap();
                }
                if core.aborting {
                    break;
                }
                let unfinished: Vec<usize> = (0..core.threads.len())
                    .filter(|&t| core.threads[t].run != RunState::Finished)
                    .collect();
                if unfinished.is_empty() {
                    break; // execution complete
                }
                states.insert(core.state_hash());
                let mut candidates: Vec<usize> = unfinished
                    .iter()
                    .copied()
                    .filter(|&t| core.threads[t].run == RunState::Runnable)
                    .collect();
                if candidates.is_empty() {
                    let held: Vec<String> = unfinished
                        .iter()
                        .map(|&t| {
                            let th = &core.threads[t];
                            format!("'{}' blocked on {}", th.name, runstate_desc(th.run))
                        })
                        .collect();
                    core.fail(format!("deadlock: {}", held.join(", ")));
                    break;
                }
                // Preemption bounding: once the budget is spent, a
                // still-runnable previous thread must keep running.
                if let Some(bound) = self.preemption_bound {
                    if core.preemptions >= bound && candidates.contains(&core.last_run) {
                        candidates = vec![core.last_run];
                    }
                }
                let pick = core.choose(candidates.len() as u32) as usize;
                let tid = candidates[pick];
                if tid != core.last_run
                    && core.threads[core.last_run].run == RunState::Runnable
                    && core.threads[core.last_run].ops > 0
                {
                    core.preemptions += 1;
                }
                core.last_run = tid;
                core.active = Some(tid);
                shared.cv.notify_all();
            }

            // Abort/teardown: wake everything until all threads finish.
            core.aborting = core.aborting || core.failure.is_some();
            if core.aborting {
                shared.cv.notify_all();
                while core.threads.iter().any(|t| t.run != RunState::Finished) {
                    shared.cv.notify_all();
                    core = shared.cv.wait(core).unwrap();
                }
            }
            let handles = std::mem::take(&mut core.join_handles);
            drop(core);
            // Join every real thread — root included — BEFORE reading
            // the failure: a thread unwinding a real panic records its
            // failure in `finish_thread`, which runs after any
            // destructor-driven teardown ops, so reading earlier could
            // drop the failure of an execution that did fail.
            for h in handles {
                let _ = h.join();
            }
            let _ = root.join();
            let mut core = shared.core.lock().unwrap();
            let fail = core.failure.take().map(|message| Failure {
                message,
                trace: render_trace(&core),
            });
            let taken = std::mem::take(&mut core.taken);
            (fail, taken)
        })
    }
}

fn runstate_desc(r: RunState) -> &'static str {
    match r {
        RunState::Runnable => "ready",
        RunState::Mutex(_) => "mutex acquire",
        RunState::RwRead(_) => "rwlock read acquire",
        RunState::RwWrite(_) => "rwlock write acquire",
        RunState::Condvar(_) => "condvar wait",
        RunState::Join(_) => "thread join",
        RunState::Finished => "finished",
    }
}

fn render_trace(core: &ExecCore) -> String {
    let mut out = String::new();
    let tail = core.trace.len().saturating_sub(120);
    if tail > 0 {
        out.push_str(&format!("  ... {tail} earlier ops elided ...\n"));
    }
    for ev in &core.trace[tail..] {
        let name = &core.threads[ev.tid].name;
        out.push_str(&format!("  [{name}] {}\n", ev.desc));
    }
    out
}

/// DFS backtracking: find the deepest choice point with an untaken
/// branch, bump it, truncate the tape there. Returns false when the
/// tree is exhausted.
fn next_schedule(taken: &[(u32, u32)], schedule: &mut Vec<u32>) -> bool {
    for i in (0..taken.len()).rev() {
        let (pick, arity) = taken[i];
        if pick + 1 < arity {
            schedule.clear();
            schedule.extend(taken[..i].iter().map(|&(p, _)| p));
            schedule.push(pick + 1);
            return true;
        }
    }
    schedule.clear();
    false
}
