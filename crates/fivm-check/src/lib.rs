//! `fivm-check`: homegrown loom-lite for the fivm concurrency core.
//!
//! Two pieces live here:
//!
//! * [`Checker`] + [`sync`] — an exhaustive deterministic-interleaving
//!   model checker. Models run on real threads serialized by a
//!   controller; every instrumented operation is a scheduling point,
//!   atomics are modeled with C11-style store lists + vector clocks
//!   (so `Release`→`Relaxed` downgrades are observable, not just
//!   thread orderings), and the DFS explorer enumerates the schedule
//!   tree under an optional preemption bound.
//! * [`plan_ir`] — a static verifier for the engine's compiled plan
//!   IRs (`FastPlan` / `FactoredPlan` slot programs), checked against
//!   a neutral description of the view tree.
//!
//! No dependencies by design: this crate must be buildable in the
//! offline container and impose nothing on production builds.

pub mod plan_ir;
mod sched;
pub mod sync;

pub use sched::{in_model, Checker, Failure, Report, MAX_THREADS};

#[cfg(test)]
mod tests {
    use super::sync::{thread, Arc, AtomicU32, Condvar, Mutex, OnceLock, RwLock};
    use super::Checker;
    use std::sync::atomic::Ordering;

    /// Two unsynchronized load-then-store increments: the classic lost
    /// update. The checker must find the interleaving where both
    /// threads read 0.
    #[test]
    fn finds_lost_update() {
        let report = Checker::new().check("lost-update", || {
            let c = Arc::new(AtomicU32::new(0));
            let c2 = c.clone();
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
        report.assert_fails("lost update");
    }

    /// The same increments under a mutex are correct in every
    /// interleaving — and exploration terminates (exhaustive).
    #[test]
    fn mutex_increments_are_exhaustively_correct() {
        let report = Checker::new().check("mutex-increment", || {
            let c = Arc::new(Mutex::new(0u32));
            let c2 = c.clone();
            let t = thread::spawn(move || {
                *c2.lock().unwrap() += 1;
            });
            *c.lock().unwrap() += 1;
            t.join().unwrap();
            assert_eq!(*c.lock().unwrap(), 2);
        });
        println!("{report}");
        report.assert_ok();
        assert!(report.executions >= 2, "must explore >1 interleaving");
    }

    /// Message passing through a Release store / Acquire load pair is
    /// correct: once the flag is seen, the payload must be visible.
    #[test]
    fn release_acquire_message_passing_ok() {
        let report = Checker::new().check("mp-release-acquire", || {
            let data = Arc::new(AtomicU32::new(0));
            let flag = Arc::new(AtomicU32::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
            }
            t.join().unwrap();
        });
        println!("{report}");
        report.assert_ok();
    }

    /// The same protocol with the publish downgraded to Relaxed: the
    /// reader can see the flag yet read the stale payload. This is the
    /// store-buffer behavior a plain interleaving explorer cannot
    /// produce — the core capability the SymbolTable model relies on.
    #[test]
    fn relaxed_publish_is_caught() {
        let report = Checker::new().check("mp-relaxed", || {
            let data = Arc::new(AtomicU32::new(0));
            let flag = Arc::new(AtomicU32::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed); // BUG: no release
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
            }
            t.join().unwrap();
        });
        report.assert_fails("stale payload");
    }

    /// Checking the flag outside the lock and then waiting misses a
    /// notification sent in between: classic lost wakeup, reported as
    /// a deadlock.
    #[test]
    fn finds_lost_wakeup_deadlock() {
        struct Chan {
            ready: Mutex<bool>,
            cv: Condvar,
        }
        let report = Checker::new().check("lost-wakeup", || {
            let ch = Arc::new(Chan {
                ready: Mutex::new(false),
                cv: Condvar::new(),
            });
            let ch2 = ch.clone();
            let t = thread::spawn(move || {
                *ch2.ready.lock().unwrap() = true;
                ch2.cv.notify_one();
            });
            // BUG: test-then-wait without holding the lock across the
            // decision; also no re-check loop.
            let ready = *ch.ready.lock().unwrap();
            if !ready {
                let g = ch.ready.lock().unwrap();
                let _g = ch.cv.wait(g).unwrap();
            }
            t.join().unwrap();
        });
        report.assert_fails("deadlock");
    }

    /// The correct pattern — re-check the predicate under the lock in
    /// a wait loop — passes exhaustively.
    #[test]
    fn condvar_predicate_loop_ok() {
        struct Chan {
            ready: Mutex<bool>,
            cv: Condvar,
        }
        let report = Checker::new().check("condvar-ok", || {
            let ch = Arc::new(Chan {
                ready: Mutex::new(false),
                cv: Condvar::new(),
            });
            let ch2 = ch.clone();
            let t = thread::spawn(move || {
                *ch2.ready.lock().unwrap() = true;
                ch2.cv.notify_one();
            });
            let mut g = ch.ready.lock().unwrap();
            while !*g {
                g = ch.cv.wait(g).unwrap();
            }
            drop(g);
            t.join().unwrap();
        });
        println!("{report}");
        report.assert_ok();
    }

    /// OnceLock publish: a reader that sees `get() == Some` must see
    /// the initialized value (race-checked); correct under the
    /// Acquire/Release internals.
    #[test]
    fn oncelock_publish_ok() {
        let report = Checker::new().check("oncelock", || {
            let cell = Arc::new(OnceLock::new());
            let c2 = cell.clone();
            let t = thread::spawn(move || {
                let _ = c2.set(7u64);
            });
            if let Some(v) = cell.get() {
                assert_eq!(*v, 7);
            }
            t.join().unwrap();
        });
        println!("{report}");
        report.assert_ok();
    }

    /// RwLock: writer excluded while a reader holds the lock; reads
    /// see a consistent pair.
    #[test]
    fn rwlock_no_torn_pair() {
        let report = Checker::new().check("rwlock-pair", || {
            let pair = Arc::new(RwLock::new((0u32, 0u32)));
            let p2 = pair.clone();
            let t = thread::spawn(move || {
                let mut g = p2.write().unwrap();
                g.0 = 1;
                g.1 = 1;
            });
            let g = pair.read().unwrap();
            assert_eq!(g.0, g.1, "torn pair");
            drop(g);
            t.join().unwrap();
        });
        println!("{report}");
        report.assert_ok();
    }

    /// Deterministic replay sanity: same model, two runs, identical
    /// exploration statistics.
    #[test]
    fn exploration_is_deterministic() {
        let model = || {
            let c = Arc::new(Mutex::new(0u32));
            let c2 = c.clone();
            let t = thread::spawn(move || {
                *c2.lock().unwrap() += 1;
            });
            *c.lock().unwrap() += 1;
            t.join().unwrap();
        };
        let a = Checker::new().check("det-a", model);
        let b = Checker::new().check("det-b", model);
        a.assert_ok();
        b.assert_ok();
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.states, b.states);
    }
}
