//! View trees over variable orders (paper Figure 3, §3).
//!
//! At each variable `X` of a variable order, a view joins the views of
//! `X`’s children (and any relations whose lowest variable is `X`) and,
//! if `X` is bound, marginalizes `X` away with its lifting function. The
//! root view is the query result. View keys follow the paper’s formula
//! `keys = dep(X) ∪ (F ∩ ⋃ keysᵢ)`.
//!
//! After construction, single-child chains of inner nodes are composed
//! into one view marginalizing several variables at a time — the
//! practical optimization §3 describes for wide relations — which also
//! merges the “identical views” that arise when all key variables are
//! free.

use crate::query::{QueryDef, RelIndex};
use crate::varorder::VariableOrder;
use fivm_core::{Schema, VarId};

/// Index of a node in a [`ViewTree`].
pub type NodeId = usize;

/// What a view-tree node computes.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeKind {
    /// A leaf holding an input relation.
    Relation(RelIndex),
    /// An indicator projection `∃_proj R` (Appendix B), added by
    /// [`crate::indicator::add_indicators`]. `keys == proj`.
    Indicator {
        /// The relation being projected.
        rel: RelIndex,
        /// The projection variables (`pk` in Figure 10).
        proj: Schema,
    },
    /// An inner view: joins its children and marginalizes `margin`
    /// (empty for free variables). `margin` is ordered innermost-first
    /// (the order liftings are applied when chains were composed).
    Inner {
        /// Bound variables marginalized at this node.
        margin: Vec<VarId>,
        /// The (topmost) variable of the order this view sits at — used
        /// for naming, e.g. `V@C`.
        at: VarId,
    },
}

/// One node of a view tree.
#[derive(Clone, Debug)]
pub struct ViewNode {
    /// What this node computes.
    pub kind: NodeKind,
    /// The view’s key schema (its free variables).
    pub keys: Schema,
    /// Child nodes joined by this view.
    pub children: Vec<NodeId>,
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// Bitmask of the relations this view is defined over (bit `i` =
    /// relation `i`). Indicator nodes contribute no bits — for
    /// materialization purposes they approximate another subtree’s
    /// relation (see `indicator` module docs).
    pub rels: u64,
}

/// A tree of views: the F-IVM “query plan”.
#[derive(Clone, Debug)]
pub struct ViewTree {
    /// The nodes; children precede parents (topological bottom-up
    /// order), with [`ViewTree::root`] last.
    pub nodes: Vec<ViewNode>,
    /// The root node (the query result).
    pub root: NodeId,
    /// The free variables of the query the tree was built for.
    pub free: Schema,
}

impl ViewTree {
    /// Build the view tree `τ(ω, F)` of Figure 3 (with chain
    /// composition). Panics if `vo` is not a valid variable order for
    /// `query` (use [`VariableOrder::validate`] for graceful checking).
    pub fn build(query: &QueryDef, vo: &VariableOrder) -> ViewTree {
        vo.validate(query)
            .unwrap_or_else(|e| panic!("invalid variable order: {e}"));
        assert!(
            query.relations.len() <= 64,
            "at most 64 relations supported (rels bitmask)"
        );
        // Attach each relation at its deepest variable node.
        let mut attached: Vec<Vec<RelIndex>> = vec![Vec::new(); vo.vars.len()];
        for (ri, r) in query.relations.iter().enumerate() {
            let deepest = r
                .schema
                .iter()
                .map(|&v| vo.node_of(v).expect("validated"))
                .max_by_key(|&n| vo.ancestors(n).len())
                .expect("relation with empty schema");
            attached[deepest].push(ri);
        }

        let mut tree = ViewTree {
            nodes: Vec::new(),
            root: 0,
            free: query.free.clone(),
        };
        let mut root_views = Vec::new();
        for &r in &vo.roots {
            root_views.push(build_node(query, vo, &attached, r, &mut tree));
        }
        tree.root = if root_views.len() == 1 {
            root_views[0]
        } else {
            // Disconnected query: a synthetic top view joins the
            // component roots (a Cartesian product in the key space).
            let keys = root_views
                .iter()
                .fold(Schema::empty(), |acc, &c| acc.union(&tree.nodes[c].keys));
            let rels = root_views.iter().fold(0u64, |m, &c| m | tree.nodes[c].rels);
            let at = query.free.vars().first().copied().unwrap_or(0);
            tree.push(ViewNode {
                kind: NodeKind::Inner {
                    margin: Vec::new(),
                    at,
                },
                keys,
                children: root_views,
                parent: None,
                rels,
            })
        };
        tree.compose_chains();
        tree.fix_parents();
        tree
    }

    fn push(&mut self, node: ViewNode) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Compose single-child chains of inner nodes into one view
    /// marginalizing several variables (paper §3, last paragraph).
    fn compose_chains(&mut self) {
        loop {
            let mut target = None;
            for (id, node) in self.nodes.iter().enumerate() {
                if let NodeKind::Inner { .. } = node.kind {
                    if node.children.len() == 1 {
                        let c = node.children[0];
                        if matches!(self.nodes[c].kind, NodeKind::Inner { .. }) {
                            target = Some((id, c));
                            break;
                        }
                    }
                }
            }
            let Some((p, c)) = target else { break };
            // merged node: child's marginalizations happen first
            let (c_margin, _c_at) = match &self.nodes[c].kind {
                NodeKind::Inner { margin, at } => (margin.clone(), *at),
                _ => unreachable!(),
            };
            let (p_margin, p_at) = match &self.nodes[p].kind {
                NodeKind::Inner { margin, at } => (margin.clone(), *at),
                _ => unreachable!(),
            };
            let mut margin = c_margin;
            margin.extend(p_margin);
            self.nodes[p].kind = NodeKind::Inner { margin, at: p_at };
            self.nodes[p].children = self.nodes[c].children.clone();
            // c is now orphaned; compact ids at the end.
            self.nodes[c].children.clear();
            self.nodes[c].rels = 0;
        }
        self.compact_ids();
    }

    /// Drop orphaned nodes and renumber, keeping bottom-up order.
    fn compact_ids(&mut self) {
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            reachable[n] = true;
            stack.extend(&self.nodes[n].children);
        }
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut out: Vec<ViewNode> = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if reachable[id] {
                remap[id] = out.len();
                out.push(node.clone());
            }
        }
        for node in &mut out {
            for c in &mut node.children {
                *c = remap[*c];
            }
        }
        self.root = remap[self.root];
        self.nodes = out;
    }

    /// Recompute parent links from children lists.
    pub(crate) fn fix_parents(&mut self) {
        for n in &mut self.nodes {
            n.parent = None;
        }
        let pairs: Vec<(NodeId, NodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(id, n)| n.children.iter().map(move |&c| (c, id)))
            .collect();
        for (c, p) in pairs {
            self.nodes[c].parent = Some(p);
        }
    }

    /// The leaf node holding relation `rel`.
    pub fn leaf_of(&self, rel: RelIndex) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Relation(r) if r == rel))
    }

    /// Indicator nodes projecting relation `rel`.
    pub fn indicators_of(&self, rel: RelIndex) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(&n.kind, NodeKind::Indicator { rel: r, .. } if *r == rel))
            .map(|(id, _)| id)
            .collect()
    }

    /// Inner (view) node count — the paper’s “number of views” metric
    /// when comparing strategies (§7).
    pub fn inner_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Inner { .. }))
            .count()
    }

    /// Render the tree with names, e.g. for debugging / DESIGN docs.
    pub fn render(&self, query: &QueryDef) -> String {
        fn go(t: &ViewTree, q: &QueryDef, id: NodeId, indent: usize, out: &mut String) {
            out.push_str(&" ".repeat(indent));
            let n = &t.nodes[id];
            match &n.kind {
                NodeKind::Relation(r) => {
                    out.push_str(&format!(
                        "{}{}\n",
                        q.relations[*r].name,
                        q.catalog.render(&n.keys)
                    ));
                }
                NodeKind::Indicator { rel, proj } => {
                    out.push_str(&format!(
                        "∃{} {}\n",
                        q.catalog.render(proj),
                        q.relations[*rel].name
                    ));
                }
                NodeKind::Inner { margin, at } => {
                    let margins: Vec<&str> = margin.iter().map(|&v| q.catalog.name(v)).collect();
                    out.push_str(&format!(
                        "V@{}{} ⊕[{}]\n",
                        q.catalog.name(*at),
                        q.catalog.render(&n.keys),
                        margins.join(", ")
                    ));
                }
            }
            for &c in &n.children {
                go(t, q, c, indent + 2, out);
            }
        }
        let mut out = String::new();
        go(self, query, self.root, 0, &mut out);
        out
    }
}

fn build_node(
    query: &QueryDef,
    vo: &VariableOrder,
    attached: &[Vec<RelIndex>],
    vnode: usize,
    tree: &mut ViewTree,
) -> NodeId {
    let mut children = Vec::new();
    for &c in &vo.children[vnode] {
        children.push(build_node(query, vo, attached, c, tree));
    }
    for &ri in &attached[vnode] {
        children.push(tree.push(ViewNode {
            kind: NodeKind::Relation(ri),
            keys: query.relations[ri].schema.clone(),
            children: Vec::new(),
            parent: None,
            rels: 1u64 << ri,
        }));
    }
    let x = vo.vars[vnode];
    let free = query.free.contains(x);
    // keys = dep(X) ∪ (F ∩ ⋃ keysᵢ)   (Figure 3)
    let union_child_keys = children
        .iter()
        .fold(Schema::empty(), |acc, &c| acc.union(&tree.nodes[c].keys));
    let keys = vo
        .dep(vnode, query)
        .union(&union_child_keys.intersect(&query.free));
    let rels = children.iter().fold(0u64, |m, &c| m | tree.nodes[c].rels);
    tree.push(ViewNode {
        kind: NodeKind::Inner {
            margin: if free { Vec::new() } else { vec![x] },
            at: x,
        },
        keys,
        children,
        parent: None,
        rels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rst_tree(free: &[&str], spec: &str) -> (QueryDef, ViewTree) {
        let q = QueryDef::example_rst(free);
        let vo = VariableOrder::parse(spec, &q.catalog);
        let t = ViewTree::build(&q, &vo);
        (q, t)
    }

    /// Figure 2b: the view tree for A − {B, C − {D, E}} with no free
    /// variables has the five views V@A, V@B, V@C, V@D, V@E.
    #[test]
    fn figure_2b_structure() {
        let (q, t) = rst_tree(&[], "A - { B, C - { D, E } }");
        assert_eq!(t.inner_count(), 5);
        let root = &t.nodes[t.root];
        assert!(root.keys.is_empty());
        assert_eq!(root.children.len(), 2);
        // V@D has keys [C], V@E has keys [A, C]
        let c = q.catalog.lookup("C").unwrap();
        let a = q.catalog.lookup("A").unwrap();
        let vd = t
            .nodes
            .iter()
            .find(|n| matches!(&n.kind, NodeKind::Inner{at, ..} if q.catalog.name(*at) == "D"))
            .unwrap();
        assert_eq!(vd.keys, Schema::new(vec![c]));
        let ve = t
            .nodes
            .iter()
            .find(|n| matches!(&n.kind, NodeKind::Inner{at, ..} if q.catalog.name(*at) == "E"))
            .unwrap();
        assert_eq!(ve.keys, Schema::new(vec![a, c]));
    }

    /// With free variables A, C the root view is keyed on [A, C] — the
    /// group-by result of Example 1.1/2.3.
    #[test]
    fn free_variables_stay_in_root_keys() {
        let (q, t) = rst_tree(&["A", "C"], "A - { B, C - { D, E } }");
        let a = q.catalog.lookup("A").unwrap();
        let c = q.catalog.lookup("C").unwrap();
        let root = &t.nodes[t.root];
        assert_eq!(root.keys, Schema::new(vec![a, c]));
        // A and C are free: their nodes marginalize nothing.
        for n in &t.nodes {
            if let NodeKind::Inner { margin, .. } = &n.kind {
                assert!(!margin.contains(&a));
                assert!(!margin.contains(&c));
            }
        }
    }

    /// Composing chains: with all of A’s subtree a single path
    /// (chain order), the bound variables collapse into few views.
    #[test]
    fn chain_composition_collapses_single_child_views() {
        let q = QueryDef::example_rst(&[]);
        let all = q.all_vars();
        let vo = VariableOrder::chain(all.vars());
        let t = ViewTree::build(&q, &vo);
        // every inner node now joins ≥2 children or is the root
        for (id, n) in t.nodes.iter().enumerate() {
            if let NodeKind::Inner { .. } = n.kind {
                assert!(
                    n.children.len() != 1
                        || !matches!(t.nodes[n.children[0]].kind, NodeKind::Inner { .. }),
                    "node {id} is an uncomposed single-child chain"
                );
            }
        }
        // relations all present exactly once
        for ri in 0..3 {
            assert!(t.leaf_of(ri).is_some());
        }
    }

    #[test]
    fn rels_masks() {
        let (_, t) = rst_tree(&[], "A - { B, C - { D, E } }");
        assert_eq!(t.nodes[t.root].rels, 0b111);
        let vb = t.leaf_of(0).unwrap(); // R
        assert_eq!(t.nodes[vb].rels, 0b001);
    }

    #[test]
    fn parents_are_consistent() {
        let (_, t) = rst_tree(&["A"], "A - { B, C - { D, E } }");
        for (id, n) in t.nodes.iter().enumerate() {
            for &c in &n.children {
                assert_eq!(t.nodes[c].parent, Some(id));
            }
        }
        assert_eq!(t.nodes[t.root].parent, None);
    }

    /// Matrix-chain query (Example 6.1): A1(X1,X2) ⋈ A2(X2,X3) ⋈
    /// A3(X3,X4) with free X1, X4 and order X1 − X4 − {X2’s chain}…
    /// checked with the bushy order from the paper.
    #[test]
    fn matrix_chain_views() {
        let q = QueryDef::new(
            &[
                ("A1", &["X1", "X2"]),
                ("A2", &["X2", "X3"]),
                ("A3", &["X3", "X4"]),
            ],
            &["X1", "X4"],
        );
        let vo = VariableOrder::parse("X1 - X4 - X3 - X2", &q.catalog);
        let t = ViewTree::build(&q, &vo);
        let x1 = q.catalog.lookup("X1").unwrap();
        let x4 = q.catalog.lookup("X4").unwrap();
        assert_eq!(t.nodes[t.root].keys, Schema::new(vec![x1, x4]));
        assert!(t.nodes[t.root].keys.len() == 2);
    }

    #[test]
    fn bottom_up_node_order() {
        let (_, t) = rst_tree(&[], "A - { B, C - { D, E } }");
        for (id, n) in t.nodes.iter().enumerate() {
            for &c in &n.children {
                assert!(c < id, "children must precede parents");
            }
        }
        assert_eq!(t.root, t.nodes.len() - 1);
    }

    #[test]
    fn render_mentions_views() {
        let (q, t) = rst_tree(&[], "A - { B, C - { D, E } }");
        let s = t.render(&q);
        assert!(s.contains("V@A"));
        assert!(s.contains("V@C"));
        assert!(s.contains('R'));
    }
}
