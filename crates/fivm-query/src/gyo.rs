//! GYO reduction (Graham–Yu–Özsoyoğlu, Fagin et al. variant) for
//! hypergraph acyclicity, used to place indicator projections
//! (paper Appendix B, Figure 10).
//!
//! The reduction repeatedly (a) removes vertices that occur in exactly
//! one hyperedge and (b) removes hyperedges contained in another edge.
//! The hypergraph is α-acyclic iff everything vanishes; otherwise the
//! surviving edges form the cyclic core.

use fivm_core::{Schema, VarId};

/// Run the GYO reduction; returns the indices of the edges that survive
/// (empty ⇔ the hypergraph is α-acyclic).
pub fn gyo_reduce(edges: &[Schema]) -> Vec<usize> {
    // working copy: (original index, vertex set)
    let mut work: Vec<(usize, Vec<VarId>)> = edges
        .iter()
        .enumerate()
        .map(|(i, e)| (i, e.vars().to_vec()))
        .collect();
    loop {
        let mut changed = false;

        // (a) remove vertices occurring in exactly one edge
        let mut counts: std::collections::BTreeMap<VarId, usize> = Default::default();
        for (_, e) in &work {
            for &v in e {
                *counts.entry(v).or_default() += 1;
            }
        }
        for (_, e) in work.iter_mut() {
            let before = e.len();
            e.retain(|v| counts[v] > 1);
            if e.len() != before {
                changed = true;
            }
        }

        // drop empty edges
        let before = work.len();
        work.retain(|(_, e)| !e.is_empty());
        if work.len() != before {
            changed = true;
        }

        // (b) remove edges contained in another (remaining) edge
        let mut remove: Vec<usize> = Vec::new();
        for i in 0..work.len() {
            for j in 0..work.len() {
                if i == j || remove.contains(&i) || remove.contains(&j) {
                    continue;
                }
                let (ei, ej) = (&work[i].1, &work[j].1);
                if ei.iter().all(|v| ej.contains(v)) {
                    // ei ⊆ ej: ei is an ear
                    remove.push(i);
                    break;
                }
            }
        }
        if !remove.is_empty() {
            changed = true;
            remove.sort_unstable();
            for &i in remove.iter().rev() {
                work.remove(i);
            }
        }

        if !changed {
            break;
        }
    }
    work.into_iter().map(|(i, _)| i).collect()
}

/// True iff the hypergraph is α-acyclic.
pub fn is_acyclic(edges: &[Schema]) -> bool {
    gyo_reduce(edges).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sch(vars: &[u32]) -> Schema {
        Schema::new(vars.to_vec())
    }

    #[test]
    fn single_edge_is_acyclic() {
        assert!(is_acyclic(&[sch(&[0, 1, 2])]));
    }

    #[test]
    fn chain_is_acyclic() {
        // R(A,B), S(B,C), T(C,D)
        assert!(is_acyclic(&[sch(&[0, 1]), sch(&[1, 2]), sch(&[2, 3])]));
    }

    #[test]
    fn star_is_acyclic() {
        assert!(is_acyclic(&[
            sch(&[0, 1]),
            sch(&[0, 2]),
            sch(&[0, 3]),
            sch(&[0, 4])
        ]));
    }

    #[test]
    fn triangle_is_cyclic() {
        let survivors = gyo_reduce(&[sch(&[0, 1]), sch(&[1, 2]), sch(&[2, 0])]);
        assert_eq!(survivors.len(), 3);
    }

    #[test]
    fn triangle_with_guard_is_acyclic() {
        // adding the full edge {A,B,C} absorbs the triangle (α-acyclicity
        // is not closed under subhypergraphs — the classic example).
        assert!(is_acyclic(&[
            sch(&[0, 1]),
            sch(&[1, 2]),
            sch(&[2, 0]),
            sch(&[0, 1, 2]),
        ]));
    }

    #[test]
    fn loop_four_is_cyclic() {
        let survivors = gyo_reduce(&[sch(&[0, 1]), sch(&[1, 2]), sch(&[2, 3]), sch(&[3, 0])]);
        assert_eq!(survivors.len(), 4);
    }

    #[test]
    fn cyclic_core_is_isolated() {
        // acyclic appendage hanging off a triangle: only the triangle
        // survives.
        let survivors = gyo_reduce(&[
            sch(&[0, 1]),
            sch(&[1, 2]),
            sch(&[2, 0]),
            sch(&[2, 3]), // ear
            sch(&[3, 4]), // ear
        ]);
        assert_eq!(survivors, vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_edges_reduce() {
        assert!(is_acyclic(&[sch(&[0, 1]), sch(&[0, 1])]));
    }
}
