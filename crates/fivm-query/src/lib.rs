//! # fivm-query — F-IVM query planning
//!
//! Ring-agnostic planning for factorized higher-order IVM (paper §3–§4,
//! Appendix B):
//!
//! * [`QueryDef`] — a join query with group-by (free) variables over
//!   named relations.
//! * [`VariableOrder`] — the paper’s alternative to query plans
//!   (Definition 3.1): a forest of variables with a dependency function,
//!   validated so that each relation’s variables lie on one root-to-leaf
//!   path.
//! * [`ViewTree`] — the hierarchy of views over a variable order
//!   (Figure 3), with long single-child chains composed into one view.
//! * [`delta_path`] — the leaf-to-root maintenance path for an update
//!   (Figure 4); the `Optimize` rewrite for factorizable updates is
//!   applied by the engine at execution time.
//! * [`materialization`] — which views to materialize for a given
//!   updatable-relation workload (Figure 5).
//! * [`gyo`] / [`indicator`] — GYO reduction and indicator projections
//!   that bound view sizes for cyclic queries (Appendix B, Figure 10).
//! * [`partition`] — IVM^ε heavy/light partition plans for triangle
//!   queries: cycle orientation, partition columns and auxiliary-view
//!   schemas consumed by the adaptive engine in `fivm-engine`.
//!
//! Execution of these plans over a concrete ring lives in `fivm-engine`.

#![forbid(unsafe_code)]

pub mod cost;
pub mod delta;
pub mod gyo;
pub mod indicator;
pub mod materialize;
pub mod partition;
pub mod query;
pub mod varorder;
pub mod viewtree;

pub use cost::{best_order, enumerate_orders, CostModel};
pub use delta::{delta_path, FactorShape};
pub use indicator::add_indicators;
pub use materialize::{materialization, MaterializationPlan};
pub use partition::{PartitionError, TrianglePlan};
pub use query::{QueryDef, RelDef, RelIndex};
pub use varorder::VariableOrder;
pub use viewtree::{NodeId, NodeKind, ViewNode, ViewTree};
