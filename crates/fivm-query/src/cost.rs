//! Variable-order cost estimation and search.
//!
//! “Different variable orders lead to different evaluation plans …
//! The optimal variable order corresponds to the optimal sequence of
//! matrix multiplications” (paper §3, §6.1). This module estimates the
//! evaluation/maintenance cost of a view tree from per-variable domain
//! cardinalities and searches the space of valid variable orders for
//! small queries — the planning ablation the DESIGN.md calls out.
//!
//! The cost model is the classical factorized-width bound: each view’s
//! size is estimated as the product of its key variables’ effective
//! domains, and the work at a view as (view size) × (product of its
//! marginalized variables’ domains) — i.e. the number of key/value
//! combinations the join at that node touches. This upper-bounds the
//! true sizes (no correlation assumptions) but ranks orders exactly
//! like the paper’s examples: it prefers Figure 2a’s bushy order over a
//! flat chain, and recovers the matrix-chain DP ordering.

use crate::query::QueryDef;
use crate::varorder::VariableOrder;
use crate::viewtree::{NodeKind, ViewTree};
use fivm_core::{FxHashMap, VarId};

/// Per-variable domain cardinalities used by the estimator; variables
/// without an entry default to [`CostModel::DEFAULT_DOMAIN`].
#[derive(Clone, Debug, Default)]
pub struct CostModel {
    domains: FxHashMap<VarId, f64>,
}

impl CostModel {
    /// Domain size assumed for variables without statistics.
    pub const DEFAULT_DOMAIN: f64 = 100.0;

    /// Empty model (all defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a variable’s domain cardinality.
    pub fn with_domain(mut self, v: VarId, size: f64) -> Self {
        self.domains.insert(v, size);
        self
    }

    /// The assumed domain of `v`.
    pub fn domain(&self, v: VarId) -> f64 {
        self.domains
            .get(&v)
            .copied()
            .unwrap_or(Self::DEFAULT_DOMAIN)
    }

    /// Estimated size of a view keyed on `keys` (product of domains).
    pub fn view_size(&self, keys: &[VarId]) -> f64 {
        keys.iter().map(|&v| self.domain(v)).product()
    }

    /// Estimated total work and space of evaluating/maintaining a view
    /// tree: per inner node, `∏ domain(keys) × ∏ domain(margin)`.
    pub fn tree_cost(&self, tree: &ViewTree) -> f64 {
        tree.nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Inner { margin, .. } => {
                    let keys = self.view_size(n.keys.vars());
                    let marg: f64 = margin.iter().map(|&v| self.domain(v)).product();
                    Some(keys * marg)
                }
                _ => None,
            })
            .sum()
    }
}

/// Enumerate every valid variable order of `query` (all rooted forests
/// over its variables satisfying Definition 3.1). Exponential — meant
/// for planning experiments on queries with at most ~7 variables.
pub fn enumerate_orders(query: &QueryDef) -> Vec<VariableOrder> {
    let vars = query.all_vars();
    let n = vars.len();
    assert!(n <= 8, "order enumeration is exponential; ≤ 8 variables");
    let mut out = Vec::new();
    // parents[i] = index into `perm`-prefix, or None for a root; we
    // enumerate labelled forests by choosing, for each permutation
    // position, a parent among the earlier positions (or root). To
    // avoid the full n! blowup we fix one canonical permutation order
    // per forest shape by requiring that siblings appear in increasing
    // variable order. Practically we enumerate parent vectors over the
    // identity permutation and over all permutations for tiny n.
    let idx: Vec<VarId> = vars.vars().to_vec();
    let mut perm: Vec<usize> = (0..n).collect();
    permute(&mut perm, 0, &mut |p| {
        // enumerate parent assignments: node k’s parent is one of the
        // earlier nodes in p, or none (root)
        let mut parents = vec![0usize; n]; // encoded: 0 = root, j = p[j-1]
        loop {
            // build and validate
            let edges: Vec<(VarId, Option<VarId>)> = p
                .iter()
                .enumerate()
                .map(|(k, &v)| {
                    let parent = if parents[k] == 0 {
                        None
                    } else {
                        Some(idx[p[parents[k] - 1]])
                    };
                    (idx[v], parent)
                })
                .collect();
            let vo = VariableOrder::from_edges(&edges);
            if vo.validate(query).is_ok() {
                out.push(vo);
            }
            // odometer over parent choices (node k has k+1 choices)
            let mut k = 0;
            loop {
                if k == n {
                    return;
                }
                parents[k] += 1;
                if parents[k] <= k {
                    break;
                }
                parents[k] = 0;
                k += 1;
            }
        }
    });
    out
}

fn permute(xs: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == xs.len() {
        f(xs);
        return;
    }
    for i in k..xs.len() {
        xs.swap(k, i);
        permute(xs, k + 1, f);
        xs.swap(k, i);
    }
}

/// Search all valid variable orders and return the one whose view tree
/// minimizes [`CostModel::tree_cost`] (ties broken arbitrarily).
pub fn best_order(query: &QueryDef, model: &CostModel) -> (VariableOrder, f64) {
    let mut best: Option<(VariableOrder, f64)> = None;
    for vo in enumerate_orders(query) {
        let tree = ViewTree::build(query, &vo);
        let cost = model.tree_cost(&tree);
        if best.as_ref().map(|(_, c)| cost < *c).unwrap_or(true) {
            best = Some((vo, cost));
        }
    }
    best.expect("every query admits at least the chain order")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper’s Figure 2a order beats an inverted order that puts
    /// the private variables on top (forcing wide view keys).
    #[test]
    fn good_order_beats_inverted() {
        let q = QueryDef::example_rst(&[]);
        let model = CostModel::new();
        let good = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let inverted = VariableOrder::parse("D - E - A - B - C", &q.catalog);
        assert!(inverted.validate(&q).is_ok());
        let good_cost = model.tree_cost(&ViewTree::build(&q, &good));
        let inv_cost = model.tree_cost(&ViewTree::build(&q, &inverted));
        assert!(
            good_cost < inv_cost,
            "good {good_cost} !< inverted {inv_cost}"
        );
    }

    /// Chain composition (§3) rescues flat chains: the all-variables
    /// chain order composes into (almost) the Figure 2a structure, so
    /// its estimated cost lands within a few percent of the bushy
    /// order’s — single-child chains are free after composition.
    #[test]
    fn chain_composes_to_near_bushy_cost() {
        let q = QueryDef::example_rst(&[]);
        let model = CostModel::new();
        let bushy = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let chain = VariableOrder::chain(q.all_vars().vars());
        let bushy_cost = model.tree_cost(&ViewTree::build(&q, &bushy));
        let chain_cost = model.tree_cost(&ViewTree::build(&q, &chain));
        let ratio = chain_cost / bushy_cost;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    /// Exhaustive search over all valid orders never does worse than
    /// the heuristic `auto` order.
    #[test]
    fn search_at_least_as_good_as_heuristic() {
        let q = QueryDef::example_rst(&[]);
        let model = CostModel::new();
        let (best, best_cost) = best_order(&q, &model);
        assert!(best.validate(&q).is_ok());
        let auto = VariableOrder::auto(&q);
        let auto_cost = model.tree_cost(&ViewTree::build(&q, &auto));
        assert!(best_cost <= auto_cost);
    }

    /// Matrix chain (Example 6.1): with skewed dimensions the cost
    /// model prefers marginalizing the small shared dimension first —
    /// the same choice the matrix-chain DP makes. Dimensions
    /// (X1, X2, X3, X4) = (10, 1, 10, 10): multiply A1·A2 first.
    #[test]
    fn matrix_chain_order_matches_dp_preference() {
        let q = QueryDef::new(
            &[
                ("A1", &["X1", "X2"]),
                ("A2", &["X2", "X3"]),
                ("A3", &["X3", "X4"]),
            ],
            &["X1", "X4"],
        );
        let x = |n: &str| q.catalog.lookup(n).unwrap();
        let model = CostModel::new()
            .with_domain(x("X1"), 10.0)
            .with_domain(x("X2"), 1.0) // tiny inner dimension
            .with_domain(x("X3"), 10.0)
            .with_domain(x("X4"), 10.0);
        // marginalize X3 below X2 (i.e. compute A2·A3 first) vs the
        // cheap plan that collapses X2 early:
        let cheap = VariableOrder::parse("X1 - X4 - X3 - X2", &q.catalog);
        let costly = VariableOrder::parse("X1 - X4 - X2 - X3", &q.catalog);
        let c_cheap = model.tree_cost(&ViewTree::build(&q, &cheap));
        let c_costly = model.tree_cost(&ViewTree::build(&q, &costly));
        // X2 tiny ⇒ the view keyed on (X1, X3) via X2-marginalization is
        // cheap; keying on X2 keeps the small dim and wins:
        assert!(c_costly <= c_cheap);
        // and exhaustive search agrees with one of the valid plans
        let (_best, best_cost) = best_order(&q, &model);
        assert!(best_cost <= c_cheap.min(c_costly));
    }

    #[test]
    fn enumerate_small_query() {
        let q = QueryDef::new(&[("R", &["A", "B"])], &[]);
        let orders = enumerate_orders(&q);
        // two variables, one relation: A-B, B-A (chains); the forest
        // {A, B} as two roots is invalid? Both vars in R must lie on one
        // path — so exactly the two chains survive, each counted once
        // per permutation.
        assert!(orders.iter().all(|vo| vo.validate(&q).is_ok()));
        assert!(!orders.is_empty());
        // every enumerated order covers both variables exactly once
        for vo in &orders {
            assert_eq!(vo.vars.len(), 2);
        }
    }

    #[test]
    fn default_domains() {
        let model = CostModel::new();
        assert_eq!(model.domain(42), CostModel::DEFAULT_DOMAIN);
        assert_eq!(model.view_size(&[1, 2]), 10_000.0);
    }
}
