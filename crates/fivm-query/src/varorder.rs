//! Variable orders (paper Definition 3.1).
//!
//! A variable order for a join query is a rooted forest with one node per
//! query variable plus a dependency function `dep`. It must satisfy:
//!
//! 1. for each relation, its variables lie along one root-to-leaf path;
//! 2. `dep(X)` is the subset of `X`’s ancestors on which the variables in
//!    the subtree rooted at `X` depend (co-occur in some relation).
//!
//! Variable orders generalize join orders: they may require joining
//! several relations at once on a shared variable, which is what enables
//! worst-case-optimal evaluation (§3). `dep` is *derived* from the query
//! here, not user-supplied.

use crate::query::QueryDef;
use fivm_core::{FxHashMap, Schema, VarId};

/// A rooted forest over the query variables.
#[derive(Clone, Debug)]
pub struct VariableOrder {
    /// The variables, in a fixed node order (indices are node ids).
    pub vars: Vec<VarId>,
    /// Parent node of each node (`None` for roots).
    pub parent: Vec<Option<usize>>,
    /// Children of each node.
    pub children: Vec<Vec<usize>>,
    /// Root nodes.
    pub roots: Vec<usize>,
}

impl VariableOrder {
    /// A single chain `vars[0] − vars[1] − …` (always a valid variable
    /// order: every relation’s variables trivially lie on the one path).
    pub fn chain(vars: &[VarId]) -> Self {
        let n = vars.len();
        let parent = (0..n)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let mut children = vec![Vec::new(); n];
        for i in 1..n {
            children[i - 1].push(i);
        }
        VariableOrder {
            vars: vars.to_vec(),
            parent,
            children,
            roots: if n == 0 { vec![] } else { vec![0] },
        }
    }

    /// Build from `(var, parent var)` pairs; `None` parent = root. Pairs
    /// must be listed parents-first.
    pub fn from_edges(edges: &[(VarId, Option<VarId>)]) -> Self {
        let mut index: FxHashMap<VarId, usize> = FxHashMap::default();
        let mut vo = VariableOrder {
            vars: Vec::new(),
            parent: Vec::new(),
            children: Vec::new(),
            roots: Vec::new(),
        };
        for &(v, p) in edges {
            let id = vo.vars.len();
            assert!(
                index.insert(v, id).is_none(),
                "variable appears twice in the order"
            );
            vo.vars.push(v);
            vo.children.push(Vec::new());
            match p {
                None => {
                    vo.parent.push(None);
                    vo.roots.push(id);
                }
                Some(pv) => {
                    let pid = *index.get(&pv).expect("parent listed after child");
                    vo.parent.push(Some(pid));
                    vo.children[pid].push(id);
                }
            }
        }
        vo
    }

    /// Parse a compact textual forest like `"A - { B, C - { D, E } }"`
    /// using names from `catalog`. Children lists are brace-enclosed,
    /// comma-separated; a lone child needs no braces: `"A - B - C"`.
    pub fn parse(spec: &str, catalog: &fivm_core::Catalog) -> Self {
        let tokens = tokenize(spec);
        let mut pos = 0;
        let mut edges: Vec<(VarId, Option<VarId>)> = Vec::new();
        parse_node(&tokens, &mut pos, None, catalog, &mut edges);
        assert_eq!(pos, tokens.len(), "trailing tokens in variable order spec");
        Self::from_edges(&edges)
    }

    /// Node id of a variable.
    pub fn node_of(&self, v: VarId) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// Ancestor variables of node `n` (nearest first).
    pub fn ancestors(&self, n: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.parent[n];
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent[p];
        }
        out
    }

    /// Variables in the subtree rooted at `n` (including `n`).
    pub fn subtree_vars(&self, n: usize) -> Vec<VarId> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            out.push(self.vars[x]);
            stack.extend(&self.children[x]);
        }
        out
    }

    /// The dependency set `dep(X)` (Definition 3.1): ancestors of `X`
    /// that co-occur in some relation with a variable in `X`’s subtree.
    pub fn dep(&self, n: usize, query: &QueryDef) -> Schema {
        let sub = self.subtree_vars(n);
        let mut out = Vec::new();
        // nearest-first ancestors, reversed for root-first order
        let mut anc = self.ancestors(n);
        anc.reverse();
        for a in anc {
            let av = self.vars[a];
            let depends = query
                .relations
                .iter()
                .any(|r| r.schema.contains(av) && sub.iter().any(|&s| r.schema.contains(s)));
            if depends {
                out.push(av);
            }
        }
        Schema::new(out)
    }

    /// Check Definition 3.1 against `query`: every query variable occurs
    /// exactly once, and each relation’s variables lie on one
    /// root-to-leaf path. Returns a description of the first violation.
    pub fn validate(&self, query: &QueryDef) -> Result<(), String> {
        let qvars = query.all_vars();
        for &v in qvars.iter() {
            let count = self.vars.iter().filter(|&&x| x == v).count();
            if count != 1 {
                return Err(format!(
                    "variable {} occurs {count} times in the order",
                    query.catalog.name(v)
                ));
            }
        }
        for v in &self.vars {
            if !qvars.contains(*v) {
                return Err(format!(
                    "order contains non-query variable {}",
                    query.catalog.name(*v)
                ));
            }
        }
        for r in &query.relations {
            // All of r’s vars must be pairwise in ancestor-descendant
            // relation ⇔ they lie on one root-to-leaf path ⇔ the deepest
            // one has all others among its ancestors.
            let nodes: Vec<usize> = r
                .schema
                .iter()
                .map(|&v| self.node_of(v).expect("validated above"))
                .collect();
            let deepest = *nodes
                .iter()
                .max_by_key(|&&n| self.ancestors(n).len())
                .expect("relation with empty schema");
            let anc: Vec<usize> = self.ancestors(deepest);
            for &n in &nodes {
                if n != deepest && !anc.contains(&n) {
                    return Err(format!(
                        "variables of relation {} do not lie on one root-to-leaf path",
                        r.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Heuristic construction: free variables first (as a chain from the
    /// top, satisfying the paper’s “free variables on top” preference),
    /// then each relation’s remaining variables appended as a chain under
    /// the deepest already-placed variable of that relation. Falls back
    /// to a single chain over all variables when the greedy placement
    /// violates Definition 3.1 (which a chain never does).
    pub fn auto(query: &QueryDef) -> Self {
        let mut edges: Vec<(VarId, Option<VarId>)> = Vec::new();
        let mut placed: FxHashMap<VarId, usize> = FxHashMap::default(); // var -> depth
        let mut last: Option<VarId> = None;
        for &f in query.free.iter() {
            edges.push((f, last));
            placed.insert(f, placed.len());
            last = Some(f);
        }
        // Order relations by descending connectivity to already-placed vars.
        let mut remaining: Vec<usize> = (0..query.relations.len()).collect();
        while !remaining.is_empty() {
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, &ri)| {
                    query.relations[ri]
                        .schema
                        .iter()
                        .filter(|v| placed.contains_key(v))
                        .count()
                })
                .expect("non-empty");
            let ri = remaining.remove(pos);
            let schema = &query.relations[ri].schema;
            // deepest placed variable of this relation = attachment point
            let mut attach: Option<VarId> = schema
                .iter()
                .filter(|v| placed.contains_key(v))
                .max_by_key(|v| placed[v])
                .copied();
            let base_depth = attach.map(|v| placed[&v] + 1).unwrap_or(0);
            let mut depth = base_depth;
            for &v in schema.iter() {
                if let std::collections::hash_map::Entry::Vacant(e) = placed.entry(v) {
                    edges.push((v, attach));
                    e.insert(depth);
                    attach = Some(v);
                    depth += 1;
                }
            }
        }
        let vo = Self::from_edges(&edges);
        if vo.validate(query).is_ok() {
            vo
        } else {
            let all = query.all_vars();
            let chain = Self::chain(all.vars());
            debug_assert!(chain.validate(query).is_ok());
            chain
        }
    }

    /// Render with variable names for debugging.
    pub fn render(&self, catalog: &fivm_core::Catalog) -> String {
        fn go(
            vo: &VariableOrder,
            n: usize,
            catalog: &fivm_core::Catalog,
            indent: usize,
            out: &mut String,
        ) {
            out.push_str(&" ".repeat(indent));
            out.push_str(catalog.name(vo.vars[n]));
            out.push('\n');
            for &c in &vo.children[n] {
                go(vo, c, catalog, indent + 2, out);
            }
        }
        let mut out = String::new();
        for &r in &self.roots {
            go(self, r, catalog, 0, &mut out);
        }
        out
    }
}

fn tokenize(spec: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in spec.chars() {
        match ch {
            '{' | '}' | ',' | '-' => {
                if !cur.trim().is_empty() {
                    tokens.push(cur.trim().to_string());
                }
                cur.clear();
                tokens.push(ch.to_string());
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        tokens.push(cur.trim().to_string());
    }
    tokens
}

fn parse_node(
    tokens: &[String],
    pos: &mut usize,
    parent: Option<VarId>,
    catalog: &fivm_core::Catalog,
    edges: &mut Vec<(VarId, Option<VarId>)>,
) {
    let name = &tokens[*pos];
    let v = catalog
        .lookup(name)
        .unwrap_or_else(|| panic!("unknown variable {name:?} in order spec"));
    *pos += 1;
    edges.push((v, parent));
    if *pos < tokens.len() && tokens[*pos] == "-" {
        *pos += 1;
        if tokens[*pos] == "{" {
            *pos += 1; // consume {
            loop {
                parse_node(tokens, pos, Some(v), catalog, edges);
                if tokens[*pos] == "," {
                    *pos += 1;
                } else {
                    break;
                }
            }
            assert_eq!(tokens[*pos], "}", "expected closing brace");
            *pos += 1;
        } else {
            parse_node(tokens, pos, Some(v), catalog, edges);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper’s Figure 2a order: A − {B, C − {D, E}}.
    fn figure_2a(q: &QueryDef) -> VariableOrder {
        VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog)
    }

    #[test]
    fn figure_2a_dep_sets() {
        let q = QueryDef::example_rst(&[]);
        let vo = figure_2a(&q);
        assert!(vo.validate(&q).is_ok());
        let node = |name: &str| vo.node_of(q.catalog.lookup(name).unwrap()).unwrap();
        let dep = |name: &str| {
            let d = vo.dep(node(name), &q);
            d.iter()
                .map(|&v| q.catalog.name(v).to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(dep("A"), Vec::<String>::new());
        assert_eq!(dep("B"), vec!["A"]);
        assert_eq!(dep("C"), vec!["A"]);
        assert_eq!(dep("D"), vec!["C"]); // D is independent of A given C
        assert_eq!(dep("E"), vec!["A", "C"]);
    }

    #[test]
    fn chain_is_always_valid() {
        let q = QueryDef::example_rst(&["A"]);
        let all = q.all_vars();
        let vo = VariableOrder::chain(all.vars());
        assert!(vo.validate(&q).is_ok());
    }

    #[test]
    fn validate_rejects_split_relation() {
        let q = QueryDef::example_rst(&[]);
        // B and A in different branches — R(A,B) not on one path.
        let (a, b, c, d, e) = (
            q.catalog.lookup("A").unwrap(),
            q.catalog.lookup("B").unwrap(),
            q.catalog.lookup("C").unwrap(),
            q.catalog.lookup("D").unwrap(),
            q.catalog.lookup("E").unwrap(),
        );
        let vo = VariableOrder::from_edges(&[
            (c, None),
            (a, Some(c)),
            (b, Some(c)), // sibling of A: R(A,B) split
            (d, Some(c)),
            (e, Some(a)),
        ]);
        let err = vo.validate(&q).unwrap_err();
        assert!(err.contains("R"), "unexpected error: {err}");
    }

    #[test]
    fn validate_rejects_missing_and_duplicate_vars() {
        let q = QueryDef::example_rst(&[]);
        let a = q.catalog.lookup("A").unwrap();
        let vo = VariableOrder::chain(&[a]);
        assert!(vo.validate(&q).is_err());
    }

    #[test]
    fn auto_produces_valid_order() {
        for free in [&[][..], &["A"][..], &["A", "C"][..]] {
            let q = QueryDef::example_rst(free);
            let vo = VariableOrder::auto(&q);
            assert!(vo.validate(&q).is_ok(), "free={free:?}");
        }
        let tri = QueryDef::triangle();
        let vo = VariableOrder::auto(&tri);
        assert!(vo.validate(&tri).is_ok());
    }

    #[test]
    fn auto_puts_free_vars_on_top() {
        let q = QueryDef::example_rst(&["A", "C"]);
        let vo = VariableOrder::auto(&q);
        let a = vo.node_of(q.catalog.lookup("A").unwrap()).unwrap();
        let c = vo.node_of(q.catalog.lookup("C").unwrap()).unwrap();
        assert!(vo.parent[a].is_none());
        assert_eq!(vo.parent[c], Some(a));
    }

    #[test]
    fn subtree_and_ancestors() {
        let q = QueryDef::example_rst(&[]);
        let vo = figure_2a(&q);
        let c = vo.node_of(q.catalog.lookup("C").unwrap()).unwrap();
        let mut sub: Vec<String> = vo
            .subtree_vars(c)
            .iter()
            .map(|&v| q.catalog.name(v).to_string())
            .collect();
        sub.sort();
        assert_eq!(sub, vec!["C", "D", "E"]);
        let e = vo.node_of(q.catalog.lookup("E").unwrap()).unwrap();
        let anc: Vec<String> = vo
            .ancestors(e)
            .iter()
            .map(|&n| q.catalog.name(vo.vars[n]).to_string())
            .collect();
        assert_eq!(anc, vec!["C", "A"]);
    }

    #[test]
    fn parse_single_chain() {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - C - E", &q.catalog);
        assert_eq!(vo.vars.len(), 3);
        assert_eq!(vo.roots.len(), 1);
    }
}
