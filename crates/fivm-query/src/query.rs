//! Query definitions: natural joins with group-by aggregates (paper §2).
//!
//! A [`QueryDef`] captures the key-space structure of
//!
//! ```sql
//! SELECT X1, …, Xf, SUM(g(X_{f+1}) * … * g(X_m))
//! FROM R1 NATURAL JOIN … NATURAL JOIN Rn
//! GROUP BY X1, …, Xf
//! ```
//!
//! — the relations with their schemas and the set of free (group-by)
//! variables. Lifting functions and the payload ring are *not* part of
//! the query definition; they are chosen per application when the plan is
//! instantiated by the engine, which is what makes one view tree serve
//! `COUNT`, regression aggregates and factorized results alike.

use fivm_core::{Catalog, Schema, VarId};

/// Index of a relation within a query (position in [`QueryDef::relations`]).
pub type RelIndex = usize;

/// One input relation: a name and its schema.
#[derive(Clone, Debug)]
pub struct RelDef {
    /// Relation name (for display and trigger registration).
    pub name: String,
    /// Variables of the relation.
    pub schema: Schema,
}

/// A natural-join query with free variables.
#[derive(Clone, Debug)]
pub struct QueryDef {
    /// Interned variable names.
    pub catalog: Catalog,
    /// The joined relations.
    pub relations: Vec<RelDef>,
    /// Free (group-by) variables; all others are bound and will be
    /// marginalized.
    pub free: Schema,
}

impl QueryDef {
    /// Build a query from `(relation name, attribute names)` pairs and a
    /// list of free attribute names.
    pub fn new(rels: &[(&str, &[&str])], free: &[&str]) -> Self {
        let mut catalog = Catalog::new();
        let relations = rels
            .iter()
            .map(|(name, attrs)| RelDef {
                name: name.to_string(),
                schema: Schema::new(catalog.vars(attrs.iter().copied())),
            })
            .collect();
        let free = Schema::new(catalog.vars(free.iter().copied()));
        QueryDef {
            catalog,
            relations,
            free,
        }
    }

    /// All variables appearing in some relation, in first-appearance
    /// order.
    pub fn all_vars(&self) -> Schema {
        let mut out = Schema::empty();
        for r in &self.relations {
            out = out.union(&r.schema);
        }
        out
    }

    /// The relations whose schema contains `v`.
    pub fn relations_with(&self, v: VarId) -> Vec<RelIndex> {
        self.relations
            .iter()
            .enumerate()
            .filter(|(_, r)| r.schema.contains(v))
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the relation named `name`.
    pub fn relation_index(&self, name: &str) -> Option<RelIndex> {
        self.relations.iter().position(|r| r.name == name)
    }

    /// True iff variables `x` and `y` co-occur in some relation — the
    /// paper’s “X depends on Y” (§3).
    pub fn vars_cooccur(&self, x: VarId, y: VarId) -> bool {
        self.relations
            .iter()
            .any(|r| r.schema.contains(x) && r.schema.contains(y))
    }

    /// The query hypergraph: one hyperedge (schema) per relation.
    pub fn hyperedges(&self) -> Vec<Schema> {
        self.relations.iter().map(|r| r.schema.clone()).collect()
    }

    /// Structural fingerprint of the query: relation names, their
    /// attribute *names* (not the dense [`VarId`]s, which depend on
    /// catalog interning order), and the free variables. The durability
    /// layer stamps this into checkpoint manifests so recovery refuses
    /// to restore a snapshot onto an engine built for a different
    /// query — checkpointed view contents are only meaningful against
    /// the view tree they were cut from.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = fivm_core::FxHasher::default();
        self.relations.len().hash(&mut h);
        for r in &self.relations {
            r.name.hash(&mut h);
            r.schema.len().hash(&mut h);
            for &v in r.schema.vars() {
                self.catalog.name(v).hash(&mut h);
            }
        }
        for &v in self.free.vars() {
            self.catalog.name(v).hash(&mut h);
        }
        h.finish()
    }

    /// The running example of the paper (Examples 1.1 / 2.3): relations
    /// `R(A,B)`, `S(A,C,E)`, `T(C,D)` with free variables `free`.
    pub fn example_rst(free: &[&str]) -> Self {
        QueryDef::new(
            &[
                ("R", &["A", "B"]),
                ("S", &["A", "C", "E"]),
                ("T", &["C", "D"]),
            ],
            free,
        )
    }

    /// The triangle query `Q△` of Appendix B: `R(A,B), S(B,C), T(C,A)`.
    pub fn triangle() -> Self {
        QueryDef::new(
            &[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["C", "A"])],
            &[],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_running_example() {
        let q = QueryDef::example_rst(&["A", "C"]);
        assert_eq!(q.relations.len(), 3);
        assert_eq!(q.all_vars().len(), 5);
        assert_eq!(q.free.len(), 2);
        let a = q.catalog.lookup("A").unwrap();
        assert_eq!(q.relations_with(a), vec![0, 1]); // R and S
    }

    #[test]
    fn cooccurrence() {
        let q = QueryDef::example_rst(&[]);
        let (a, b, c, d) = (
            q.catalog.lookup("A").unwrap(),
            q.catalog.lookup("B").unwrap(),
            q.catalog.lookup("C").unwrap(),
            q.catalog.lookup("D").unwrap(),
        );
        assert!(q.vars_cooccur(a, b)); // R(A,B)
        assert!(q.vars_cooccur(c, d)); // T(C,D)
        assert!(!q.vars_cooccur(a, d)); // never together
        assert!(!q.vars_cooccur(b, d));
    }

    #[test]
    fn relation_lookup() {
        let q = QueryDef::example_rst(&[]);
        assert_eq!(q.relation_index("S"), Some(1));
        assert_eq!(q.relation_index("Z"), None);
    }

    #[test]
    fn triangle_shape() {
        let q = QueryDef::triangle();
        assert_eq!(q.all_vars().len(), 3);
        let edges = q.hyperedges();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|e| e.len() == 2));
    }
}
