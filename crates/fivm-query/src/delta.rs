//! Delta trees: the maintenance path for an update (paper Figure 4, §4).
//!
//! Under an update `δR`, the views on the path from `R`’s leaf to the
//! root become delta views; every view off that path keeps its old
//! contents and participates as a join sibling. The symbolic delta rules
//!
//! ```text
//! δ(V1 ⊎ V2) = δV1 ⊎ δV2
//! δ(V1 ⊗ V2) = (δV1 ⊗ V2) ⊎ (V1 ⊗ δV2) ⊎ (δV1 ⊗ δV2)
//! δ(⊕X V)   = ⊕X δV
//! ```
//!
//! simplify — because only one leaf changes per propagated update — to
//! “replace the path child by its delta, keep the siblings”: at a path
//! node with children `c₁ … c_k` and path child `c_j`,
//! `δV = ⊕_margin (δc_j ⊗ ⊗_{i≠j} c_i)`. The engine executes this with
//! hash joins; the `Optimize` rewrite (pushing `⊕` into factored deltas,
//! §5) is applied there at execution time because it depends on the
//! runtime shape of the delta.

use crate::viewtree::{NodeId, ViewTree};
use fivm_core::{Relation, Schema, Semiring, VarId};

/// The factorization shape of a factored delta: the ordered list of its
/// factor schemas (which variables carry vector factors together, which
/// stand alone). Two deltas with the same shape propagate through the
/// identical sequence of probe/⊕-pushdown operations, so engines compile
/// the `Optimize` rewrite (§5) **once per (relation, shape) pair** and
/// key the plan cache on this type — it is `Hash + Eq` for exactly that
/// purpose.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FactorShape(Box<[Schema]>);

impl FactorShape {
    /// Build a shape from factor schemas, in factor order.
    pub fn new(schemas: impl IntoIterator<Item = Schema>) -> Self {
        FactorShape(schemas.into_iter().collect())
    }

    /// The shape of a concrete factored delta.
    pub fn of<R: Semiring>(factors: &[Relation<R>]) -> Self {
        FactorShape(factors.iter().map(|f| f.schema().clone()).collect())
    }

    /// Whether `factors` has exactly this shape (same factor count,
    /// same schemas in the same order). Allocation-free: this is the
    /// hot-path cache probe for repeated rank-1/rank-r updates.
    pub fn matches<R: Semiring>(&self, factors: &[Relation<R>]) -> bool {
        self.0.len() == factors.len() && self.0.iter().zip(factors).all(|(s, f)| s == f.schema())
    }

    /// The factor schemas, in factor order.
    pub fn schemas(&self) -> &[Schema] {
        &self.0
    }

    /// Number of factors.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the shape has no factors (never produced by
    /// [`FactorShape::of`] on a valid factored delta).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether the factor schemas are pairwise disjoint and their
    /// union covers exactly the variables of `leaf_keys` — the
    /// precondition for compiling a maintenance plan for this shape.
    pub fn partitions(&self, leaf_keys: &Schema) -> bool {
        let mut union = Schema::empty();
        for s in self.0.iter() {
            if !union.disjoint(s) {
                return false;
            }
            union = union.union(s);
        }
        union.len() == leaf_keys.len() && union.subset_of(leaf_keys)
    }
}

/// The leaf-to-root maintenance path for updates to `rel` (leaf first,
/// root last). Returns `None` if the relation has no leaf in the tree.
pub fn delta_path(tree: &ViewTree, rel: usize) -> Option<Vec<NodeId>> {
    let mut path = vec![tree.leaf_of(rel)?];
    while let Some(p) = tree.nodes[*path.last().unwrap()].parent {
        path.push(p);
    }
    Some(path)
}

/// The maintenance path rooted at an arbitrary node (used for indicator
/// projections, whose deltas enter the tree mid-way).
pub fn path_from(tree: &ViewTree, node: NodeId) -> Vec<NodeId> {
    let mut path = vec![node];
    while let Some(p) = tree.nodes[*path.last().unwrap()].parent {
        path.push(p);
    }
    path
}

/// The join work at one step of a delta propagation: the node whose
/// delta is produced, the child whose delta feeds in, and the sibling
/// views joined with it.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaStep {
    /// The (inner) node whose delta this step computes.
    pub node: NodeId,
    /// The child on the maintenance path (its delta is the input).
    pub via_child: NodeId,
    /// The remaining children, joined as materialized siblings.
    pub siblings: Vec<NodeId>,
    /// Variables marginalized at this node.
    pub margin: Vec<VarId>,
}

/// Expand a maintenance path into per-node [`DeltaStep`]s (the path’s
/// leaf itself needs no step — its delta *is* the update).
pub fn delta_steps(tree: &ViewTree, path: &[NodeId]) -> Vec<DeltaStep> {
    path.windows(2)
        .map(|w| {
            let (child, node) = (w[0], w[1]);
            let n = &tree.nodes[node];
            let siblings = n.children.iter().copied().filter(|&c| c != child).collect();
            let margin = match &n.kind {
                crate::viewtree::NodeKind::Inner { margin, .. } => margin.clone(),
                _ => Vec::new(),
            };
            DeltaStep {
                node,
                via_child: child,
                siblings,
                margin,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryDef;
    use crate::varorder::VariableOrder;
    use crate::viewtree::ViewTree;

    fn fig2_tree() -> (QueryDef, ViewTree) {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let t = ViewTree::build(&q, &vo);
        (q, t)
    }

    /// Example 4.1: an update to T walks T → V@D → V@C → V@A.
    #[test]
    fn update_to_t_walks_to_root() {
        let (q, t) = fig2_tree();
        let ti = q.relation_index("T").unwrap();
        let path = delta_path(&t, ti).unwrap();
        assert_eq!(path.len(), 4); // leaf T, V@D, V@C, V@A
        assert_eq!(*path.last().unwrap(), t.root);
        let steps = delta_steps(&t, &path);
        assert_eq!(steps.len(), 3);
        // the middle step (δV@C) joins with sibling V@E over S
        let mid = &steps[1];
        assert_eq!(mid.siblings.len(), 1);
        assert_eq!(t.nodes[mid.siblings[0]].rels, 0b010); // S’s view
    }

    #[test]
    fn update_to_r_has_short_sibling_free_prefix() {
        let (q, t) = fig2_tree();
        let ri = q.relation_index("R").unwrap();
        let path = delta_path(&t, ri).unwrap();
        let steps = delta_steps(&t, &path);
        // δV@B has no siblings (V@B is defined over R alone)
        assert!(steps[0].siblings.is_empty());
        // δV@A joins with the ST view
        assert_eq!(steps.last().unwrap().siblings.len(), 1);
        assert_eq!(t.nodes[steps.last().unwrap().siblings[0]].rels, 0b110);
    }

    #[test]
    fn missing_relation_has_no_path() {
        let (_, t) = fig2_tree();
        assert!(delta_path(&t, 99).is_none());
    }

    #[test]
    fn factor_shape_keys_are_order_sensitive_and_hashable() {
        use fivm_core::Relation;
        let q = QueryDef::example_rst(&[]);
        let (a, c, e) = (
            q.catalog.lookup("A").unwrap(),
            q.catalog.lookup("C").unwrap(),
            q.catalog.lookup("E").unwrap(),
        );
        let ra: Relation<i64> = Relation::new(Schema::new(vec![a]));
        let rce: Relation<i64> = Relation::new(Schema::new(vec![c, e]));
        let shape = FactorShape::of(&[ra.clone(), rce.clone()]);
        assert!(shape.matches(&[ra.clone(), rce.clone()]));
        // factor order is part of the shape
        assert!(!shape.matches(&[rce.clone(), ra.clone()]));
        assert_ne!(shape, FactorShape::of(&[rce.clone(), ra.clone()]));
        // hashable: usable as a map key
        let mut m = std::collections::HashMap::new();
        m.insert(shape.clone(), 1);
        assert_eq!(m.get(&FactorShape::of(&[ra, rce])), Some(&1));
    }

    #[test]
    fn factor_shape_partition_check() {
        let q = QueryDef::example_rst(&[]);
        let (a, c, e) = (
            q.catalog.lookup("A").unwrap(),
            q.catalog.lookup("C").unwrap(),
            q.catalog.lookup("E").unwrap(),
        );
        let s_keys = Schema::new(vec![a, c, e]);
        let shape = FactorShape::new([Schema::new(vec![a]), Schema::new(vec![c, e])]);
        assert!(shape.partitions(&s_keys));
        // missing a variable
        assert!(!FactorShape::new([Schema::new(vec![a])]).partitions(&s_keys));
        // overlapping factors
        assert!(
            !FactorShape::new([Schema::new(vec![a, c]), Schema::new(vec![c, e])])
                .partitions(&s_keys)
        );
        // variable outside the leaf schema
        let b = q.catalog.lookup("B").unwrap();
        assert!(
            !FactorShape::new([Schema::new(vec![a, b]), Schema::new(vec![c, e])])
                .partitions(&s_keys)
        );
    }

    #[test]
    fn margins_match_nodes() {
        let (q, t) = fig2_tree();
        let si = q.relation_index("S").unwrap();
        let steps = delta_steps(&t, &delta_path(&t, si).unwrap());
        // each step marginalizes exactly the bound vars of its node
        for s in &steps {
            match &t.nodes[s.node].kind {
                crate::viewtree::NodeKind::Inner { margin, .. } => {
                    assert_eq!(&s.margin, margin)
                }
                _ => panic!("delta step at non-inner node"),
            }
        }
    }
}
