//! Indicator projections for cyclic queries (paper Appendix B,
//! Figure 10).
//!
//! An indicator projection `∃_pk R` marks the active domain of `R` on
//! the variables `pk`: keys are the distinct `pk`-projections of `R`’s
//! support, all with payload `1`. Joining an indicator into a view does
//! not change the query result but can *constrain* the view — e.g. it
//! bounds the `S ⋈ T` view of the triangle query from `O(N²)` to `O(N)`
//! (Example B.3) — trading a little maintenance work for asymptotic
//! space/time savings.
//!
//! The placement algorithm `I(τ)` walks the view tree bottom-up; at each
//! inner view it considers, as candidates, projections of relations the
//! view is *not* defined over onto the view’s key variables, and keeps
//! exactly those candidates that close a cycle with the children’s key
//! schemas (detected with the GYO reduction).
//!
//! Deviation from the paper’s presentation: indicator nodes contribute
//! no bits to ancestors’ `rels` masks (they approximate a subtree rooted
//! elsewhere), so the µ rule of Figure 5 continues to see the tree’s
//! original relation structure; the engine maintains indicators with
//! support counts as in Example B.2.

use crate::gyo::gyo_reduce;
use crate::query::QueryDef;
use crate::viewtree::{NodeId, NodeKind, ViewNode, ViewTree};
use fivm_core::Schema;

/// Extend `tree` with indicator projections per Figure 10. Returns the
/// ids of the indicator nodes added.
pub fn add_indicators(tree: &mut ViewTree, query: &QueryDef) -> Vec<NodeId> {
    let mut added = Vec::new();
    // bottom-up: nodes vector is already topologically ordered
    for id in 0..tree.nodes.len() {
        if !matches!(tree.nodes[id].kind, NodeKind::Inner { .. }) {
            continue;
        }
        let keys = tree.nodes[id].keys.clone();
        let rels = tree.nodes[id].rels;
        let children = tree.nodes[id].children.clone();

        // candidate indicators: relations not under this view whose
        // schema meets the view’s keys
        let mut cand: Vec<(usize, Schema)> = Vec::new();
        for (ri, r) in query.relations.iter().enumerate() {
            if rels & (1u64 << ri) != 0 {
                continue;
            }
            let pk = r.schema.intersect(&keys);
            if !pk.is_empty() {
                cand.push((ri, pk));
            }
        }
        if cand.is_empty() {
            continue;
        }

        // hyperedges: children’s keys then candidates’ pk sets
        let mut edges: Vec<Schema> = children
            .iter()
            .map(|&c| tree.nodes[c].keys.clone())
            .collect();
        let n_children = edges.len();
        edges.extend(cand.iter().map(|(_, pk)| pk.clone()));

        let incycle = gyo_reduce(&edges);
        for &e in &incycle {
            if e < n_children {
                continue; // child view, already present
            }
            let (ri, pk) = cand[e - n_children].clone();
            let ind = ViewNode {
                kind: NodeKind::Indicator {
                    rel: ri,
                    proj: pk.clone(),
                },
                keys: pk,
                children: Vec::new(),
                parent: Some(id),
                rels: 0,
            };
            tree.nodes.push(ind);
            let ind_id = tree.nodes.len() - 1;
            tree.nodes[id].children.push(ind_id);
            added.push(ind_id);
        }
    }
    // NOTE: indicator nodes are appended after their parents, so the
    // global bottom-up ordering only holds for non-indicator nodes;
    // consumers iterate children explicitly.
    tree.fix_parents();
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varorder::VariableOrder;

    /// Example B.3: the triangle query over the order A − B − C gets an
    /// indicator projection ∃_{A,B} R below the view at C.
    #[test]
    fn triangle_gets_indicator() {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut t = ViewTree::build(&q, &vo);
        let added = add_indicators(&mut t, &q);
        assert_eq!(added.len(), 1);
        let ind = &t.nodes[added[0]];
        match &ind.kind {
            NodeKind::Indicator { rel, proj } => {
                assert_eq!(q.relations[*rel].name, "R");
                let names: Vec<&str> = proj.iter().map(|&v| q.catalog.name(v)).collect();
                assert_eq!(names, vec!["A", "B"]);
            }
            k => panic!("not an indicator: {k:?}"),
        }
        // attached under the view at C (the node joining S and T)
        let parent = ind.parent.unwrap();
        match &t.nodes[parent].kind {
            NodeKind::Inner { at, .. } => assert_eq!(q.catalog.name(*at), "C"),
            k => panic!("unexpected parent {k:?}"),
        }
        // the view at C now has three children: S, T and the indicator
        assert_eq!(t.nodes[parent].children.len(), 3);
    }

    /// Acyclic queries get no indicators.
    #[test]
    fn acyclic_query_unchanged() {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let mut t = ViewTree::build(&q, &vo);
        let before = t.nodes.len();
        let added = add_indicators(&mut t, &q);
        assert!(added.is_empty());
        assert_eq!(t.nodes.len(), before);
    }

    /// The indicator keeps µ’s view of the relation structure: V@C is
    /// still “over S,T”, so it is stored for updates to R (needed as a
    /// sibling) exactly as in Example B.1’s analysis.
    #[test]
    fn materialization_with_indicator() {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut t = ViewTree::build(&q, &vo);
        add_indicators(&mut t, &q);
        let r = q.relation_index("R").unwrap();
        let plan = crate::materialize::materialization(&t, 1u64 << r);
        // the ST view (over S,T) is stored to answer δR joins
        let st_view = t
            .nodes
            .iter()
            .position(|n| n.rels == 0b110 && matches!(n.kind, NodeKind::Inner { .. }))
            .unwrap();
        assert!(plan.store[st_view]);
    }

    /// Loop-4 query with a chord: the chord relation participates in two
    /// triangles; indicators may be added but each relation keeps exactly
    /// one leaf (no duplication — the correctness constraint of App. B).
    #[test]
    fn chorded_cycle_no_leaf_duplication() {
        let q = QueryDef::new(
            &[
                ("R", &["A", "B"]),
                ("S", &["B", "C"]),
                ("T", &["C", "D"]),
                ("U", &["D", "A"]),
                ("Chord", &["A", "C"]),
            ],
            &[],
        );
        let vo = VariableOrder::parse("A - B - C - D", &q.catalog);
        let mut t = ViewTree::build(&q, &vo);
        add_indicators(&mut t, &q);
        for ri in 0..q.relations.len() {
            let leaves = t
                .nodes
                .iter()
                .filter(|n| matches!(n.kind, NodeKind::Relation(r) if r == ri))
                .count();
            assert_eq!(leaves, 1, "relation {ri} duplicated");
        }
    }
}
