//! Which views to materialize (paper Figure 5, §4).
//!
//! Given the updatable relations `U`, a view is stored iff it is the
//! root (the query result) or it is needed to compute its parent’s delta
//! for updates to a relation it is *not* defined over:
//!
//! ```text
//! store(V) ⇔ parent(V) = null  ∨  (rels(parent(V)) \ rels(V)) ∩ U ≠ ∅
//! ```
//!
//! Leaves (input relations) follow the same rule, which is how the
//! streaming “ONE” scenarios of §7 avoid storing the streamed relation
//! entirely.

use crate::viewtree::{NodeKind, ViewTree};

/// Materialization decision per node.
#[derive(Clone, Debug)]
pub struct MaterializationPlan {
    /// `store[n]` — whether node `n` must be materialized.
    pub store: Vec<bool>,
    /// Bitmask of the updatable relations the plan was computed for.
    pub updatable: u64,
}

impl MaterializationPlan {
    /// Number of stored views/relations (the paper’s view-count metric).
    pub fn stored_count(&self) -> usize {
        self.store.iter().filter(|&&b| b).count()
    }
}

/// Compute the materialization plan `µ(τ, U)` of Figure 5. `updatable`
/// is a bitmask over relation indices.
pub fn materialization(tree: &ViewTree, updatable: u64) -> MaterializationPlan {
    let store = tree
        .nodes
        .iter()
        .map(|n| match n.parent {
            None => true, // the root is always stored
            Some(p) => {
                let parent_rels = tree.nodes[p].rels;
                let own = effective_rels(tree, n);
                (parent_rels & !own) & updatable != 0
            }
        })
        .collect();
    MaterializationPlan { store, updatable }
}

/// The relations a node is “defined over” for the purposes of µ.
/// Indicator nodes are defined over their projected relation (their
/// contents change only with it), even though they contribute no bits to
/// ancestors’ masks.
fn effective_rels(tree: &ViewTree, n: &crate::viewtree::ViewNode) -> u64 {
    match &n.kind {
        NodeKind::Indicator { rel, .. } => 1u64 << rel,
        _ => {
            let _ = tree;
            n.rels
        }
    }
}

/// Convenience: bitmask from relation indices.
pub fn rel_mask(rels: &[usize]) -> u64 {
    rels.iter().fold(0u64, |m, &r| m | (1u64 << r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryDef;
    use crate::varorder::VariableOrder;
    use crate::viewtree::ViewTree;

    fn fig2() -> (QueryDef, ViewTree) {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let t = ViewTree::build(&q, &vo);
        (q, t)
    }

    fn stored_names(q: &QueryDef, t: &ViewTree, plan: &MaterializationPlan) -> Vec<String> {
        t.nodes
            .iter()
            .enumerate()
            .filter(|(id, _)| plan.store[*id])
            .map(|(_, n)| match &n.kind {
                NodeKind::Relation(r) => q.relations[*r].name.clone(),
                NodeKind::Indicator { rel, .. } => format!("ind({})", q.relations[*rel].name),
                NodeKind::Inner { at, .. } => format!("V@{}", q.catalog.name(*at)),
            })
            .collect()
    }

    /// Example 4.2: for U = {T}, store the root, V@E_S and V@B_R
    /// (plus nothing else — in particular not V@C or V@D).
    #[test]
    fn example_4_2_updates_to_t_only() {
        let (q, t) = fig2();
        let ti = q.relation_index("T").unwrap();
        let plan = materialization(&t, rel_mask(&[ti]));
        let mut names = stored_names(&q, &t, &plan);
        names.sort();
        assert_eq!(names, vec!["V@A", "V@B", "V@E"]);
    }

    /// Example 4.2 continued: adding updates to R and S also stores
    /// V@C and V@D (and the input relations as siblings’ sources).
    #[test]
    fn updates_to_all() {
        let (q, t) = fig2();
        let plan = materialization(&t, rel_mask(&[0, 1, 2]));
        let names = stored_names(&q, &t, &plan);
        for required in ["V@A", "V@B", "V@C", "V@D", "V@E"] {
            assert!(names.contains(&required.to_string()), "missing {required}");
        }
        // Under updates to all relations every view is materialized (§4).
        assert!(plan.stored_count() >= 5);
    }

    /// “If no updates are supported, then only the root view is stored.”
    #[test]
    fn no_updates_stores_only_root() {
        let (_, t) = fig2();
        let plan = materialization(&t, 0);
        assert_eq!(plan.stored_count(), 1);
        assert!(plan.store[t.root]);
    }

    /// Streaming scenario: with U = {R} the R leaf itself is not stored
    /// (δR flows through without being retained) — the “do not store the
    /// stream” property of §7’s ONE experiments.
    #[test]
    fn stream_relation_not_stored() {
        let (q, t) = fig2();
        let ri = q.relation_index("R").unwrap();
        let plan = materialization(&t, rel_mask(&[ri]));
        let leaf = t.leaf_of(ri).unwrap();
        assert!(!plan.store[leaf]);
        // …but its sibling data (the ST side) is stored.
        let names = stored_names(&q, &t, &plan);
        assert!(names.contains(&"V@C".to_string()));
    }
}
