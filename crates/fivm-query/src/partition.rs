//! Heavy/light partition plans for triangle-shaped cyclic queries
//! (IVM^ε; Kara et al., “Counting Triangles under Updates in Worst-Case
//! Optimal Time”, ICDT 2019).
//!
//! The classical delta queries of the triangle count are O(N) per
//! single-tuple update when a join key is heavy. The IVM^ε strategy
//! partitions each relation of the 3-cycle **on its cycle-first
//! variable** into a heavy and a light part at threshold θ = Θ(N^ε) and
//! maintains one auxiliary view per heavy⊗light pairing, so every delta
//! is answered in O(N^ε + N^{1−ε}) — O(√N) at ε = 1/2.
//!
//! This module is the ring-agnostic *plan*: it recognizes a 3-cycle in a
//! [`QueryDef`], orients it, and compiles the positional metadata the
//! engine's router needs (partition column per relation, canonical
//! part-store and auxiliary-view schemas). Execution lives in
//! `fivm-engine::heavylight`.
//!
//! With the cycle oriented as `rel₀(v₀,v₁) ⋈ rel₁(v₁,v₂) ⋈ rel₂(v₂,v₀)`
//! (indices mod 3 throughout):
//!
//! * relation `relₖ` is partitioned on `vₖ`, its cycle-first variable;
//! * auxiliary view `Wₖ(vₖ, vₖ₊₂) = Σ_{vₖ₊₁} relₖᴴ(vₖ, vₖ₊₁) ⊗
//!   relₖ₊₁ᴸ(vₖ₊₁, vₖ₊₂)` — each heavy part joined with the *next*
//!   relation's light part. Every maintenance enumeration of `Wₖ` is
//!   bounded by θ (a light key's degree) or by the heavy-key count
//!   ≤ 2N/θ, which is what makes the update cost sub-linear.

use crate::query::{QueryDef, RelIndex};
use fivm_core::{Schema, VarId};
use std::fmt;

/// Why a query has no triangle partition plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// The plan covers exactly the 3-relation cyclic join.
    NotThreeRelations(usize),
    /// Relation at this index is not binary (or has a repeated variable).
    NotBinary(RelIndex),
    /// The three relations do not form a single 3-cycle.
    NotACycle,
    /// The plan maintains the closed (no group-by) aggregate only.
    FreeVariables,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NotThreeRelations(n) => {
                write!(f, "triangle partition plan needs 3 relations, got {n}")
            }
            PartitionError::NotBinary(i) => {
                write!(f, "relation {i} is not binary with distinct variables")
            }
            PartitionError::NotACycle => write!(f, "relations do not form a 3-cycle"),
            PartitionError::FreeVariables => {
                write!(
                    f,
                    "triangle partition plan maintains the closed aggregate only"
                )
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A compiled heavy/light partition plan for a triangle query: the
/// oriented 3-cycle plus the positional metadata the update router
/// needs. All arrays are indexed by **cycle position** `k ∈ {0,1,2}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrianglePlan {
    /// `rels[k]` = index (into [`QueryDef::relations`]) of the relation
    /// at cycle position `k`.
    pub rels: [RelIndex; 3],
    /// The cycle variables: the relation at position `k` has schema
    /// `{vars[k], vars[(k+1) % 3]}`.
    pub vars: [VarId; 3],
    /// Position of the **partition column** `vars[k]` within the
    /// declared schema of the relation at cycle position `k`.
    pub pos_part: [usize; 3],
    /// Position of the other column `vars[(k+1) % 3]`.
    pub pos_other: [usize; 3],
    /// Inverse of `rels`: `cycle_of_rel[r]` = cycle position of
    /// relation index `r`.
    pub cycle_of_rel: [usize; 3],
}

impl TrianglePlan {
    /// Recognize and orient the 3-cycle of `q`; the orientation starts
    /// at relation 0's first declared variable, so
    /// [`QueryDef::triangle`] (`R(A,B), S(B,C), T(C,A)`) compiles to
    /// the paper's partitioning: R on A, S on B, T on C.
    pub fn build(q: &QueryDef) -> Result<Self, PartitionError> {
        if q.relations.len() != 3 {
            return Err(PartitionError::NotThreeRelations(q.relations.len()));
        }
        if !q.free.is_empty() {
            return Err(PartitionError::FreeVariables);
        }
        let pair = |r: RelIndex| -> Result<(VarId, VarId), PartitionError> {
            let s = &q.relations[r].schema;
            if s.len() != 2 || s.vars()[0] == s.vars()[1] {
                return Err(PartitionError::NotBinary(r));
            }
            Ok((s.vars()[0], s.vars()[1]))
        };
        let (v0, v1) = pair(0)?;
        let (_, _) = (pair(1)?, pair(2)?);
        // Find the successor of relation 0: the relation containing v1
        // whose other variable closes the cycle through the remaining
        // relation. Both candidate orders are tried.
        for (r1, r2) in [(1usize, 2usize), (2, 1)] {
            let s1 = &q.relations[r1].schema;
            if !s1.contains(v1) {
                continue;
            }
            let v2 = if s1.vars()[0] == v1 {
                s1.vars()[1]
            } else {
                s1.vars()[0]
            };
            if v2 == v0 || v2 == v1 {
                continue;
            }
            let s2 = &q.relations[r2].schema;
            if !(s2.contains(v2) && s2.contains(v0)) {
                continue;
            }
            let rels = [0, r1, r2];
            let vars = [v0, v1, v2];
            let mut pos_part = [0usize; 3];
            let mut pos_other = [0usize; 3];
            for k in 0..3 {
                let s = &q.relations[rels[k]].schema;
                pos_part[k] = s.position(vars[k]).ok_or(PartitionError::NotACycle)?;
                pos_other[k] = s
                    .position(vars[(k + 1) % 3])
                    .ok_or(PartitionError::NotACycle)?;
            }
            let mut cycle_of_rel = [0usize; 3];
            for (k, &r) in rels.iter().enumerate() {
                cycle_of_rel[r] = k;
            }
            return Ok(TrianglePlan {
                rels,
                vars,
                pos_part,
                pos_other,
                cycle_of_rel,
            });
        }
        Err(PartitionError::NotACycle)
    }

    /// Canonical schema `[vars[k], vars[k+1]]` of both part stores of
    /// the relation at cycle position `k` — partition column first, so
    /// a first-column index enumerates a key's tuples and the primary
    /// map answers point probes.
    pub fn part_schema(&self, k: usize) -> Schema {
        Schema::new(vec![self.vars[k], self.vars[(k + 1) % 3]])
    }

    /// Schema `[vars[k], vars[k+2]]` of auxiliary view `Wₖ`.
    pub fn aux_schema(&self, k: usize) -> Schema {
        Schema::new(vec![self.vars[k], self.vars[(k + 2) % 3]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orients_the_canonical_triangle() {
        let q = QueryDef::triangle();
        let p = TrianglePlan::build(&q).unwrap();
        assert_eq!(p.rels, [0, 1, 2]);
        // R on A, S on B, T on C — each relation's first declared column.
        assert_eq!(p.pos_part, [0, 0, 0]);
        assert_eq!(p.pos_other, [1, 1, 1]);
        assert_eq!(p.cycle_of_rel, [0, 1, 2]);
        let names: Vec<&str> = p.vars.iter().map(|&v| q.catalog.name(v)).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }

    #[test]
    fn handles_permuted_schemas_and_relation_order() {
        // Same cycle, but S and T swapped and declared with flipped
        // columns: R(A,B), T(C,A), S(C,B).
        let q = QueryDef::new(
            &[("R", &["A", "B"]), ("T", &["C", "A"]), ("S", &["C", "B"])],
            &[],
        );
        let p = TrianglePlan::build(&q).unwrap();
        assert_eq!(p.rels[0], 0);
        // successor of R through B is S (relation index 2)
        assert_eq!(p.rels[1], 2);
        assert_eq!(p.rels[2], 1);
        // S is declared (C, B): its partition column B sits at position 1.
        assert_eq!(p.pos_part[1], 1);
        assert_eq!(p.pos_other[1], 0);
        let names: Vec<&str> = p.vars.iter().map(|&v| q.catalog.name(v)).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }

    #[test]
    fn rejects_non_triangles() {
        let path = QueryDef::new(
            &[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["C", "D"])],
            &[],
        );
        assert_eq!(TrianglePlan::build(&path), Err(PartitionError::NotACycle));

        let two = QueryDef::new(&[("R", &["A", "B"]), ("S", &["B", "A"])], &[]);
        assert_eq!(
            TrianglePlan::build(&two),
            Err(PartitionError::NotThreeRelations(2))
        );

        let ternary = QueryDef::new(
            &[
                ("R", &["A", "B", "C"]),
                ("S", &["B", "C"]),
                ("T", &["C", "A"]),
            ],
            &[],
        );
        assert_eq!(
            TrianglePlan::build(&ternary),
            Err(PartitionError::NotBinary(0))
        );

        let free = QueryDef::new(
            &[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["C", "A"])],
            &["A"],
        );
        assert_eq!(
            TrianglePlan::build(&free),
            Err(PartitionError::FreeVariables)
        );
    }
}
