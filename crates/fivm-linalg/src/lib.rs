//! # fivm-linalg — dense linear algebra substrate
//!
//! The paper’s Figure 6 compares maintenance strategies for matrix chain
//! multiplication under two runtimes: DBToaster hash maps and Octave
//! (dense arrays + BLAS). This crate is the stand-in for the latter
//! (DESIGN.md §3 documents the substitution): a from-scratch dense
//! [`Matrix`] with cache-aware multiplication, the textbook
//! matrix-chain-order DP ([`chain`]), and the LINVIEW-style incremental
//! maintenance strategies of §6.1 ([`linview`]):
//!
//! * [`linview::ReEvalChain`] — recompute the product on every update,
//! * [`linview::FirstOrderChain`] — 1-IVM: `δA = A₁ δA₂ A₃` with full
//!   matrix-matrix multiplications,
//! * [`linview::DenseChainIvm`] — F-IVM: factorized rank-1/rank-r
//!   updates propagated through a balanced product tree in
//!   `O(p² log k)` per rank-1 update.
//!
//! [`decomp`] provides low-rank decompositions of update matrices
//! (paper §5: arbitrary updates decompose into sums of rank-1 tensors).
//!
//! [`engine_chain`] drives the same chain through the **relational
//! F-IVM engine** with factorizable (rank-1 factored) updates — the
//! Figure 6 hash runtime, exercising the engine's compiled factored
//! fast path.

#![forbid(unsafe_code)]

pub mod chain;
pub mod decomp;
pub mod engine_chain;
pub mod linview;
pub mod matrix;

pub use chain::{chain_cost, multiply_chain, optimal_parenthesization};
pub use decomp::{low_rank_decompose, row_update_factors};
pub use engine_chain::EngineChainIvm;
pub use linview::{DenseChainIvm, FirstOrderChain, ReEvalChain};
pub use matrix::Matrix;
