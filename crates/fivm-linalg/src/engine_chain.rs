//! Matrix-chain maintenance through the **relational F-IVM engine**
//! (the paper's Figure 6 "hash" runtime): the chain
//! `A = A₁ · A₂ · … · A_k` is the query
//! `A[X1, X_{k+1}] = ⊕X2 … ⊕Xk  A1[X1,X2] ⊗ … ⊗ Ak[Xk,X_{k+1}]`
//! over the `f64` ring, maintained by [`fivm_engine::IvmEngine`].
//!
//! A rank-1 update `δA_i = u·vᵀ` is shipped as a **factored delta**
//! `δA_i = u[X_i] ⊗ v[X_{i+1}]` — two vectors, never the `p²` outer
//! product — and propagates through the engine's compiled factored
//! path: the `Optimize` rewrite (⊕ pushed into the factor binding the
//! marginalized variable) turns each path step into a matrix-vector
//! product at hash-map speed, which is the `O(p²)`-per-update claim of
//! §6.1 carried by the relational runtime instead of dense BLAS
//! ([`crate::linview::DenseChainIvm`] is the dense twin). The flat
//! foil ([`EngineChainIvm::apply_rank1_flat`]) ships the multiplied-out
//! `p²`-entry delta instead, paying the flat path's `O(p³)` join work.

use crate::matrix::Matrix;
use fivm_core::{Delta, LiftingMap, Relation, Schema, Tuple, Value};
use fivm_engine::{Database, IvmEngine};
use fivm_query::{QueryDef, VariableOrder, ViewTree};

/// F-IVM over the matrix chain, driven through the relational engine
/// with factorizable updates (see the module docs).
pub struct EngineChainIvm {
    engine: IvmEngine<f64>,
    /// Unary schema per chain variable `X1 … X_{k+1}`.
    var_schemas: Vec<Schema>,
    /// Relation schemas per chain position (the flat-foil delta shape).
    rel_schemas: Vec<Schema>,
    /// Positions of `[X1, X_{k+1}]` in the root view's key order.
    root_pos: Vec<usize>,
    rows: usize,
    cols: usize,
}

impl EngineChainIvm {
    /// Build the chain query `A1 ⋯ Ak` over the given matrices,
    /// load them, and compile the maintenance plans (every relation
    /// updatable). The variable order is the path
    /// `X1 - X_{k+1} - X_k - … - X2` — free variables on top, one
    /// marginalized variable per inner view, the §6.1 shape.
    pub fn new(mats: Vec<Matrix>) -> Self {
        let k = mats.len();
        assert!(k >= 1, "empty chain");
        for w in mats.windows(2) {
            assert_eq!(w[0].cols(), w[1].rows(), "chain dimensions must agree");
        }
        let names: Vec<String> = (1..=k + 1).map(|i| format!("X{i}")).collect();
        let rels: Vec<(String, [&str; 2])> = (0..k)
            .map(|i| {
                (
                    format!("A{}", i + 1),
                    [names[i].as_str(), names[i + 1].as_str()],
                )
            })
            .collect();
        let rel_slices: Vec<(&str, &[&str])> =
            rels.iter().map(|(n, a)| (n.as_str(), &a[..])).collect();
        let query = QueryDef::new(&rel_slices, &[names[0].as_str(), names[k].as_str()]);

        let mut order = format!("{} - {}", names[0], names[k]);
        for name in names[1..k].iter().rev() {
            order.push_str(" - ");
            order.push_str(name);
        }
        let vo = VariableOrder::parse(&order, &query.catalog);
        let tree = ViewTree::build(&query, &vo);
        let updatable: Vec<usize> = (0..k).collect();
        let mut engine = IvmEngine::new(query.clone(), tree, &updatable, LiftingMap::new());

        let var_schemas: Vec<Schema> = names
            .iter()
            .map(|n| Schema::new(vec![query.catalog.lookup(n).unwrap()]))
            .collect();
        let rel_schemas: Vec<Schema> = query.relations.iter().map(|r| r.schema.clone()).collect();
        let root_keys = &engine.tree().nodes[engine.tree().root].keys;
        let root_pos = root_keys
            .positions_of(&[
                query.catalog.lookup(&names[0]).unwrap(),
                query.catalog.lookup(&names[k]).unwrap(),
            ])
            .expect("root keys are the free variables");

        let mut db = Database::<f64>::empty(&query);
        for (i, m) in mats.iter().enumerate() {
            db.relations[i] = matrix_relation(m, rel_schemas[i].clone());
        }
        engine.load(&db);
        EngineChainIvm {
            engine,
            var_schemas,
            rel_schemas,
            root_pos,
            rows: mats[0].rows(),
            cols: mats[k - 1].cols(),
        }
    }

    /// Apply the rank-1 update `δA_i = u·vᵀ` as the factored delta
    /// `u[X_{i+1's row var}] ⊗ v[col var]` — the compiled factored
    /// fast path (or the general factor path when disabled via
    /// [`EngineChainIvm::set_fast_path`]).
    pub fn apply_rank1(&mut self, i: usize, u: &[f64], v: &[f64]) {
        let du = vector_relation(u, self.var_schemas[i].clone());
        let dv = vector_relation(v, self.var_schemas[i + 1].clone());
        self.engine.apply(i, &Delta::factored(vec![du, dv]));
    }

    /// Apply a rank-r update as a sequence of rank-1 updates (paper:
    /// "F-IVM processes δA₂ as a sequence of r rank-1 updates").
    pub fn apply_rank_r(&mut self, i: usize, factors: &[(Vec<f64>, Vec<f64>)]) {
        for (u, v) in factors {
            self.apply_rank1(i, u, v);
        }
    }

    /// The flat foil: the same rank-1 update multiplied out into its
    /// `p²`-entry listing form and shipped as a flat delta — what a
    /// system without factorizable updates must do.
    pub fn apply_rank1_flat(&mut self, i: usize, u: &[f64], v: &[f64]) {
        let mut delta = Relation::new(self.rel_schemas[i].clone());
        for (r, &uu) in u.iter().enumerate() {
            if uu == 0.0 {
                continue;
            }
            for (c, &vv) in v.iter().enumerate() {
                let p = uu * vv;
                if p != 0.0 {
                    delta.insert(Tuple::pair(Value::Int(r as i64), Value::Int(c as i64)), p);
                }
            }
        }
        self.engine.apply(i, &Delta::Flat(delta));
    }

    /// The maintained product `A₁ ⋯ A_k`, read back densely from the
    /// root view (absent keys are exact zeros).
    pub fn product(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let root = self.engine.tree().root;
        let rel = self
            .engine
            .view_relation(root)
            .expect("root is always materialized");
        for (t, p) in rel.iter() {
            let (i, j) = match (t.get(self.root_pos[0]), t.get(self.root_pos[1])) {
                (Value::Int(i), Value::Int(j)) => (*i as usize, *j as usize),
                _ => unreachable!("chain keys are integer indices"),
            };
            out.set(i, j, *p);
        }
        out
    }

    /// Toggle the engine's compiled fast paths (the general factor
    /// path is the measurement foil).
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.engine.set_fast_path(enabled);
    }

    /// The underlying engine (view counts, memory accounting, …).
    pub fn engine(&self) -> &IvmEngine<f64> {
        &self.engine
    }
}

/// Encode a dense matrix as a relation over `(row, col)` keys.
fn matrix_relation(m: &Matrix, schema: Schema) -> Relation<f64> {
    let mut out = Relation::new(schema);
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            let x = m.get(i, j);
            if x != 0.0 {
                out.insert(Tuple::pair(Value::Int(i as i64), Value::Int(j as i64)), x);
            }
        }
    }
    out
}

/// Encode a vector as a unary relation, skipping exact zeros (a zero
/// coefficient contributes nothing to any product — this is what makes
/// a one-row update's `e_row` factor a single tuple).
fn vector_relation(v: &[f64], schema: Schema) -> Relation<f64> {
    let mut out = Relation::new(schema);
    for (i, &x) in v.iter().enumerate() {
        if x != 0.0 {
            out.insert(Tuple::single(Value::Int(i as i64)), x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linview::{DenseChainIvm, ReEvalChain};

    fn mats(k: usize, n: usize) -> Vec<Matrix> {
        (0..k)
            .map(|m| {
                Matrix::from_fn(n, n, |i, j| {
                    ((i * 31 + j * 17 + m * 7) % 10) as f64 * 0.1 - 0.45
                })
            })
            .collect()
    }

    #[test]
    fn engine_chain_matches_dense_on_load() {
        let base = mats(3, 6);
        let re = ReEvalChain::new(base.clone());
        let ec = EngineChainIvm::new(base);
        assert!(ec.product().approx_eq(re.product(), 1e-9));
    }

    #[test]
    fn rank1_updates_match_dense_fivm() {
        let base = mats(3, 8);
        let mut dense = DenseChainIvm::new(base.clone());
        let mut ec = EngineChainIvm::new(base);
        for pos in 0..3 {
            let u: Vec<f64> = (0..8).map(|i| ((i + pos) % 5) as f64 * 0.3 - 0.2).collect();
            let v: Vec<f64> = (0..8).map(|i| ((i * 2 + pos) % 7) as f64 * 0.1).collect();
            dense.apply_rank1(pos, &u, &v);
            ec.apply_rank1(pos, &u, &v);
            assert!(
                ec.product().approx_eq(dense.product(), 1e-8),
                "diverged after rank-1 update to A{pos}"
            );
        }
    }

    #[test]
    fn factored_flat_and_general_agree() {
        let base = mats(3, 6);
        let mut fact = EngineChainIvm::new(base.clone());
        let mut flat = EngineChainIvm::new(base.clone());
        let mut gen = EngineChainIvm::new(base);
        gen.set_fast_path(false);
        // one-row update (sparse u) and a negative (delete-style) update
        let updates: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (
                (0..6).map(|i| if i == 2 { 1.0 } else { 0.0 }).collect(),
                (0..6).map(|i| i as f64 * 0.2 - 0.5).collect(),
            ),
            (
                (0..6).map(|i| -((i % 3) as f64) * 0.4).collect(),
                (0..6).map(|i| ((i + 1) % 4) as f64 * 0.25).collect(),
            ),
        ];
        for (u, v) in &updates {
            fact.apply_rank1(1, u, v);
            flat.apply_rank1_flat(1, u, v);
            gen.apply_rank1(1, u, v);
            assert!(fact.product().approx_eq(&flat.product(), 1e-9));
            assert!(fact.product().approx_eq(&gen.product(), 1e-9));
        }
    }

    #[test]
    fn rank_r_and_longer_chains() {
        for k in [2usize, 4, 5] {
            let base = mats(k, 5);
            let mut dense = DenseChainIvm::new(base.clone());
            let mut ec = EngineChainIvm::new(base);
            let factors: Vec<(Vec<f64>, Vec<f64>)> = (0..3)
                .map(|r| {
                    (
                        (0..5).map(|i| ((i + r) % 4) as f64 * 0.3).collect(),
                        (0..5)
                            .map(|i| ((i * r + 1) % 5) as f64 * 0.2 - 0.3)
                            .collect(),
                    )
                })
                .collect();
            let pos = k / 2;
            dense.apply_rank_r(pos, &factors);
            ec.apply_rank_r(pos, &factors);
            assert!(
                ec.product().approx_eq(dense.product(), 1e-8),
                "diverged on chain of length {k}"
            );
        }
    }

    #[test]
    fn non_square_chain_through_engine() {
        let a = Matrix::from_fn(4, 6, |i, j| (i + j) as f64 * 0.1);
        let b = Matrix::from_fn(6, 3, |i, j| (i as f64 - j as f64) * 0.2);
        let c = Matrix::from_fn(3, 5, |i, j| ((i * j) % 3) as f64);
        let mut re = ReEvalChain::new(vec![a.clone(), b.clone(), c.clone()]);
        let mut ec = EngineChainIvm::new(vec![a, b, c]);
        let u: Vec<f64> = vec![0.0, 1.0, 0.0, 0.5, 0.0, 0.0];
        let v: Vec<f64> = vec![0.5, -0.5, 1.0];
        let mut delta = Matrix::zeros(6, 3);
        delta.add_outer(&u, &v);
        re.apply(1, &delta);
        ec.apply_rank1(1, &u, &v);
        assert!(ec.product().approx_eq(re.product(), 1e-9));
    }
}
