//! Dense row-major matrices with cache-aware kernels.
//!
//! Deliberately simple: the Figure 6 experiments need an *honest* dense
//! baseline (O(n³) multiplication with reasonable constants), not peak
//! BLAS — the asymptotic crossovers the paper reports are what we
//! reproduce.

use std::fmt;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a generator function.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a nested array (tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        assert!(rows.iter().all(|x| x.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flat_map(|x| x.iter().copied()).collect(),
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw data (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix product `self · other` (i-k-j loop: row-major streaming on
    /// both operands, no transpose needed).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let orow = &mut out.data[i * n..(i + 1) * n];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * n..(k + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            *slot = acc;
        }
        out
    }

    /// Vector–matrix product `vᵀ · self` (returns a row vector).
    pub fn tvecmat(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, &a) in out.iter_mut().zip(row) {
                *o += vi * a;
            }
        }
        out
    }

    /// Rank-1 update `self += u · vᵀ`.
    pub fn add_outer(&mut self, u: &[f64], v: &[f64]) {
        assert_eq!(self.rows, u.len());
        assert_eq!(self.cols, v.len());
        for (i, &ui) in u.iter().enumerate() {
            if ui == 0.0 {
                continue;
            }
            let row = self.row_mut(i);
            for (r, &vj) in row.iter_mut().zip(v) {
                *r += ui * vj;
            }
        }
    }

    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Maximum absolute element difference (for approximate comparisons).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|a| a.abs()).fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// True iff all elements differ by at most `eps`.
    pub fn approx_eq(&self, other: &Matrix, eps: f64) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols) && self.max_abs_diff(other) <= eps
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(i)[..self.cols.min(8)])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[5.0], &[2.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 5.0);
        assert_eq!((c.rows(), c.cols()), (1, 1));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        assert!(a.matmul(&Matrix::identity(4)).approx_eq(&a, 0.0));
        assert!(Matrix::identity(4).matmul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    fn matvec_and_tvecmat() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(a.tvecmat(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn outer_update_equals_explicit_product() {
        let mut a = Matrix::zeros(3, 2);
        a.add_outer(&[1.0, 2.0, 0.0], &[3.0, 4.0]);
        assert_eq!(
            a,
            Matrix::from_rows(&[&[3.0, 4.0], &[6.0, 8.0], &[0.0, 0.0]])
        );
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn associativity_of_matmul() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + j) as f64 * 0.5);
        let b = Matrix::from_fn(4, 2, |i, j| (i as f64 - j as f64) * 0.25);
        let c = Matrix::from_fn(2, 5, |i, j| ((i * j) as f64 + 1.0) * 0.1);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn rank1_update_changes_product_by_factored_delta() {
        // (A + u vᵀ) B == A B + u (vᵀ B): the LINVIEW identity.
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let b = Matrix::from_fn(3, 3, |i, j| (j as f64 - i as f64) * 0.5);
        let u = [1.0, 0.5, -1.0];
        let v = [2.0, 0.0, 1.0];
        let mut a2 = a.clone();
        a2.add_outer(&u, &v);
        let direct = a2.matmul(&b);
        let mut inc = a.matmul(&b);
        let vb = b.tvecmat(&v);
        inc.add_outer(&u, &vb);
        assert!(direct.approx_eq(&inc, 1e-12));
    }
}
